#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, the kernel fuzz
# loop, the bench compile gate, a perf smoke with hard floors, and the
# chaos soak. Runs entirely offline — the workspace (benches included) has
# zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

# Kernel-equivalence fuzz loop at a pinned seed: the packed/pre-packed GEMM
# paths against the naive oracle over adversarial fringe shapes. The seed is
# fixed so a CI failure reproduces exactly; bump FT_FUZZ_ROUNDS locally to
# sweep wider.
echo "== kernel fuzz (pinned seed)"
FT_FUZZ_SEED=20130926 FT_FUZZ_ROUNDS=600 cargo test -q -p ft-dense --test kernel_fuzz

echo "== cargo bench --no-run (compile gate)"
cargo bench --no-run -q

# Perf smoke: regenerates BENCH_kernels.json and fails if the packed kernel
# is slower than the naive triple loop at 256×256 or below 3× naive at
# 512×512 (the gates live inside the bench binary).
echo "== kernels perf smoke"
FT_KERNELS_SMOKE=1 cargo bench -q --bench kernels

# Deterministic chaos soak: seeded kills at arbitrary message-op boundaries
# through the release CLI, for BOTH solvers on the shared framework. A run
# must either recover and pass verification (exit 0) or reject a
# beyond-tolerance victim set with the typed error (exit 3) — any panic or
# other exit code fails the gate. Same seeds, same outcomes, every run.
# The per-solver run counters make a silently skipped battery a hard fail.
echo "== chaos soak (release, both solvers)"
cargo build --release -q
CHAOS_SEEDS=${CHAOS_SEEDS:-"1 2 3 5 8 13 21 34"}
chaos_hessenberg_runs=0
chaos_qr_runs=0
for solver in hessenberg qr; do
    for seed in $CHAOS_SEEDS; do
        for variant in alg2 alg3; do
            set +e
            ./target/release/abft-hessenberg \
                --n 96 --nb 8 --grid 2x3 --solver "$solver" --variant "$variant" \
                --chaos "$seed:3" --verify >/dev/null
            rc=$?
            set -e
            case $rc in
                0) echo "  $solver seed $seed $variant: recovered, verified" ;;
                3) echo "  $solver seed $seed $variant: beyond tolerance, typed rejection" ;;
                *) echo "  $solver seed $seed $variant: FAILED (exit $rc)"; exit 1 ;;
            esac
            eval "chaos_${solver}_runs=\$((chaos_${solver}_runs + 1))"
        done
    done
done
if [ "$chaos_hessenberg_runs" -eq 0 ] || [ "$chaos_qr_runs" -eq 0 ]; then
    echo "chaos soak: a solver battery was skipped (hessenberg=$chaos_hessenberg_runs qr=$chaos_qr_runs)"
    exit 1
fi

# Deterministic SDC soak: seeded silent bit flips at message-op boundaries
# with the scrub engine at cadence 1, again for BOTH solvers. A run must
# either correct (or roll back) every detectable flip and pass verification
# (exit 0) or reject uncorrectable corruption with the typed error (exit 3)
# — any panic, silent verification failure (exit 1), or other exit code
# fails the gate; an empty solver battery fails it too.
echo "== sdc soak (release, both solvers)"
SDC_SEEDS=${SDC_SEEDS:-"1 2 3 5 8 13 21 34"}
sdc_hessenberg_runs=0
sdc_qr_runs=0
for solver in hessenberg qr; do
    for seed in $SDC_SEEDS; do
        for variant in alg2 alg3; do
            for flips in 1 2; do
                set +e
                ./target/release/abft-hessenberg \
                    --n 96 --nb 8 --grid 2x4 --solver "$solver" --variant "$variant" \
                    --redundancy dual --sdc "$seed:$flips" --verify >/dev/null
                rc=$?
                set -e
                case $rc in
                    0) echo "  $solver seed $seed $variant x$flips: scrubbed, verified" ;;
                    3) echo "  $solver seed $seed $variant x$flips: uncorrectable, typed rejection" ;;
                    *) echo "  $solver seed $seed $variant x$flips: FAILED (exit $rc)"; exit 1 ;;
                esac
                eval "sdc_${solver}_runs=\$((sdc_${solver}_runs + 1))"
            done
        done
    done
done
if [ "$sdc_hessenberg_runs" -eq 0 ] || [ "$sdc_qr_runs" -eq 0 ]; then
    echo "sdc soak: a solver battery was skipped (hessenberg=$sdc_hessenberg_runs qr=$sdc_qr_runs)"
    exit 1
fi

# Distributed smoke: the real multi-process TCP transport on localhost —
# one OS process per rank, wired by the launcher's probed ports. Both ABFT
# variants must finish fault-free and pass verification. The shortened
# receive timeout turns any protocol wedge into a typed abort instead of a
# CI hang (the launcher's own 600 s watchdog is the backstop).
echo "== distributed smoke (localhost TCP, 2x2, both solvers)"
for solver in hessenberg qr; do
    for variant in alg2 alg3; do
        FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
            --distributed --grid 2x2 --n 64 --nb 8 --solver "$solver" \
            --variant "$variant" --verify >/dev/null
        echo "  $solver $variant: fault-free, verified"
    done
done

# Deterministic distributed kill-soak: seeded real SIGKILLs mid-run — the
# launcher re-spawns each victim and the survivors re-admit it through the
# epoch-fenced reconnect handshake before §5.3 recovery. Same contract as
# the in-process chaos soak: recover-and-verify (exit 0) or typed
# beyond-tolerance rejection (exit 3); anything else fails the gate.
echo "== distributed kill-soak (real SIGKILL, release)"
KILL_SEEDS=${KILL_SEEDS:-"1 2 3 5"}
for seed in $KILL_SEEDS; do
    for variant in alg2 alg3; do
        set +e
        FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
            --distributed --grid 2x2 --n 64 --nb 8 --variant "$variant" \
            --chaos "$seed:1" --verify >/dev/null
        rc=$?
        set -e
        case $rc in
            0) echo "  seed $seed $variant: killed, re-spawned, verified" ;;
            3) echo "  seed $seed $variant: beyond tolerance, typed rejection" ;;
            *) echo "  seed $seed $variant: FAILED (exit $rc)"; exit 1 ;;
        esac
    done
done

echo "CI OK"
