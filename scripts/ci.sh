#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, the kernel fuzz
# loop, the bench compile gate, a perf smoke with hard floors, and the
# chaos soak. Runs entirely offline — the workspace (benches included) has
# zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The full suite runs twice: once pinned to the scalar microkernel (the
# pre-SIMD reference semantics) and once on the best detected ISA
# (DESIGN.md §14). A determinism bug that only manifests under one
# contraction class cannot hide behind the other.
echo "== cargo test -q (FT_GEMM_ISA=scalar)"
FT_GEMM_ISA=scalar cargo test -q

echo "== cargo test -q (FT_GEMM_ISA=auto)"
FT_GEMM_ISA=auto cargo test -q

# Kernel-equivalence fuzz loop at a pinned seed: the packed/pre-packed GEMM
# paths against the naive oracle over adversarial fringe shapes, under every
# detected ISA and thread count. FT_REQUIRE_ISAS is computed from the host's
# cpuinfo so a build/detection regression that silently exercises only the
# scalar path is a hard failure, not a quiet skip. The seed is fixed so a CI
# failure reproduces exactly; bump FT_FUZZ_ROUNDS locally to sweep wider.
echo "== kernel fuzz (pinned seed, cross-ISA battery)"
require_isas="scalar"
if [ -r /proc/cpuinfo ]; then
    if grep -qm1 avx2 /proc/cpuinfo && grep -qm1 fma /proc/cpuinfo; then
        require_isas="$require_isas,avx2"
    fi
    if grep -qm1 avx512f /proc/cpuinfo && grep -qm1 fma /proc/cpuinfo; then
        require_isas="$require_isas,avx512"
    fi
fi
echo "  requiring ISAs: $require_isas"
FT_REQUIRE_ISAS=$require_isas FT_FUZZ_SEED=20130926 FT_FUZZ_ROUNDS=600 \
    cargo test -q -p ft-dense --test kernel_fuzz

echo "== cargo bench --no-run (compile gate)"
cargo bench --no-run -q

# Perf smoke: regenerates BENCH_kernels.json and fails if the packed kernel
# is slower than the naive triple loop at 256×256 or below 3× naive at
# 512×512 (the gates live inside the bench binary).
echo "== kernels perf smoke"
FT_KERNELS_SMOKE=1 cargo bench -q --bench kernels

# Deterministic chaos soak: seeded kills at arbitrary message-op boundaries
# through the release CLI, for BOTH solvers on the shared framework. A run
# must either recover and pass verification (exit 0) or reject a
# beyond-tolerance victim set with the typed error (exit 3) — any panic or
# other exit code fails the gate. Same seeds, same outcomes, every run.
# The per-solver run counters make a silently skipped battery a hard fail.
echo "== chaos soak (release, both solvers)"
cargo build --release -q
CHAOS_SEEDS=${CHAOS_SEEDS:-"1 2 3 5 8 13 21 34"}
chaos_hessenberg_runs=0
chaos_qr_runs=0
for solver in hessenberg qr; do
    for seed in $CHAOS_SEEDS; do
        for variant in alg2 alg3; do
            set +e
            ./target/release/abft-hessenberg \
                --n 96 --nb 8 --grid 2x3 --solver "$solver" --variant "$variant" \
                --chaos "$seed:3" --verify >/dev/null
            rc=$?
            set -e
            case $rc in
                0) echo "  $solver seed $seed $variant: recovered, verified" ;;
                3) echo "  $solver seed $seed $variant: beyond tolerance, typed rejection" ;;
                *) echo "  $solver seed $seed $variant: FAILED (exit $rc)"; exit 1 ;;
            esac
            eval "chaos_${solver}_runs=\$((chaos_${solver}_runs + 1))"
        done
    done
done
if [ "$chaos_hessenberg_runs" -eq 0 ] || [ "$chaos_qr_runs" -eq 0 ]; then
    echo "chaos soak: a solver battery was skipped (hessenberg=$chaos_hessenberg_runs qr=$chaos_qr_runs)"
    exit 1
fi

# Threaded chaos leg: one seed, both solvers, with the in-rank GEMM worker
# pool engaged (FT_GEMM_THREADS=4). Recovery replays GEMMs; the DESIGN.md
# §14 contract says the thread count can never change a bit, so the
# recover-or-typed-reject outcomes must match the single-threaded runs of
# the same seed exactly.
echo "== threaded chaos soak (FT_GEMM_THREADS=4, one seed, both solvers)"
for solver in hessenberg qr; do
    for variant in alg2 alg3; do
        set +e
        FT_GEMM_THREADS=4 ./target/release/abft-hessenberg \
            --n 96 --nb 8 --grid 2x3 --solver "$solver" --variant "$variant" \
            --chaos "1:3" --verify >/dev/null
        rc=$?
        set -e
        case $rc in
            0) echo "  $solver $variant threads=4: recovered, verified" ;;
            3) echo "  $solver $variant threads=4: beyond tolerance, typed rejection" ;;
            *) echo "  $solver $variant threads=4: FAILED (exit $rc)"; exit 1 ;;
        esac
    done
done

# Deterministic SDC soak: seeded silent bit flips at message-op boundaries
# with the scrub engine at cadence 1, again for BOTH solvers. A run must
# either correct (or roll back) every detectable flip and pass verification
# (exit 0) or reject uncorrectable corruption with the typed error (exit 3)
# — any panic, silent verification failure (exit 1), or other exit code
# fails the gate; an empty solver battery fails it too.
echo "== sdc soak (release, both solvers)"
SDC_SEEDS=${SDC_SEEDS:-"1 2 3 5 8 13 21 34"}
sdc_hessenberg_runs=0
sdc_qr_runs=0
for solver in hessenberg qr; do
    for seed in $SDC_SEEDS; do
        for variant in alg2 alg3; do
            for flips in 1 2; do
                set +e
                ./target/release/abft-hessenberg \
                    --n 96 --nb 8 --grid 2x4 --solver "$solver" --variant "$variant" \
                    --redundancy dual --sdc "$seed:$flips" --verify >/dev/null
                rc=$?
                set -e
                case $rc in
                    0) echo "  $solver seed $seed $variant x$flips: scrubbed, verified" ;;
                    3) echo "  $solver seed $seed $variant x$flips: uncorrectable, typed rejection" ;;
                    *) echo "  $solver seed $seed $variant x$flips: FAILED (exit $rc)"; exit 1 ;;
                esac
                eval "sdc_${solver}_runs=\$((sdc_${solver}_runs + 1))"
            done
        done
    done
done
if [ "$sdc_hessenberg_runs" -eq 0 ] || [ "$sdc_qr_runs" -eq 0 ]; then
    echo "sdc soak: a solver battery was skipped (hessenberg=$sdc_hessenberg_runs qr=$sdc_qr_runs)"
    exit 1
fi

# Concurrent-k-kill soak: the Coded(f) distance measured from both sides
# (EXPERIMENTS.md "Multi-kill soak methodology"), for BOTH solvers. Every
# k <= f simultaneous same-row failure set must recover and verify
# (exit 0); k = f+1 must produce the typed ExceededCodeDistance rejection
# (exit 3) — anything else, including a verification failure after a
# "successful" recovery, fails the gate. Grid 1x6 keeps Q >= 2f through
# f = 3 with every rank in one process row; N = 96 keeps the r-inf scale
# honest (see the methodology note on tiny-N thresholds).
#
# Victim sets stride by 2 (ranks 0,2,4,1 for k = 1..4): the paper-residual
# gate demands near-eps recovery, and ADJACENT victim sets pick the
# closest-spaced Vandermonde nodes (gap 1/Q), whose recovery accuracy is
# the intrinsic ||A_S^-1||*drift — within the 1e-10 parity acceptance but
# above the stricter r-inf scale (DESIGN.md §13.1). Adjacent sets get
# their own recovery leg below, parity-gated in-process by
# ft_coded_redundancy::coded3_adjacent_victims_parity_at_scale.
echo "== multi-kill soak (Coded(f), k<=f recover / k=f+1 typed, both solvers)"
mk_hessenberg_runs=0
mk_qr_runs=0
for solver in hessenberg qr; do
    for f in 1 2 3; do
        # Stride-2 victim prefixes: k <= f recover, k = f+1 rejects.
        for k in $(seq 1 $((f + 1))); do
            fails=""
            for i in $(seq 0 $((k - 1))); do
                fails="$fails --fail 2:1:$(((2 * i) % 5))"
            done
            if [ "$k" -le "$f" ]; then want=0; label="recovered, verified"; else want=3; label="beyond distance, typed rejection"; fi
            set +e
            # shellcheck disable=SC2086
            ./target/release/abft-hessenberg \
                --n 96 --nb 8 --grid 1x6 --solver "$solver" --redundancy "$f" \
                $fails --verify >/dev/null 2>&1
            rc=$?
            set -e
            if [ "$rc" -ne "$want" ]; then
                echo "  $solver f=$f k=$k: FAILED (exit $rc, want $want)"; exit 1
            fi
            echo "  $solver f=$f k=$k: $label"
            eval "mk_${solver}_runs=\$((mk_${solver}_runs + 1))"
        done
    done
    # Worst-conditioned leg: three ADJACENT victims must still recover and
    # complete (exit 0) through the CLI; the 1e-10 parity bound for this
    # set is asserted by the in-process test named above, because the
    # r-inf gate is stricter than the code's intrinsic accuracy here.
    set +e
    ./target/release/abft-hessenberg \
        --n 96 --nb 8 --grid 1x6 --solver "$solver" --redundancy 3 \
        --fail 2:1:0 --fail 2:1:1 --fail 2:1:2 >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 0 ]; then
        echo "  $solver adjacent k=3: FAILED (exit $rc)"; exit 1
    fi
    echo "  $solver adjacent k=3: recovered (parity gated in-process)"
    eval "mk_${solver}_runs=\$((mk_${solver}_runs + 1))"
    # One two-row leg: f failures in EACH of two process rows of a 2x6
    # grid recover independently (per-row distance, not global).
    set +e
    ./target/release/abft-hessenberg \
        --n 96 --nb 8 --grid 2x6 --solver "$solver" --redundancy 3 \
        --fail 2:1:0 --fail 2:1:2 --fail 2:1:4 --fail 2:1:7 --fail 2:1:9 --fail 2:1:11 \
        --verify >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 0 ]; then
        echo "  $solver 2x6 3+3 two-row: FAILED (exit $rc)"; exit 1
    fi
    echo "  $solver 2x6 3+3 two-row: recovered, verified"
    eval "mk_${solver}_runs=\$((mk_${solver}_runs + 1))"
done
if [ "$mk_hessenberg_runs" -ne 11 ] || [ "$mk_qr_runs" -ne 11 ]; then
    echo "multi-kill soak: legs skipped (hessenberg=$mk_hessenberg_runs qr=$mk_qr_runs, want 11 each)"
    exit 1
fi

# Distributed smoke: the real multi-process TCP transport on localhost —
# one OS process per rank, wired by the launcher's probed ports. Both ABFT
# variants must finish fault-free and pass verification. The shortened
# receive timeout turns any protocol wedge into a typed abort instead of a
# CI hang (the launcher's own 600 s watchdog is the backstop).
echo "== distributed smoke (localhost TCP, 2x2, both solvers)"
for solver in hessenberg qr; do
    for variant in alg2 alg3; do
        FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
            --distributed --grid 2x2 --n 64 --nb 8 --solver "$solver" \
            --variant "$variant" --verify >/dev/null
        echo "  $solver $variant: fault-free, verified"
    done
done

# Deterministic distributed kill-soak: seeded real SIGKILLs mid-run — the
# launcher re-spawns each victim and the survivors re-admit it through the
# epoch-fenced reconnect handshake before §5.3 recovery. Same contract as
# the in-process chaos soak: recover-and-verify (exit 0) or typed
# beyond-tolerance rejection (exit 3); anything else fails the gate.
echo "== distributed kill-soak (real SIGKILL, release)"
KILL_SEEDS=${KILL_SEEDS:-"1 2 3 5"}
for seed in $KILL_SEEDS; do
    for variant in alg2 alg3; do
        set +e
        FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
            --distributed --grid 2x2 --n 64 --nb 8 --variant "$variant" \
            --chaos "$seed:1" --verify >/dev/null
        rc=$?
        set -e
        case $rc in
            0) echo "  seed $seed $variant: killed, re-spawned, verified" ;;
            3) echo "  seed $seed $variant: beyond tolerance, typed rejection" ;;
            *) echo "  seed $seed $variant: FAILED (exit $rc)"; exit 1 ;;
        esac
    done
done

# Seeded network-chaos soak: the wire-hardening contract (DESIGN.md §16)
# through the release CLI. Three fault classes per seed per solver:
#   drop    — frame loss + duplication (go-back-N retransmit, dup suppress)
#   corrupt — bit flips (header+frame CRC rejection, bounded retransmit)
#   part    — a transient one-link partition that heals mid-run (session
#             resume replays the window; suspicion must rescind)
# A chaos run that completes must complete CLEAN: exit 0, verification
# passed, zero §5.3 recoveries (chaos is transport noise, never a rank
# death). The permanent-partition leg must produce the typed Partitioned
# agreement on every surviving rank — exit 3, bounded by the receive
# timeout, never a hang. Any other exit code fails the gate.
echo "== network-chaos soak (seeded drop/corrupt/partition, both solvers)"
NET_CHAOS_SEEDS=${NET_CHAOS_SEEDS:-"1 2 3 5 8 13 21 34"}
nc_hessenberg_runs=0
nc_qr_runs=0
for solver in hessenberg qr; do
    for seed in $NET_CHAOS_SEEDS; do
        for class in drop corrupt part; do
            case $class in
                drop)    chaosspec="$seed:drop=0.05,dup=0.05,reorder=0.05" ;;
                corrupt) chaosspec="$seed:corrupt=0.03" ;;
                part)    chaosspec="$seed:part=1-2@150+500,part=2-1@150+500" ;;
            esac
            set +e
            out=$(FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
                --distributed --grid 2x2 --n 64 --nb 8 --solver "$solver" \
                --net-chaos "$chaosspec" --verify 2>&1)
            rc=$?
            set -e
            if [ "$rc" -ne 0 ]; then
                echo "  $solver seed $seed $class: FAILED (exit $rc)"; echo "$out" | tail -5; exit 1
            fi
            if ! echo "$out" | grep -q "recoveries: 0"; then
                echo "  $solver seed $seed $class: FAILED (chaos triggered a spurious recovery)"; exit 1
            fi
            echo "  $solver seed $seed $class: survived, verified, zero recoveries"
            eval "nc_${solver}_runs=\$((nc_${solver}_runs + 1))"
        done
    done
    # Permanent partition: rank 3 fully cut from the fabric. Agreement must
    # time out as the typed Partitioned error — exit 3 — on a short receive
    # timeout, never a hang (the launcher watchdog is the backstop).
    set +e
    FT_RECV_TIMEOUT_MS=6000 ./target/release/abft-hessenberg \
        --distributed --grid 2x2 --n 32 --nb 8 --solver "$solver" \
        --net-chaos "7:part=3-0@0,part=3-1@0,part=3-2@0,part=0-3@0,part=1-3@0,part=2-3@0" \
        >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 3 ]; then
        echo "  $solver permanent partition: FAILED (exit $rc, want typed 3)"; exit 1
    fi
    echo "  $solver permanent partition: typed rejection on every survivor"
    eval "nc_${solver}_runs=\$((nc_${solver}_runs + 1))"
done
if [ "$nc_hessenberg_runs" -ne 25 ] || [ "$nc_qr_runs" -ne 25 ]; then
    echo "network-chaos soak: legs skipped (hessenberg=$nc_hessenberg_runs qr=$nc_qr_runs, want 25 each)"
    exit 1
fi
# Bitwise determinism spot-check: the hardened transport's reference
# acceptance — a chaos run's eigenvalues must match the fault-free run's
# bit for bit (the distributed test battery sweeps this wider).
clean_eigs=$(FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
    --distributed --grid 2x2 --n 64 --nb 8 --variant alg2 --print-eigs 2>/dev/null | grep '^eig ')
chaos_eigs=$(FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
    --distributed --grid 2x2 --n 64 --nb 8 --variant alg2 --print-eigs \
    --net-chaos "9:drop=0.08,dup=0.1,reorder=0.1,corrupt=0.04" 2>/dev/null | grep '^eig ')
if [ -z "$clean_eigs" ] || [ "$clean_eigs" != "$chaos_eigs" ]; then
    echo "network-chaos soak: chaos run is not bitwise identical to the clean run"; exit 1
fi
echo "  bitwise spot-check: chaos eigenvalues identical to fault-free run"

# Shrink soak: a real SIGKILL with re-spawn disabled (--shrink) must
# complete through survivor-side rank adoption (EXPERIMENTS.md "Shrink
# soak methodology"): exit 0, verification passed, AND the shrink report
# naming the killed rank present in the traffic summary — a run that
# "passes" without the report means the kill never fired or adoption was
# bypassed, and fails the gate. Killing rank 0 is its own leg (the
# FT_SHRINK_CODE marker path). Both solvers; skip counters as above.
echo "== shrink soak (SIGKILL without re-spawn, survivor adoption)"
shrink_hessenberg_runs=0
shrink_qr_runs=0
for solver in hessenberg qr; do
    for victim in 3 0; do
        set +e
        out=$(FT_RECV_TIMEOUT_MS=60000 ./target/release/abft-hessenberg \
            --distributed --shrink --grid 2x2 --n 64 --nb 8 --solver "$solver" \
            --kill-at "$victim@100" --verify 2>&1)
        rc=$?
        set -e
        if [ "$rc" -ne 0 ]; then
            echo "  $solver kill rank $victim: FAILED (exit $rc)"; echo "$out" | tail -5; exit 1
        fi
        if ! echo "$out" | grep -q "shrink (survivor-adopted ranks):"; then
            echo "  $solver kill rank $victim: FAILED (no shrink report in summary)"; exit 1
        fi
        if ! echo "$out" | grep -q "adopted ranks *\[$victim\]"; then
            echo "  $solver kill rank $victim: FAILED (rank $victim not in shrink report)"; exit 1
        fi
        echo "  $solver kill rank $victim: adopted, verified"
        eval "shrink_${solver}_runs=\$((shrink_${solver}_runs + 1))"
    done
done
if [ "$shrink_hessenberg_runs" -ne 2 ] || [ "$shrink_qr_runs" -ne 2 ]; then
    echo "shrink soak: legs skipped (hessenberg=$shrink_hessenberg_runs qr=$shrink_qr_runs, want 2 each)"
    exit 1
fi

# Daemon soak: the persistent multi-tenant serving plane through the real
# CLI verbs — spawn a pool, stream pipelined jobs from two tenants across
# both solvers, drain, and require a clean daemon exit. Exit 0 from each
# submit asserts every job's residual passed the paper threshold; exit 0
# from the daemon asserts the pool drained quiescent (no leaked jobs).
echo "== daemon soak (serve/submit verbs, both solvers, drain)"
SERVE_PORT=34567
./target/release/abft-hessenberg serve --pool 4 --port "$SERVE_PORT" --job-ports 34600 &
SERVE_PID=$!
ready=0
for _ in $(seq 1 100); do
    if ./target/release/abft-hessenberg submit --port "$SERVE_PORT" \
        --n 32 --nb 8 --grid 1x1 >/dev/null 2>&1; then
        ready=1; break
    fi
    sleep 0.1
done
if [ "$ready" -ne 1 ]; then
    echo "daemon soak: pool never came up"; kill -9 "$SERVE_PID" 2>/dev/null || true; exit 1
fi
./target/release/abft-hessenberg submit --port "$SERVE_PORT" \
    --n 64 --nb 8 --grid 1x2 --count 4 --tenant 1 >/dev/null
./target/release/abft-hessenberg submit --port "$SERVE_PORT" \
    --solver qr --n 64 --nb 8 --grid 1x2 --count 2 --tenant 2 >/dev/null
./target/release/abft-hessenberg submit --port "$SERVE_PORT" --shutdown >/dev/null
if ! wait "$SERVE_PID"; then
    echo "daemon soak: daemon did not drain cleanly"; exit 1
fi
echo "  pool of 4: 7 jobs across 2 tenants + both solvers, drained clean"

# Serve throughput smoke: regenerates BENCH_serve.json in smoke mode. The
# hard gates (every job completes, jobs/sec > 0, finite p50/p99, >= 1
# recovery in the kill phase, 0 in the baseline) live inside the bench
# binary; here we additionally pin the artifact schema.
echo "== serve throughput smoke (open-loop, SIGKILL mid-phase)"
FT_SERVE_SMOKE=1 cargo bench -q --bench serve
for key in jobs_per_sec p50_ms p99_ms recoveries baseline one_kill lossy frames_dropped; do
    if ! grep -q "\"$key\"" BENCH_serve.json; then
        echo "BENCH_serve.json missing key: $key"; exit 1
    fi
done

echo "CI OK"
