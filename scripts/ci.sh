#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite of the default
# (dependency-free) workspace. Runs entirely offline — the only external
# dependency (criterion, in crates/bench) lives in its own workspace and is
# not touched here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "CI OK"
