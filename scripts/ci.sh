#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite of the default
# (dependency-free) workspace. Runs entirely offline — the only external
# dependency (criterion, in crates/bench) lives in its own workspace and is
# not touched here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

# Deterministic chaos soak: seeded kills at arbitrary message-op boundaries
# through the release CLI. A run must either recover and pass verification
# (exit 0) or reject a beyond-tolerance victim set with the typed error
# (exit 3) — any panic or other exit code fails the gate. Same seeds, same
# outcomes, every run.
echo "== chaos soak (release)"
cargo build --release -q
CHAOS_SEEDS=${CHAOS_SEEDS:-"1 2 3 5 8 13 21 34"}
for seed in $CHAOS_SEEDS; do
    for variant in alg2 alg3; do
        set +e
        ./target/release/abft-hessenberg \
            --n 96 --nb 8 --grid 2x3 --variant "$variant" \
            --chaos "$seed:3" --verify >/dev/null
        rc=$?
        set -e
        case $rc in
            0) echo "  seed $seed $variant: recovered, verified" ;;
            3) echo "  seed $seed $variant: beyond tolerance, typed rejection" ;;
            *) echo "  seed $seed $variant: FAILED (exit $rc)"; exit 1 ;;
        esac
    done
done

echo "CI OK"
