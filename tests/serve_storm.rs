//! Multi-tenant storm tests for the job daemon: concurrent tenants across
//! both solvers with a genuine SIGKILL mid-job, typed backpressure under
//! quota and queue pressure, and the per-pool heartbeat-knob contract.
//!
//! Each test shells out to the built binary's `serve` verb (which spawns
//! one worker process per pool slot) and drives it through the library
//! [`Client`]. Ports are disjoint per test so the suite can run parallel.

mod serve_util;

use abft_hessenberg::hess::{ft_pdgehrd, ft_pdgeqrf, Encoded, FtSolver, Hessenberg, HouseholderQr, Redundancy, Variant};
use abft_hessenberg::pblas::{pd_hessenberg_residual, pd_qr_residual, Desc, DistMatrix};
use abft_hessenberg::runtime::{run_spmd, FaultScript};
use abft_hessenberg::serve::{Client, Event, JobResult, JobSpec, RejectReason, SolverId};
use serve_util::{field, join_within, spec, Daemon, BIN};
use std::process::Command;
use std::time::Duration;

/// Fault-free in-process reference for a 1×2 job: the factor rank 0 would
/// gather, the Householder scalars, and the verification residual — what
/// an unperturbed tenant's daemon result must match to 1e-10.
fn reference(s: &JobSpec) -> (Vec<f64>, Vec<f64>, f64) {
    let (n, nb) = (s.n, s.nb);
    let m = s.matrix.clone();
    let sol = s.solver;
    let out = run_spmd(1, 2, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Single, |i, j| m[i * n + j]);
        let tau_len = match sol {
            SolverId::Hessenberg => Hessenberg.tau_len(n),
            SolverId::Qr => HouseholderQr.tau_len(n),
        };
        let mut tau = vec![0.0; tau_len.max(1)];
        match sol {
            SolverId::Hessenberg => ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("fault-free"),
            SolverId::Qr => ft_pdgeqrf(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("fault-free"),
        };
        let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| m[i * n + j]);
        let r = match sol {
            SolverId::Hessenberg => pd_hessenberg_residual(&ctx, &a0, &enc.a, n, &tau),
            SolverId::Qr => pd_qr_residual(&ctx, &a0, &enc.a, n, &tau),
        };
        enc.gather_logical_root(&ctx, 700u32).map(|g| {
            let mut flat = Vec::with_capacity(n * n);
            for i in 0..n {
                for j in 0..n {
                    flat.push(g[(i, j)]);
                }
            }
            (flat, tau, r)
        })
    });
    out.into_iter().flatten().next().expect("rank 0 result")
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "result shape mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// The tentpole scenario: four tenants, both solvers, all on concurrent
/// disjoint 2-rank fabrics; one busy worker is SIGKILLed mid-factorization.
/// The victim's job must recover transparently through the ABFT path
/// (recoveries ≥ 1, residual under the paper threshold) while every other
/// tenant's job completes matching its fault-free reference.
#[test]
fn four_tenants_two_solvers_survive_one_sigkill() {
    let d = Daemon::spawn(8, &["--job-ports", "25000"]);
    let port = d.port;
    // Tenant 0's job is the designated victim: big enough that a kill a
    // few hundred ms in lands mid-driver.
    let victim_spec = spec(SolverId::Hessenberg, 640, 16, 2, 41, false);
    let others: Vec<(u32, JobSpec)> = vec![
        (1, spec(SolverId::Qr, 160, 8, 2, 42, false)),
        (2, spec(SolverId::Hessenberg, 160, 8, 2, 43, false)),
        (3, spec(SolverId::Qr, 160, 8, 2, 44, false)),
    ];
    let refs: Vec<(Vec<f64>, Vec<f64>, f64)> = others.iter().map(|(_, s)| reference(s)).collect();

    let vs = victim_spec;
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(port, 0).expect("victim connect");
        c.run(&vs).expect("victim io")
    });
    // The victim job is submitted first and the pool has slots for all
    // four, so its ASSIGN marker identifies its two worker pids.
    let assign = d.wait_marker("tenant=0 ");
    let other_handles: Vec<_> = others
        .iter()
        .map(|(tenant, s)| {
            let (t, s) = (*tenant, s.clone());
            std::thread::spawn(move || {
                let mut c = Client::connect(port, t).expect("tenant connect");
                c.run(&s).expect("tenant io")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let pid = field(&assign, "pids=").split(',').nth(1).expect("two pids").to_string();
    Command::new("kill").args(["-9", &pid]).status().expect("deliver SIGKILL");

    let victim_result: JobResult = join_within(victim, "victim job", &d).expect("victim must complete, not reject");
    assert!(
        victim_result.recoveries >= 1,
        "kill did not land mid-job (recoveries = 0) — victim finished too fast?\n{}",
        d.dump()
    );
    assert!(victim_result.residual < 3.0, "victim residual {}", victim_result.residual);
    d.wait_marker("FT_SERVE_REPLACE job=");

    for (h, ((tenant, _), (rf, rtau, rres))) in other_handles.into_iter().zip(others.iter().zip(&refs)) {
        let got: JobResult = join_within(h, "tenant job", &d).expect("tenant must complete, not reject");
        assert!(got.residual < 3.0, "tenant {tenant} residual {}", got.residual);
        assert!(
            (got.residual - rres).abs() <= 1e-10,
            "tenant {tenant}: residual {} vs in-process reference {rres}",
            got.residual
        );
        assert!(
            max_abs_diff(&got.factor, rf) <= 1e-10,
            "tenant {tenant}: factor deviates from the fault-free reference"
        );
        assert!(max_abs_diff(&got.tau, rtau) <= 1e-10, "tenant {tenant}: tau deviates");
    }
    d.shutdown();
}

/// Backpressure is typed and layered: a tenant at its quota gets
/// `QuotaExceeded` even while the global queue has room; once the bounded
/// queue fills, other tenants get `QueueFull`; every admitted job still
/// finishes.
#[test]
fn quota_and_queue_backpressure_reject_typed() {
    let d = Daemon::spawn(1, &["--tenant-quota", "2", "--queue-depth", "2", "--job-ports", "27100"]);
    let port = d.port;
    let h = std::thread::spawn(move || {
        let mut a = Client::connect(port, 7).expect("tenant A");
        // Big enough (hundreds of ms on one rank) that the head job is
        // still running while both tenants' submissions are admitted —
        // otherwise an early completion drains the queue mid-test.
        let s = spec(SolverId::Hessenberg, 320, 8, 1, 50, false);
        // A: first job dispatches onto the only slot, second queues, third
        // is over tenant 7's quota of 2 (queued + running).
        for _ in 0..3 {
            a.submit(&s).expect("pipelined submit");
        }
        let mut a_accepted = Vec::new();
        let mut a_rejects = Vec::new();
        for _ in 0..3 {
            match a.next_event().expect("admission reply") {
                Event::Accepted { job, .. } => a_accepted.push(job),
                Event::Rejected { reason, .. } => a_rejects.push(reason),
                Event::Completed { .. } => panic!("result before all admission replies"),
            }
        }
        // B: a different tenant is under ITS quota, but the global queue
        // (depth 2: A's queued job + B's first) is full for the second.
        let mut b = Client::connect(port, 8).expect("tenant B");
        b.submit(&s).expect("B submit 1");
        b.submit(&s).expect("B submit 2");
        let mut b_accepted = Vec::new();
        let mut b_rejects = Vec::new();
        for _ in 0..2 {
            match b.next_event().expect("B admission reply") {
                Event::Accepted { job, .. } => b_accepted.push(job),
                Event::Rejected { reason, .. } => b_rejects.push(reason),
                Event::Completed { .. } => panic!("result before admission replies"),
            }
        }
        // Every admitted job still completes under the paper threshold.
        let mut residuals = Vec::new();
        for _ in 0..2 {
            match a.next_event().expect("A result") {
                Event::Completed { result, .. } => residuals.push(result.residual),
                e => panic!("unexpected {e:?}"),
            }
        }
        match b.next_event().expect("B result") {
            Event::Completed { result, .. } => residuals.push(result.residual),
            e => panic!("unexpected {e:?}"),
        }
        (a_accepted, a_rejects, b_accepted, b_rejects, residuals)
    });
    let (a_accepted, a_rejects, b_accepted, b_rejects, residuals) = join_within(h, "backpressure clients", &d);
    assert_eq!(a_accepted.len(), 2, "{}", d.dump());
    assert_eq!(a_rejects, vec![RejectReason::QuotaExceeded]);
    assert_eq!(b_accepted.len(), 1, "{}", d.dump());
    assert_eq!(b_rejects, vec![RejectReason::QueueFull]);
    for r in residuals {
        assert!(r < 3.0, "admitted job residual {r}");
    }
    d.shutdown();
}

/// Heartbeat knobs are per-POOL: the daemon — sole owner of every job
/// fabric's liveness config — validates `FT_HB_*` and dies with a usage
/// error on garbage, while a submit client with the same garbage
/// environment must NOT exit 2 (it never reads those knobs), so daemon
/// and clients can never disagree into a spurious config failure.
#[test]
fn hb_env_is_resolved_per_pool_not_per_client() {
    let out = Command::new(BIN)
        .args(["serve", "--pool", "1", "--port", "0"])
        .env("FT_HB_INTERVAL_MS", "abc")
        .output()
        .expect("run daemon with bad env");
    assert_eq!(
        out.status.code(),
        Some(2),
        "daemon must reject bad FT_HB_*: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let d = Daemon::spawn(1, &["--job-ports", "27200"]);
    let out = Command::new(BIN)
        .args([
            "submit",
            "--port",
            &d.port.to_string(),
            "--n",
            "24",
            "--nb",
            "4",
            "--grid",
            "1x1",
        ])
        .env("FT_HB_INTERVAL_MS", "abc")
        .env("FT_HB_MISS_LIMIT", "-7")
        .output()
        .expect("run submit with bad env");
    assert_eq!(
        out.status.code(),
        Some(0),
        "submit must ignore FT_HB_*: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    d.shutdown();
}
