//! Property tests over randomized problem geometry and failure placement:
//! the invariants that must hold for *every* configuration, not just the
//! hand-picked ones.
//!
//! Formerly proptest-based; rewritten as seeded loops over the internal
//! PRNG ([`ft_dense::rng`]) so the suite runs in the dependency-free
//! default build. Each test draws its cases from a fixed-seed stream, so
//! failures reproduce exactly; on failure the case index is in the panic
//! message.

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::dense::rng::Xoshiro256;
use abft_hessenberg::dense::Matrix;
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_residual, is_hessenberg, orghr};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn panels_of(n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0, 0);
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

fn ft_result(n: usize, nb: usize, p: usize, q: usize, seed: u64, variant: Variant, script: FaultScript) -> Matrix {
    run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        enc.gather_logical(&ctx, 610)
    })
    .into_iter()
    .next()
    .unwrap()
}

/// Any single failure at any point recovers to the fault-free result.
#[test]
fn single_failure_recovers_randomized() {
    let mut rng = Xoshiro256::seed_from_u64(0xF7_0001);
    for case in 0..12 {
        let seed = rng.next_below(1000);
        let nblocks = rng.range_usize(5, 9);
        let nb = rng.range_usize(2, 4);
        let (p, q) = [(2, 2), (2, 3), (3, 2)][rng.range_usize(0, 3)];
        let phase = Phase::ALL[rng.range_usize(0, 4)];
        let n = nblocks * nb;
        let variant = if rng.next_below(2) == 1 { Variant::Delayed } else { Variant::NonDelayed };
        let victim = rng.range_usize(0, p * q);
        let panel = rng.range_usize(0, panels_of(n, nb));

        let reference = ft_result(n, nb, p, q, seed, variant, FaultScript::none());
        let recovered = ft_result(n, nb, p, q, seed, variant, FaultScript::one(victim, failpoint(panel, phase)));
        let d = recovered.max_abs_diff(&reference);
        assert!(
            d < 1e-9,
            "case {case}: diff {d} (n={n} nb={nb} {p}x{q} {variant:?} panel={panel} {phase:?} victim={victim})"
        );
    }
}

/// The fault-free FT result is always a valid backward-stable Hessenberg
/// factorization.
#[test]
fn ft_factorization_valid_randomized() {
    let mut rng = Xoshiro256::seed_from_u64(0xF7_0002);
    for case in 0..12 {
        let seed = rng.next_below(1000);
        let nblocks = rng.range_usize(4, 8);
        let nb = rng.range_usize(2, 5);
        let (p, q) = [(2, 2), (2, 3), (3, 2)][rng.range_usize(0, 3)];
        let n = nblocks * nb;
        let a0 = uniform_indexed_matrix(n, n, seed);
        let (ag, tau) = run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
            (enc.gather_logical(&ctx, 612), tau)
        })
        .into_iter()
        .next()
        .unwrap();
        let h = extract_h(&ag);
        assert!(is_hessenberg(&h), "case {case}");
        let qm = orghr(&ag, &tau);
        let r = hessenberg_residual(&a0, &h, &qm);
        assert!(r < 3.0, "case {case}: residual {r}");
    }
}
