//! Property-based tests (proptest) over randomized problem geometry and
//! failure placement: the invariants that must hold for *every*
//! configuration, not just the hand-picked ones.

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::dense::Matrix;
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_residual, is_hessenberg, orghr};
use abft_hessenberg::runtime::{run_spmd, FaultScript};
use proptest::prelude::*;

fn panels_of(n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0, 0);
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

fn ft_result(n: usize, nb: usize, p: usize, q: usize, seed: u64, variant: Variant, script: FaultScript) -> Matrix {
    run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau);
        enc.gather_logical(&ctx, 610)
    })
    .into_iter()
    .next()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any single failure at any point recovers to the fault-free result.
    #[test]
    fn prop_single_failure_recovers(
        seed in 0u64..1000,
        nblocks in 5usize..9,
        nb in 2usize..4,
        grid_idx in 0usize..3,
        phase_idx in 0usize..4,
        victim_seed in 0usize..100,
        panel_seed in 0usize..100,
        delayed in proptest::bool::ANY,
    ) {
        let (p, q) = [(2, 2), (2, 3), (3, 2)][grid_idx];
        let n = nblocks * nb;
        let variant = if delayed { Variant::Delayed } else { Variant::NonDelayed };
        let phase = Phase::ALL[phase_idx];
        let victim = victim_seed % (p * q);
        let panel = panel_seed % panels_of(n, nb);

        let reference = ft_result(n, nb, p, q, seed, variant, FaultScript::none());
        let recovered = ft_result(n, nb, p, q, seed, variant,
            FaultScript::one(victim, failpoint(panel, phase)));
        let d = recovered.max_abs_diff(&reference);
        prop_assert!(d < 1e-9, "diff {d} (n={n} nb={nb} {p}x{q} {variant:?} panel={panel} {phase:?} victim={victim})");
    }

    /// The fault-free FT result is always a valid backward-stable
    /// Hessenberg factorization.
    #[test]
    fn prop_ft_factorization_valid(
        seed in 0u64..1000,
        nblocks in 4usize..8,
        nb in 2usize..5,
        grid_idx in 0usize..3,
    ) {
        let (p, q) = [(2, 2), (2, 3), (3, 2)][grid_idx];
        let n = nblocks * nb;
        let a0 = uniform_indexed_matrix(n, n, seed);
        let (ag, tau) = run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau);
            (enc.gather_logical(&ctx, 612), tau)
        })
        .into_iter()
        .next()
        .unwrap();
        let h = extract_h(&ag);
        prop_assert!(is_hessenberg(&h));
        let qm = orghr(&ag, &tau);
        let r = hessenberg_residual(&a0, &h, &qm);
        prop_assert!(r < 3.0, "residual {r}");
    }
}
