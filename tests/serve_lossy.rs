//! Lossy-network contract for the job daemon: SUBMIT frames vanish with
//! high probability, yet every job completes exactly once, bitwise equal
//! to a clean client's run of the same spec. The resilient [`Client::run`]
//! loop masks the loss with idempotent resubmits; the daemon's
//! `(tenant, client_id, seq)` dedup index makes a replay of an
//! already-admitted submission a no-op with a replayed reply instead of a
//! second execution.

mod serve_util;

use abft_hessenberg::serve::{Client, SolverId};
use serve_util::{join_within, spec, Daemon};
use std::time::Duration;

/// Heavy seeded SUBMIT loss on one client; a clean client runs the same
/// specs as the reference. Every lossy job must complete exactly once and
/// match the clean result bitwise — determinism is solver-side, so any
/// divergence means the daemon ran a duplicate or mangled a spec.
#[test]
fn heavy_submit_loss_completes_every_job_exactly_once() {
    let d = Daemon::spawn(2, &["--job-ports", "32000"]);
    let port = d.port;

    let h = std::thread::spawn(move || {
        let mut clean = Client::connect(port, 7).expect("clean client");
        let mut lossy = Client::connect(port, 7).expect("lossy client");
        lossy.set_lossy(42, 0.45);
        let mut out = Vec::new();
        for (i, solver) in [SolverId::Hessenberg, SolverId::Qr, SolverId::Hessenberg].iter().enumerate() {
            let s = spec(*solver, 24, 4, 2, 1000 + i as u64, false);
            let want = clean.run(&s).expect("clean io").expect("clean accepted");
            let got = lossy.run(&s).expect("lossy io").expect("lossy accepted");
            out.push((want, got));
        }
        (out, lossy.frames_dropped(), lossy.outstanding())
    });
    let (results, dropped, outstanding) = join_within(h, "lossy job battery", &d);

    assert!(dropped > 0, "the loss injector never fired — drop_p too low for this seed");
    assert_eq!(outstanding, 0, "every submission must reach a terminal reply");
    for (i, (want, got)) in results.iter().enumerate() {
        assert_eq!(want.n, got.n, "job {i}: dimension");
        assert_eq!(want.factor, got.factor, "job {i}: factor must be bitwise identical under loss");
        assert_eq!(want.tau, got.tau, "job {i}: tau must be bitwise identical under loss");
        assert_eq!(want.recoveries, 0, "job {i}: clean run saw a recovery");
        assert_eq!(got.recoveries, 0, "job {i}: frame loss must not masquerade as a solver fault");
    }
    d.shutdown();
}

/// A replayed submission for a job that is already running must hit the
/// dedup index — one execution, `FT_SERVE_DEDUP state=running` marker,
/// and still exactly one terminal result on the replaying connection.
#[test]
fn replayed_running_submission_is_deduped_not_rerun() {
    let d = Daemon::spawn(2, &["--job-ports", "33000"]);
    let port = d.port;

    let h = std::thread::spawn(move || {
        let mut c = Client::connect(port, 9).expect("client");
        let s = spec(SolverId::Hessenberg, 32, 8, 2, 77, false);
        let seq = c.submit(&s).expect("submit");
        // Wait for the ACCEPT so the job is genuinely admitted...
        loop {
            match c.next_event_timeout(Duration::from_secs(30)).expect("event") {
                Some(abft_hessenberg::serve::Event::Accepted { seq: s2, .. }) if s2 == seq => break,
                Some(_) => continue,
                None => panic!("no ACCEPT within 30s"),
            }
        }
        // ...then replay it on a fresh connection, as a crash-recovered
        // client would. The daemon must recognize the idempotency key.
        c.recover().expect("recover");
        loop {
            match c.next_event_timeout(Duration::from_secs(60)).expect("event") {
                Some(abft_hessenberg::serve::Event::Completed { .. }) => break,
                Some(_) => continue,
                None => panic!("no result within 60s"),
            }
        }
        c.outstanding()
    });
    let outstanding = join_within(h, "dedup replay", &d);
    assert_eq!(outstanding, 0);
    d.wait_marker("FT_SERVE_DEDUP");
    let markers = d.dump();
    assert!(
        markers.contains("state=running") || markers.contains("state=finished"),
        "dedup marker must carry the job state:\n{markers}"
    );
    d.shutdown();
}
