//! Whole-pool crash and restart: the `FtCheckpoint` round trip through the
//! daemon. A checkpointing job is interrupted by SIGKILLing the ENTIRE
//! pool — daemon and every worker, the scenario in-fabric replacement
//! cannot cover — then a fresh daemon over the same `--state-dir` must
//! re-admit the job under its original id, resume from the newest complete
//! checkpoint set, and persist a result **bitwise identical** to an
//! uninterrupted run (the resumable driver's determinism contract).

mod serve_util;

use abft_hessenberg::serve::{load_result, Client, SolverId};
use serve_util::{field, join_within, spec, Daemon};
use std::time::{Duration, Instant};

#[test]
fn pool_restart_resumes_bitwise_identical() {
    // Uninterrupted reference through a daemon of its own. The checkpoint
    // sink is active here too (same spec), so both runs take the exact
    // same code path — only the kill differs.
    let job_spec = spec(SolverId::Hessenberg, 640, 16, 2, 77, true);
    let reference = {
        let d = Daemon::spawn(2, &["--job-ports", "29000"]);
        let port = d.port;
        let s = job_spec.clone();
        let h = std::thread::spawn(move || {
            let mut c = Client::connect(port, 0).expect("reference connect");
            c.run(&s).expect("reference io")
        });
        let r = join_within(h, "reference job", &d).expect("reference completes");
        d.shutdown();
        r
    };

    let state = std::env::temp_dir().join(format!("ft-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let state_str = state.to_str().expect("utf-8 temp path").to_string();

    // Victim run: same spec, persistent state dir. Kill the whole pool as
    // soon as the first complete checkpoint set hits disk — the job is
    // then mid-factorization with most panels still ahead of it.
    let mut d = Daemon::spawn(2, &["--job-ports", "30000", "--state-dir", &state_str]);
    let port = d.port;
    let s = job_spec.clone();
    // This client's connection dies with the daemon; the thread just
    // reports the error and is joined for hygiene.
    let h = std::thread::spawn(move || {
        let mut c = Client::connect(port, 0).expect("victim connect");
        c.run(&s)
    });
    let ckpt_path = state.join("job-1.ckpt");
    let deadline = Instant::now() + serve_util::WALL_LIMIT;
    while !ckpt_path.exists() {
        assert!(Instant::now() < deadline, "no checkpoint ever persisted:\n{}", d.dump());
        std::thread::sleep(Duration::from_millis(5));
    }
    d.massacre();
    assert!(
        join_within(h, "victim client", &d).is_err(),
        "client survived a whole-pool SIGKILL — the kill landed too late"
    );
    assert!(state.join("job-1.spec").exists(), "spec must survive the crash");

    // Restart over the same state dir: the job is re-admitted under its
    // original id with no client attached, resumes from the persisted
    // panel, and the orphan result lands on disk.
    let d2 = Daemon::spawn(2, &["--job-ports", "31000", "--state-dir", &state_str]);
    let resume = d2.wait_marker("FT_SERVE_RESUME job=1 ");
    let panel: usize = field(&resume, "panel=").parse().expect("resume panel");
    assert!(panel >= 1, "resume must start from a real checkpoint, got panel {panel}");
    d2.wait_marker("FT_SERVE_RESULT job=1 status=ok");
    let result_path = state.join("result-1.bin");
    let deadline = Instant::now() + serve_util::WALL_LIMIT;
    while !result_path.exists() {
        assert!(Instant::now() < deadline, "orphan result never persisted:\n{}", d2.dump());
        std::thread::sleep(Duration::from_millis(5));
    }
    let resumed = load_result(&result_path).expect("parse persisted result");
    // Spec and checkpoint are consumed by the finished job; only the
    // orphan result remains.
    assert!(!state.join("job-1.spec").exists(), "finished job must clean its spec");
    assert!(!ckpt_path.exists(), "finished job must clean its checkpoint");
    d2.shutdown();

    // The determinism contract: resuming from the checkpoint reproduces
    // the uninterrupted factorization EXACTLY — no drift, not even in the
    // last bit — so a restarted service is indistinguishable to tenants.
    assert_eq!(resumed.n, reference.n);
    assert!(
        resumed
            .factor
            .iter()
            .zip(&reference.factor)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "resumed factor is not bitwise identical to the uninterrupted run"
    );
    assert!(
        resumed.tau.iter().zip(&reference.tau).all(|(a, b)| a.to_bits() == b.to_bits()),
        "resumed tau is not bitwise identical to the uninterrupted run"
    );
    assert_eq!(resumed.tau.len(), reference.tau.len());
    assert_eq!(
        resumed.residual.to_bits(),
        reference.residual.to_bits(),
        "resumed residual {} vs reference {}",
        resumed.residual,
        reference.residual
    );

    let _ = std::fs::remove_dir_all(&state);
}
