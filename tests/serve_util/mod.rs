//! Shared harness for the daemon integration tests: spawn the `serve`
//! verb with its stdout markers captured live, wait on markers, and tear
//! the whole pool down (gracefully or by SIGKILL massacre).
#![allow(dead_code)]

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{Redundancy, Variant};
use abft_hessenberg::serve::{Client, JobSpec, SolverId};
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub const BIN: &str = env!("CARGO_BIN_EXE_abft-hessenberg");

/// Wall-clock ceiling per blocking phase. Hitting it means a wedge — the
/// bug class the transport's typed timeouts and the daemon's retry/abort
/// guards exist to prevent.
pub const WALL_LIMIT: Duration = Duration::from_secs(120);

/// A daemon subprocess with its stdout markers captured live.
pub struct Daemon {
    child: Child,
    pub port: u16,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Daemon {
    /// Spawn `serve` with `args` (port is always ephemeral) and wait for
    /// every worker in the pool to register.
    pub fn spawn(pool: usize, args: &[&str]) -> Daemon {
        let mut child = Command::new(BIN)
            .arg("serve")
            .args(["--pool", &pool.to_string(), "--port", "0"])
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = lines.clone();
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().expect("marker sink").push(line);
            }
        });
        let mut d = Daemon { child, port: 0, lines };
        let listen = d.wait_marker("FT_SERVE_LISTEN ");
        d.port = field(&listen, "port=").parse().expect("listen port");
        for slot in 0..pool {
            d.wait_marker(&format!("FT_SERVE_READY slot={slot}"));
        }
        d
    }

    /// Block until a marker line containing `pat` appears.
    pub fn wait_marker(&self, pat: &str) -> String {
        let deadline = Instant::now() + WALL_LIMIT;
        loop {
            if let Some(l) = self.lines.lock().expect("marker sink").iter().find(|l| l.contains(pat)) {
                return l.clone();
            }
            assert!(Instant::now() < deadline, "daemon never printed '{pat}'; saw:\n{}", self.dump());
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    pub fn dump(&self) -> String {
        self.lines.lock().expect("marker sink").join("\n")
    }

    /// Drain the pool and require a clean exit.
    pub fn shutdown(mut self) {
        Client::shutdown(self.port).expect("shutdown handshake");
        let deadline = Instant::now() + WALL_LIMIT;
        loop {
            if let Some(st) = self.child.try_wait().expect("poll daemon") {
                assert_eq!(st.code(), Some(0), "daemon exit: {st:?}\n{}", self.dump());
                return;
            }
            assert!(Instant::now() < deadline, "daemon never drained:\n{}", self.dump());
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// SIGKILL the entire pool — every worker, then the daemon — the
    /// whole-node-crash scenario the checkpoint persistence exists for.
    pub fn massacre(&mut self) {
        // Workers first (they are the daemon's children, not ours).
        for l in self.lines.lock().expect("marker sink").iter() {
            if l.starts_with("FT_SERVE_WORKER ") {
                let _ = Command::new("kill")
                    .args(["-9", &field(l, "pid=")])
                    .stderr(Stdio::null())
                    .status();
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.massacre();
    }
}

/// Extract `key=<value>` from a marker line.
pub fn field(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(key))
        .unwrap_or_else(|| panic!("no '{key}' in '{line}'"))
        .to_string()
}

/// Join a client thread with a deadline so a wedged daemon fails the test
/// instead of hanging the suite (dropping the [`Daemon`] then reaps the
/// pool, which unblocks the abandoned thread's socket reads).
pub fn join_within<T>(h: JoinHandle<T>, what: &str, d: &Daemon) -> T {
    let deadline = Instant::now() + WALL_LIMIT;
    while !h.is_finished() {
        assert!(Instant::now() < deadline, "{what} exceeded {WALL_LIMIT:?}:\n{}", d.dump());
        std::thread::sleep(Duration::from_millis(20));
    }
    h.join().unwrap_or_else(|_| panic!("{what} panicked"))
}

/// A seeded Algorithm-2, single-redundancy job spec on a 1×q grid.
pub fn spec(solver: SolverId, n: usize, nb: usize, q: usize, seed: u64, ckpt: bool) -> JobSpec {
    JobSpec {
        solver,
        variant: Variant::NonDelayed,
        redundancy: Redundancy::Single,
        n,
        nb,
        p: 1,
        q,
        ckpt,
        matrix: (0..n * n).map(|i| uniform_entry(seed, i / n, i % n)).collect(),
    }
}
