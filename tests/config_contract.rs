//! Configuration-contract battery: every malformed transport knob — CLI
//! flag or `FT_*` environment variable — must die as a *usage error*
//! (exit 2) with a diagnostic naming the offending knob, before any
//! socket work starts and without ever panicking. The launcher dry-runs
//! the resolved config precisely so these failures happen once, in the
//! parent, instead of as four cryptic child crashes.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_abft-hessenberg");

struct Out {
    status: i32,
    stderr: String,
}

/// Run the binary with `args` and extra environment, capturing exit
/// status and stderr. All cases here must fail during argument/config
/// resolution, so no wall-clock guard beyond the harness default is
/// needed — a hang would itself be the bug.
fn run(args: &[&str], envs: &[(&str, &str)]) -> Out {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn binary");
    Out {
        status: out.status.code().unwrap_or(-1),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

const DIST: &[&str] = &["--distributed", "--grid", "2x2", "--n", "32", "--nb", "8"];

/// Assert the exit-2 contract: usage error, diagnostic names the knob,
/// and the process never panicked its way out.
fn assert_usage_error(o: &Out, needle: &str, what: &str) {
    assert_eq!(o.status, 2, "{what}: expected exit 2, got {} — stderr:\n{}", o.status, o.stderr);
    assert!(o.stderr.contains(needle), "{what}: diagnostic should mention '{needle}' — stderr:\n{}", o.stderr);
    assert!(!o.stderr.contains("panicked"), "{what}: config errors must not panic — stderr:\n{}", o.stderr);
}

#[test]
fn zero_heartbeat_interval_env_is_a_usage_error() {
    let o = run(DIST, &[("FT_HB_INTERVAL_MS", "0")]);
    assert_usage_error(&o, "FT_HB_INTERVAL_MS", "zero hb interval");
}

#[test]
fn garbage_heartbeat_interval_env_is_a_usage_error() {
    let o = run(DIST, &[("FT_HB_INTERVAL_MS", "fast")]);
    assert_usage_error(&o, "FT_HB_INTERVAL_MS", "non-numeric hb interval");
}

#[test]
fn zero_grace_beats_env_is_a_usage_error() {
    let o = run(DIST, &[("FT_HB_GRACE_BEATS", "0")]);
    assert_usage_error(&o, "FT_HB_GRACE_BEATS", "zero grace beats");
}

#[test]
fn zero_retransmit_window_env_is_a_usage_error() {
    let o = run(DIST, &[("FT_NET_WINDOW", "0")]);
    assert_usage_error(&o, "FT_NET_WINDOW", "zero window");
}

#[test]
fn inverted_backoff_range_is_a_usage_error() {
    let o = run(DIST, &[("FT_HB_BACKOFF_INIT_MS", "800"), ("FT_HB_BACKOFF_CAP_MS", "100")]);
    assert_usage_error(&o, "backoff", "inverted backoff range");
}

#[test]
fn malformed_chaos_env_is_a_usage_error() {
    for (spec, what) in [
        ("bogus", "chaos spec without seed separator"),
        ("9:", "chaos spec empty after seed"),
        ("9:drop=2.0", "chaos drop probability above 1"),
        ("9:warp=0.5", "chaos unknown fault kind"),
        ("9:part=1-1@0", "chaos self-link partition"),
        ("9:part=0-1@0+0", "chaos zero-duration partition"),
    ] {
        let o = run(DIST, &[("FT_NET_CHAOS", spec)]);
        assert_usage_error(&o, "FT_NET_CHAOS", what);
    }
}

#[test]
fn malformed_chaos_flag_is_a_usage_error() {
    let mut args = DIST.to_vec();
    args.extend_from_slice(&["--net-chaos", "9:drop=minus-one"]);
    let o = run(&args, &[]);
    assert_usage_error(&o, "--net-chaos", "malformed --net-chaos value");
}

#[test]
fn chaos_flag_without_distributed_is_a_usage_error() {
    let o = run(&["--n", "32", "--net-chaos", "9:drop=0.1"], &[]);
    assert_usage_error(&o, "--distributed", "chaos without --distributed");
}

#[test]
fn zero_cli_heartbeat_interval_is_a_usage_error() {
    let mut args = DIST.to_vec();
    args.extend_from_slice(&["--hb-interval-ms", "0"]);
    let o = run(&args, &[]);
    assert_usage_error(&o, "--hb-interval-ms", "zero CLI hb interval");
}

#[test]
fn zero_cli_miss_limit_is_a_usage_error() {
    let mut args = DIST.to_vec();
    args.extend_from_slice(&["--hb-miss-limit", "0"]);
    let o = run(&args, &[]);
    assert_usage_error(&o, "--hb-miss-limit", "zero CLI miss limit");
}

/// The environment overlay must hit the *launcher* before any child is
/// spawned: a bad config produces exactly one diagnostic, not one per
/// rank, and no `FT_RANK_SPAWN` marker ever appears.
#[test]
fn bad_config_dies_in_the_launcher_before_spawning_ranks() {
    let mut cmd = Command::new(BIN);
    cmd.args(DIST).env("FT_NET_WINDOW", "0");
    let out = cmd.output().expect("spawn binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("FT_RANK_SPAWN"),
        "no rank may be spawned under a rejected config — stdout:\n{stdout}"
    );
}
