//! Differential golden tests: the distributed reduction — fault-tolerant
//! (`ft_pdgehrd`, both variants) and plain (`pdgehrd`) — against the
//! sequential shared-memory `gehrd` on the same seeded random matrices.
//!
//! Two obligations per (grid × nb × variant) leg:
//!
//! * **Backward stability**: the distributed factorization's Hessenberg
//!   residual `‖QᵀAQ − H‖/‖A‖` obeys the same bound as the sequential one
//!   (both paths run the identical Householder math, so neither may be
//!   "differently stable");
//! * **Spectrum preservation**: the eigenvalues of the distributed `H`
//!   match the eigenvalues of the sequential `H` to 1e-10 after sorting —
//!   the quantity the whole pipeline exists to compute.
//!
//! The 1×1 grid leg runs the *plain* `pdgehrd` (the FT encoder requires
//! Q ≥ 2 so checksum copies land on distinct process columns — a 1×1 grid
//! has nowhere redundant to put them); 2×2 and 2×3 run both FT variants.

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::dense::Matrix;
use abft_hessenberg::hess::{ft_pdgehrd, Encoded, Variant};
use abft_hessenberg::lapack::{extract_h, gehrd, hessenberg_eigenvalues, hessenberg_residual, is_hessenberg, orghr, Eigenvalue};
use abft_hessenberg::pblas::{pdgehrd, Desc, DistMatrix};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

const N: usize = 32;
const RESIDUAL_BOUND: f64 = 3.0;
const EIG_TOL: f64 = 1e-10;

/// Sequential golden path: shared-memory blocked `gehrd`.
fn sequential_reference(n: usize, nb: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut a = uniform_indexed_matrix(n, n, seed);
    let mut tau = vec![0.0; n - 1];
    gehrd(&mut a, nb, &mut tau);
    (a, tau)
}

/// Eigenvalues sorted lexicographically by (re, im) for set comparison.
fn sorted_eigs(h: &Matrix) -> Vec<Eigenvalue> {
    let mut e = hessenberg_eigenvalues(h).expect("QR iteration converged");
    e.sort_by(|a, b| (a.re, a.im).partial_cmp(&(b.re, b.im)).unwrap());
    e
}

fn max_eig_dist(a: &[Eigenvalue], b: &[Eigenvalue]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| ((x.re - y.re).powi(2) + (x.im - y.im).powi(2)).sqrt())
        .fold(0.0, f64::max)
}

/// Assert the two obligations for a distributed factorization gathered as
/// `(afact, tau)` against the sequential reference.
fn check_against_sequential(label: &str, n: usize, seed: u64, afact: &Matrix, tau: &[f64], seq_h: &Matrix, seq_res: f64) {
    let a0 = uniform_indexed_matrix(n, n, seed);
    let h = extract_h(afact);
    assert!(is_hessenberg(&h), "{label}: H not Hessenberg");
    let q = orghr(afact, tau);
    let res = hessenberg_residual(&a0, &h, &q);
    assert!(
        res < RESIDUAL_BOUND && res < 10.0 * seq_res.max(0.5),
        "{label}: residual {res} vs sequential {seq_res}"
    );
    let d = max_eig_dist(&sorted_eigs(&h), &sorted_eigs(seq_h));
    assert!(d < EIG_TOL, "{label}: eigenvalue drift {d}");
}

#[test]
fn differential_plain_1x1_and_ft_grids() {
    for nb in [4usize, 8] {
        let seed = 4000 + nb as u64;
        let (seq_a, seq_tau) = sequential_reference(N, nb, seed);
        let seq_h = extract_h(&seq_a);
        let seq_res = {
            let a0 = uniform_indexed_matrix(N, N, seed);
            hessenberg_residual(&a0, &seq_h, &orghr(&seq_a, &seq_tau))
        };
        assert!(seq_res < RESIDUAL_BOUND, "sequential reference residual {seq_res}");

        // 1×1 grid: plain pdgehrd (ft_pdgehrd requires Q ≥ 2, see module doc).
        {
            let out = run_spmd(1, 1, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: N, n: N, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; N - 1];
                pdgehrd(&ctx, &mut a, &mut tau);
                (a.gather_all(&ctx, 620), tau)
            });
            let (ag, tau) = out.into_iter().next().unwrap();
            check_against_sequential(&format!("plain 1x1 nb={nb}"), N, seed, &ag, &tau, &seq_h, seq_res);
        }

        // 2×2 and 2×3 grids: the fault-tolerant reduction, both variants.
        for (p, q) in [(2usize, 2usize), (2, 3)] {
            for variant in [Variant::NonDelayed, Variant::Delayed] {
                let out = run_spmd(p, q, FaultScript::none(), move |ctx| {
                    let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
                    let mut tau = vec![0.0; N - 1];
                    ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("fault-free run");
                    (enc.gather_logical(&ctx, 622), tau)
                });
                let (ag, tau) = out.into_iter().next().unwrap();
                check_against_sequential(&format!("ft {p}x{q} nb={nb} {variant:?}"), N, seed, &ag, &tau, &seq_h, seq_res);
            }
        }
    }
}

/// The eigenvalue witness end to end: the spectrum computed through the
/// distributed FT path must match the spectrum of the *original* matrix as
/// computed by the pure sequential pipeline — not just match another
/// reduction of the same math.
#[test]
fn differential_spectrum_vs_original_matrix() {
    let (nb, seed) = (4usize, 77u64);
    let seq = {
        let (a, _) = sequential_reference(N, nb, seed);
        sorted_eigs(&extract_h(&a))
    };
    let out = run_spmd(2, 3, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; N - 1];
        ft_pdgehrd(&ctx, &mut enc, Variant::Delayed, &mut tau).expect("fault-free run");
        enc.gather_logical(&ctx, 624)
    });
    let dist = sorted_eigs(&extract_h(&out.into_iter().next().unwrap()));
    let d = max_eig_dist(&seq, &dist);
    assert!(d < EIG_TOL, "spectrum drift {d}");
}
