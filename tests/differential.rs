//! Differential golden tests: the distributed reduction — fault-tolerant
//! (`ft_pdgehrd`, both variants) and plain (`pdgehrd`) — against the
//! sequential shared-memory `gehrd` on the same seeded random matrices.
//!
//! Two obligations per (grid × nb × variant) leg:
//!
//! * **Backward stability**: the distributed factorization's Hessenberg
//!   residual `‖QᵀAQ − H‖/‖A‖` obeys the same bound as the sequential one
//!   (both paths run the identical Householder math, so neither may be
//!   "differently stable");
//! * **Spectrum preservation**: the eigenvalues of the distributed `H`
//!   match the eigenvalues of the sequential `H` to 1e-10 after sorting —
//!   the quantity the whole pipeline exists to compute.
//!
//! The 1×1 grid leg runs the *plain* `pdgehrd` (the FT encoder requires
//! Q ≥ 2 so checksum copies land on distinct process columns — a 1×1 grid
//! has nowhere redundant to put them); 2×2 and 2×3 run both FT variants.
//!
//! The QR battery mirrors the Hessenberg one for the framework's second
//! solver (`ft_pdgeqrf` vs sequential `geqrf`) with an **eigen-free**
//! oracle: scaled `‖A − QR‖` and `‖QᵀQ − I‖` residuals, plus entrywise
//! agreement of `R` and `tau` with the sequential factorization to 1e-10.
//! And the golden-hash test pins the Hessenberg output **bitwise** to the
//! values captured before the solver-agnostic refactor — the safety net
//! that the `FtSolver` framework changed nothing about the paper's solver.

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::dense::Matrix;
use abft_hessenberg::hess::{ft_pdgehrd, ft_pdgeqrf, Encoded, Variant};
use abft_hessenberg::lapack::{
    extract_h, extract_r, gehrd, geqrf, hessenberg_eigenvalues, hessenberg_residual, is_hessenberg, is_upper_triangular, orghr,
    orgqr, orthogonality_residual, qr_residual, Eigenvalue, RESIDUAL_THRESHOLD,
};
use abft_hessenberg::pblas::{pdgehrd, pdgeqrf, Desc, DistMatrix};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

const N: usize = 32;
const RESIDUAL_BOUND: f64 = 3.0;
const EIG_TOL: f64 = 1e-10;

/// Sequential golden path: shared-memory blocked `gehrd`.
fn sequential_reference(n: usize, nb: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut a = uniform_indexed_matrix(n, n, seed);
    let mut tau = vec![0.0; n - 1];
    gehrd(&mut a, nb, &mut tau);
    (a, tau)
}

/// Eigenvalues sorted lexicographically by (re, im) for set comparison.
fn sorted_eigs(h: &Matrix) -> Vec<Eigenvalue> {
    let mut e = hessenberg_eigenvalues(h).expect("QR iteration converged");
    e.sort_by(|a, b| (a.re, a.im).partial_cmp(&(b.re, b.im)).unwrap());
    e
}

fn max_eig_dist(a: &[Eigenvalue], b: &[Eigenvalue]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| ((x.re - y.re).powi(2) + (x.im - y.im).powi(2)).sqrt())
        .fold(0.0, f64::max)
}

/// Assert the two obligations for a distributed factorization gathered as
/// `(afact, tau)` against the sequential reference.
fn check_against_sequential(label: &str, n: usize, seed: u64, afact: &Matrix, tau: &[f64], seq_h: &Matrix, seq_res: f64) {
    let a0 = uniform_indexed_matrix(n, n, seed);
    let h = extract_h(afact);
    assert!(is_hessenberg(&h), "{label}: H not Hessenberg");
    let q = orghr(afact, tau);
    let res = hessenberg_residual(&a0, &h, &q);
    assert!(
        res < RESIDUAL_BOUND && res < 10.0 * seq_res.max(0.5),
        "{label}: residual {res} vs sequential {seq_res}"
    );
    let d = max_eig_dist(&sorted_eigs(&h), &sorted_eigs(seq_h));
    assert!(d < EIG_TOL, "{label}: eigenvalue drift {d}");
}

#[test]
fn differential_plain_1x1_and_ft_grids() {
    for nb in [4usize, 8] {
        let seed = 4000 + nb as u64;
        let (seq_a, seq_tau) = sequential_reference(N, nb, seed);
        let seq_h = extract_h(&seq_a);
        let seq_res = {
            let a0 = uniform_indexed_matrix(N, N, seed);
            hessenberg_residual(&a0, &seq_h, &orghr(&seq_a, &seq_tau))
        };
        assert!(seq_res < RESIDUAL_BOUND, "sequential reference residual {seq_res}");

        // 1×1 grid: plain pdgehrd (ft_pdgehrd requires Q ≥ 2, see module doc).
        {
            let out = run_spmd(1, 1, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: N, n: N, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; N - 1];
                pdgehrd(&ctx, &mut a, &mut tau);
                (a.gather_all(&ctx, 620), tau)
            });
            let (ag, tau) = out.into_iter().next().unwrap();
            check_against_sequential(&format!("plain 1x1 nb={nb}"), N, seed, &ag, &tau, &seq_h, seq_res);
        }

        // 2×2 and 2×3 grids: the fault-tolerant reduction, both variants.
        for (p, q) in [(2usize, 2usize), (2, 3)] {
            for variant in [Variant::NonDelayed, Variant::Delayed] {
                let out = run_spmd(p, q, FaultScript::none(), move |ctx| {
                    let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
                    let mut tau = vec![0.0; N - 1];
                    ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("fault-free run");
                    (enc.gather_logical(&ctx, 622), tau)
                });
                let (ag, tau) = out.into_iter().next().unwrap();
                check_against_sequential(&format!("ft {p}x{q} nb={nb} {variant:?}"), N, seed, &ag, &tau, &seq_h, seq_res);
            }
        }
    }
}

/// The eigenvalue witness end to end: the spectrum computed through the
/// distributed FT path must match the spectrum of the *original* matrix as
/// computed by the pure sequential pipeline — not just match another
/// reduction of the same math.
#[test]
fn differential_spectrum_vs_original_matrix() {
    let (nb, seed) = (4usize, 77u64);
    let seq = {
        let (a, _) = sequential_reference(N, nb, seed);
        sorted_eigs(&extract_h(&a))
    };
    let out = run_spmd(2, 3, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; N - 1];
        ft_pdgehrd(&ctx, &mut enc, Variant::Delayed, &mut tau).expect("fault-free run");
        enc.gather_logical(&ctx, 624)
    });
    let dist = sorted_eigs(&extract_h(&out.into_iter().next().unwrap()));
    let d = max_eig_dist(&seq, &dist);
    assert!(d < EIG_TOL, "spectrum drift {d}");
}

/// Assert the QR obligations for a distributed factorization gathered as
/// `(afact, tau)`: scaled residual + orthogonality under the shared
/// threshold, and `R`/`tau` parity with the sequential `geqrf` to 1e-10
/// (both paths run the identical Householder column math, so the
/// factorizations agree far below the stability bound).
fn check_qr_against_sequential(label: &str, n: usize, seed: u64, afact: &Matrix, tau: &[f64], seq_a: &Matrix, seq_tau: &[f64]) {
    let a0 = uniform_indexed_matrix(n, n, seed);
    let r = extract_r(afact);
    assert!(is_upper_triangular(&r), "{label}: R not triangular");
    let q = orgqr(afact, tau);
    let res = qr_residual(&a0, &q, &r);
    let orth = orthogonality_residual(&q);
    assert!(res < RESIDUAL_BOUND.min(RESIDUAL_THRESHOLD), "{label}: QR residual {res}");
    assert!(orth < RESIDUAL_BOUND.min(RESIDUAL_THRESHOLD), "{label}: orthogonality {orth}");
    let dr = r.max_abs_diff(&extract_r(seq_a));
    assert!(dr < EIG_TOL, "{label}: |R − R_seq| = {dr}");
    let dt = tau.iter().zip(seq_tau).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(dt < EIG_TOL, "{label}: |tau − tau_seq| = {dt}");
}

#[test]
fn differential_qr_plain_1x1_and_ft_grids() {
    for nb in [4usize, 8] {
        let seed = 4100 + nb as u64;
        let (seq_a, seq_tau) = {
            let mut a = uniform_indexed_matrix(N, N, seed);
            let mut tau = vec![0.0; N];
            geqrf(&mut a, nb, &mut tau);
            (a, tau)
        };
        check_qr_against_sequential(&format!("sequential nb={nb}"), N, seed, &seq_a, &seq_tau, &seq_a, &seq_tau);

        // 1×1 grid: plain pdgeqrf (ft_pdgeqrf requires Q ≥ 2, as for
        // Hessenberg — the checksum copies need distinct process columns).
        {
            let out = run_spmd(1, 1, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: N, n: N, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; N];
                pdgeqrf(&ctx, &mut a, &mut tau);
                (a.gather_all(&ctx, 630), tau)
            });
            let (ag, tau) = out.into_iter().next().unwrap();
            check_qr_against_sequential(&format!("plain qr 1x1 nb={nb}"), N, seed, &ag, &tau, &seq_a, &seq_tau);
        }

        // 2×2 and 2×3 grids: the fault-tolerant QR, both variants.
        for (p, q) in [(2usize, 2usize), (2, 3)] {
            for variant in [Variant::NonDelayed, Variant::Delayed] {
                let out = run_spmd(p, q, FaultScript::none(), move |ctx| {
                    let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
                    let mut tau = vec![0.0; N];
                    ft_pdgeqrf(&ctx, &mut enc, variant, &mut tau).expect("fault-free run");
                    (enc.gather_logical(&ctx, 632), tau)
                });
                let (ag, tau) = out.into_iter().next().unwrap();
                check_qr_against_sequential(&format!("ft qr {p}x{q} nb={nb} {variant:?}"), N, seed, &ag, &tau, &seq_a, &seq_tau);
            }
        }
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a hash of the gathered Hessenberg factorization (matrix bits then
/// `tau` bits) for one (nb, grid, variant) leg under the currently active
/// GEMM ISA.
fn hessenberg_hash(nb: usize, p: usize, q: usize, variant: Variant) -> u64 {
    let seed = 4000 + nb as u64;
    let out = run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, N, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; N - 1];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("fault-free run");
        (enc.gather_logical(&ctx, 622), tau)
    });
    let (ag, tau) = out.into_iter().next().unwrap();
    let mut h = 0xcbf29ce484222325u64;
    for v in ag.as_slice() {
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    for v in &tau {
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Bitwise regression pins for the Hessenberg solver, one golden table per
/// **contraction class** (DESIGN.md §14):
///
/// * the *scalar* class table is the original pre-`FtSolver`-refactor
///   capture — forcing `Isa::Scalar` must still reproduce it bit for bit,
///   proving the SIMD/threading refactor left the portable path untouched;
/// * the *fused* class table pins every vector ISA at once: AVX2, AVX-512
///   and NEON share one per-element FMA op sequence, so each detected
///   fused ISA must produce the identical hash (the accumulation order
///   legitimately differs from scalar only by the fused rounding — these
///   are the re-pinned hashes the satellite task calls for).
///
/// Both variants on each grid must agree (Delayed vs NonDelayed reorder
/// *when* updates run, not the per-element arithmetic). Set
/// `FT_GOLDEN_PRINT=1` to print computed hashes when re-capturing.
#[test]
fn hessenberg_bitwise_parity_per_contraction_class() {
    use abft_hessenberg::dense::level3::{detected_isas, set_isa_override};

    const SCALAR_GOLDEN: [(usize, usize, usize, u64); 4] = [
        (4, 2, 2, 0x0a7fc7501c588c9c),
        (4, 2, 3, 0xa09e7209f64fc337),
        (8, 2, 2, 0x385be914b3bc5298),
        (8, 2, 3, 0xdfda8a23125c9613),
    ];
    // Captured on the CI reference hardware (AVX2/AVX-512; KC=216). NEON
    // hosts must reproduce these same values — fused contraction is one
    // class across vector ISAs.
    const FUSED_GOLDEN: [(usize, usize, usize, u64); 4] = [
        (4, 2, 2, 0x82fc8af679d8667b),
        (4, 2, 3, 0x94dda8c059f27eda),
        (8, 2, 2, 0x96e608dab5c1f43a),
        (8, 2, 3, 0x766585e4c73412b1),
    ];

    let print = std::env::var("FT_GOLDEN_PRINT").is_ok_and(|v| v == "1");
    for &isa in detected_isas() {
        set_isa_override(Some(isa));
        let golden: &[(usize, usize, usize, u64); 4] = if isa.fused() { &FUSED_GOLDEN } else { &SCALAR_GOLDEN };
        for (nb, p, q, want) in golden {
            for variant in [Variant::NonDelayed, Variant::Delayed] {
                let h = hessenberg_hash(*nb, *p, *q, variant);
                if print {
                    println!("isa={} nb={nb} {p}x{q} {variant:?}: 0x{h:016x}", isa.name());
                    continue;
                }
                assert_eq!(h, *want, "isa={} nb={nb} {p}x{q} {variant:?}: hash 0x{h:016x} != golden 0x{want:016x}", isa.name());
            }
        }
    }
    set_isa_override(None);
}
