//! Integration tests for the real multi-process TCP transport: each test
//! shells out to the built binary, which spawns one OS process per rank on
//! localhost. Kills are genuine `SIGKILL`s delivered by the launcher; the
//! victim is re-spawned and re-admitted through the epoch-fenced reconnect
//! handshake, so these tests exercise the same §5.3 recovery path as the
//! in-process suite — over real sockets, with real process death.
//!
//! Every child runs with `FT_RECV_TIMEOUT_MS` shortened (via the launcher's
//! environment) so a protocol wedge fails typed and bounded instead of
//! eating the suite's wall clock.

use abft_hessenberg::dense::gen::uniform_indexed_matrix;
use abft_hessenberg::lapack::eigenvalues;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_abft-hessenberg");

/// Wall-clock ceiling per launcher invocation. Generous: a 2×2 run at
/// n = 64 finishes in well under a second; a kill + re-spawn + recovery adds
/// single-digit seconds. Hitting this means a hang — the very bug class the
/// transport's typed timeouts exist to prevent.
const WALL_LIMIT: Duration = Duration::from_secs(120);

struct RunOutput {
    status: i32,
    stdout: String,
    stderr: String,
}

/// Run the binary with `args`, enforcing [`WALL_LIMIT`]. Ports are left to
/// the launcher's own probing so parallel tests never collide.
fn run(args: &[&str], recv_timeout_ms: u64) -> RunOutput {
    let child = Command::new(BIN)
        .args(args)
        .env("FT_RECV_TIMEOUT_MS", recv_timeout_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn launcher");
    let deadline = Instant::now() + WALL_LIMIT;
    // Reap on a helper thread so the deadline also covers a child that
    // produces no output at all.
    let handle = std::thread::spawn(move || child.wait_with_output());
    loop {
        if handle.is_finished() {
            let out = handle.join().expect("join reaper").expect("collect output");
            return RunOutput {
                status: out.status.code().unwrap_or(-1),
                stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            };
        }
        assert!(Instant::now() < deadline, "launcher exceeded {WALL_LIMIT:?}: {args:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn parse_eigs(stdout: &str) -> Vec<(f64, f64)> {
    let mut ev: Vec<(f64, f64)> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("eig "))
        .map(|l| {
            let mut it = l.split_whitespace();
            let re: f64 = it.next().unwrap().parse().unwrap();
            let im: f64 = it.next().unwrap().parse().unwrap();
            (re, im)
        })
        .collect();
    ev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ev
}

#[test]
fn fault_free_smoke_both_variants() {
    for variant in ["alg2", "alg3"] {
        let out = run(
            &[
                "--distributed",
                "--grid",
                "2x2",
                "--n",
                "32",
                "--nb",
                "4",
                "--variant",
                variant,
                "--verify",
            ],
            30_000,
        );
        assert_eq!(out.status, 0, "{variant}: {}\n{}", out.stdout, out.stderr);
        assert!(out.stdout.contains("verification passed"), "{variant}: {}", out.stdout);
        assert!(out.stdout.contains("recoveries: 0"), "{variant}: {}", out.stdout);
    }
}

/// The acceptance scenario: SIGKILL one rank mid-factorization, let the
/// launcher re-spawn it, and require the recovered run's eigenvalues to
/// match the fault-free run's to 1e-10 — both through the identical
/// distributed pipeline, so the only perturbation is the checksum-solve
/// roundoff of §5.3 recovery.
#[test]
fn sigkill_recovery_matches_fault_free_eigenvalues() {
    let base = [
        "--distributed",
        "--grid",
        "2x2",
        "--n",
        "64",
        "--nb",
        "8",
        "--variant",
        "alg2",
        "--print-eigs",
    ];
    let clean = run(&base, 30_000);
    assert_eq!(clean.status, 0, "{}\n{}", clean.stdout, clean.stderr);
    let mut killed_args = base.to_vec();
    killed_args.extend_from_slice(&["--kill-at", "3@120", "--verify"]);
    let killed = run(&killed_args, 30_000);
    assert_eq!(killed.status, 0, "{}\n{}", killed.stdout, killed.stderr);
    assert!(killed.stdout.contains("recoveries: 1"), "{}", killed.stdout);
    assert!(killed.stdout.contains("verification passed"), "{}", killed.stdout);

    let ev_clean = parse_eigs(&clean.stdout);
    let ev_killed = parse_eigs(&killed.stdout);
    assert_eq!(ev_clean.len(), 64, "fault-free run printed eigenvalues");
    assert_eq!(ev_killed.len(), 64, "recovered run printed eigenvalues");
    for (a, b) in ev_clean.iter().zip(&ev_killed) {
        assert!(
            (a.0 - b.0).abs() < 1e-10 && (a.1 - b.1).abs() < 1e-10,
            "recovered eigenvalue drifted past 1e-10: {a:?} vs {b:?}"
        );
    }

    // Cross-check against the shared-memory gehrd + QR pipeline: different
    // reduction, same spectrum, so only QR-iteration tolerance applies.
    let a0 = uniform_indexed_matrix(64, 64, 2013);
    let mut reference: Vec<(f64, f64)> = eigenvalues(&a0, 8)
        .expect("QR converges")
        .iter()
        .map(|e| (e.re, e.im))
        .collect();
    reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (a, b) in reference.iter().zip(&ev_killed) {
        assert!(
            (a.0 - b.0).abs() < 1e-6 && (a.1 - b.1).abs() < 1e-6,
            "recovered eigenvalue disagrees with shared-memory reference: {a:?} vs {b:?}"
        );
    }
}

/// Satellite: a second SIGKILL landing *inside* the first recovery round.
/// The victim of round 1 is rank 1 at its 3rd recovery-phase message op —
/// recovery rounds are short (a couple dozen ops grid-wide at this size),
/// so the op index must be small for the kill to fire at all.
#[test]
fn second_failure_mid_recovery_over_tcp() {
    let out = run(
        &[
            "--distributed",
            "--grid",
            "2x2",
            "--n",
            "64",
            "--nb",
            "8",
            "--variant",
            "alg2",
            "--kill-at",
            "3@120",
            "--kill-at",
            "1@r1:3",
            "--verify",
        ],
        30_000,
    );
    assert_eq!(out.status, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stdout.contains("recoveries: 2"), "{}", out.stdout);
    assert!(out.stdout.contains("verification passed"), "{}", out.stdout);
}

/// A wedged protocol must fail *typed*, never hang: a lone child rank whose
/// three peers never start exhausts its receive timeout and aborts with a
/// diagnostic naming the timeout — well inside the wall-clock ceiling.
#[test]
fn missing_peers_produce_typed_timeout_not_a_hang() {
    let start = Instant::now();
    let out = run(
        &[
            "--distributed",
            "--rank",
            "0",
            "--grid",
            "2x2",
            "--n",
            "32",
            "--nb",
            "4",
            "--variant",
            "alg2",
            "--port-base",
            "46733",
        ],
        2_000,
    );
    assert_ne!(out.status, 0, "a rank with no peers cannot succeed");
    assert!(out.stderr.contains("timed out"), "expected a typed timeout diagnostic, got:\n{}", out.stderr);
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "typed timeout took {:?} — effectively a hang",
        start.elapsed()
    );
}
