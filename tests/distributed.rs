//! Integration tests for the real multi-process TCP transport: each test
//! shells out to the built binary, which spawns one OS process per rank on
//! localhost. Kills are genuine `SIGKILL`s delivered by the launcher; the
//! victim is re-spawned and re-admitted through the epoch-fenced reconnect
//! handshake, so these tests exercise the same §5.3 recovery path as the
//! in-process suite — over real sockets, with real process death.
//!
//! Every child runs with `FT_RECV_TIMEOUT_MS` shortened (via the launcher's
//! environment) so a protocol wedge fails typed and bounded instead of
//! eating the suite's wall clock.

use abft_hessenberg::dense::gen::uniform_indexed_matrix;
use abft_hessenberg::lapack::eigenvalues;
use std::io::BufRead;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_abft-hessenberg");

/// Wall-clock ceiling per launcher invocation. Generous: a 2×2 run at
/// n = 64 finishes in well under a second; a kill + re-spawn + recovery adds
/// single-digit seconds. Hitting this means a hang — the very bug class the
/// transport's typed timeouts exist to prevent.
const WALL_LIMIT: Duration = Duration::from_secs(120);

struct RunOutput {
    status: i32,
    stdout: String,
    stderr: String,
}

/// Run the binary with `args`, enforcing [`WALL_LIMIT`]. Ports are left to
/// the launcher's own probing so parallel tests never collide.
fn run(args: &[&str], recv_timeout_ms: u64) -> RunOutput {
    let child = Command::new(BIN)
        .args(args)
        .env("FT_RECV_TIMEOUT_MS", recv_timeout_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn launcher");
    let deadline = Instant::now() + WALL_LIMIT;
    // Reap on a helper thread so the deadline also covers a child that
    // produces no output at all.
    let handle = std::thread::spawn(move || child.wait_with_output());
    loop {
        if handle.is_finished() {
            let out = handle.join().expect("join reaper").expect("collect output");
            return RunOutput {
                status: out.status.code().unwrap_or(-1),
                stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            };
        }
        assert!(Instant::now() < deadline, "launcher exceeded {WALL_LIMIT:?}: {args:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Send a signal to `pid` via the system `kill` — std has no raw-signal
/// API, and the target is a grandchild the launcher owns, not ours.
fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill")
        .args([sig, &pid.to_string()])
        .stderr(Stdio::null())
        .status();
}

/// Like [`run`], but streams the launcher's stdout live: when the
/// `FT_RANK_SPAWN` marker for `stall_rank` appears, a helper thread waits
/// `settle` (letting the fabric form), SIGSTOPs that rank's process for
/// `pause`, then SIGCONTs it. A watchdog SIGKILLs the whole launcher at
/// [`WALL_LIMIT`] so a wedged stall can never hang the suite.
fn run_stalled(args: &[&str], recv_timeout_ms: u64, stall_rank: usize, settle: Duration, pause: Duration) -> RunOutput {
    let mut child = Command::new(BIN)
        .args(args)
        .env("FT_RECV_TIMEOUT_MS", recv_timeout_ms.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn launcher");
    let launcher_pid = child.id();
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let done = done.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + WALL_LIMIT;
            while !done.load(Ordering::Relaxed) {
                if Instant::now() >= deadline {
                    signal(launcher_pid, "-KILL");
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    let mut stderr_pipe = child.stderr.take().expect("stderr is piped");
    let stderr_thread = std::thread::spawn(move || {
        let mut buf = String::new();
        use std::io::Read;
        let _ = stderr_pipe.read_to_string(&mut buf);
        buf
    });
    let mut stdout = String::new();
    let mut stalled = false;
    for line in std::io::BufReader::new(child.stdout.take().expect("stdout is piped")).lines() {
        let Ok(line) = line else { break };
        if !stalled {
            if let Some(rest) = line.strip_prefix("FT_RANK_SPAWN ") {
                let field = |k: &str| {
                    rest.split_whitespace()
                        .find_map(|t| t.strip_prefix(k))
                        .and_then(|v| v.parse::<u32>().ok())
                };
                if field("rank=") == Some(stall_rank as u32) {
                    if let Some(pid) = field("pid=") {
                        stalled = true;
                        std::thread::spawn(move || {
                            std::thread::sleep(settle);
                            signal(pid, "-STOP");
                            std::thread::sleep(pause);
                            signal(pid, "-CONT");
                        });
                    }
                }
            }
        }
        stdout.push_str(&line);
        stdout.push('\n');
    }
    let status = child.wait().expect("reap launcher").code().unwrap_or(-1);
    done.store(true, Ordering::Relaxed);
    watchdog.join().expect("watchdog");
    let stderr = stderr_thread.join().expect("stderr reader");
    RunOutput { status, stdout, stderr }
}

fn parse_eigs(stdout: &str) -> Vec<(f64, f64)> {
    let mut ev: Vec<(f64, f64)> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("eig "))
        .map(|l| {
            let mut it = l.split_whitespace();
            let re: f64 = it.next().unwrap().parse().unwrap();
            let im: f64 = it.next().unwrap().parse().unwrap();
            (re, im)
        })
        .collect();
    ev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ev
}

#[test]
fn fault_free_smoke_both_variants() {
    for variant in ["alg2", "alg3"] {
        let out = run(
            &[
                "--distributed",
                "--grid",
                "2x2",
                "--n",
                "32",
                "--nb",
                "4",
                "--variant",
                variant,
                "--verify",
            ],
            30_000,
        );
        assert_eq!(out.status, 0, "{variant}: {}\n{}", out.stdout, out.stderr);
        assert!(out.stdout.contains("verification passed"), "{variant}: {}", out.stdout);
        assert!(out.stdout.contains("recoveries: 0"), "{variant}: {}", out.stdout);
    }
}

/// The acceptance scenario: SIGKILL one rank mid-factorization, let the
/// launcher re-spawn it, and require the recovered run's eigenvalues to
/// match the fault-free run's to 1e-10 — both through the identical
/// distributed pipeline, so the only perturbation is the checksum-solve
/// roundoff of §5.3 recovery.
#[test]
fn sigkill_recovery_matches_fault_free_eigenvalues() {
    let base = [
        "--distributed",
        "--grid",
        "2x2",
        "--n",
        "64",
        "--nb",
        "8",
        "--variant",
        "alg2",
        "--print-eigs",
    ];
    let clean = run(&base, 30_000);
    assert_eq!(clean.status, 0, "{}\n{}", clean.stdout, clean.stderr);
    let mut killed_args = base.to_vec();
    killed_args.extend_from_slice(&["--kill-at", "3@120", "--verify"]);
    let killed = run(&killed_args, 30_000);
    assert_eq!(killed.status, 0, "{}\n{}", killed.stdout, killed.stderr);
    assert!(killed.stdout.contains("recoveries: 1"), "{}", killed.stdout);
    assert!(killed.stdout.contains("verification passed"), "{}", killed.stdout);

    let ev_clean = parse_eigs(&clean.stdout);
    let ev_killed = parse_eigs(&killed.stdout);
    assert_eq!(ev_clean.len(), 64, "fault-free run printed eigenvalues");
    assert_eq!(ev_killed.len(), 64, "recovered run printed eigenvalues");
    for (a, b) in ev_clean.iter().zip(&ev_killed) {
        assert!(
            (a.0 - b.0).abs() < 1e-10 && (a.1 - b.1).abs() < 1e-10,
            "recovered eigenvalue drifted past 1e-10: {a:?} vs {b:?}"
        );
    }

    // Cross-check against the shared-memory gehrd + QR pipeline: different
    // reduction, same spectrum, so only QR-iteration tolerance applies.
    let a0 = uniform_indexed_matrix(64, 64, 2013);
    let mut reference: Vec<(f64, f64)> = eigenvalues(&a0, 8)
        .expect("QR converges")
        .iter()
        .map(|e| (e.re, e.im))
        .collect();
    reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (a, b) in reference.iter().zip(&ev_killed) {
        assert!(
            (a.0 - b.0).abs() < 1e-6 && (a.1 - b.1).abs() < 1e-6,
            "recovered eigenvalue disagrees with shared-memory reference: {a:?} vs {b:?}"
        );
    }
}

/// Satellite: a second SIGKILL landing *inside* the first recovery round.
/// The victim of round 1 is rank 1 at its 3rd recovery-phase message op —
/// recovery rounds are short (a couple dozen ops grid-wide at this size),
/// so the op index must be small for the kill to fire at all.
#[test]
fn second_failure_mid_recovery_over_tcp() {
    let out = run(
        &[
            "--distributed",
            "--grid",
            "2x2",
            "--n",
            "64",
            "--nb",
            "8",
            "--variant",
            "alg2",
            "--kill-at",
            "3@120",
            "--kill-at",
            "1@r1:3",
            "--verify",
        ],
        30_000,
    );
    assert_eq!(out.status, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stdout.contains("recoveries: 2"), "{}", out.stdout);
    assert!(out.stdout.contains("verification passed"), "{}", out.stdout);
}

fn assert_bitwise_eigs(clean: &str, chaotic: &str, what: &str) {
    let a = parse_eigs(clean);
    let b = parse_eigs(chaotic);
    assert!(!a.is_empty(), "{what}: clean run printed no eigenvalues");
    assert_eq!(a.len(), b.len(), "{what}: eigenvalue counts differ");
    for (x, y) in a.iter().zip(&b) {
        assert!(
            x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits(),
            "{what}: eigenvalues are not bitwise identical: {x:?} vs {y:?}"
        );
    }
}

/// Tentpole acceptance: a run under an aggressive (but recoverable) chaos
/// spec must complete with *zero* §5.3 recoveries — every fault is masked
/// inside the transport — and its eigenvalues must be **bitwise** identical
/// to the fault-free run's. Retransmission, duplicate suppression, and
/// session resume may reorder wall-clock events, never data.
#[test]
fn net_chaos_run_is_bitwise_identical_to_clean() {
    let base = [
        "--distributed",
        "--grid",
        "2x2",
        "--n",
        "64",
        "--nb",
        "8",
        "--variant",
        "alg2",
        "--print-eigs",
    ];
    let clean = run(&base, 60_000);
    assert_eq!(clean.status, 0, "{}\n{}", clean.stdout, clean.stderr);
    let mut chaos_args = base.to_vec();
    chaos_args.extend_from_slice(&["--net-chaos", "9:drop=0.08,dup=0.1,reorder=0.1,corrupt=0.04"]);
    let chaos = run(&chaos_args, 60_000);
    assert_eq!(chaos.status, 0, "{}\n{}", chaos.stdout, chaos.stderr);
    assert!(chaos.stdout.contains("recoveries: 0"), "chaos leaked into §5.3 recovery:\n{}", chaos.stdout);
    assert_bitwise_eigs(&clean.stdout, &chaos.stdout, "net-chaos");
}

/// Slow-vs-dead discrimination, end to end: injected delays of 2× the
/// heartbeat interval on every frame may raise suspicion, but must never
/// escalate to a death verdict or a spurious recovery.
#[test]
fn sub_grace_delays_never_trigger_spurious_recovery() {
    let out = run(
        &[
            "--distributed",
            "--grid",
            "2x2",
            "--n",
            "32",
            "--nb",
            "4",
            "--variant",
            "alg2",
            "--net-chaos",
            "13:delay=0.2@200",
            "--verify",
        ],
        60_000,
    );
    assert_eq!(out.status, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stdout.contains("verification passed"), "{}", out.stdout);
    assert!(out.stdout.contains("recoveries: 0"), "a sub-grace delay was misread as a death:\n{}", out.stdout);
}

/// An unhealable partition (one rank black-holed in both directions,
/// forever) must end with the *same typed error and exit code 3* on every
/// rank that can still make progress — never a hang, never a split-brain
/// where some ranks exit 0.
#[test]
fn permanent_partition_exits_typed_on_every_rank() {
    let start = Instant::now();
    let out = run(
        &[
            "--distributed",
            "--grid",
            "2x2",
            "--n",
            "32",
            "--nb",
            "4",
            "--variant",
            "alg2",
            "--net-chaos",
            "3:part=3-0@0,part=3-1@0,part=3-2@0,part=0-3@0,part=1-3@0,part=2-3@0",
        ],
        6_000,
    );
    assert_eq!(out.status, 3, "an unhealable partition must exit 3:\n{}\n{}", out.stdout, out.stderr);
    assert!(
        out.stderr.contains("UNRECOVERABLE") && out.stderr.contains("partition"),
        "expected the typed partition diagnostic, got:\n{}",
        out.stderr
    );
    assert!(
        start.elapsed() < Duration::from_secs(90),
        "partition verdict took {:?} — effectively a hang",
        start.elapsed()
    );
}

/// Stall soak, short arm: a rank SIGSTOPped for well under the death
/// budget (default 30 misses × 100 ms) is *slow*, not dead — the run must
/// complete with zero recoveries and bitwise-identical eigenvalues.
#[test]
fn sigstop_within_grace_resumes_without_recovery() {
    let base = [
        "--distributed",
        "--grid",
        "2x2",
        "--n",
        "64",
        "--nb",
        "8",
        "--variant",
        "alg2",
        "--print-eigs",
    ];
    let clean = run(&base, 60_000);
    assert_eq!(clean.status, 0, "{}\n{}", clean.stdout, clean.stderr);
    let out = run_stalled(&base, 60_000, 3, Duration::from_millis(100), Duration::from_millis(1200));
    assert_eq!(out.status, 0, "{}\n{}", out.stdout, out.stderr);
    assert!(out.stdout.contains("recoveries: 0"), "a sub-grace SIGSTOP was misread as a death:\n{}", out.stdout);
    assert_bitwise_eigs(&clean.stdout, &out.stdout, "sigstop-within-grace");
}

/// Stall soak, long arm: a rank SIGSTOPped past a deliberately small death
/// budget must be declared dead and replaced by survivor adoption
/// (`--shrink`), or — if the run outpaced the stall — resume cleanly.
/// Either way: no hang, exit 0, and eigenvalue parity (bitwise when no
/// recovery ran, 1e-10 through the §5.3 checksum solve otherwise).
#[test]
fn sigstop_past_death_budget_is_replaced_or_resumed() {
    let base = [
        "--distributed",
        "--grid",
        "2x2",
        "--n",
        "64",
        "--nb",
        "8",
        "--variant",
        "alg2",
        "--print-eigs",
    ];
    let clean = run(&base, 60_000);
    assert_eq!(clean.status, 0, "{}\n{}", clean.stdout, clean.stderr);
    let mut args = base.to_vec();
    args.extend_from_slice(&["--shrink", "--hb-interval-ms", "50", "--hb-miss-limit", "20"]);
    let out = run_stalled(&args, 15_000, 3, Duration::from_millis(150), Duration::from_secs(4));
    assert_eq!(out.status, 0, "{}\n{}", out.stdout, out.stderr);
    if out.stdout.contains("recoveries: 0") {
        assert_bitwise_eigs(&clean.stdout, &out.stdout, "sigstop-outpaced");
    } else {
        let a = parse_eigs(&clean.stdout);
        let b = parse_eigs(&out.stdout);
        assert_eq!(a.len(), b.len(), "adopted run lost eigenvalues");
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.0 - y.0).abs() < 1e-10 && (x.1 - y.1).abs() < 1e-10,
                "adopted run's eigenvalue drifted past 1e-10: {x:?} vs {y:?}"
            );
        }
    }
}

/// A wedged protocol must fail *typed*, never hang: a lone child rank whose
/// three peers never start exhausts its receive timeout and aborts with a
/// diagnostic naming the timeout — well inside the wall-clock ceiling.
#[test]
fn missing_peers_produce_typed_timeout_not_a_hang() {
    let start = Instant::now();
    let out = run(
        &[
            "--distributed",
            "--rank",
            "0",
            "--grid",
            "2x2",
            "--n",
            "32",
            "--nb",
            "4",
            "--variant",
            "alg2",
            "--port-base",
            "46733",
        ],
        2_000,
    );
    assert_ne!(out.status, 0, "a rank with no peers cannot succeed");
    assert!(out.stderr.contains("timed out"), "expected a typed timeout diagnostic, got:\n{}", out.stderr);
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "typed timeout took {:?} — effectively a hang",
        start.elapsed()
    );
}
