//! Seeded thread-pool determinism: the same seed must produce **bitwise
//! identical** Hessenberg and QR outputs for `FT_GEMM_THREADS ∈ {1, 2, 4}`
//! (DESIGN.md §14 — the macro-kernel partition decides which lane computes
//! an element, never how, so lane count can never change a bit).
//!
//! The solver legs run each thread count twice (run-to-run stability) and
//! compare the hashes across thread counts (partition invariance). A direct
//! large GEMM leg additionally proves via the pool's dispatch counter that
//! the threaded configurations really did fan work out to workers — without
//! it, a regression that silently kept everything on one lane would make
//! this test vacuous.

use abft_hessenberg::dense::gen::{uniform, uniform_entry};
use abft_hessenberg::dense::level3::{gemm, set_threads_override};
use abft_hessenberg::dense::pool::jobs_dispatched;
use abft_hessenberg::dense::{Matrix, Trans};
use abft_hessenberg::hess::{ft_pdgehrd, ft_pdgeqrf, Encoded, Variant};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

/// The threads override is process-global; the two tests below serialize on
/// this so one test's reset can't race the other's threaded region.
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const N: usize = 48;
const NB: usize = 8;
const SEED: u64 = 20130926;
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn hash_out(a: &Matrix, tau: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in a.as_slice() {
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    for v in tau {
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

fn hessenberg_hash() -> u64 {
    let out = run_spmd(2, 2, FaultScript::none(), |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, N, NB, |i, j| uniform_entry(SEED, i, j));
        let mut tau = vec![0.0; N - 1];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("fault-free run");
        (enc.gather_logical(&ctx, 722), tau)
    });
    let (ag, tau) = out.into_iter().next().unwrap();
    hash_out(&ag, &tau)
}

fn qr_hash() -> u64 {
    let out = run_spmd(2, 2, FaultScript::none(), |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, N, NB, |i, j| uniform_entry(SEED ^ 0x9E37, i, j));
        let mut tau = vec![0.0; N];
        ft_pdgeqrf(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("fault-free run");
        (enc.gather_logical(&ctx, 724), tau)
    });
    let (ag, tau) = out.into_iter().next().unwrap();
    hash_out(&ag, &tau)
}

#[test]
fn solver_outputs_bitwise_stable_across_thread_counts() {
    let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut hashes: Vec<(usize, u64, u64)> = Vec::new();
    for &t in &THREAD_SWEEP {
        set_threads_override(Some(t));
        let (h1, q1) = (hessenberg_hash(), qr_hash());
        let (h2, q2) = (hessenberg_hash(), qr_hash());
        assert_eq!(h1, h2, "Hessenberg not run-to-run stable at threads={t}");
        assert_eq!(q1, q2, "QR not run-to-run stable at threads={t}");
        hashes.push((t, h1, q1));
    }
    set_threads_override(None);
    let (_, h0, q0) = hashes[0];
    for &(t, h, q) in &hashes[1..] {
        assert_eq!(h, h0, "Hessenberg output differs between threads=1 and threads={t}");
        assert_eq!(q, q0, "QR output differs between threads=1 and threads={t}");
    }
}

#[test]
fn large_gemm_bitwise_stable_and_actually_threaded() {
    let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = 512usize;
    let a = uniform(n, n, 31);
    let b = uniform(n, n, 32);
    let run = |t: usize| {
        set_threads_override(Some(t));
        let mut c = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, b.as_slice(), n, 0.0, c.as_mut_slice(), n);
        set_threads_override(None);
        c
    };
    let c1 = run(1);
    let before = jobs_dispatched();
    let c4 = run(4);
    assert!(
        jobs_dispatched() > before,
        "threads=4 on a 512^3 GEMM dispatched no pool jobs — threading silently disabled"
    );
    for (x, y) in c1.as_slice().iter().zip(c4.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "thread count changed GEMM bits");
    }
}
