//! Workspace-level integration tests: the full eigensolver pipeline across
//! all five crates — distributed fault-tolerant reduction (with injected
//! failures) feeding the shared-memory QR eigenvalue iteration, verified
//! against the pure shared-memory path.

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::dense::Matrix;
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{
    eigenvalues, extract_h, hessenberg_eigenvalues, hessenberg_residual, is_hessenberg, orghr, orthogonality_residual,
};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn reduce_distributed(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    script: FaultScript,
) -> (Matrix, Vec<f64>, usize) {
    let out = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        (enc.gather_logical(&ctx, 600), tau, rep.recoveries)
    });
    out.into_iter().next().unwrap()
}

#[test]
fn eigenvalues_survive_failure() {
    let (n, nb, p, q) = (96, 8, 2, 2);
    let seed = 3;
    let a0 = uniform_indexed_matrix(n, n, seed);

    // Reference spectrum: pure shared-memory path.
    let mut eig_ref = eigenvalues(&a0, nb).unwrap();

    // Distributed FT path with a failure.
    let script = FaultScript::one(2, failpoint(4, Phase::AfterRightUpdate));
    let (ag, _, rec) = reduce_distributed(n, nb, p, q, seed, Variant::NonDelayed, script);
    assert_eq!(rec, 1);
    let mut eig_ft = hessenberg_eigenvalues(&extract_h(&ag)).unwrap();

    // Spectra match as multisets (sort by (re, im)).
    let key = |e: &abft_hessenberg::lapack::Eigenvalue| (e.re, e.im);
    eig_ref.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
    eig_ft.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
    for (a, b) in eig_ref.iter().zip(&eig_ft) {
        assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6, "eigenvalue mismatch: {a:?} vs {b:?}");
    }
}

#[test]
fn factorization_quality_after_failure_all_variants() {
    let (n, nb, p, q) = (64, 8, 2, 3);
    let seed = 9;
    let a0 = uniform_indexed_matrix(n, n, seed);
    for variant in [Variant::NonDelayed, Variant::Delayed] {
        let script = FaultScript::one(4, failpoint(3, Phase::AfterLeftUpdate));
        let (ag, tau, rec) = reduce_distributed(n, nb, p, q, seed, variant, script);
        assert_eq!(rec, 1);
        let h = extract_h(&ag);
        assert!(is_hessenberg(&h));
        let qm = orghr(&ag, &tau);
        assert!(orthogonality_residual(&qm) < 10.0);
        let r = hessenberg_residual(&a0, &h, &qm);
        assert!(r < 3.0, "{variant:?}: residual {r}");
    }
}

#[test]
fn table1_property_residual_parity() {
    // The Table 1 claim as a property: with-failure residual within one
    // order of magnitude of the fault-free residual, both under r_t = 3.
    let (n, nb, p, q) = (80, 8, 2, 2);
    let seed = 21;
    let a0 = uniform_indexed_matrix(n, n, seed);

    let (ag_ok, tau_ok, _) = reduce_distributed(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none());
    let (ag_ft, tau_ft, rec) =
        reduce_distributed(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::one(1, failpoint(5, Phase::AfterPanel)));
    assert_eq!(rec, 1);

    let r_ok = hessenberg_residual(&a0, &extract_h(&ag_ok), &orghr(&ag_ok, &tau_ok));
    let r_ft = hessenberg_residual(&a0, &extract_h(&ag_ft), &orghr(&ag_ft, &tau_ft));
    assert!(r_ok < 3.0 && r_ft < 3.0, "r_ok={r_ok} r_ft={r_ft}");
    assert!(r_ft < 10.0 * r_ok.max(0.01), "recovery lost accuracy: {r_ft} vs {r_ok}");
}

#[test]
fn shared_and_distributed_agree_without_faults() {
    // Cross-check the whole stack: gehrd (shared) vs ft_pdgehrd (distributed,
    // FT machinery on, no failures) produce the same H.
    let (n, nb, p, q) = (48, 4, 3, 2);
    let seed = 14;
    let a0 = uniform_indexed_matrix(n, n, seed);
    let mut aref = a0.clone();
    let mut tau_ref = vec![0.0; n - 1];
    abft_hessenberg::lapack::gehrd(&mut aref, nb, &mut tau_ref);

    let (ag, _, _) = reduce_distributed(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none());
    let h_ref = extract_h(&aref);
    let h = extract_h(&ag);
    let d = h.max_abs_diff(&h_ref);
    assert!(d < 1e-10, "shared vs distributed H: {d}");
}

#[test]
fn distributed_verification_after_failure() {
    // The fully distributed residual pipeline (pd_orghr + SUMMA pdgemm)
    // verifies a fault-recovered reduction without gathering anything.
    use abft_hessenberg::pblas::{pd_hessenberg_residual, Desc, DistMatrix};
    let (n, nb, p, q) = (64, 8, 2, 2);
    let seed = 77;
    let residuals = run_spmd(p, q, FaultScript::one(3, failpoint(2, Phase::AfterRightUpdate)), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
        assert_eq!(rep.recoveries, 1);
        let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        pd_hessenberg_residual(&ctx, &a0, &enc.a, n, &tau)
    });
    // Replicated result, below the paper's threshold.
    for r in &residuals {
        assert_eq!(*r, residuals[0], "residual not replicated");
        assert!(*r < 3.0, "distributed residual {r}");
    }
}
