//! `abft-hessenberg` — command-line driver for the solver-agnostic ABFT
//! framework: fault-tolerant Hessenberg reduction or Householder QR.
//!
//! ```text
//! abft-hessenberg [OPTIONS]
//!
//!   --n <N>              matrix dimension (default 512)
//!   --nb <NB>            blocking factor / panel width (default 16)
//!   --grid <PxQ>         process grid (default 2x2)
//!   --solver <S>         hessenberg | qr (default hessenberg); qr is the
//!                        left-only second solver on the same framework
//!                        (no --variant cr, no --print-eigs)
//!   --variant <V>        plain | alg2 | alg3 | cr (default alg2)
//!   --redundancy <R>     single | dual | <f> (default single; dual needs
//!                        Q ≥ 4, numeric f tolerates f same-row failures
//!                        and needs Q ≥ 2f)
//!   --fail <P:PH:R>      scripted failure: panel : phase(0-3) : rank
//!                        (repeatable)
//!   --mtti <PANELS>      Poisson failures with this MTTI (in panels)
//!   --chaos <SEED[:K]>   chaos mode: K seeded kills (default 2) at
//!                        arbitrary message-op boundaries (alg2/alg3 only;
//!                        beyond-tolerance schedules exit with code 3)
//!   --sdc <SEED[:K]>     silent-corruption mode: K seeded bit flips
//!                        (default 1) in local blocks at message-op
//!                        boundaries (alg2/alg3 only); implies
//!                        --scrub-every 1 unless given; uncorrectable
//!                        corruption exits with code 3
//!   --scrub-every <K>    scrub pass every K panel iterations and at every
//!                        scope boundary (alg2/alg3 only; default: off, or
//!                        1 under --sdc)
//!   --cr-interval <K>    C/R checkpoint interval in panels (default 8)
//!   --seed <S>           matrix / trace seed (default 2013)
//!   --verify             compute the distributed residual r∞ afterwards
//!   --print-eigs         rank 0 prints the eigenvalues of H (sorted)
//!   --help               this text
//!
//! Distributed mode (real processes over localhost TCP):
//!
//!   --distributed        launch P·Q child processes of this binary, one
//!                        per rank, wired by TCP (grid from --grid);
//!                        --chaos / --kill-at kills are real SIGKILLs and
//!                        the victim is re-spawned as a replacement
//!   --rank <R>           internal: run as the child process of rank R
//!   --port-base <B>      listen ports B..B+P*Q-1 (default: probed)
//!   --hb-interval-ms <T> heartbeat period (default 100)
//!   --hb-miss-limit <K>  beats of silence before a peer is suspected
//!                        dead (default 30)
//!   --conn-timeout-ms <T> connect/reconnect budget (default 10000)
//!   --net-chaos <SEED[:SPEC]>
//!                        deterministic network-fault injection on every
//!                        rank's outbound links. SPEC is comma-separated:
//!                        drop=P, delay=P@MS, dup=P, reorder=P, corrupt=P,
//!                        reset=P, part=A-B@S[+D] (one-way partition of
//!                        ranks A→B from S ms, healing after D ms). The
//!                        hardened transport (CRC frames, go-back-N
//!                        retransmit, session resume) must mask all of it;
//!                        an unhealed partition exits with code 3 and the
//!                        same typed error on every surviving rank
//!
//!   Env knobs (CLI flags win): FT_HB_INTERVAL_MS, FT_HB_MISS_LIMIT,
//!   FT_HB_GRACE_BEATS (beats of reconnect grace before a closed-socket
//!   peer is declared dead, default 4), FT_HB_BACKOFF_INIT_MS,
//!   FT_HB_BACKOFF_CAP_MS (reconnect backoff range, default 10..400),
//!   FT_NET_WINDOW (go-back-N in-flight frame cap, default 1024),
//!   FT_NET_CHAOS (same grammar as --net-chaos), FT_RECV_TIMEOUT_MS.
//!   All validated at startup; inconsistent values exit with code 2.
//!   --kill-at <R@OP>     scripted kill: rank R at its OP-th message op;
//!                        R@rROUND:OP kills inside recovery round ROUND
//!                        (repeatable; distributed mode only)
//!   --shrink             elastic shrink: a chaos-killed rank is NOT
//!                        re-spawned — the lowest-ranked survivor adopts
//!                        the victim's rank as a thread of its own process
//!                        and the run completes on fewer processes;
//!                        adopted ranks / redistributed bytes / stall time
//!                        are reported in the summary (distributed only)
//!
//!   --fail / --mtti / --sdc are not available with --distributed
//!   (scripted fail points and flip injection assume the in-process
//!   world); use --chaos / --kill-at for real process death.
//! ```
//!
//! Examples:
//!
//! ```text
//! abft-hessenberg --n 768 --grid 4x4 --fail 10:2:5 --verify
//! abft-hessenberg --n 768 --grid 2x4 --variant alg3 --mtti 12
//! abft-hessenberg --n 512 --grid 4x4 --variant cr --mtti 10
//! abft-hessenberg --n 512 --grid 2x4 --redundancy dual --sdc 7:2 --verify
//! abft-hessenberg --n 256 --grid 2x2 --distributed --kill-at 3@120 --verify
//! abft-hessenberg --n 512 --grid 2x2 --solver qr --chaos 5:2 --verify
//! ```

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{
    cr_pdgehrd, failpoint, ft_pdgehrd_replacement, ft_pdgehrd_scrubbed, ft_pdgeqrf_replacement, ft_pdgeqrf_scrubbed, Encoded,
    FtSolver, Hessenberg, HouseholderQr, Phase, Redundancy, ScrubPolicy, ScrubReport, Variant,
};
use abft_hessenberg::lapack::hessenberg_eigenvalues;
use abft_hessenberg::pblas::{
    pd_extract_h, pd_gather_traffic, pd_gather_transport, pd_hessenberg_residual, pd_orgqr, pd_orthogonality_residual,
    pd_qr_residual, pdgehrd, pdgeqrf, Desc, DistMatrix,
};
use abft_hessenberg::runtime::{
    poisson_failures, run_distributed, run_spmd_full, ChaosKill, ChaosPoint, ChaosScript, CommError, Ctx, FaultScript,
    NetChaosScript, PeerCounters, PlannedFailure, SdcScript, TcpConfig, TcpTransport, TrafficPhase,
};
use std::io::BufRead;
use std::process::exit;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    Alg2,
    Alg3,
    Cr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SolverKind {
    Hessenberg,
    Qr,
}

impl SolverKind {
    /// The framework-side geometry object for this choice.
    fn ft(self) -> &'static dyn FtSolver {
        match self {
            SolverKind::Hessenberg => &Hessenberg,
            SolverKind::Qr => &HouseholderQr,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SolverKind::Hessenberg => "hessenberg",
            SolverKind::Qr => "qr",
        }
    }
}

#[derive(Debug, Clone)]
struct Opts {
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    solver: SolverKind,
    mode: Mode,
    redundancy: Redundancy,
    failures: Vec<PlannedFailure>,
    chaos: Option<(u64, usize)>,
    sdc: Option<(u64, usize)>,
    scrub_every: Option<usize>,
    mtti: Option<f64>,
    cr_interval: usize,
    seed: u64,
    verify: bool,
    // Distributed (TCP multi-process) mode.
    distributed: bool,
    rank: Option<usize>,
    port_base: Option<u16>,
    hb_interval_ms: Option<u64>,
    hb_miss_limit: Option<u32>,
    conn_timeout_ms: Option<u64>,
    net_chaos: Option<String>,
    kill_at: Vec<ChaosKill>,
    shrink: bool,
    respawn: u32,
    chaos_fired: Vec<usize>,
    print_eigs: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            n: 512,
            nb: 16,
            p: 2,
            q: 2,
            solver: SolverKind::Hessenberg,
            mode: Mode::Alg2,
            redundancy: Redundancy::Single,
            failures: Vec::new(),
            chaos: None,
            sdc: None,
            scrub_every: None,
            mtti: None,
            cr_interval: 8,
            seed: 2013,
            verify: false,
            distributed: false,
            rank: None,
            port_base: None,
            hb_interval_ms: None,
            hb_miss_limit: None,
            conn_timeout_ms: None,
            net_chaos: None,
            kill_at: Vec::new(),
            shrink: false,
            respawn: 0,
            chaos_fired: Vec::new(),
            print_eigs: false,
        }
    }
}

fn usage() -> ! {
    // The module docs are the single source of truth for the help text.
    let doc = include_str!("main.rs");
    for line in doc.lines().take_while(|l| l.starts_with("//!")) {
        println!("{}", line.trim_start_matches("//!").trim_start_matches(' '));
    }
    exit(0)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for usage");
    exit(2)
}

fn parse_args() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--n" => o.n = val("--n").parse().unwrap_or_else(|_| fail("--n: bad integer")),
            "--nb" => o.nb = val("--nb").parse().unwrap_or_else(|_| fail("--nb: bad integer")),
            "--grid" => {
                let v = val("--grid");
                let (ps, qs) = v.split_once(['x', 'X']).unwrap_or_else(|| fail("--grid: use PxQ"));
                o.p = ps.parse().unwrap_or_else(|_| fail("--grid: bad P"));
                o.q = qs.parse().unwrap_or_else(|_| fail("--grid: bad Q"));
            }
            "--solver" => {
                o.solver = match val("--solver").as_str() {
                    "hessenberg" => SolverKind::Hessenberg,
                    "qr" => SolverKind::Qr,
                    other => fail(&format!("--solver: unknown '{other}'")),
                }
            }
            "--variant" => {
                o.mode = match val("--variant").as_str() {
                    "plain" => Mode::Plain,
                    "alg2" => Mode::Alg2,
                    "alg3" => Mode::Alg3,
                    "cr" => Mode::Cr,
                    other => fail(&format!("--variant: unknown '{other}'")),
                }
            }
            "--redundancy" => {
                o.redundancy = match val("--redundancy").as_str() {
                    "single" => Redundancy::Single,
                    "dual" => Redundancy::Dual,
                    other => match other.parse::<usize>() {
                        Ok(f) if f >= 1 => Redundancy::Coded(f),
                        _ => fail(&format!("--redundancy: unknown '{other}' (single | dual | f ≥ 1)")),
                    },
                }
            }
            "--fail" => {
                let v = val("--fail");
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    fail("--fail: use PANEL:PHASE:RANK");
                }
                let panel: usize = parts[0].parse().unwrap_or_else(|_| fail("--fail: bad panel"));
                let ph: usize = parts[1].parse().unwrap_or_else(|_| fail("--fail: bad phase"));
                let rank: usize = parts[2].parse().unwrap_or_else(|_| fail("--fail: bad rank"));
                if ph > 3 {
                    fail("--fail: phase is 0..=3");
                }
                o.failures
                    .push(PlannedFailure { victim: rank, point: failpoint(panel, Phase::ALL[ph]) });
            }
            "--chaos" => {
                let v = val("--chaos");
                let (seed_s, kills_s) = match v.split_once(':') {
                    Some((s, k)) => (s, k),
                    None => (v.as_str(), "2"),
                };
                let seed: u64 = seed_s.parse().unwrap_or_else(|_| fail("--chaos: bad seed"));
                let kills: usize = kills_s.parse().unwrap_or_else(|_| fail("--chaos: bad kill count"));
                o.chaos = Some((seed, kills));
            }
            "--sdc" => {
                let v = val("--sdc");
                let (seed_s, flips_s) = match v.split_once(':') {
                    Some((s, k)) => (s, k),
                    None => (v.as_str(), "1"),
                };
                let seed: u64 = seed_s.parse().unwrap_or_else(|_| fail("--sdc: bad seed"));
                let flips: usize = flips_s.parse().unwrap_or_else(|_| fail("--sdc: bad flip count"));
                o.sdc = Some((seed, flips));
            }
            "--scrub-every" => {
                let k: usize = val("--scrub-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--scrub-every: bad integer"));
                if k == 0 {
                    fail("--scrub-every: must be at least 1");
                }
                o.scrub_every = Some(k);
            }
            "--mtti" => o.mtti = Some(val("--mtti").parse().unwrap_or_else(|_| fail("--mtti: bad number"))),
            "--cr-interval" => {
                o.cr_interval = val("--cr-interval")
                    .parse()
                    .unwrap_or_else(|_| fail("--cr-interval: bad integer"))
            }
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| fail("--seed: bad integer")),
            "--verify" => o.verify = true,
            "--print-eigs" => o.print_eigs = true,
            "--distributed" => o.distributed = true,
            "--rank" => o.rank = Some(val("--rank").parse().unwrap_or_else(|_| fail("--rank: bad integer"))),
            "--port-base" => o.port_base = Some(val("--port-base").parse().unwrap_or_else(|_| fail("--port-base: bad port"))),
            "--hb-interval-ms" => {
                let ms: u64 = val("--hb-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--hb-interval-ms: bad integer"));
                if ms == 0 {
                    fail("--hb-interval-ms: must be at least 1");
                }
                o.hb_interval_ms = Some(ms);
            }
            "--hb-miss-limit" => {
                let k: u32 = val("--hb-miss-limit")
                    .parse()
                    .unwrap_or_else(|_| fail("--hb-miss-limit: bad integer"));
                if k == 0 {
                    fail("--hb-miss-limit: must be at least 1");
                }
                o.hb_miss_limit = Some(k);
            }
            "--conn-timeout-ms" => {
                let ms: u64 = val("--conn-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--conn-timeout-ms: bad integer"));
                if ms == 0 {
                    fail("--conn-timeout-ms: must be at least 1");
                }
                o.conn_timeout_ms = Some(ms);
            }
            "--net-chaos" => {
                let v = val("--net-chaos");
                // Parse eagerly so a malformed script is a usage error (exit
                // 2) before any process is spawned, but keep the raw string:
                // it is forwarded verbatim to every child rank.
                if let Err(e) = NetChaosScript::parse(&v) {
                    fail(&format!("--net-chaos: {e}"));
                }
                o.net_chaos = Some(v);
            }
            "--kill-at" => {
                let v = val("--kill-at");
                let (rank_s, at_s) = v
                    .split_once('@')
                    .unwrap_or_else(|| fail("--kill-at: use RANK@OP or RANK@rROUND:OP"));
                let victim: usize = rank_s.parse().unwrap_or_else(|_| fail("--kill-at: bad rank"));
                let at = match at_s.strip_prefix('r') {
                    Some(rest) => {
                        let (round_s, op_s) = rest
                            .split_once(':')
                            .unwrap_or_else(|| fail("--kill-at: recovery form is RANK@rROUND:OP"));
                        let round: u32 = round_s.parse().unwrap_or_else(|_| fail("--kill-at: bad recovery round"));
                        let op: u64 = op_s.parse().unwrap_or_else(|_| fail("--kill-at: bad op"));
                        if round == 0 {
                            fail("--kill-at: recovery rounds are 1-based");
                        }
                        ChaosPoint::RecoveryOp { round, op }
                    }
                    None => ChaosPoint::Op(at_s.parse().unwrap_or_else(|_| fail("--kill-at: bad op"))),
                };
                o.kill_at.push(ChaosKill { victim, at });
            }
            "--shrink" => o.shrink = true,
            "--respawn" => o.respawn = val("--respawn").parse().unwrap_or_else(|_| fail("--respawn: bad integer")),
            "--chaos-fired" => {
                for part in val("--chaos-fired").split(',').filter(|s| !s.is_empty()) {
                    o.chaos_fired
                        .push(part.parse().unwrap_or_else(|_| fail("--chaos-fired: bad index")));
                }
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    o
}

fn print_scrub_summary(s: &ScrubReport) {
    println!("scrub (grid-wide, aggregated):");
    println!("  {:<22} {:>10}", "scans", s.scans);
    println!("  {:<22} {:>10}", "detections", s.detections);
    println!("  {:<22} {:>10}", "corrections", s.corrections);
    println!("  {:<22} {:>10}", "checksum repairs", s.chk_repairs);
    println!("  {:<22} {:>10}", "area-3 repairs", s.area3_repairs);
    println!("  {:<22} {:>10}", "escalations", s.escalations);
    println!("  {:<22} {:>10}", "rollbacks", s.rollbacks);
    println!("  {:<22} {:>10.4}", "scan seconds (mean)", s.scan_secs);
    println!("  {:<22} {:>10.3e}", "residual mass (frob2)", s.residual_mass);
}

/// Panel iterations this solver runs on an N×N matrix — straight from the
/// framework's geometry contract, so the CLI never re-derives it.
fn panel_count(solver: &dyn FtSolver, n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0, 0);
    while solver.panel_exists(k, n) {
        k += solver.panel_width(k, n, nb);
        c += 1;
    }
    c
}

fn print_transport_summary(stats: &abft_hessenberg::runtime::TransportStats) {
    println!("transport (grid-wide, by peer):");
    println!(
        "  {:>4} {:>9} {:>12} {:>9} {:>12} {:>7} {:>10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "peer",
        "frames_tx",
        "bytes_tx",
        "frames_rx",
        "bytes_rx",
        "retries",
        "reconnects",
        "hb_misses",
        "rexmit",
        "dupsup",
        "resumes",
        "crc_rej",
        "frm_rej",
        "rescinds"
    );
    let row = |label: &str, c: &PeerCounters| {
        println!(
            "  {:>4} {:>9} {:>12} {:>9} {:>12} {:>7} {:>10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
            label,
            c.frames_tx,
            c.bytes_tx,
            c.frames_rx,
            c.bytes_rx,
            c.retries,
            c.reconnects,
            c.hb_misses,
            c.retransmits,
            c.dup_suppressed,
            c.resumes,
            c.crc_rejects,
            c.frame_rejects,
            c.rescinds
        );
    };
    for (r, c) in stats.peers.iter().enumerate() {
        row(&r.to_string(), c);
    }
    row("all", &stats.total());
}

/// Flag combinations that make no sense for the chosen solver, rejected
/// identically in both in-process and distributed modes.
fn sanity_check_solver(o: &Opts) {
    if o.solver == SolverKind::Qr {
        if o.mode == Mode::Cr {
            fail("--variant cr is the Hessenberg checkpoint/restart baseline; not available with --solver qr");
        }
        if o.print_eigs {
            fail("--print-eigs needs the Hessenberg form (QR has no spectrum to extract); not available with --solver qr");
        }
    }
}

/// Reject redundancy/grid combinations up front with a usage error (exit 2)
/// instead of letting the encoder's construction assert fire mid-run.
fn sanity_check_redundancy(o: &Opts) {
    match o.redundancy {
        Redundancy::Single => {}
        Redundancy::Dual => {
            if o.q < 4 {
                fail(&format!("--redundancy dual needs Q >= 4 process columns (got Q = {})", o.q));
            }
        }
        Redundancy::Coded(f) => {
            if o.q < 2 * f {
                fail(&format!(
                    "--redundancy {f} needs Q >= {} process columns for its checksums (got Q = {})",
                    2 * f,
                    o.q
                ));
            }
        }
    }
}

fn sanity_check_distributed(o: &Opts) {
    let world = o.p * o.q;
    if !o.failures.is_empty() || o.mtti.is_some() {
        fail("--fail / --mtti assume the in-process world; use --chaos or --kill-at with --distributed");
    }
    if o.sdc.is_some() {
        fail("--sdc assumes the in-process flip injector; not available with --distributed");
    }
    if o.mode == Mode::Cr {
        fail("--variant cr is not available with --distributed");
    }
    if (o.chaos.is_some() || !o.kill_at.is_empty()) && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--chaos / --kill-at need --variant alg2 or alg3");
    }
    if o.shrink && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--shrink needs --variant alg2 or alg3 (an adopted rank re-enters through ABFT recovery)");
    }
    if let Some(k) = o.kill_at.iter().find(|k| k.victim >= world) {
        fail(&format!("--kill-at: rank {} is outside the {}-rank grid", k.victim, world));
    }
    if let Some(r) = o.rank {
        if !o.distributed {
            fail("--rank is the internal child-mode flag; it needs --distributed");
        }
        if r >= world {
            fail(&format!("--rank {r} is outside the {world}-rank grid"));
        }
        if o.port_base.is_none() {
            fail("--rank needs an explicit --port-base");
        }
    } else if o.respawn > 0 || !o.chaos_fired.is_empty() {
        fail("--respawn / --chaos-fired are internal child-mode flags (need --rank)");
    }
}

/// The chaos schedule a distributed rank evaluates against its op clock:
/// seeded kills (if `--chaos`) plus every explicit `--kill-at`.
fn dist_chaos_script(o: &Opts) -> ChaosScript {
    let op_hi = (panel_count(o.solver.ft(), o.n, o.nb) as u64 * (4 * o.nb as u64 + 20)).max(200);
    let mut kills: Vec<ChaosKill> = match o.chaos {
        Some((cseed, n_kills)) => ChaosScript::seeded(cseed, o.p * o.q, n_kills, 50, op_hi).kills().to_vec(),
        None => Vec::new(),
    };
    kills.extend(o.kill_at.iter().copied());
    ChaosScript::new(kills)
}

/// One rank's computation in distributed mode. Returns the process exit
/// code (only rank 0's is meaningful to the launcher).
fn dist_rank_body(ctx: &Ctx, o: &Opts) -> i32 {
    let Opts { n, nb, seed, verify, redundancy, .. } = o.clone();
    let variant = if o.mode == Mode::Alg3 { Variant::Delayed } else { Variant::NonDelayed };
    let policy = match o.scrub_every {
        Some(k) => ScrubPolicy::every_panels(k),
        None => ScrubPolicy::disabled(),
    };
    let t = Instant::now();
    let mut tau = vec![0.0; o.solver.ft().tau_len(n).max(1)];
    let (mut plain, mut enc) = (None, None);
    let rep = if o.mode == Mode::Plain {
        let mut a = DistMatrix::from_global_fn(ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        match o.solver {
            SolverKind::Hessenberg => pdgehrd(ctx, &mut a, &mut tau),
            SolverKind::Qr => pdgeqrf(ctx, &mut a, &mut tau),
        }
        plain = Some(a);
        None
    } else {
        let mut e = Encoded::with_redundancy(ctx, n, nb, redundancy, |i, j| uniform_entry(seed, i, j));
        let res = match (o.solver, o.respawn > 0) {
            // A re-spawned replacement joins an already-running
            // factorization: skip encoding, enter recovery first (§5.3).
            (SolverKind::Hessenberg, true) => ft_pdgehrd_replacement(ctx, &mut e, variant, &mut tau, policy),
            (SolverKind::Hessenberg, false) => ft_pdgehrd_scrubbed(ctx, &mut e, variant, &mut tau, policy),
            (SolverKind::Qr, true) => ft_pdgeqrf_replacement(ctx, &mut e, variant, &mut tau, policy),
            (SolverKind::Qr, false) => ft_pdgeqrf_scrubbed(ctx, &mut e, variant, &mut tau, policy),
        };
        match res {
            Ok(rep) => {
                enc = Some(e);
                Some(rep)
            }
            Err(err) => {
                eprintln!("rank {}: UNRECOVERABLE: {err}", ctx.rank());
                return 3;
            }
        }
    };
    let a: &DistMatrix = match (&plain, &enc) {
        (Some(a), _) => a,
        (_, Some(e)) => &e.a,
        _ => unreachable!(),
    };
    let secs = t.elapsed().as_secs_f64();
    let residual = verify.then(|| {
        let a0 = DistMatrix::from_global_fn(ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        match o.solver {
            SolverKind::Hessenberg => pd_hessenberg_residual(ctx, &a0, a, n, &tau),
            // QR's eigen-free oracle: factorization residual and loss of
            // orthogonality, both on the paper's r∞ scale — report the worse.
            SolverKind::Qr => {
                let r = pd_qr_residual(ctx, &a0, a, n, &tau);
                let qm = pd_orgqr(ctx, a, n, &tau);
                r.max(pd_orthogonality_residual(ctx, &qm, n))
            }
        }
    });
    let scrub = match (&rep, policy.active()) {
        (Some(rep), true) => Some(rep.scrub.gathered(ctx, 622)),
        _ => None,
    };
    let traffic = pd_gather_traffic(ctx, 620);
    let wire = pd_gather_transport(ctx, 624);
    // Shrink report (collective): every rank contributes its adopted-rank
    // flags and agreement-stall seconds; rank 0 aggregates. The adopted
    // threads participate like any rank, so the gather is world-complete
    // even after the process count shrank.
    let shrink = o.shrink.then(|| {
        let world = o.p * o.q;
        let (flags, stall) = ctx.shrink_stats();
        if ctx.rank() == 0 {
            let mut ranks: Vec<usize> = (0..world).filter(|&r| flags[r]).collect();
            let mut stall_total = stall;
            for r in 1..world {
                let p = ctx.recv(r, 628u64);
                ranks.extend((0..world).filter(|&v| p[v] != 0.0));
                stall_total += p[world];
            }
            ranks.sort_unstable();
            (ranks, stall_total)
        } else {
            let mut payload: Vec<f64> = (0..world).map(|r| if flags[r] { 1.0 } else { 0.0 }).collect();
            payload.push(stall);
            ctx.send(0, 628u64, &payload);
            (Vec::new(), 0.0)
        }
    });
    let eigs = o.print_eigs.then(|| pd_extract_h(ctx, a, n).gather_root(ctx, 626));

    if ctx.rank() != 0 {
        return 0;
    }
    let flop_coef = if o.solver == SolverKind::Qr { 4.0 / 3.0 } else { 10.0 / 3.0 };
    let gf = flop_coef * (n as f64).powi(3) / secs / 1e9;
    println!("time: {secs:.3} s  ({gf:.2} effective GFLOP/s)");
    if let Some(rep) = &rep {
        println!("recoveries: {}, chaos aborts: {}", rep.recoveries, rep.chaos_aborts);
    }
    if let Some(s) = &scrub {
        print_scrub_summary(s);
    }
    println!("traffic (grid-wide, by phase):");
    for ph in TrafficPhase::ALL {
        let t = traffic.phase(ph);
        if t.msgs > 0 {
            println!("  {:<16} {:>12} bytes  {:>8} msgs", ph.name(), t.bytes, t.msgs);
        }
    }
    println!("  {:<16} {:>12} bytes  {:>8} msgs", "total", traffic.total_bytes(), traffic.total_msgs());
    if let Some((ranks, stall)) = &shrink {
        if ranks.is_empty() {
            println!("shrink: armed, no rank adopted");
        } else {
            println!("shrink (survivor-adopted ranks):");
            println!("  {:<22} {:?}", "adopted ranks", ranks);
            println!("  {:<22} {:>10} bytes", "redistributed", traffic.phase(TrafficPhase::Recovery).bytes);
            println!("  {:<22} {:>10.3} s", "agreement stall", stall);
        }
    }
    print_transport_summary(&wire);
    if let Some(Some(h)) = eigs {
        let mut ev = hessenberg_eigenvalues(&h).unwrap_or_else(|e| {
            eprintln!("eigenvalue extraction failed: {e:?}");
            exit(3)
        });
        ev.sort_by(|a, b| (a.re, a.im).partial_cmp(&(b.re, b.im)).unwrap());
        println!("eigenvalues ({}):", ev.len());
        for e in &ev {
            println!("eig {:+.15e} {:+.15e}", e.re, e.im);
        }
    }
    if let Some(r) = residual {
        println!("residual r_inf = {r:.4}  (paper threshold r_t = 3)");
        if r >= 3.0 {
            eprintln!("VERIFICATION FAILED");
            return 1;
        }
        println!("verification passed");
    }
    0
}

/// The transport config a rank actually runs with: built-in defaults,
/// overlaid with the `FT_HB_*` environment, overlaid with CLI flags — and
/// validated, so inconsistent liveness settings die as a usage error (exit
/// 2) before any socket work starts. The launcher dry-runs this too, to
/// reject bad configs before spawning a single child.
fn resolved_tcp_config(o: &Opts, rank: usize, world: usize) -> TcpConfig {
    let mut cfg = TcpConfig::new(rank, world);
    if let Err(e) = cfg.apply_env() {
        fail(&format!("transport config: {e}"));
    }
    if let Some(ms) = o.hb_interval_ms {
        cfg.hb_interval = Duration::from_millis(ms);
    }
    if let Some(k) = o.hb_miss_limit {
        cfg.hb_miss_limit = k;
    }
    if let Some(ms) = o.conn_timeout_ms {
        cfg.conn_timeout = Duration::from_millis(ms);
    }
    if let Some(spec) = &o.net_chaos {
        cfg.net_chaos = NetChaosScript::parse(spec).unwrap_or_else(|e| fail(&format!("--net-chaos: {e}")));
    }
    if let Err(e) = cfg.validate() {
        fail(&format!("transport config: {e}"));
    }
    cfg
}

/// Host a dead peer's rank inside this process (elastic shrink): bind the
/// victim's freed port under its next incarnation, join the fabric exactly
/// like a launcher re-spawn would, and run the rank to completion through
/// the §5.3 replacement entry. The adopted rank's exit code is published
/// as an `FT_SHRINK_CODE` stdout marker so the launcher can honor rank 0's
/// verdict even when rank 0's original process is gone.
fn adopt_rank(o: Opts, victim: usize, incarnation: u32, port_base: u16) {
    let world = o.p * o.q;
    eprintln!("shrink: adopting rank {victim} (incarnation {incarnation})");
    let mut cfg = resolved_tcp_config(&o, victim, world);
    cfg.incarnation = incarnation;
    let transport = match TcpTransport::connect(cfg, port_base) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("shrink: adopting rank {victim} failed: transport: {e}");
            println!("FT_SHRINK_CODE rank={victim} code=3");
            return;
        }
    };
    let mut o2 = o;
    // The replacement entry: skip encoding, enter recovery first. The
    // incarnation doubles as the respawn counter, exactly as the launcher's
    // `--respawn` flag would.
    o2.respawn = incarnation.max(1);
    let code = match run_distributed(o2.p, o2.q, ChaosScript::none(), Box::new(transport), |ctx| dist_rank_body(&ctx, &o2)) {
        Ok(code) => code,
        Err(err @ CommError::Partitioned { .. }) => {
            eprintln!("shrink: adopted rank {victim}: UNRECOVERABLE: {err}");
            3
        }
        Err(err) => {
            eprintln!("shrink: adopted rank {victim}: transport: {err}");
            3
        }
    };
    println!("FT_SHRINK_CODE rank={victim} code={code}");
}

/// Child mode: run as rank `rank` of the TCP fabric and exit with the
/// rank's code. The parent launcher spawns one of these per rank.
fn child_main(o: Opts, rank: usize) -> ! {
    let world = o.p * o.q;
    let port_base = o.port_base.expect("checked in sanity_check_distributed");
    let mut cfg = resolved_tcp_config(&o, rank, world);
    cfg.incarnation = o.respawn;
    let transport = match TcpTransport::connect(cfg, port_base) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rank {rank}: transport connect failed: {e}");
            exit(3)
        }
    };
    let chaos = dist_chaos_script(&o);
    // Threads hosting adopted ranks (shrink mode). The process must outlive
    // them: their epilogue (collectives, the FT_SHRINK_CODE marker) runs
    // after this rank's own body has already returned.
    let adoptions: std::sync::Arc<std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>> = Default::default();
    let code = match run_distributed(o.p, o.q, chaos, Box::new(transport), |ctx| {
        // A replacement is told which kills already struck its predecessor
        // so they do not re-fire against the fresh op clock.
        ctx.mark_chaos_fired(&o.chaos_fired);
        if o.shrink {
            let o2 = o.clone();
            let adoptions = std::sync::Arc::clone(&adoptions);
            ctx.set_shrink_handler(move |victim, incarnation| {
                let o3 = o2.clone();
                let h = std::thread::spawn(move || adopt_rank(o3, victim, incarnation, port_base));
                adoptions.lock().unwrap().push(h);
            });
        }
        dist_rank_body(&ctx, &o)
    }) {
        Ok(code) => code,
        // Partition agreement: every surviving rank lands here with the
        // same typed error and the same exit code — no hang, no split
        // verdicts (see DESIGN.md §16).
        Err(err @ CommError::Partitioned { .. }) => {
            eprintln!("rank {rank}: UNRECOVERABLE: {err}");
            3
        }
        Err(err) => {
            eprintln!("rank {rank}: transport: {err}");
            3
        }
    };
    for h in std::mem::take(&mut *adoptions.lock().unwrap()) {
        let _ = h.join();
    }
    exit(code)
}

/// Bind-probe a run of `world` consecutive free localhost ports.
fn probe_port_base(world: usize) -> u16 {
    let pid = std::process::id();
    for attempt in 0..512u32 {
        let base = 20000 + ((pid.wrapping_mul(131).wrapping_add(attempt.wrapping_mul(977))) % 40000) as u16;
        if usize::from(u16::MAX - base) < world {
            continue;
        }
        let held: Vec<_> = (0..world)
            .map(|r| std::net::TcpListener::bind(("127.0.0.1", base + r as u16)))
            .collect();
        if held.iter().all(|l| l.is_ok()) {
            return base;
        }
    }
    fail("could not probe a free localhost port range; pass --port-base")
}

enum LauncherEvent {
    /// A child announced its scripted death (`FT_CHAOS_KILL` marker):
    /// SIGKILL it for real and re-spawn a replacement (or, with
    /// `--shrink`, leave it dead for the survivors to adopt).
    Marker { rank: usize, idx: usize },
    /// A surviving process finished hosting an adopted rank and reports
    /// that rank's exit code (`FT_SHRINK_CODE` marker) — the only route to
    /// rank 0's verdict when rank 0's original process is gone.
    ShrinkCode { rank: usize, code: i32 },
    /// A line of child stdout (rank 0's are passed through; under
    /// `--shrink` every process's, since rank 0 may be hosted anywhere).
    Line { rank: usize, line: String },
    /// A child's stdout closed — it is dead, reap it.
    Eof { rank: usize },
}

/// Parse `key=value` tokens of a launcher marker line.
fn marker_field<T: std::str::FromStr>(rest: &str, key: &str) -> Option<T> {
    rest.split_whitespace().find_map(|tok| tok.strip_prefix(key)?.parse().ok())
}

fn spawn_rank(
    exe: &std::path::Path,
    o: &Opts,
    port_base: u16,
    rank: usize,
    incarnation: u32,
    fired: &[usize],
    tx: &std::sync::mpsc::Sender<LauncherEvent>,
) -> std::io::Result<std::process::Child> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--n").arg(o.n.to_string());
    cmd.arg("--nb").arg(o.nb.to_string());
    cmd.arg("--grid").arg(format!("{}x{}", o.p, o.q));
    let variant = match o.mode {
        Mode::Plain => "plain",
        Mode::Alg2 => "alg2",
        Mode::Alg3 => "alg3",
        Mode::Cr => "cr",
    };
    cmd.arg("--variant").arg(variant);
    cmd.arg("--solver").arg(o.solver.name());
    let red = match o.redundancy {
        Redundancy::Single => "single".to_string(),
        Redundancy::Dual => "dual".to_string(),
        Redundancy::Coded(f) => f.to_string(),
    };
    cmd.arg("--redundancy").arg(red);
    cmd.arg("--seed").arg(o.seed.to_string());
    cmd.arg("--distributed");
    cmd.arg("--rank").arg(rank.to_string());
    cmd.arg("--port-base").arg(port_base.to_string());
    if let Some((s, k)) = o.chaos {
        cmd.arg("--chaos").arg(format!("{s}:{k}"));
    }
    for k in &o.kill_at {
        let at = match k.at {
            ChaosPoint::Op(op) => format!("{}@{op}", k.victim),
            ChaosPoint::RecoveryOp { round, op } => format!("{}@r{round}:{op}", k.victim),
        };
        cmd.arg("--kill-at").arg(at);
    }
    if let Some(k) = o.scrub_every {
        cmd.arg("--scrub-every").arg(k.to_string());
    }
    if let Some(ms) = o.hb_interval_ms {
        cmd.arg("--hb-interval-ms").arg(ms.to_string());
    }
    if let Some(k) = o.hb_miss_limit {
        cmd.arg("--hb-miss-limit").arg(k.to_string());
    }
    if let Some(ms) = o.conn_timeout_ms {
        cmd.arg("--conn-timeout-ms").arg(ms.to_string());
    }
    if let Some(spec) = &o.net_chaos {
        cmd.arg("--net-chaos").arg(spec);
    }
    if o.verify {
        cmd.arg("--verify");
    }
    if o.shrink {
        cmd.arg("--shrink");
    }
    if o.print_eigs {
        cmd.arg("--print-eigs");
    }
    if incarnation > 0 {
        cmd.arg("--respawn").arg(incarnation.to_string());
    }
    if !fired.is_empty() {
        let list: Vec<String> = fired.iter().map(|i| i.to_string()).collect();
        cmd.arg("--chaos-fired").arg(list.join(","));
    }
    cmd.stdout(std::process::Stdio::piped());
    cmd.stderr(std::process::Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout is piped");
    let tx = tx.clone();
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("FT_CHAOS_KILL ") {
                if let (Some(rank), Some(idx)) = (marker_field(rest, "rank="), marker_field(rest, "idx=")) {
                    let _ = tx.send(LauncherEvent::Marker { rank, idx });
                    continue;
                }
            }
            if let Some(rest) = line.strip_prefix("FT_SHRINK_CODE ") {
                if let (Some(rank), Some(code)) = (marker_field(rest, "rank="), marker_field(rest, "code=")) {
                    let _ = tx.send(LauncherEvent::ShrinkCode { rank, code });
                    continue;
                }
            }
            let _ = tx.send(LauncherEvent::Line { rank, line });
        }
        let _ = tx.send(LauncherEvent::Eof { rank });
    });
    Ok(child)
}

/// Parent mode: spawn one child process per rank, SIGKILL chaos victims
/// when they announce their scripted death, re-spawn them as replacements,
/// and exit with rank 0's code.
fn parent_main(o: Opts) -> ! {
    let world = o.p * o.q;
    // Validate the liveness config once, up front — a bad FT_HB_* value or
    // CLI combination must not get as far as spawning children.
    let _ = resolved_tcp_config(&o, 0, world);
    let port_base = o.port_base.unwrap_or_else(|| probe_port_base(world));
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary: {e}");
        exit(3)
    });
    println!(
        "abft-hessenberg (distributed): N={} nb={} grid={}x{} solver={} variant={:?} redundancy={:?} ports={}..{} kills={} seed={}",
        o.n,
        o.nb,
        o.p,
        o.q,
        o.solver.name(),
        o.mode,
        o.redundancy,
        port_base,
        port_base as usize + world - 1,
        dist_chaos_script(&o).kills().len(),
        o.seed
    );

    let (tx, rx) = std::sync::mpsc::channel();
    let mut children: Vec<Option<std::process::Child>> = Vec::with_capacity(world);
    for rank in 0..world {
        match spawn_rank(&exe, &o, port_base, rank, 0, &[], &tx) {
            Ok(c) => {
                // The pid marker lets external harnesses (stall soaks,
                // SIGSTOP tests) target a specific rank's process.
                println!("FT_RANK_SPAWN rank={rank} pid={} incarnation=0", c.id());
                children.push(Some(c));
            }
            Err(e) => {
                eprintln!("failed to spawn rank {rank}: {e}");
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                }
                exit(3)
            }
        }
    }

    let deadline = Instant::now() + Duration::from_secs(600);
    let mut incarnation = vec![0u32; world];
    let mut pending_respawn = vec![false; world];
    // Shrink mode: ranks whose death is expected and final — no respawn;
    // a survivor adopts them and reports their code via FT_SHRINK_CODE.
    let mut shrunk = vec![false; world];
    let mut fired: Vec<usize> = Vec::new();
    let mut live = world;
    let mut code0: i32 = 3;
    while live > 0 {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let ev = match rx.recv_timeout(timeout) {
            Ok(ev) => ev,
            Err(_) => {
                eprintln!("watchdog: distributed run exceeded its budget; killing all ranks");
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                }
                exit(124)
            }
        };
        match ev {
            LauncherEvent::Marker { rank, idx } => {
                // The victim stalls on its marker until this very real
                // SIGKILL lands — peers see sockets drop, not a shutdown.
                if !fired.contains(&idx) {
                    fired.push(idx);
                }
                if let Some(c) = children.get_mut(rank).and_then(|c| c.as_mut()) {
                    let _ = c.kill();
                    if o.shrink {
                        // Final: the survivors must adopt this rank.
                        shrunk[rank] = true;
                        println!("launcher: SIGKILL rank {rank} (chaos kill #{idx}, shrink — no re-spawn)");
                    } else {
                        pending_respawn[rank] = true;
                        println!("launcher: SIGKILL rank {rank} (chaos kill #{idx})");
                    }
                }
            }
            LauncherEvent::ShrinkCode { rank, code } => {
                println!("launcher: adopted rank {rank} finished with code {code}");
                if rank == 0 {
                    code0 = code;
                }
            }
            LauncherEvent::Line { rank, line } => {
                // Under --shrink, rank 0 may end up hosted by any process,
                // so every survivor's stdout is passed through.
                if rank == 0 || o.shrink {
                    println!("{line}");
                }
            }
            LauncherEvent::Eof { rank } => {
                let status = children[rank].take().and_then(|mut c| c.wait().ok());
                if pending_respawn[rank] {
                    pending_respawn[rank] = false;
                    incarnation[rank] += 1;
                    match spawn_rank(&exe, &o, port_base, rank, incarnation[rank], &fired, &tx) {
                        Ok(c) => {
                            println!("launcher: re-spawned rank {rank} (incarnation {})", incarnation[rank]);
                            println!("FT_RANK_SPAWN rank={rank} pid={} incarnation={}", c.id(), incarnation[rank]);
                            children[rank] = Some(c);
                        }
                        Err(e) => {
                            eprintln!("failed to re-spawn rank {rank}: {e}");
                            live -= 1;
                        }
                    }
                } else {
                    live -= 1;
                    // A shrunk rank 0's SIGKILL status is meaningless; its
                    // verdict arrives via FT_SHRINK_CODE from its adopter.
                    if rank == 0 && !shrunk[0] {
                        code0 = status.and_then(|s| s.code()).unwrap_or(3);
                    }
                }
            }
        }
    }
    exit(code0)
}

mod serve_cli;

fn main() {
    // Serving-plane verbs (`serve` / `submit` / `serve-worker`) route
    // before the classic flag parser — they have their own flag grammar
    // (and `submit` must work without --distributed).
    if let Some(code) = serve_cli::route() {
        exit(code);
    }
    let mut o = parse_args();
    sanity_check_solver(&o);
    sanity_check_redundancy(&o);
    if o.distributed || o.rank.is_some() {
        sanity_check_distributed(&o);
        if let Some(rank) = o.rank {
            child_main(o, rank);
        }
        parent_main(o);
    }
    if !o.kill_at.is_empty()
        || o.shrink
        || o.port_base.is_some()
        || o.hb_interval_ms.is_some()
        || o.hb_miss_limit.is_some()
        || o.conn_timeout_ms.is_some()
        || o.net_chaos.is_some()
        || o.print_eigs
        || o.respawn > 0
        || !o.chaos_fired.is_empty()
    {
        fail("--kill-at / --shrink / --port-base / --hb-interval-ms / --hb-miss-limit / --conn-timeout-ms / --net-chaos / --print-eigs need --distributed");
    }
    // Ragged N is handled by the encoder (zero-padded to whole blocks, see
    // DESIGN.md §10) — no round-up needed.
    let panels = panel_count(o.solver.ft(), o.n, o.nb);
    if let Some(mtti) = o.mtti {
        let extra = poisson_failures(panels as u64, mtti, o.p * o.q, o.seed)
            .into_iter()
            .map(|f| PlannedFailure {
                victim: f.victim,
                point: failpoint(f.point as usize, Phase::AfterLeftUpdate),
            });
        o.failures.extend(extra);
    }
    println!(
        "abft-hessenberg: N={} nb={} grid={}x{} solver={} variant={:?} redundancy={:?} failures={} seed={}",
        o.n,
        o.nb,
        o.p,
        o.q,
        o.solver.name(),
        o.mode,
        o.redundancy,
        o.failures.len(),
        o.seed
    );

    if o.chaos.is_some() && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--chaos needs --variant alg2 or alg3 (the others never arm the injector)");
    }
    if (o.sdc.is_some() || o.scrub_every.is_some()) && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--sdc / --scrub-every need --variant alg2 or alg3 (the scrub engine lives in the ABFT driver)");
    }
    let Opts {
        n,
        nb,
        p,
        q,
        solver,
        mode,
        redundancy,
        cr_interval,
        seed,
        verify,
        ..
    } = o.clone();
    let script = FaultScript::new(o.failures.clone());
    // A rank performs roughly `4*nb + 20` message ops per panel iteration
    // (measured via `Ctx::chaos_ops`, conservative at common grids), so this
    // range keeps seeded kills/flips inside the run; events scheduled past
    // the end simply never fire.
    let op_hi = (panels as u64 * (4 * o.nb as u64 + 20)).max(200);
    let chaos = match o.chaos {
        Some((cseed, kills)) => ChaosScript::seeded(cseed, p * q, kills, 50, op_hi),
        None => ChaosScript::none(),
    };
    let sdc = match o.sdc {
        Some((sseed, flips)) => SdcScript::seeded(sseed, p * q, flips, 50, op_hi),
        None => SdcScript::none(),
    };
    // --sdc without an explicit cadence scans at every panel boundary.
    let policy = match (o.scrub_every, o.sdc) {
        (Some(k), _) => ScrubPolicy::every_panels(k),
        (None, Some(_)) => ScrubPolicy::every_panels(1),
        (None, None) => ScrubPolicy::disabled(),
    };
    // The residual printed under --verify: solver-specific oracle, both on
    // the paper's r∞ scale (QR reports the worse of factorization residual
    // and loss of orthogonality — there is no spectrum to fall back on).
    let residual_of = move |ctx: &Ctx, a: &DistMatrix, tau: &[f64]| {
        let a0 = DistMatrix::from_global_fn(ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        match solver {
            SolverKind::Hessenberg => pd_hessenberg_residual(ctx, &a0, a, n, tau),
            SolverKind::Qr => {
                let r = pd_qr_residual(ctx, &a0, a, n, tau);
                let qm = pd_orgqr(ctx, a, n, tau);
                r.max(pd_orthogonality_residual(ctx, &qm, n))
            }
        }
    };
    let tau_len = o.solver.ft().tau_len(o.n).max(1);
    let t = Instant::now();
    let outcome = run_spmd_full(p, q, script, chaos, sdc, move |ctx| {
        let (events, lost, r, err, scrub) = match mode {
            Mode::Plain => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; tau_len];
                match solver {
                    SolverKind::Hessenberg => pdgehrd(&ctx, &mut a, &mut tau),
                    SolverKind::Qr => pdgeqrf(&ctx, &mut a, &mut tau),
                }
                let r = verify.then(|| residual_of(&ctx, &a, &tau));
                (0usize, 0usize, r, None, None)
            }
            Mode::Alg2 | Mode::Alg3 => {
                let variant = if mode == Mode::Alg2 { Variant::NonDelayed } else { Variant::Delayed };
                let mut enc = Encoded::with_redundancy(&ctx, n, nb, redundancy, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; tau_len];
                let res = match solver {
                    SolverKind::Hessenberg => ft_pdgehrd_scrubbed(&ctx, &mut enc, variant, &mut tau, policy),
                    SolverKind::Qr => ft_pdgeqrf_scrubbed(&ctx, &mut enc, variant, &mut tau, policy),
                };
                match res {
                    Ok(rep) => {
                        let r = verify.then(|| residual_of(&ctx, &enc.a, &tau));
                        // Aggregate the per-rank scrub statistics while the
                        // grid is still up (collective).
                        let scrub = policy.active().then(|| rep.scrub.gathered(&ctx, 622));
                        (rep.recoveries, rep.chaos_aborts, r, None, scrub)
                    }
                    Err(e) => (0usize, 0usize, None, Some(e), None),
                }
            }
            Mode::Cr => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; tau_len];
                let rep = cr_pdgehrd(&ctx, &mut a, cr_interval, &mut tau);
                let r = verify.then(|| residual_of(&ctx, &a, &tau));
                (rep.rollbacks, rep.lost_panels, r, None, None)
            }
        };
        // Grid-wide per-phase traffic (collective; identical on all ranks).
        let traffic = pd_gather_traffic(&ctx, 620);
        (events, lost, r, err, scrub, traffic)
    })
    .into_iter()
    .next()
    .unwrap();
    let secs = t.elapsed().as_secs_f64();

    let (events, lost, residual, err, scrub, traffic) = outcome;
    if let Some(e) = err {
        eprintln!("UNRECOVERABLE: {e}");
        exit(3);
    }
    let flop_coef = if o.solver == SolverKind::Qr { 4.0 / 3.0 } else { 10.0 / 3.0 };
    let gf = flop_coef * (o.n as f64).powi(3) / secs / 1e9;
    println!("time: {secs:.3} s  ({gf:.2} effective GFLOP/s)");
    match o.mode {
        Mode::Plain => {}
        Mode::Cr => println!("rollbacks: {events}, lost panel iterations: {lost}"),
        _ if o.chaos.is_some() => println!("recoveries: {events}, chaos aborts: {lost}"),
        _ => println!("recoveries: {events}"),
    }
    if let Some(s) = &scrub {
        print_scrub_summary(s);
    }
    println!("traffic (grid-wide, by phase):");
    for ph in TrafficPhase::ALL {
        let t = traffic.phase(ph);
        if t.msgs > 0 {
            println!("  {:<16} {:>12} bytes  {:>8} msgs", ph.name(), t.bytes, t.msgs);
        }
    }
    println!("  {:<16} {:>12} bytes  {:>8} msgs", "total", traffic.total_bytes(), traffic.total_msgs());
    if let Some(r) = residual {
        println!("residual r_inf = {r:.4}  (paper threshold r_t = 3)");
        if r >= 3.0 {
            eprintln!("VERIFICATION FAILED");
            exit(1);
        }
        println!("verification passed");
    }
}
