//! `abft-hessenberg` — command-line driver for the fault-tolerant
//! Hessenberg reduction.
//!
//! ```text
//! abft-hessenberg [OPTIONS]
//!
//!   --n <N>              matrix dimension (default 512)
//!   --nb <NB>            blocking factor / panel width (default 16)
//!   --grid <PxQ>         process grid (default 2x2)
//!   --variant <V>        plain | alg2 | alg3 | cr (default alg2)
//!   --redundancy <R>     single | dual (default single; dual needs Q ≥ 4)
//!   --fail <P:PH:R>      scripted failure: panel : phase(0-3) : rank
//!                        (repeatable)
//!   --mtti <PANELS>      Poisson failures with this MTTI (in panels)
//!   --chaos <SEED[:K]>   chaos mode: K seeded kills (default 2) at
//!                        arbitrary message-op boundaries (alg2/alg3 only;
//!                        beyond-tolerance schedules exit with code 3)
//!   --cr-interval <K>    C/R checkpoint interval in panels (default 8)
//!   --seed <S>           matrix / trace seed (default 2013)
//!   --verify             compute the distributed residual r∞ afterwards
//!   --help               this text
//! ```
//!
//! Examples:
//!
//! ```text
//! abft-hessenberg --n 768 --grid 4x4 --fail 10:2:5 --verify
//! abft-hessenberg --n 768 --grid 2x4 --variant alg3 --mtti 12
//! abft-hessenberg --n 512 --grid 4x4 --variant cr --mtti 10
//! ```

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{cr_pdgehrd, failpoint, ft_pdgehrd, Encoded, FtError, Phase, Redundancy, Variant};
use abft_hessenberg::pblas::{pd_gather_traffic, pd_hessenberg_residual, pdgehrd, Desc, DistMatrix};
use abft_hessenberg::runtime::{poisson_failures, run_spmd_chaos, ChaosScript, FaultScript, PlannedFailure, TrafficPhase};
use std::process::exit;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    Alg2,
    Alg3,
    Cr,
}

#[derive(Debug, Clone)]
struct Opts {
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    mode: Mode,
    redundancy: Redundancy,
    failures: Vec<PlannedFailure>,
    chaos: Option<(u64, usize)>,
    mtti: Option<f64>,
    cr_interval: usize,
    seed: u64,
    verify: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            n: 512,
            nb: 16,
            p: 2,
            q: 2,
            mode: Mode::Alg2,
            redundancy: Redundancy::Single,
            failures: Vec::new(),
            chaos: None,
            mtti: None,
            cr_interval: 8,
            seed: 2013,
            verify: false,
        }
    }
}

fn usage() -> ! {
    // The module docs are the single source of truth for the help text.
    let doc = include_str!("main.rs");
    for line in doc.lines().take_while(|l| l.starts_with("//!")) {
        println!("{}", line.trim_start_matches("//!").trim_start_matches(' '));
    }
    exit(0)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for usage");
    exit(2)
}

fn parse_args() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--n" => o.n = val("--n").parse().unwrap_or_else(|_| fail("--n: bad integer")),
            "--nb" => o.nb = val("--nb").parse().unwrap_or_else(|_| fail("--nb: bad integer")),
            "--grid" => {
                let v = val("--grid");
                let (ps, qs) = v.split_once(['x', 'X']).unwrap_or_else(|| fail("--grid: use PxQ"));
                o.p = ps.parse().unwrap_or_else(|_| fail("--grid: bad P"));
                o.q = qs.parse().unwrap_or_else(|_| fail("--grid: bad Q"));
            }
            "--variant" => {
                o.mode = match val("--variant").as_str() {
                    "plain" => Mode::Plain,
                    "alg2" => Mode::Alg2,
                    "alg3" => Mode::Alg3,
                    "cr" => Mode::Cr,
                    other => fail(&format!("--variant: unknown '{other}'")),
                }
            }
            "--redundancy" => {
                o.redundancy = match val("--redundancy").as_str() {
                    "single" => Redundancy::Single,
                    "dual" => Redundancy::Dual,
                    other => fail(&format!("--redundancy: unknown '{other}'")),
                }
            }
            "--fail" => {
                let v = val("--fail");
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    fail("--fail: use PANEL:PHASE:RANK");
                }
                let panel: usize = parts[0].parse().unwrap_or_else(|_| fail("--fail: bad panel"));
                let ph: usize = parts[1].parse().unwrap_or_else(|_| fail("--fail: bad phase"));
                let rank: usize = parts[2].parse().unwrap_or_else(|_| fail("--fail: bad rank"));
                if ph > 3 {
                    fail("--fail: phase is 0..=3");
                }
                o.failures
                    .push(PlannedFailure { victim: rank, point: failpoint(panel, Phase::ALL[ph]) });
            }
            "--chaos" => {
                let v = val("--chaos");
                let (seed_s, kills_s) = match v.split_once(':') {
                    Some((s, k)) => (s, k),
                    None => (v.as_str(), "2"),
                };
                let seed: u64 = seed_s.parse().unwrap_or_else(|_| fail("--chaos: bad seed"));
                let kills: usize = kills_s.parse().unwrap_or_else(|_| fail("--chaos: bad kill count"));
                o.chaos = Some((seed, kills));
            }
            "--mtti" => o.mtti = Some(val("--mtti").parse().unwrap_or_else(|_| fail("--mtti: bad number"))),
            "--cr-interval" => {
                o.cr_interval = val("--cr-interval")
                    .parse()
                    .unwrap_or_else(|_| fail("--cr-interval: bad integer"))
            }
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| fail("--seed: bad integer")),
            "--verify" => o.verify = true,
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    o
}

fn panel_count(n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0, 0);
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

fn main() {
    let mut o = parse_args();
    if !o.n.is_multiple_of(o.nb) && o.mode != Mode::Plain && o.mode != Mode::Cr {
        // The encoder needs N | nb; round up transparently.
        let rounded = o.n.div_ceil(o.nb) * o.nb;
        eprintln!("note: rounding N {} -> {} (multiple of nb)", o.n, rounded);
        o.n = rounded;
    }
    let panels = panel_count(o.n, o.nb);
    if let Some(mtti) = o.mtti {
        let extra = poisson_failures(panels as u64, mtti, o.p * o.q, o.seed)
            .into_iter()
            .map(|f| PlannedFailure {
                victim: f.victim,
                point: failpoint(f.point as usize, Phase::AfterLeftUpdate),
            });
        o.failures.extend(extra);
    }
    println!(
        "abft-hessenberg: N={} nb={} grid={}x{} variant={:?} redundancy={:?} failures={} seed={}",
        o.n,
        o.nb,
        o.p,
        o.q,
        o.mode,
        o.redundancy,
        o.failures.len(),
        o.seed
    );

    if o.chaos.is_some() && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--chaos needs --variant alg2 or alg3 (the others never arm the injector)");
    }
    let Opts { n, nb, p, q, mode, redundancy, cr_interval, seed, verify, .. } = o.clone();
    let script = FaultScript::new(o.failures.clone());
    let chaos = match o.chaos {
        // A rank performs roughly `4*nb + 20` message ops per panel
        // iteration (measured via `Ctx::chaos_ops`, conservative at common
        // grids), so this range keeps seeded kills inside the run; kills
        // scheduled past the end simply never fire.
        Some((cseed, kills)) => {
            let op_hi = (panels as u64 * (4 * o.nb as u64 + 20)).max(200);
            ChaosScript::seeded(cseed, p * q, kills, 50, op_hi)
        }
        None => ChaosScript::none(),
    };
    let t = Instant::now();
    let outcome = run_spmd_chaos(p, q, script, chaos, move |ctx| {
        let (events, lost, r, err) = match mode {
            Mode::Plain => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                pdgehrd(&ctx, &mut a, &mut tau);
                let r = verify.then(|| {
                    let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                    pd_hessenberg_residual(&ctx, &a0, &a, n, &tau)
                });
                (0usize, 0usize, r, None)
            }
            Mode::Alg2 | Mode::Alg3 => {
                let variant = if mode == Mode::Alg2 { Variant::NonDelayed } else { Variant::Delayed };
                let mut enc = Encoded::with_redundancy(&ctx, n, nb, redundancy, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                match ft_pdgehrd(&ctx, &mut enc, variant, &mut tau) {
                    Ok(rep) => {
                        let r = verify.then(|| {
                            let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                            pd_hessenberg_residual(&ctx, &a0, &enc.a, n, &tau)
                        });
                        (rep.recoveries, rep.chaos_aborts, r, None)
                    }
                    Err(e) => (0usize, 0usize, None, Some(e)),
                }
            }
            Mode::Cr => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                let rep = cr_pdgehrd(&ctx, &mut a, cr_interval, &mut tau);
                let r = verify.then(|| {
                    let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                    pd_hessenberg_residual(&ctx, &a0, &a, n, &tau)
                });
                (rep.rollbacks, rep.lost_panels, r, None)
            }
        };
        // Grid-wide per-phase traffic (collective; identical on all ranks).
        let traffic = pd_gather_traffic(&ctx, 620);
        (events, lost, r, err, traffic)
    })
    .into_iter()
    .next()
    .unwrap();
    let secs = t.elapsed().as_secs_f64();

    let (events, lost, residual, err, traffic) = outcome;
    if let Some(e @ FtError::Unrecoverable { .. }) = err {
        eprintln!("UNRECOVERABLE: {e}");
        exit(3);
    }
    let gf = 10.0 / 3.0 * (o.n as f64).powi(3) / secs / 1e9;
    println!("time: {secs:.3} s  ({gf:.2} effective GFLOP/s)");
    match o.mode {
        Mode::Plain => {}
        Mode::Cr => println!("rollbacks: {events}, lost panel iterations: {lost}"),
        _ if o.chaos.is_some() => println!("recoveries: {events}, chaos aborts: {lost}"),
        _ => println!("recoveries: {events}"),
    }
    println!("traffic (grid-wide, by phase):");
    for ph in TrafficPhase::ALL {
        let t = traffic.phase(ph);
        if t.msgs > 0 {
            println!("  {:<16} {:>12} bytes  {:>8} msgs", ph.name(), t.bytes, t.msgs);
        }
    }
    println!("  {:<16} {:>12} bytes  {:>8} msgs", "total", traffic.total_bytes(), traffic.total_msgs());
    if let Some(r) = residual {
        println!("residual r_inf = {r:.4}  (paper threshold r_t = 3)");
        if r >= 3.0 {
            eprintln!("VERIFICATION FAILED");
            exit(1);
        }
        println!("verification passed");
    }
}
