//! `abft-hessenberg` — command-line driver for the fault-tolerant
//! Hessenberg reduction.
//!
//! ```text
//! abft-hessenberg [OPTIONS]
//!
//!   --n <N>              matrix dimension (default 512)
//!   --nb <NB>            blocking factor / panel width (default 16)
//!   --grid <PxQ>         process grid (default 2x2)
//!   --variant <V>        plain | alg2 | alg3 | cr (default alg2)
//!   --redundancy <R>     single | dual (default single; dual needs Q ≥ 4)
//!   --fail <P:PH:R>      scripted failure: panel : phase(0-3) : rank
//!                        (repeatable)
//!   --mtti <PANELS>      Poisson failures with this MTTI (in panels)
//!   --chaos <SEED[:K]>   chaos mode: K seeded kills (default 2) at
//!                        arbitrary message-op boundaries (alg2/alg3 only;
//!                        beyond-tolerance schedules exit with code 3)
//!   --sdc <SEED[:K]>     silent-corruption mode: K seeded bit flips
//!                        (default 1) in local blocks at message-op
//!                        boundaries (alg2/alg3 only); implies
//!                        --scrub-every 1 unless given; uncorrectable
//!                        corruption exits with code 3
//!   --scrub-every <K>    scrub pass every K panel iterations and at every
//!                        scope boundary (alg2/alg3 only; default: off, or
//!                        1 under --sdc)
//!   --cr-interval <K>    C/R checkpoint interval in panels (default 8)
//!   --seed <S>           matrix / trace seed (default 2013)
//!   --verify             compute the distributed residual r∞ afterwards
//!   --help               this text
//! ```
//!
//! Examples:
//!
//! ```text
//! abft-hessenberg --n 768 --grid 4x4 --fail 10:2:5 --verify
//! abft-hessenberg --n 768 --grid 2x4 --variant alg3 --mtti 12
//! abft-hessenberg --n 512 --grid 4x4 --variant cr --mtti 10
//! abft-hessenberg --n 512 --grid 2x4 --redundancy dual --sdc 7:2 --verify
//! ```

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{
    cr_pdgehrd, failpoint, ft_pdgehrd_scrubbed, Encoded, Phase, Redundancy, ScrubPolicy, ScrubReport, Variant,
};
use abft_hessenberg::pblas::{pd_gather_traffic, pd_hessenberg_residual, pdgehrd, Desc, DistMatrix};
use abft_hessenberg::runtime::{
    poisson_failures, run_spmd_full, ChaosScript, FaultScript, PlannedFailure, SdcScript, TrafficPhase,
};
use std::process::exit;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    Alg2,
    Alg3,
    Cr,
}

#[derive(Debug, Clone)]
struct Opts {
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    mode: Mode,
    redundancy: Redundancy,
    failures: Vec<PlannedFailure>,
    chaos: Option<(u64, usize)>,
    sdc: Option<(u64, usize)>,
    scrub_every: Option<usize>,
    mtti: Option<f64>,
    cr_interval: usize,
    seed: u64,
    verify: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            n: 512,
            nb: 16,
            p: 2,
            q: 2,
            mode: Mode::Alg2,
            redundancy: Redundancy::Single,
            failures: Vec::new(),
            chaos: None,
            sdc: None,
            scrub_every: None,
            mtti: None,
            cr_interval: 8,
            seed: 2013,
            verify: false,
        }
    }
}

fn usage() -> ! {
    // The module docs are the single source of truth for the help text.
    let doc = include_str!("main.rs");
    for line in doc.lines().take_while(|l| l.starts_with("//!")) {
        println!("{}", line.trim_start_matches("//!").trim_start_matches(' '));
    }
    exit(0)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for usage");
    exit(2)
}

fn parse_args() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--n" => o.n = val("--n").parse().unwrap_or_else(|_| fail("--n: bad integer")),
            "--nb" => o.nb = val("--nb").parse().unwrap_or_else(|_| fail("--nb: bad integer")),
            "--grid" => {
                let v = val("--grid");
                let (ps, qs) = v.split_once(['x', 'X']).unwrap_or_else(|| fail("--grid: use PxQ"));
                o.p = ps.parse().unwrap_or_else(|_| fail("--grid: bad P"));
                o.q = qs.parse().unwrap_or_else(|_| fail("--grid: bad Q"));
            }
            "--variant" => {
                o.mode = match val("--variant").as_str() {
                    "plain" => Mode::Plain,
                    "alg2" => Mode::Alg2,
                    "alg3" => Mode::Alg3,
                    "cr" => Mode::Cr,
                    other => fail(&format!("--variant: unknown '{other}'")),
                }
            }
            "--redundancy" => {
                o.redundancy = match val("--redundancy").as_str() {
                    "single" => Redundancy::Single,
                    "dual" => Redundancy::Dual,
                    other => fail(&format!("--redundancy: unknown '{other}'")),
                }
            }
            "--fail" => {
                let v = val("--fail");
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    fail("--fail: use PANEL:PHASE:RANK");
                }
                let panel: usize = parts[0].parse().unwrap_or_else(|_| fail("--fail: bad panel"));
                let ph: usize = parts[1].parse().unwrap_or_else(|_| fail("--fail: bad phase"));
                let rank: usize = parts[2].parse().unwrap_or_else(|_| fail("--fail: bad rank"));
                if ph > 3 {
                    fail("--fail: phase is 0..=3");
                }
                o.failures
                    .push(PlannedFailure { victim: rank, point: failpoint(panel, Phase::ALL[ph]) });
            }
            "--chaos" => {
                let v = val("--chaos");
                let (seed_s, kills_s) = match v.split_once(':') {
                    Some((s, k)) => (s, k),
                    None => (v.as_str(), "2"),
                };
                let seed: u64 = seed_s.parse().unwrap_or_else(|_| fail("--chaos: bad seed"));
                let kills: usize = kills_s.parse().unwrap_or_else(|_| fail("--chaos: bad kill count"));
                o.chaos = Some((seed, kills));
            }
            "--sdc" => {
                let v = val("--sdc");
                let (seed_s, flips_s) = match v.split_once(':') {
                    Some((s, k)) => (s, k),
                    None => (v.as_str(), "1"),
                };
                let seed: u64 = seed_s.parse().unwrap_or_else(|_| fail("--sdc: bad seed"));
                let flips: usize = flips_s.parse().unwrap_or_else(|_| fail("--sdc: bad flip count"));
                o.sdc = Some((seed, flips));
            }
            "--scrub-every" => {
                let k: usize = val("--scrub-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--scrub-every: bad integer"));
                if k == 0 {
                    fail("--scrub-every: must be at least 1");
                }
                o.scrub_every = Some(k);
            }
            "--mtti" => o.mtti = Some(val("--mtti").parse().unwrap_or_else(|_| fail("--mtti: bad number"))),
            "--cr-interval" => {
                o.cr_interval = val("--cr-interval")
                    .parse()
                    .unwrap_or_else(|_| fail("--cr-interval: bad integer"))
            }
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| fail("--seed: bad integer")),
            "--verify" => o.verify = true,
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    o
}

fn print_scrub_summary(s: &ScrubReport) {
    println!("scrub (grid-wide, aggregated):");
    println!("  {:<22} {:>10}", "scans", s.scans);
    println!("  {:<22} {:>10}", "detections", s.detections);
    println!("  {:<22} {:>10}", "corrections", s.corrections);
    println!("  {:<22} {:>10}", "checksum repairs", s.chk_repairs);
    println!("  {:<22} {:>10}", "area-3 repairs", s.area3_repairs);
    println!("  {:<22} {:>10}", "escalations", s.escalations);
    println!("  {:<22} {:>10}", "rollbacks", s.rollbacks);
    println!("  {:<22} {:>10.4}", "scan seconds (mean)", s.scan_secs);
    println!("  {:<22} {:>10.3e}", "residual mass (frob2)", s.residual_mass);
}

fn panel_count(n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0, 0);
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

fn main() {
    let mut o = parse_args();
    // Ragged N is handled by the encoder (zero-padded to whole blocks, see
    // DESIGN.md §10) — no round-up needed.
    let panels = panel_count(o.n, o.nb);
    if let Some(mtti) = o.mtti {
        let extra = poisson_failures(panels as u64, mtti, o.p * o.q, o.seed)
            .into_iter()
            .map(|f| PlannedFailure {
                victim: f.victim,
                point: failpoint(f.point as usize, Phase::AfterLeftUpdate),
            });
        o.failures.extend(extra);
    }
    println!(
        "abft-hessenberg: N={} nb={} grid={}x{} variant={:?} redundancy={:?} failures={} seed={}",
        o.n,
        o.nb,
        o.p,
        o.q,
        o.mode,
        o.redundancy,
        o.failures.len(),
        o.seed
    );

    if o.chaos.is_some() && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--chaos needs --variant alg2 or alg3 (the others never arm the injector)");
    }
    if (o.sdc.is_some() || o.scrub_every.is_some()) && !matches!(o.mode, Mode::Alg2 | Mode::Alg3) {
        fail("--sdc / --scrub-every need --variant alg2 or alg3 (the scrub engine lives in the ABFT driver)");
    }
    let Opts { n, nb, p, q, mode, redundancy, cr_interval, seed, verify, .. } = o.clone();
    let script = FaultScript::new(o.failures.clone());
    // A rank performs roughly `4*nb + 20` message ops per panel iteration
    // (measured via `Ctx::chaos_ops`, conservative at common grids), so this
    // range keeps seeded kills/flips inside the run; events scheduled past
    // the end simply never fire.
    let op_hi = (panels as u64 * (4 * o.nb as u64 + 20)).max(200);
    let chaos = match o.chaos {
        Some((cseed, kills)) => ChaosScript::seeded(cseed, p * q, kills, 50, op_hi),
        None => ChaosScript::none(),
    };
    let sdc = match o.sdc {
        Some((sseed, flips)) => SdcScript::seeded(sseed, p * q, flips, 50, op_hi),
        None => SdcScript::none(),
    };
    // --sdc without an explicit cadence scans at every panel boundary.
    let policy = match (o.scrub_every, o.sdc) {
        (Some(k), _) => ScrubPolicy::every_panels(k),
        (None, Some(_)) => ScrubPolicy::every_panels(1),
        (None, None) => ScrubPolicy::disabled(),
    };
    let t = Instant::now();
    let outcome = run_spmd_full(p, q, script, chaos, sdc, move |ctx| {
        let (events, lost, r, err, scrub) = match mode {
            Mode::Plain => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                pdgehrd(&ctx, &mut a, &mut tau);
                let r = verify.then(|| {
                    let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                    pd_hessenberg_residual(&ctx, &a0, &a, n, &tau)
                });
                (0usize, 0usize, r, None, None)
            }
            Mode::Alg2 | Mode::Alg3 => {
                let variant = if mode == Mode::Alg2 { Variant::NonDelayed } else { Variant::Delayed };
                let mut enc = Encoded::with_redundancy(&ctx, n, nb, redundancy, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                match ft_pdgehrd_scrubbed(&ctx, &mut enc, variant, &mut tau, policy) {
                    Ok(rep) => {
                        let r = verify.then(|| {
                            let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                            pd_hessenberg_residual(&ctx, &a0, &enc.a, n, &tau)
                        });
                        // Aggregate the per-rank scrub statistics while the
                        // grid is still up (collective).
                        let scrub = policy.active().then(|| rep.scrub.gathered(&ctx, 622));
                        (rep.recoveries, rep.chaos_aborts, r, None, scrub)
                    }
                    Err(e) => (0usize, 0usize, None, Some(e), None),
                }
            }
            Mode::Cr => {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                let rep = cr_pdgehrd(&ctx, &mut a, cr_interval, &mut tau);
                let r = verify.then(|| {
                    let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                    pd_hessenberg_residual(&ctx, &a0, &a, n, &tau)
                });
                (rep.rollbacks, rep.lost_panels, r, None, None)
            }
        };
        // Grid-wide per-phase traffic (collective; identical on all ranks).
        let traffic = pd_gather_traffic(&ctx, 620);
        (events, lost, r, err, scrub, traffic)
    })
    .into_iter()
    .next()
    .unwrap();
    let secs = t.elapsed().as_secs_f64();

    let (events, lost, residual, err, scrub, traffic) = outcome;
    if let Some(e) = err {
        eprintln!("UNRECOVERABLE: {e}");
        exit(3);
    }
    let gf = 10.0 / 3.0 * (o.n as f64).powi(3) / secs / 1e9;
    println!("time: {secs:.3} s  ({gf:.2} effective GFLOP/s)");
    match o.mode {
        Mode::Plain => {}
        Mode::Cr => println!("rollbacks: {events}, lost panel iterations: {lost}"),
        _ if o.chaos.is_some() => println!("recoveries: {events}, chaos aborts: {lost}"),
        _ => println!("recoveries: {events}"),
    }
    if let Some(s) = &scrub {
        print_scrub_summary(s);
    }
    println!("traffic (grid-wide, by phase):");
    for ph in TrafficPhase::ALL {
        let t = traffic.phase(ph);
        if t.msgs > 0 {
            println!("  {:<16} {:>12} bytes  {:>8} msgs", ph.name(), t.bytes, t.msgs);
        }
    }
    println!("  {:<16} {:>12} bytes  {:>8} msgs", "total", traffic.total_bytes(), traffic.total_msgs());
    if let Some(r) = residual {
        println!("residual r_inf = {r:.4}  (paper threshold r_t = 3)");
        if r >= 3.0 {
            eprintln!("VERIFICATION FAILED");
            exit(1);
        }
        println!("verification passed");
    }
}
