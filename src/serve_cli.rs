//! CLI verbs for the serving plane: `serve` (run the daemon), `submit`
//! (tenant-side job submission), and `serve-worker` (internal, spawned by
//! the daemon — one per pool slot).
//!
//! ```text
//! abft-hessenberg serve [OPTIONS]
//!
//!   --pool <S>            worker slots in the pool (default 4)
//!   --port <P>            control-plane listen port (default: ephemeral,
//!                         announced via the FT_SERVE_LISTEN marker)
//!   --queue-depth <D>     max queued jobs across tenants (default 16)
//!   --tenant-quota <Q>    max queued+running jobs per tenant (default 4)
//!   --batch-max <B>       1-rank jobs dispatched per head-of-line sweep
//!                         (default 4)
//!   --job-ports <B>       base of the port window job fabrics use
//!                         (default 23000)
//!   --state-dir <DIR>     persist specs/checkpoints/orphan results here;
//!                         on startup, unfinished persisted jobs are
//!                         resumed from their newest checkpoint
//!   --hb-interval-ms, --hb-miss-limit, --conn-timeout-ms
//!                         heartbeat knobs for every job fabric, resolved
//!                         per-POOL: defaults ← FT_HB_* env ← these flags
//!                         (submit clients never read FT_HB_*, so daemon
//!                         and clients can disagree freely)
//!
//! abft-hessenberg submit [OPTIONS]
//!
//!   --port <P>            daemon control port (required)
//!   --n/--nb/--grid/--solver/--variant/--redundancy/--seed
//!                         job shape, as in the main driver (defaults
//!                         64 / 8 / 1x2 / hessenberg / alg2 / single)
//!   --tenant <T>          tenant id for quota accounting (default 0)
//!   --count <K>           submit K jobs (seeds S, S+1, …), pipelined
//!   --ckpt                ask the daemon to checkpoint this job so it
//!                         survives a whole-pool restart
//!   --shutdown            ask the daemon to drain and exit
//!
//! Exit codes follow the driver's contract: 0 ok, 1 residual above the
//! paper threshold, 2 usage/config, 3 typed rejection or I/O loss.
//! ```

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{Redundancy, Variant};
use abft_hessenberg::runtime::TcpConfig;
use abft_hessenberg::serve::{serve_main, worker_main, Client, Event, JobSpec, Limits, ServeConfig, SolverId};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for usage");
    exit(2)
}

/// Route `serve` / `submit` / `serve-worker` verbs. Returns the process
/// exit code if the first argument was a serving verb, `None` otherwise
/// (the caller falls through to the classic flag parser).
pub fn route() -> Option<i32> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => Some(serve_verb(&args[1..])),
        Some("submit") => Some(submit_verb(&args[1..])),
        Some("serve-worker") => Some(worker_verb(&args[1..])),
        _ => None,
    }
}

fn take_val<'a>(args: &'a [String], i: &mut usize, name: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .unwrap_or_else(|| fail(&format!("{name} needs a value")))
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| fail(&format!("{name}: bad value '{v}'")))
}

fn serve_verb(args: &[String]) -> i32 {
    let mut pool = 4usize;
    let mut port = 0u16;
    let mut limits = Limits::default();
    let mut job_ports = 23000u16;
    let mut state_dir: Option<PathBuf> = None;
    let (mut hb_ms, mut hb_miss, mut conn_ms) = (None, None, None);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pool" => pool = parse(take_val(args, &mut i, "--pool"), "--pool"),
            "--port" => port = parse(take_val(args, &mut i, "--port"), "--port"),
            "--queue-depth" => limits.queue_depth = parse(take_val(args, &mut i, "--queue-depth"), "--queue-depth"),
            "--tenant-quota" => limits.tenant_quota = parse(take_val(args, &mut i, "--tenant-quota"), "--tenant-quota"),
            "--batch-max" => limits.batch_max = parse(take_val(args, &mut i, "--batch-max"), "--batch-max"),
            "--job-ports" => job_ports = parse(take_val(args, &mut i, "--job-ports"), "--job-ports"),
            "--state-dir" => state_dir = Some(PathBuf::from(take_val(args, &mut i, "--state-dir"))),
            "--hb-interval-ms" => hb_ms = Some(parse(take_val(args, &mut i, "--hb-interval-ms"), "--hb-interval-ms")),
            "--hb-miss-limit" => hb_miss = Some(parse(take_val(args, &mut i, "--hb-miss-limit"), "--hb-miss-limit")),
            "--conn-timeout-ms" => conn_ms = Some(parse(take_val(args, &mut i, "--conn-timeout-ms"), "--conn-timeout-ms")),
            a => fail(&format!("serve: unknown flag {a}")),
        }
        i += 1;
    }
    if pool == 0 {
        fail("serve: --pool must be at least 1");
    }
    if let Some(dir) = &state_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(&format!("serve: cannot create --state-dir {}: {e}", dir.display()));
        }
    }
    // Per-POOL heartbeat resolution, reusing the transport's own env
    // parser so set-but-invalid FT_HB_* values die as usage errors (exit
    // 2) here at the daemon — and ONLY here: submit clients and workers
    // never consult the environment.
    let mut cfg = TcpConfig::new(0, pool.max(2));
    if let Err(e) = cfg.apply_env() {
        fail(&format!("serve: transport config: {e}"));
    }
    if let Some(ms) = hb_ms {
        cfg.hb_interval = Duration::from_millis(ms);
    }
    if let Some(k) = hb_miss {
        cfg.hb_miss_limit = k;
    }
    if let Some(ms) = conn_ms {
        cfg.conn_timeout = Duration::from_millis(ms);
    }
    if let Err(e) = cfg.validate() {
        fail(&format!("serve: transport config: {e}"));
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(&format!("serve: current_exe: {e}")));
    serve_main(ServeConfig {
        pool,
        port,
        limits,
        job_port_base: job_ports,
        state_dir,
        hb_interval_ms: cfg.hb_interval.as_millis() as u64,
        hb_miss_limit: cfg.hb_miss_limit,
        conn_timeout_ms: cfg.conn_timeout.as_millis() as u64,
        worker_argv: vec![exe.to_string_lossy().into_owned(), "serve-worker".into()],
    })
}

fn submit_verb(args: &[String]) -> i32 {
    let mut port: Option<u16> = None;
    let (mut n, mut nb) = (64usize, 8usize);
    let (mut p, mut q) = (1usize, 2usize);
    let mut solver = SolverId::Hessenberg;
    let mut variant = Variant::NonDelayed;
    let mut redundancy = Redundancy::Single;
    let mut seed = 2013u64;
    let mut tenant = 0u32;
    let mut count = 1usize;
    let mut ckpt = false;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => port = Some(parse(take_val(args, &mut i, "--port"), "--port")),
            "--n" => n = parse(take_val(args, &mut i, "--n"), "--n"),
            "--nb" => nb = parse(take_val(args, &mut i, "--nb"), "--nb"),
            "--grid" => {
                let v = take_val(args, &mut i, "--grid");
                let (ps, qs) = v.split_once(['x', 'X']).unwrap_or_else(|| fail("--grid: use PxQ"));
                p = parse(ps, "--grid P");
                q = parse(qs, "--grid Q");
            }
            "--solver" => {
                solver = match take_val(args, &mut i, "--solver") {
                    "hessenberg" => SolverId::Hessenberg,
                    "qr" => SolverId::Qr,
                    s => fail(&format!("--solver: unknown solver {s}")),
                }
            }
            "--variant" => {
                variant = match take_val(args, &mut i, "--variant") {
                    "alg2" => Variant::NonDelayed,
                    "alg3" => Variant::Delayed,
                    v => fail(&format!("--variant: submit supports alg2 | alg3, not {v}")),
                }
            }
            "--redundancy" => {
                redundancy = match take_val(args, &mut i, "--redundancy") {
                    "single" => Redundancy::Single,
                    "dual" => Redundancy::Dual,
                    f => Redundancy::Coded(parse(f, "--redundancy")),
                }
            }
            "--seed" => seed = parse(take_val(args, &mut i, "--seed"), "--seed"),
            "--tenant" => tenant = parse(take_val(args, &mut i, "--tenant"), "--tenant"),
            "--count" => count = parse(take_val(args, &mut i, "--count"), "--count"),
            "--ckpt" => ckpt = true,
            "--shutdown" => shutdown = true,
            a => fail(&format!("submit: unknown flag {a}")),
        }
        i += 1;
    }
    let Some(port) = port else {
        fail("submit: --port is required")
    };
    if shutdown {
        return match Client::shutdown(port) {
            Ok(()) => {
                println!("daemon on port {port} draining");
                0
            }
            Err(e) => {
                eprintln!("submit: shutdown failed: {e}");
                3
            }
        };
    }
    let mut client = match Client::connect(port, tenant) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("submit: cannot reach daemon on port {port}: {e}");
            return 3;
        }
    };
    // Pipelined: fire all submissions, then drain events until every job
    // has a terminal reply.
    for k in 0..count {
        let s = seed + k as u64;
        let spec = JobSpec {
            solver,
            variant,
            redundancy,
            n,
            nb,
            p,
            q,
            ckpt,
            matrix: (0..n * n).map(|idx| uniform_entry(s, idx / n, idx % n)).collect(),
        };
        if let Err(e) = client.submit(&spec) {
            eprintln!("submit: send failed: {e}");
            return 3;
        }
    }
    let mut worst = 0i32;
    let mut repairs = 0u32;
    while client.outstanding() > 0 {
        match client.next_event() {
            Ok(Event::Accepted { job, seq }) => {
                println!("FT_SUBMIT_ACCEPT job={job} seq={seq}");
                let _ = std::io::stdout().flush();
            }
            Ok(Event::Rejected { job, seq, reason }) => {
                println!("FT_SUBMIT_REJECT job={job} seq={seq} reason={}", reason.name());
                let _ = std::io::stdout().flush();
                worst = worst.max(3);
            }
            Ok(Event::Completed { job, result }) => {
                println!(
                    "FT_SUBMIT_RESULT job={job} residual={:.4} recoveries={} wall_ms={:.1} bytes={}",
                    result.residual, result.recoveries, result.wall_ms, result.bytes
                );
                let _ = std::io::stdout().flush();
                if result.residual >= 3.0 {
                    eprintln!("submit: job {job} residual {:.4} above the paper threshold", result.residual);
                    worst = worst.max(1);
                }
            }
            Err(e) => {
                // The control connection broke with jobs still in flight:
                // reconnect and replay every unfinished submission under
                // its original sequence number. The daemon's client-id
                // dedup makes the replay idempotent — running jobs are
                // re-targeted, finished ones replayed from cache.
                repairs += 1;
                if repairs > 5 {
                    eprintln!("submit: daemon connection lost: {e}");
                    return 3;
                }
                eprintln!("submit: daemon connection lost ({e}); reconnect attempt {repairs}");
                std::thread::sleep(std::time::Duration::from_millis(100 * repairs as u64));
                let _ = client.recover(); // a failed reconnect retries on the next error
            }
        }
    }
    worst
}

fn worker_verb(args: &[String]) -> i32 {
    let mut port: Option<u16> = None;
    let mut slot: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect-port" => port = Some(parse(take_val(args, &mut i, "--connect-port"), "--connect-port")),
            "--slot" => slot = Some(parse(take_val(args, &mut i, "--slot"), "--slot")),
            a => fail(&format!("serve-worker: unknown flag {a}")),
        }
        i += 1;
    }
    match (port, slot) {
        (Some(p), Some(s)) => worker_main(p, s),
        _ => fail("serve-worker: --connect-port and --slot are required"),
    }
}
