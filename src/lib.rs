//! # abft-hessenberg — umbrella crate
//!
//! Reproduction of *"Parallel Reduction to Hessenberg Form with
//! Algorithm-Based Fault Tolerance"* (Jia, Bosilca, Luszczek, Dongarra,
//! SC '13). This crate re-exports the public API of every subsystem; see the
//! workspace `README.md` for the architecture overview and `DESIGN.md` for
//! the per-experiment reproduction index.
//!
//! * [`dense`] — from-scratch dense BLAS kernels and the `Matrix` type.
//! * [`lapack`] — Householder kernels, blocked Hessenberg reduction, QR
//!   eigenvalue iteration.
//! * [`runtime`] — simulated distributed-memory machine (process grid,
//!   message passing, fault injection).
//! * [`pblas`] — 2D block-cyclic distribution and ScaLAPACK-style
//!   distributed kernels, including the baseline `pdgehrd`.
//! * [`hess`] — the paper's contribution: the ABFT Hessenberg reduction
//!   (Algorithms 2 and 3), checksum encoding, diskless checkpointing and
//!   the recovery procedure.
//! * [`serve`] — the persistent multi-tenant solver service: a daemonized
//!   pool of worker processes streaming reduction jobs over the TCP
//!   transport's job frames (DESIGN.md §15).

pub use ft_dense as dense;
pub use ft_hess as hess;
pub use ft_lapack as lapack;
pub use ft_pblas as pblas;
pub use ft_runtime as runtime;
pub use ft_serve as serve;
