//! The distributed matrix: per-process local storage of a 2D block-cyclic
//! global matrix (Figure 1 of the paper).

use crate::layout::{g2l, g2p, l2g, numroc};
use ft_dense::Matrix;
use ft_runtime::{Ctx, Tag};

/// Global shape + blocking of a distributed matrix (a ScaLAPACK descriptor
/// with square `nb×nb` blocks and source process `(0,0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc {
    /// Global rows.
    pub m: usize,
    /// Global columns.
    pub n: usize,
    /// Blocking factor (square blocks).
    pub nb: usize,
}

/// One process's share of a 2D block-cyclic distributed matrix.
///
/// The local part is a dense column-major [`Matrix`] whose local indices map
/// to global ones through [`Self::l2g_row`]/[`Self::l2g_col`]; local order
/// is globally monotone in both dimensions.
///
/// ```
/// use ft_pblas::{Desc, DistMatrix};
/// use ft_runtime::{run_spmd, FaultScript};
///
/// run_spmd(2, 3, FaultScript::none(), |ctx| {
///     // Each process materializes only its own entries of a 10×10 matrix.
///     let d = DistMatrix::from_global_fn(&ctx, Desc { m: 10, n: 10, nb: 2 }, |i, j| (i * 10 + j) as f64);
///     // … and the gathered global matrix is intact.
///     let g = d.gather_all(&ctx, 1);
///     assert_eq!(g[(7, 4)], 74.0);
/// });
/// ```
#[derive(Debug, Clone)]
pub struct DistMatrix {
    desc: Desc,
    nprow: usize,
    npcol: usize,
    myrow: usize,
    mycol: usize,
    local: Matrix,
}

impl DistMatrix {
    /// Allocate this process's zero-filled share.
    pub fn zeros(ctx: &Ctx, desc: Desc) -> Self {
        let (nprow, npcol) = (ctx.nprow(), ctx.npcol());
        let (myrow, mycol) = (ctx.myrow(), ctx.mycol());
        let lr = numroc(desc.m, desc.nb, myrow, nprow);
        let lc = numroc(desc.n, desc.nb, mycol, npcol);
        Self {
            desc,
            nprow,
            npcol,
            myrow,
            mycol,
            local: Matrix::zeros(lr, lc),
        }
    }

    /// Build this process's share from a function of the **global** index —
    /// no communication; every process evaluates only its own entries.
    pub fn from_global_fn(ctx: &Ctx, desc: Desc, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut d = Self::zeros(ctx, desc);
        for lc in 0..d.local.cols() {
            let gc = d.l2g_col(lc);
            for lr in 0..d.local.rows() {
                let gr = d.l2g_row(lr);
                d.local[(lr, lc)] = f(gr, gc);
            }
        }
        d
    }

    /// Global shape descriptor.
    #[inline]
    pub fn desc(&self) -> Desc {
        self.desc
    }

    /// Local row count.
    #[inline]
    pub fn lrows(&self) -> usize {
        self.local.rows()
    }

    /// Local column count.
    #[inline]
    pub fn lcols(&self) -> usize {
        self.local.cols()
    }

    /// The local block, immutably.
    #[inline]
    pub fn local(&self) -> &Matrix {
        &self.local
    }

    /// The local block, mutably.
    #[inline]
    pub fn local_mut(&mut self) -> &mut Matrix {
        &mut self.local
    }

    /// Global row of local row `lr`.
    #[inline]
    pub fn l2g_row(&self, lr: usize) -> usize {
        l2g(lr, self.desc.nb, self.myrow, self.nprow)
    }

    /// Global column of local column `lc`.
    #[inline]
    pub fn l2g_col(&self, lc: usize) -> usize {
        l2g(lc, self.desc.nb, self.mycol, self.npcol)
    }

    /// Owning process row of global row `g`.
    #[inline]
    pub fn row_owner(&self, g: usize) -> usize {
        g2p(g, self.desc.nb, self.nprow)
    }

    /// Owning process column of global column `g`.
    #[inline]
    pub fn col_owner(&self, g: usize) -> usize {
        g2p(g, self.desc.nb, self.npcol)
    }

    /// `true` if this process owns global row `g`.
    #[inline]
    pub fn owns_row(&self, g: usize) -> bool {
        self.row_owner(g) == self.myrow
    }

    /// `true` if this process owns global column `g`.
    #[inline]
    pub fn owns_col(&self, g: usize) -> bool {
        self.col_owner(g) == self.mycol
    }

    /// Local row index of global row `g` (meaningful only on the owner).
    #[inline]
    pub fn g2l_row(&self, g: usize) -> usize {
        g2l(g, self.desc.nb, self.nprow)
    }

    /// Local column index of global column `g` (meaningful only on the owner).
    #[inline]
    pub fn g2l_col(&self, g: usize) -> usize {
        g2l(g, self.desc.nb, self.npcol)
    }

    /// Number of local rows with global index `< g` (they form the local
    /// prefix `0..count`, since local order is globally monotone).
    #[inline]
    pub fn local_rows_below(&self, g: usize) -> usize {
        numroc(g, self.desc.nb, self.myrow, self.nprow)
    }

    /// Number of local columns with global index `< g`.
    #[inline]
    pub fn local_cols_below(&self, g: usize) -> usize {
        numroc(g, self.desc.nb, self.mycol, self.npcol)
    }

    /// Read a global entry (panics unless this process owns it).
    #[inline]
    pub fn get(&self, gr: usize, gc: usize) -> f64 {
        debug_assert!(self.owns_row(gr) && self.owns_col(gc), "get({gr},{gc}): not the owner");
        self.local[(self.g2l_row(gr), self.g2l_col(gc))]
    }

    /// Write a global entry (panics unless this process owns it).
    #[inline]
    pub fn set(&mut self, gr: usize, gc: usize, v: f64) {
        debug_assert!(self.owns_row(gr) && self.owns_col(gc), "set({gr},{gc}): not the owner");
        let (lr, lc) = (self.g2l_row(gr), self.g2l_col(gc));
        self.local[(lr, lc)] = v;
    }

    /// Drop all local data (the fail-stop data loss of a process failure):
    /// the replacement process starts from zeros, exactly the "invalid data"
    /// state of Figure 2 of the paper.
    pub fn wipe_local(&mut self) {
        self.local.fill(0.0);
    }

    /// Assemble the full global matrix on **every** process (collective).
    /// Intended for tests, residual checks and result extraction — not for
    /// inner loops.
    pub fn gather_all(&self, ctx: &Ctx, tag: impl Into<Tag>) -> Matrix {
        // Every process contributes its entries into a zero global buffer,
        // then a world sum-reduce superimposes them (each entry has exactly
        // one owner, so the sum is exact placement).
        let mut g = vec![0.0f64; self.desc.m * self.desc.n];
        for lc in 0..self.local.cols() {
            let gc = self.l2g_col(lc);
            for lr in 0..self.local.rows() {
                let gr = self.l2g_row(lr);
                g[gr + gc * self.desc.m] = self.local[(lr, lc)];
            }
        }
        ctx.allreduce_sum_world(&mut g, tag);
        Matrix::from_vec(self.desc.m, self.desc.n, g)
    }

    /// Assemble the full global matrix on rank 0 only (collective; returns
    /// `None` elsewhere). Linear in total matrix size — prefer this over
    /// [`DistMatrix::gather_all`] when only one process needs the result.
    pub fn gather_root(&self, ctx: &Ctx, tag: impl Into<Tag>) -> Option<Matrix> {
        let tag = tag.into();
        // Pack my local block with its index metadata and ship to rank 0.
        if ctx.rank() != 0 {
            let mut buf = Vec::with_capacity(self.local.as_slice().len() + 2);
            buf.push(self.local.rows() as f64);
            buf.push(self.local.cols() as f64);
            buf.extend_from_slice(self.local.as_slice());
            ctx.send(0, tag, &buf);
            return None;
        }
        let mut g = Matrix::zeros(self.desc.m, self.desc.n);
        // My own entries.
        for lc in 0..self.local.cols() {
            let gc = self.l2g_col(lc);
            for lr in 0..self.local.rows() {
                g[(self.l2g_row(lr), gc)] = self.local[(lr, lc)];
            }
        }
        let grid = ctx.grid();
        for src in 1..grid.size() {
            let buf = ctx.recv(src, tag);
            let (sr, sc) = (buf[0] as usize, buf[1] as usize);
            let (sp, sq) = grid.coords_of(src);
            for lc in 0..sc {
                let gc = crate::layout::l2g(lc, self.desc.nb, sq, grid.npcol());
                for lr in 0..sr {
                    let gr = crate::layout::l2g(lr, self.desc.nb, sp, grid.nprow());
                    g[(gr, gc)] = buf[2 + lr + lc * sr];
                }
            }
        }
        Some(g)
    }

    /// Scatter a replicated global matrix: keep only this process's entries.
    pub fn from_global(ctx: &Ctx, desc: Desc, global: &Matrix) -> Self {
        assert_eq!((global.rows(), global.cols()), (desc.m, desc.n));
        Self::from_global_fn(ctx, desc, |i, j| global[(i, j)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_runtime::{run_spmd, FaultScript};

    fn val(i: usize, j: usize) -> f64 {
        (i * 1000 + j) as f64
    }

    #[test]
    fn scatter_gather_roundtrip() {
        for &(p, q, m, n, nb) in &[
            (2usize, 3usize, 10usize, 13usize, 2usize),
            (2, 2, 8, 8, 3),
            (1, 1, 5, 4, 2),
            (3, 2, 7, 7, 7),
        ] {
            let globals = run_spmd(p, q, FaultScript::none(), |ctx| {
                let d = DistMatrix::from_global_fn(&ctx, Desc { m, n, nb }, val);
                d.gather_all(&ctx, 900)
            });
            let want = Matrix::from_fn(m, n, val);
            for g in globals {
                assert_eq!(g, want);
            }
        }
    }

    #[test]
    fn ownership_and_local_mapping() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            let d = DistMatrix::from_global_fn(&ctx, Desc { m: 9, n: 9, nb: 2 }, val);
            // Every local entry maps back to the right global value.
            for lc in 0..d.lcols() {
                for lr in 0..d.lrows() {
                    let (gr, gc) = (d.l2g_row(lr), d.l2g_col(lc));
                    assert!(d.owns_row(gr) && d.owns_col(gc));
                    assert_eq!(d.get(gr, gc), val(gr, gc));
                }
            }
            // Prefix counts agree with explicit filters.
            for cutoff in 0..10 {
                let cnt = (0..9).filter(|&g| d.owns_row(g) && g < cutoff).count();
                assert_eq!(d.local_rows_below(cutoff), cnt);
            }
        });
    }

    #[test]
    fn local_sizes_sum_to_global() {
        let sizes = run_spmd(2, 3, FaultScript::none(), |ctx| {
            let d = DistMatrix::zeros(&ctx, Desc { m: 11, n: 7, nb: 3 });
            d.lrows() * d.lcols()
        });
        // Total elements = m*n only when summed correctly per row/col combo;
        // check row sums instead: per process row, columns split 7.
        let total: usize = sizes.iter().sum();
        assert_eq!(total, {
            // Σ_p Σ_q numroc_r(p)·numroc_c(q) = m·n
            11 * 7
        });
    }

    #[test]
    fn wipe_clears_local_only() {
        let globals = run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut d = DistMatrix::from_global_fn(&ctx, Desc { m: 6, n: 6, nb: 2 }, |_, _| 1.0);
            if ctx.rank() == 3 {
                d.wipe_local();
            }
            d.gather_all(&ctx, 901)
        });
        let g = &globals[0];
        let zeros = g.as_slice().iter().filter(|&&x| x == 0.0).count();
        // rank 3 = (row 1, col 1): owns rows {2,3}, cols {2,3} of each 2-block
        // cycle → 2×... just assert some but not all entries were lost.
        assert!(zeros > 0 && zeros < 36);
    }
}
