//! Distributed blocked Hessenberg reduction — the ScaLAPACK `PDGEHRD`
//! baseline the paper compares against (Algorithm 1).

use crate::dist::DistMatrix;
use crate::panel::pdlahrd;
use crate::update::apply_panel_updates;
use ft_runtime::Ctx;

/// Distributed blocked Hessenberg reduction (SPMD; call on every process).
///
/// Reduces the leading `n×n` part of `a` in place (`n = a.desc().n` for the
/// plain routine). Reflectors are stored below the first subdiagonal with β
/// at the unit positions; `tau` (length ≥ n−1) is replicated on exit.
///
/// Panel width = the blocking factor `nb` (ScaLAPACK ties them too: the
/// panel must live in one block column).
pub fn pdgehrd(ctx: &Ctx, a: &mut DistMatrix, tau: &mut [f64]) {
    let n = a.desc().n;
    assert_eq!(a.desc().m, n, "pdgehrd: matrix must be square");
    if n > 1 {
        assert!(tau.len() >= n - 1, "pdgehrd: tau too short");
    }
    let nb = a.desc().nb;
    let mut k = 0;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);
        let f = pdlahrd(ctx, a, n, k, w);
        apply_panel_updates(ctx, a, &f, n);
        tau[k..k + w].copy_from_slice(&f.tau);
        k += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
    use ft_lapack::{extract_h, gehrd, hessenberg_residual, is_hessenberg, orghr};
    use ft_runtime::{run_spmd, FaultScript};

    fn check_distributed_hessenberg(p: usize, q: usize, n: usize, nb: usize, seed: u64) {
        // Shared-memory reference with the same panel width.
        let a0 = uniform_indexed_matrix(n, n, seed);
        let mut aref = a0.clone();
        let mut tau_ref = vec![0.0; n - 1];
        gehrd(&mut aref, nb, &mut tau_ref);

        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
            let ag = a.gather_all(&ctx, 992);
            if ctx.rank() == 0 {
                // Valid factorization in its own right.
                let h = extract_h(&ag);
                assert!(is_hessenberg(&h));
                let qm = orghr(&ag, &tau);
                let r = hessenberg_residual(&a0, &h, &qm);
                assert!(r < 10.0, "{p}x{q} n={n} nb={nb}: residual {r}");
                // And it matches the shared-memory H to roundoff.
                let href = extract_h(&aref);
                let d = h.max_abs_diff(&href);
                assert!(d < 1e-9, "{p}x{q} n={n} nb={nb}: |H - Href| = {d}");
            }
        });
    }

    #[test]
    fn pdgehrd_matches_shared_2x2() {
        check_distributed_hessenberg(2, 2, 24, 4, 1);
    }

    #[test]
    fn pdgehrd_matches_shared_2x3() {
        check_distributed_hessenberg(2, 3, 23, 3, 2);
    }

    #[test]
    fn pdgehrd_matches_shared_3x2() {
        check_distributed_hessenberg(3, 2, 20, 5, 3);
    }

    #[test]
    fn pdgehrd_matches_shared_1x1() {
        check_distributed_hessenberg(1, 1, 15, 4, 4);
    }

    #[test]
    fn pdgehrd_ragged_sizes() {
        // n not a multiple of nb, n barely above the last panel.
        check_distributed_hessenberg(2, 2, 13, 4, 5);
        check_distributed_hessenberg(2, 2, 9, 4, 6);
    }

    #[test]
    fn pdgehrd_tiny_matrices() {
        for n in [1usize, 2, 3, 4] {
            run_spmd(2, 2, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb: 2 }, |i, j| uniform_entry(9, i, j));
                let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
                pdgehrd(&ctx, &mut a, &mut tau);
                let ag = a.gather_all(&ctx, 993);
                if ctx.rank() == 0 && n > 1 {
                    assert!(is_hessenberg(&ft_lapack::extract_h(&ag)));
                }
            });
        }
    }
}
