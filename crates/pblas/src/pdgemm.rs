//! Distributed matrix-matrix multiply (`PDGEMM`) via the SUMMA algorithm:
//! `C ← α·A·op(B) + β·C` for 2D block-cyclic matrices sharing the grid and
//! blocking factor.
//!
//! The contraction dimension is processed in panels of `nb`: the `A` panel
//! (a block column) is broadcast along process rows; the `B` panel along
//! process columns (for `op = Bᵀ`, the panel is first assembled down the
//! column — acceptable for this library's use of `pdgemm` with a transposed
//! operand, which is result verification, not inner loops). One local GEMM
//! per panel does the arithmetic.
//!
//! ## Pipelined broadcasts (`op(B) = B`)
//!
//! The untransposed path is *software-pipelined*: the broadcasts for panel
//! `t+1` are posted eagerly ([`Ctx::post_bcast_row`]) before the local GEMM
//! of panel `t` runs, with the two in-flight panels double-buffered on
//! alternating tag pairs so they can never cross-talk. The panel owners'
//! sends therefore travel while every rank is busy multiplying, removing the
//! synchronous broadcast bubble between SUMMA steps that the TrafficLedger's
//! per-phase timings made visible. Total traffic is unchanged (P−1 messages
//! per broadcast, same payloads) — only the waiting moves.
//!
//! Only `A` untransposed is supported (`op(A) = A`); `B` may be transposed.
//! That covers `Q·H` and `(QH)·Qᵀ` — the distributed residual pipeline.

use crate::dist::DistMatrix;
use ft_dense::level3::gemm;
use ft_dense::{Matrix, Trans};
use ft_runtime::{Ctx, PendingBcast, Tag};

// Double-buffered tag pairs: in-flight panel t uses parity t%2, so the
// pipelined panel t+1 always lives on the other pair.
const TAG_APAN: [Tag; 2] = [Tag::Trailing(0), Tag::Trailing(4)];
const TAG_BPAN: [Tag; 2] = [Tag::Trailing(1), Tag::Trailing(5)];
const TAG_BGATH: Tag = Tag::Trailing(2);
const TAG_BRED: Tag = Tag::Trailing(3);

/// `C ← α·A·op(B) + β·C` on distributed operands (SPMD, collective).
///
/// Shapes (logical, checked): `A` is `m×kk`, `op(B)` is `kk×n`, `C` is
/// `m×n`; all three must share `nb` and live on the caller's grid. The
/// logical dims are taken from the descriptors.
#[allow(clippy::many_single_char_names)]
pub fn pdgemm(ctx: &Ctx, transb: Trans, alpha: f64, a: &DistMatrix, b: &DistMatrix, beta: f64, c: &mut DistMatrix) {
    let (m, kk) = (a.desc().m, a.desc().n);
    let (bn_rows, bn_cols) = (b.desc().m, b.desc().n);
    let (cm, cn) = (c.desc().m, c.desc().n);
    let n = match transb {
        Trans::No => {
            assert_eq!(bn_rows, kk, "pdgemm: inner dimensions");
            bn_cols
        }
        Trans::Yes => {
            assert_eq!(bn_cols, kk, "pdgemm: inner dimensions");
            bn_rows
        }
    };
    assert_eq!((cm, cn), (m, n), "pdgemm: C shape");
    let nb = a.desc().nb;
    assert_eq!(b.desc().nb, nb);
    assert_eq!(c.desc().nb, nb);

    // β pass.
    if beta != 1.0 {
        for v in c.local_mut().as_mut_slice().iter_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || kk == 0 {
        return;
    }

    let my_crows = c.lrows();
    let my_ccols = c.lcols();
    let ldl_c = c.local().ld().max(1);

    match transb {
        Trans::No => {
            // ---- pipelined SUMMA: post panel t+1, then multiply panel t ----
            // Extract-and-post one k-panel's broadcasts; non-blocking.
            let post_panel = |kb: usize| -> (PendingBcast, PendingBcast, usize) {
                let w = nb.min(kk - kb);
                let parity = (kb / nb) % 2;
                // A panel: columns kb..kb+w, posted along process rows.
                let qa = a.col_owner(kb);
                let mut abuf = Vec::new();
                if ctx.mycol() == qa {
                    abuf.resize(my_crows * w, 0.0);
                    let lc0 = a.g2l_col(kb);
                    let lda = a.local().ld().max(1);
                    for l in 0..w {
                        let col = &a.local().as_slice()[(lc0 + l) * lda..(lc0 + l) * lda + my_crows];
                        abuf[l * my_crows..(l + 1) * my_crows].copy_from_slice(col);
                    }
                }
                let pa = ctx.post_bcast_row(qa, &abuf, TAG_APAN[parity]);
                // B panel: rows kb..kb+w (transposed into w×cols), posted
                // down process columns.
                let pb_owner = b.row_owner(kb);
                let mut bbuf = Vec::new();
                if ctx.myrow() == pb_owner {
                    bbuf.resize(w * my_ccols, 0.0);
                    let lr0 = b.g2l_row(kb);
                    let ldb = b.local().ld().max(1);
                    for jj in 0..my_ccols {
                        for l in 0..w {
                            bbuf[l + jj * w] = b.local().as_slice()[(lr0 + l) + jj * ldb];
                        }
                    }
                }
                let pb = ctx.post_bcast_col(pb_owner, &bbuf, TAG_BPAN[parity]);
                (pa, pb, w)
            };

            let mut inflight = Some(post_panel(0));
            let mut kb = 0usize;
            while let Some((pa, pb, w)) = inflight.take() {
                // Complete panel t, then immediately post panel t+1 so its
                // sends overlap the local GEMM below.
                let apan = ctx.wait_bcast(pa);
                let bpan = ctx.wait_bcast(pb);
                if kb + w < kk {
                    inflight = Some(post_panel(kb + w));
                }
                if my_crows > 0 && my_ccols > 0 {
                    gemm(
                        Trans::No,
                        Trans::No,
                        my_crows,
                        my_ccols,
                        w,
                        alpha,
                        &apan,
                        my_crows.max(1),
                        &bpan,
                        w.max(1),
                        1.0,
                        c.local_mut().as_mut_slice(),
                        ldl_c,
                    );
                }
                kb += w;
            }
        }
        Trans::Yes => {
            let mut kb = 0usize;
            while kb < kk {
                let w = nb.min(kk - kb);

                // A panel: columns kb..kb+w, broadcast along process rows.
                let qa = a.col_owner(kb);
                let mut apan = vec![0.0f64; my_crows * w];
                if ctx.mycol() == qa {
                    let lc0 = a.g2l_col(kb);
                    let lda = a.local().ld().max(1);
                    for l in 0..w {
                        let col = &a.local().as_slice()[(lc0 + l) * lda..(lc0 + l) * lda + my_crows];
                        apan[l * my_crows..(l + 1) * my_crows].copy_from_slice(col);
                    }
                }
                ctx.bcast_row(qa, &mut apan, TAG_APAN[0]);

                // op(B) rows kb..kb+w = B columns kb..kb+w; each process
                // needs the entries at B-rows matching its C-columns.
                // Assemble the full n×w column panel once per step:
                // owner column broadcasts its rows along rows, then the
                // column all-reduce superimposes the row pieces.
                let qb = b.col_owner(kb);
                let mut full = vec![0.0f64; b.desc().m * w];
                if ctx.mycol() == qb {
                    let lc0 = b.g2l_col(kb);
                    let ldb = b.local().ld().max(1);
                    for l in 0..w {
                        for lr in 0..b.lrows() {
                            let g = b.l2g_row(lr);
                            full[g + l * b.desc().m] = b.local().as_slice()[lr + (lc0 + l) * ldb];
                        }
                    }
                }
                ctx.bcast_row(qb, &mut full, TAG_BGATH);
                ctx.allreduce_sum_col(&mut full, TAG_BRED);
                // Select the rows matching my C columns, transposed into w×cols.
                let bpan = Matrix::from_fn(w, my_ccols, |l, jj| {
                    let g = c.l2g_col(jj);
                    full[g + l * b.desc().m]
                });

                if my_crows > 0 && my_ccols > 0 {
                    gemm(
                        Trans::No,
                        Trans::No,
                        my_crows,
                        my_ccols,
                        w,
                        alpha,
                        &apan,
                        my_crows.max(1),
                        bpan.as_slice(),
                        w.max(1),
                        1.0,
                        c.local_mut().as_mut_slice(),
                        ldl_c,
                    );
                }
                kb += w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use ft_dense::gen::uniform_entry;
    use ft_dense::level3::gemm_naive;
    use ft_runtime::{run_spmd, FaultScript};

    fn check(m: usize, k: usize, n: usize, nb: usize, transb: Trans, p: usize, q: usize) {
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let a = DistMatrix::from_global_fn(&ctx, Desc { m, n: k, nb }, |i, j| uniform_entry(1, i, j));
            let (br, bc) = match transb {
                Trans::No => (k, n),
                Trans::Yes => (n, k),
            };
            let b = DistMatrix::from_global_fn(&ctx, Desc { m: br, n: bc, nb }, |i, j| uniform_entry(2, i, j));
            let mut c = DistMatrix::from_global_fn(&ctx, Desc { m, n, nb }, |i, j| uniform_entry(3, i, j));
            pdgemm(&ctx, transb, 1.5, &a, &b, -0.5, &mut c);

            let ag = a.gather_all(&ctx, 880);
            let bg = b.gather_all(&ctx, 882);
            let cg = c.gather_all(&ctx, 884);
            if ctx.rank() == 0 {
                let mut want = ft_dense::gen::uniform_indexed_matrix(m, n, 3);
                gemm_naive(Trans::No, transb, m, n, k, 1.5, ag.as_slice(), m, bg.as_slice(), br, -0.5, want.as_mut_slice(), m);
                let d = cg.max_abs_diff(&want);
                assert!(d < 1e-11, "m={m} k={k} n={n} nb={nb} {transb:?} {p}x{q}: diff {d}");
            }
        });
    }

    #[test]
    fn pdgemm_nn_various() {
        check(12, 9, 15, 3, Trans::No, 2, 2);
        check(8, 8, 8, 2, Trans::No, 2, 3);
        check(17, 5, 11, 4, Trans::No, 3, 2);
        check(6, 6, 6, 6, Trans::No, 1, 2);
    }

    #[test]
    fn pdgemm_nt_various() {
        check(12, 9, 15, 3, Trans::Yes, 2, 2);
        check(8, 8, 8, 2, Trans::Yes, 2, 3);
        check(10, 7, 10, 2, Trans::Yes, 3, 2);
    }

    #[test]
    fn pdgemm_alpha_zero_scales_only() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let a = DistMatrix::from_global_fn(&ctx, Desc { m: 6, n: 6, nb: 2 }, |_, _| 1.0);
            let b = a.clone();
            let mut c = DistMatrix::from_global_fn(&ctx, Desc { m: 6, n: 6, nb: 2 }, |_, _| 2.0);
            pdgemm(&ctx, Trans::No, 0.0, &a, &b, 0.5, &mut c);
            let cg = c.gather_all(&ctx, 886);
            assert!(cg.as_slice().iter().all(|&x| x == 1.0));
        });
    }
}
