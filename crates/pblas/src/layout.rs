//! 2D block-cyclic index arithmetic (ScaLAPACK TOOLS equivalents:
//! `NUMROC`, `INDXG2P`, `INDXG2L`, `INDXL2G`).
//!
//! A global dimension of size `n` is split into blocks of `nb` consecutive
//! indices; block `b` is owned by process `b mod nprocs` (source process 0)
//! and is that process's local block `b / nprocs`. The same arithmetic
//! applies independently to rows (over the `P` process rows) and columns
//! (over the `Q` process columns) — see Figure 1 of the paper.

/// Number of indices of a global dimension `n` (block size `nb`) owned by
/// process `iproc` of `nprocs` (ScaLAPACK `NUMROC` with `ISRCPROC = 0`).
///
/// Because ownership is cyclic by block, this also equals the number of
/// indices `< n` owned by `iproc` — i.e. it doubles as a "local prefix
/// count" for any global cutoff `n`.
pub fn numroc(n: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    assert!(nb > 0 && nprocs > 0 && iproc < nprocs);
    let nblocks = n / nb;
    let mut num = (nblocks / nprocs) * nb;
    let extra_blocks = nblocks % nprocs;
    if iproc < extra_blocks {
        num += nb;
    } else if iproc == extra_blocks {
        num += n % nb;
    }
    num
}

/// Owning process of global index `g` (`INDXG2P`).
#[inline]
pub fn g2p(g: usize, nb: usize, nprocs: usize) -> usize {
    (g / nb) % nprocs
}

/// Local index of global index `g` on its owning process (`INDXG2L`).
#[inline]
pub fn g2l(g: usize, nb: usize, nprocs: usize) -> usize {
    (g / (nb * nprocs)) * nb + g % nb
}

/// Global index of local index `l` on process `iproc` (`INDXL2G`).
#[inline]
pub fn l2g(l: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    ((l / nb) * nprocs + iproc) * nb + l % nb
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::rng::Xoshiro256;

    #[test]
    fn numroc_examples() {
        // 10 indices, blocks of 2, 3 procs: blocks 0..5 → procs 0,1,2,0,1.
        assert_eq!(numroc(10, 2, 0, 3), 4);
        assert_eq!(numroc(10, 2, 1, 3), 4);
        assert_eq!(numroc(10, 2, 2, 3), 2);
        // ragged tail: 7 indices, blocks of 3, 2 procs: blocks [3,3,1].
        assert_eq!(numroc(7, 3, 0, 2), 4); // blocks 0 and 2 (partial)
        assert_eq!(numroc(7, 3, 1, 2), 3);
        // single proc owns everything
        assert_eq!(numroc(5, 2, 0, 1), 5);
        assert_eq!(numroc(0, 2, 0, 3), 0);
    }

    #[test]
    fn g2p_g2l_l2g_roundtrip_small() {
        for g in 0..50 {
            let (nb, np) = (3, 4);
            let p = g2p(g, nb, np);
            let l = g2l(g, nb, np);
            assert_eq!(l2g(l, nb, p, np), g);
        }
    }

    #[test]
    fn numroc_counts_match_ownership() {
        let (n, nb, np) = (23, 4, 3);
        for proc in 0..np {
            let count = (0..n).filter(|&g| g2p(g, nb, np) == proc).count();
            assert_eq!(count, numroc(n, nb, proc, np), "proc {proc}");
        }
    }

    #[test]
    fn numroc_is_prefix_count() {
        // numroc(cutoff, ..) counts owned indices below the cutoff.
        let (nb, np) = (5, 4);
        for cutoff in 0..60 {
            for proc in 0..np {
                let count = (0..cutoff).filter(|&g| g2p(g, nb, np) == proc).count();
                assert_eq!(count, numroc(cutoff, nb, proc, np));
            }
        }
    }

    // Seeded-loop property tests (formerly proptest; now driven by the
    // internal PRNG so the default build has no external dev-deps).

    #[test]
    fn roundtrip_randomized() {
        let mut rng = Xoshiro256::seed_from_u64(0x1001);
        for _ in 0..256 {
            let g = rng.range_usize(0, 10_000);
            let nb = rng.range_usize(1, 64);
            let np = rng.range_usize(1, 17);
            let p = g2p(g, nb, np);
            let l = g2l(g, nb, np);
            assert_eq!(l2g(l, nb, p, np), g);
            assert!(p < np);
        }
    }

    #[test]
    fn numroc_partitions_randomized() {
        let mut rng = Xoshiro256::seed_from_u64(0x1002);
        for _ in 0..256 {
            let n = rng.range_usize(0, 2_000);
            let nb = rng.range_usize(1, 32);
            let np = rng.range_usize(1, 9);
            let total: usize = (0..np).map(|p| numroc(n, nb, p, np)).sum();
            assert_eq!(total, n, "n={n} nb={nb} np={np}");
        }
    }

    #[test]
    fn local_indices_dense_randomized() {
        let mut rng = Xoshiro256::seed_from_u64(0x1003);
        for _ in 0..128 {
            let n = rng.range_usize(1, 500);
            let nb = rng.range_usize(1, 16);
            let np = rng.range_usize(1, 6);
            let proc = rng.range_usize(0, np);
            // The local indices of a process's owned globals are exactly 0..numroc.
            let mut locals: Vec<usize> = (0..n).filter(|&g| g2p(g, nb, np) == proc).map(|g| g2l(g, nb, np)).collect();
            locals.sort_unstable();
            let expect: Vec<usize> = (0..numroc(n, nb, proc, np)).collect();
            assert_eq!(locals, expect, "n={n} nb={nb} np={np} proc={proc}");
        }
    }

    #[test]
    fn l2g_monotone_randomized() {
        let mut rng = Xoshiro256::seed_from_u64(0x1004);
        for _ in 0..256 {
            let nb = rng.range_usize(1, 16);
            let np = rng.range_usize(1, 6);
            let proc = rng.range_usize(0, np);
            let l = rng.range_usize(0, 500);
            assert!(l2g(l, nb, proc, np) < l2g(l + 1, nb, proc, np));
        }
    }
}
