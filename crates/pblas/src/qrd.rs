//! Distributed blocked right-looking Householder QR — the plain (non-FT)
//! baseline for the second solver, structurally the QR sibling of
//! [`crate::hessd::pdgehrd`].
//!
//! Unlike Hessenberg reduction, QR applies **only left** updates to the
//! trailing matrix: `A ← QᵀA` per panel. That asymmetry is what makes QR
//! the simplest second solver for the ABFT framework — column checksums are
//! invariant under left updates without any pseudo-checksum (`Ve`)
//! machinery (paper §4, and Coti's FT-QR in PAPERS.md).

use crate::dist::DistMatrix;
use crate::panel::pdlaqrf;
use crate::update::apply_qr_panel_updates;
use ft_runtime::Ctx;

/// Distributed blocked QR factorization (SPMD; call on every process).
///
/// Factors the leading `n×n` part of `a` in place (`n = a.desc().n` for the
/// plain routine): `R` in the upper triangle, reflectors below the diagonal
/// with β at the unit positions; `tau` (length ≥ n) is replicated on exit.
pub fn pdgeqrf(ctx: &Ctx, a: &mut DistMatrix, tau: &mut [f64]) {
    let n = a.desc().n;
    assert_eq!(a.desc().m, n, "pdgeqrf: matrix must be square");
    assert!(tau.len() >= n, "pdgeqrf: tau too short");
    let nb = a.desc().nb;
    let mut k = 0;
    while k < n {
        let w = nb.min(n - k);
        let f = pdlaqrf(ctx, a, n, k, w);
        apply_qr_panel_updates(ctx, a, &f, n);
        tau[k..k + w].copy_from_slice(&f.tau);
        k += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
    use ft_lapack::qr::{extract_r, geqrf, orgqr, qr_residual};
    use ft_lapack::residual::orthogonality_residual;
    use ft_runtime::{run_spmd, FaultScript};

    fn check_distributed_qr(p: usize, q: usize, n: usize, nb: usize, seed: u64) {
        // Shared-memory reference with the same panel width.
        let a0 = uniform_indexed_matrix(n, n, seed);
        let mut aref = a0.clone();
        let mut tau_ref = vec![0.0; n];
        geqrf(&mut aref, nb, &mut tau_ref);

        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n];
            pdgeqrf(&ctx, &mut a, &mut tau);
            let ag = a.gather_all(&ctx, 994);
            if ctx.rank() == 0 {
                // Valid factorization in its own right.
                let r = extract_r(&ag);
                let qm = orgqr(&ag, &tau);
                let res = qr_residual(&a0, &qm, &r);
                let orth = orthogonality_residual(&qm);
                assert!(res < 10.0, "{p}x{q} n={n} nb={nb}: QR residual {res}");
                assert!(orth < 10.0, "{p}x{q} n={n} nb={nb}: orthogonality {orth}");
                // And it matches the shared-memory R to roundoff.
                let rref = extract_r(&aref);
                let d = r.max_abs_diff(&rref);
                assert!(d < 1e-9, "{p}x{q} n={n} nb={nb}: |R - Rref| = {d}");
                for (j, tr) in tau_ref.iter().enumerate() {
                    assert!((tau[j] - tr).abs() < 1e-12, "tau[{j}]");
                }
            }
        });
    }

    #[test]
    fn pdgeqrf_matches_shared_2x2() {
        check_distributed_qr(2, 2, 24, 4, 11);
    }

    #[test]
    fn pdgeqrf_matches_shared_2x3() {
        check_distributed_qr(2, 3, 23, 3, 12);
    }

    #[test]
    fn pdgeqrf_matches_shared_3x2() {
        check_distributed_qr(3, 2, 20, 5, 13);
    }

    #[test]
    fn pdgeqrf_matches_shared_1x1() {
        check_distributed_qr(1, 1, 15, 4, 14);
    }

    #[test]
    fn pdgeqrf_ragged_and_tiny() {
        check_distributed_qr(2, 2, 13, 4, 15);
        for n in [1usize, 2, 3] {
            run_spmd(2, 2, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb: 2 }, |i, j| uniform_entry(16, i, j));
                let mut tau = vec![0.0; n];
                pdgeqrf(&ctx, &mut a, &mut tau);
                let ag = a.gather_all(&ctx, 995);
                if ctx.rank() == 0 {
                    let a0 = uniform_indexed_matrix(n, n, 16);
                    let qm = orgqr(&ag, &tau);
                    let r = extract_r(&ag);
                    assert!(qr_residual(&a0, &qm, &r) < 10.0);
                }
            });
        }
    }
}
