//! Distributed verification: assemble `Q` from the stored reflectors
//! (`pd_orghr` / `pd_orgqr`, the distributed `DORGHR`/`DORGQR`), extract
//! `H` or `R`, and compute the paper's `r∞`-style residuals — all without
//! gathering the matrices to one process, so verification scales with the
//! computation.

use crate::dist::DistMatrix;
use crate::panel::replicate_reflector_block;
use crate::pdgemm::pdgemm;
use crate::update::left_update_op;
use ft_dense::Matrix;
use ft_dense::{Trans, EPS};
use ft_lapack::householder::larft;
use ft_runtime::{Ctx, Tag, TrafficLedger, TransportStats};

const TAG_NORM: Tag = Tag::User(0x170);

/// The panel partition `(k, w)` the blocked Hessenberg reduction used for
/// `n`/`nb`.
pub fn panel_blocks(n: usize, nb: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut k = 0;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);
        blocks.push((k, w));
        k += w;
    }
    blocks
}

/// The panel partition `(k, w)` the blocked QR factorization used for
/// `n`/`nb` (QR reduces every column; Hessenberg stops two short).
pub fn qr_panel_blocks(n: usize, nb: usize) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut k = 0;
    while k < n {
        let w = nb.min(n - k);
        blocks.push((k, w));
        k += w;
    }
    blocks
}

/// Assemble the orthogonal factor `Q` of a completed distributed reduction
/// (the output of `pdgehrd`/`ft_pdgehrd` with its `tau`): distributed
/// `DORGHR`. SPMD, collective.
///
/// `n` is the logical dimension (pass `a.desc().n` for plain matrices; the
/// encoded FT matrix is larger). The result lives on the same grid with the
/// same blocking.
pub fn pd_orghr(ctx: &Ctx, a: &DistMatrix, n: usize, tau: &[f64]) -> DistMatrix {
    let nb = a.desc().nb;
    let mut qm = DistMatrix::from_global_fn(ctx, crate::dist::Desc { m: n, n, nb }, |i, j| if i == j { 1.0 } else { 0.0 });
    // Q = B₀·B₁⋯B_last·I: apply the block reflectors from the last panel
    // backwards, each as Q ← (I − V·T·Vᵀ)·Q restricted to rows k+1..n.
    for &(k, w) in panel_blocks(n, nb).iter().rev() {
        let vfull = replicate_reflector_block(ctx, a, n, k, w, 1);
        // T from V and tau (replicated → local larft).
        let mut t = Matrix::zeros(w, w);
        larft(vfull.rows(), w, vfull.as_slice(), vfull.rows().max(1), &tau[k..k + w], t.as_mut_slice(), w);
        // V restricted to my local rows in [k+1, n).
        let lr0 = qm.local_rows_below(k + 1);
        let lrn = qm.local_rows_below(n);
        let v_myrows = Matrix::from_fn(lrn - lr0, w, |i, l| {
            let g = qm.l2g_row(lr0 + i);
            vfull[(g - k - 1, l)]
        });
        // Columns ≤ k of Q stay identity under these reflectors only if we
        // skip them — but unlike the shared-memory code we apply to all
        // local columns: the reflectors have zero rows above k+1, so
        // columns j ≤ k pick up contributions only in rows k+1.. where the
        // identity has zeros *until later blocks touch them*. Since we go
        // backwards, earlier columns are still e_j with zeros in rows k+1..
        // except entry j itself (j ≤ k < k+1), so the update is a no-op
        // there mathematically; we restrict to columns > k to save the
        // work, exactly like DORGHR.
        let lc0 = qm.local_cols_below(k + 1);
        let cols: Vec<usize> = (lc0..qm.lcols()).collect();
        left_update_op(ctx, &mut qm, k + 1, n, &cols, &v_myrows, &t, Trans::No);
    }
    qm
}

/// Assemble the orthogonal factor `Q` of a completed distributed QR
/// factorization (the output of `pdgeqrf`/`ft_pdgeqrf` with its `tau`):
/// distributed `DORGQR`. SPMD, collective. Mirrors [`pd_orghr`] with the
/// QR panel partition and reflector units on the diagonal
/// (`v_row_offset = 0`).
pub fn pd_orgqr(ctx: &Ctx, a: &DistMatrix, n: usize, tau: &[f64]) -> DistMatrix {
    let nb = a.desc().nb;
    let mut qm = DistMatrix::from_global_fn(ctx, crate::dist::Desc { m: n, n, nb }, |i, j| if i == j { 1.0 } else { 0.0 });
    for &(k, w) in qr_panel_blocks(n, nb).iter().rev() {
        let vfull = replicate_reflector_block(ctx, a, n, k, w, 0);
        let mut t = Matrix::zeros(w, w);
        larft(vfull.rows(), w, vfull.as_slice(), vfull.rows().max(1), &tau[k..k + w], t.as_mut_slice(), w);
        // V restricted to my local rows in [k, n).
        let lr0 = qm.local_rows_below(k);
        let lrn = qm.local_rows_below(n);
        let v_myrows = Matrix::from_fn(lrn - lr0, w, |i, l| {
            let g = qm.l2g_row(lr0 + i);
            vfull[(g - k, l)]
        });
        // Going backwards, columns j < k are still e_j with zeros in the
        // reflector's row range [k, n) — a mathematical no-op we skip,
        // exactly like DORGQR. Column k itself IS in range (the unit sits
        // on the diagonal), so the restriction starts at k, not k+1.
        let lc0 = qm.local_cols_below(k);
        let cols: Vec<usize> = (lc0..qm.lcols()).collect();
        left_update_op(ctx, &mut qm, k, n, &cols, &v_myrows, &t, Trans::No);
    }
    qm
}

/// `H` of a completed reduction: copy with the reflectors zeroed below the
/// first subdiagonal (local; no communication).
pub fn pd_extract_h(ctx: &Ctx, a: &DistMatrix, n: usize) -> DistMatrix {
    let nb = a.desc().nb;
    let mut h = DistMatrix::zeros(ctx, crate::dist::Desc { m: n, n, nb });
    for lc in 0..h.lcols() {
        let gc = h.l2g_col(lc);
        for lr in 0..h.lrows() {
            let gr = h.l2g_row(lr);
            let v = if gr > gc + 1 { 0.0 } else { a.local()[(lr, lc)] };
            h.local_mut()[(lr, lc)] = v;
        }
    }
    h
}

/// `R` of a completed QR factorization: copy with the reflectors zeroed
/// strictly below the diagonal (local; no communication).
pub fn pd_extract_r(ctx: &Ctx, a: &DistMatrix, n: usize) -> DistMatrix {
    let nb = a.desc().nb;
    let mut r = DistMatrix::zeros(ctx, crate::dist::Desc { m: n, n, nb });
    for lc in 0..r.lcols() {
        let gc = r.l2g_col(lc);
        for lr in 0..r.lrows() {
            let gr = r.l2g_row(lr);
            let v = if gr > gc { 0.0 } else { a.local()[(lr, lc)] };
            r.local_mut()[(lr, lc)] = v;
        }
    }
    r
}

/// Distributed infinity norm of the logical `n×n` part (replicated result).
pub fn pd_inf_norm(ctx: &Ctx, a: &DistMatrix, n: usize, tag: impl Into<Tag>) -> f64 {
    let tag = tag.into();
    let lrn = a.local_rows_below(n);
    let lcn = a.local_cols_below(n);
    let ldl = a.local().ld().max(1);
    // Partial |row| sums over my columns.
    let mut rowsum = vec![0.0f64; lrn];
    for lc in 0..lcn {
        let col = &a.local().as_slice()[lc * ldl..lc * ldl + lrn];
        for (i, v) in col.iter().enumerate() {
            rowsum[i] += v.abs();
        }
    }
    ctx.allreduce_sum_row(&mut rowsum, tag);
    let local_max = rowsum.into_iter().fold(0.0f64, f64::max);
    // Max across the grid via the one-hot-sum trick.
    let mut slots = vec![0.0f64; ctx.grid().size()];
    slots[ctx.rank()] = local_max;
    ctx.allreduce_sum_world(&mut slots, tag.offset(1));
    slots.into_iter().fold(0.0, f64::max)
}

/// The first checksum block column found violating Theorem 1 — the scan
/// result the ABFT layer's `assert_theorem1` and the scrub engine both
/// report instead of a bare pass/fail bool.
///
/// Carries the **solver** and **recovery-area** labels so diagnostics name
/// the right invariant: the area partition is solver-relative (Area 1 =
/// trailing scope groups, Area 2 = finished groups — §5.3's numbering for
/// Hessenberg, reused by every `FtSolver`), and a violation printed for a
/// QR run must not be mislabeled with Hessenberg wording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem1Violation {
    /// Global block-column index (global column ÷ nb) of the violating
    /// checksum block.
    pub block_col: usize,
    /// Largest absolute residual entry of that block, replicated on every
    /// process. `f64::INFINITY` when the residual contains Inf/NaN.
    pub max_abs: f64,
    /// Name of the solver whose invariant was violated (e.g. `"hessenberg"`,
    /// `"qr"`) — filled by the ABFT layer, which knows which `FtSolver` is
    /// running.
    pub solver: &'static str,
    /// Recovery-area label of the violating group relative to the solver's
    /// current scope (e.g. `"trailing (Area 1)"`, `"finished (Area 2)"`).
    pub area: &'static str,
}

impl std::fmt::Display for Theorem1Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solver {} {} checksum block column {}: max |residual| {:e}",
            self.solver, self.area, self.block_col, self.max_abs
        )
    }
}

/// Theorem-1 residual of one checksum block column, fully distributed:
///
/// `R = Σⱼ wⱼ·A[0..nrows, baseⱼ..baseⱼ+nb) − A[0..nrows, chk_base..chk_base+nb)`
///
/// `members` lists the `(base column, weight)` of each member block —
/// passed explicitly because this crate cannot see the ABFT encoding.
/// Returns the **replicated** max-abs entry of `R` plus this process's
/// share of `R` (row-replicated across its process row; `local rows × nb`,
/// column-major by block offset) for block localization. NaN-safe: a
/// non-finite residual entry reports as `f64::INFINITY`, never as clean —
/// a plain `f64::max` fold would silently drop NaN.
pub fn pd_chk_block_residual(
    ctx: &Ctx,
    a: &DistMatrix,
    nrows: usize,
    nb: usize,
    members: &[(usize, f64)],
    chk_base: usize,
    tag: impl Into<Tag>,
) -> (f64, Vec<f64>) {
    let tag = tag.into();
    let lrn = a.local_rows_below(nrows);
    let ldl = a.local().ld().max(1);
    let mut partial = vec![0.0f64; lrn * nb];
    for off in 0..nb {
        for &(base, w) in members {
            let c = base + off;
            if a.owns_col(c) {
                let lc = a.g2l_col(c);
                let col = &a.local().as_slice()[lc * ldl..lc * ldl + lrn];
                for (i, v) in col.iter().enumerate() {
                    partial[i + off * lrn] += w * v;
                }
            }
        }
        let cc = chk_base + off;
        if a.owns_col(cc) {
            let lc = a.g2l_col(cc);
            let col = &a.local().as_slice()[lc * ldl..lc * ldl + lrn];
            for (i, v) in col.iter().enumerate() {
                partial[i + off * lrn] -= v;
            }
        }
    }
    ctx.allreduce_sum_row(&mut partial, tag);
    let local_max = partial
        .iter()
        .fold(0.0f64, |m, &x| if x.is_finite() { m.max(x.abs()) } else { f64::INFINITY });
    // Max across the grid via the one-hot-sum trick (Inf survives the sum).
    let mut slots = vec![0.0f64; ctx.grid().size()];
    slots[ctx.rank()] = local_max;
    ctx.allreduce_sum_world(&mut slots, tag.offset(2));
    (slots.into_iter().fold(0.0, f64::max), partial)
}

/// Grid-wide communication totals: every process's per-phase
/// [`TrafficLedger`] summed over the world (collective; replicated
/// result). The counts are exact — they stay far below 2⁵³, so the
/// `f64` all-reduce loses nothing. This is the hook the EXPERIMENTS
/// harness uses to report per-phase traffic next to run times.
pub fn pd_gather_traffic(ctx: &Ctx, tag: impl Into<Tag>) -> TrafficLedger {
    let mut row = ctx.traffic().to_f64_row();
    ctx.allreduce_sum_world(&mut row, tag);
    TrafficLedger::from_f64_row(&row)
}

/// Grid-wide transport wire counters: every process's per-peer
/// [`TransportStats`] summed over the world (collective; replicated
/// result). After the sum, row `r` holds the whole grid's traffic *to*
/// peer `r` — frames, bytes, connect retries, reconnects and heartbeat
/// misses. All zeros on in-process fabrics, which keep no wire counters;
/// over TCP this is the CLI's per-rank transport table.
pub fn pd_gather_transport(ctx: &Ctx, tag: impl Into<Tag>) -> TransportStats {
    let world = ctx.grid().size();
    let mut rows = ctx.transport_stats().to_f64_rows(world);
    ctx.allreduce_sum_world(&mut rows, tag);
    TransportStats::from_f64_rows(&rows)
}

/// The paper's §7.3 residual `r∞ = ‖A − Q·H·Qᵀ‖∞ / (‖A‖∞·N·ε)`, computed
/// fully distributed. `a0` holds the *original* matrix, `reduced` the
/// reduction output (reflectors below the subdiagonal), `tau` its scalars.
/// Result replicated on every process.
pub fn pd_hessenberg_residual(ctx: &Ctx, a0: &DistMatrix, reduced: &DistMatrix, n: usize, tau: &[f64]) -> f64 {
    let qm = pd_orghr(ctx, reduced, n, tau);
    let h = pd_extract_h(ctx, reduced, n);
    // T1 = Q·H ; R = A0 − T1·Qᵀ
    let nb = a0.desc().nb;
    let mut t1 = DistMatrix::zeros(ctx, crate::dist::Desc { m: n, n, nb });
    pdgemm(ctx, Trans::No, 1.0, &qm, &h, 0.0, &mut t1);
    let mut r = DistMatrix::zeros(ctx, crate::dist::Desc { m: n, n, nb });
    // r = a0 (logical part may differ in desc size when a0 is encoded —
    // copy elementwise by global index).
    for lc in 0..r.lcols() {
        let gc = r.l2g_col(lc);
        for lr in 0..r.lrows() {
            let gr = r.l2g_row(lr);
            r.local_mut()[(lr, lc)] = a0.local()[(a0.g2l_row(gr), a0.g2l_col(gc))];
        }
    }
    pdgemm(ctx, Trans::Yes, -1.0, &t1, &qm, 1.0, &mut r);
    let na = pd_inf_norm(ctx, a0, n, TAG_NORM);
    if na == 0.0 {
        return 0.0;
    }
    pd_inf_norm(ctx, &r, n, TAG_NORM.offset(4)) / (na * n as f64 * EPS)
}

/// The QR analogue of the §7.3 residual, computed fully distributed:
/// `r∞ = ‖A − Q·R‖∞ / (‖A‖∞·N·ε)`. `a0` holds the *original* matrix,
/// `reduced` the factorization output (reflectors below the diagonal),
/// `tau` its scalars. Result replicated on every process.
pub fn pd_qr_residual(ctx: &Ctx, a0: &DistMatrix, reduced: &DistMatrix, n: usize, tau: &[f64]) -> f64 {
    let qm = pd_orgqr(ctx, reduced, n, tau);
    let rm = pd_extract_r(ctx, reduced, n);
    let nb = a0.desc().nb;
    let mut r = DistMatrix::zeros(ctx, crate::dist::Desc { m: n, n, nb });
    // r = a0 (copy elementwise by global index — a0 may be encoded).
    for lc in 0..r.lcols() {
        let gc = r.l2g_col(lc);
        for lr in 0..r.lrows() {
            let gr = r.l2g_row(lr);
            r.local_mut()[(lr, lc)] = a0.local()[(a0.g2l_row(gr), a0.g2l_col(gc))];
        }
    }
    // r ← a0 − Q·R
    pdgemm(ctx, Trans::No, -1.0, &qm, &rm, 1.0, &mut r);
    let na = pd_inf_norm(ctx, a0, n, TAG_NORM.offset(8));
    if na == 0.0 {
        return 0.0;
    }
    pd_inf_norm(ctx, &r, n, TAG_NORM.offset(12)) / (na * n as f64 * EPS)
}

/// Scaled orthogonality residual `‖Q·Qᵀ − I‖∞ / (N·ε)` of a distributed
/// square `Q`, replicated on every process. (For square `Q`,
/// `‖QQᵀ − I‖ = ‖QᵀQ − I‖` up to the norm's row/column asymmetry — both
/// vanish exactly when `Q` is orthogonal.)
pub fn pd_orthogonality_residual(ctx: &Ctx, qm: &DistMatrix, n: usize) -> f64 {
    let nb = qm.desc().nb;
    let mut g = DistMatrix::from_global_fn(ctx, crate::dist::Desc { m: n, n, nb }, |i, j| if i == j { 1.0 } else { 0.0 });
    // g ← Q·Qᵀ − I
    pdgemm(ctx, Trans::Yes, 1.0, qm, qm, -1.0, &mut g);
    pd_inf_norm(ctx, &g, n, TAG_NORM.offset(16)) / (n as f64 * EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use crate::hessd::pdgehrd;
    use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn pd_orghr_matches_shared() {
        let (n, nb) = (18, 4);
        let seed = 33;
        // Shared reference.
        let mut aref = uniform_indexed_matrix(n, n, seed);
        let mut tau_ref = vec![0.0; n - 1];
        ft_lapack::gehrd(&mut aref, nb, &mut tau_ref);
        let q_ref = ft_lapack::orghr(&aref, &tau_ref);

        run_spmd(2, 3, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
            let qd = pd_orghr(&ctx, &a, n, &tau);
            let qg = qd.gather_all(&ctx, 890);
            if ctx.rank() == 0 {
                let d = qg.max_abs_diff(&q_ref);
                assert!(d < 1e-10, "Q mismatch: {d}");
            }
        });
    }

    #[test]
    fn pd_residual_matches_shared() {
        let (n, nb) = (16, 4);
        let seed = 34;
        let a0g = uniform_indexed_matrix(n, n, seed);
        let mut aref = a0g.clone();
        let mut tau_ref = vec![0.0; n - 1];
        ft_lapack::gehrd(&mut aref, nb, &mut tau_ref);
        let r_shared = ft_lapack::hessenberg_residual(&a0g, &ft_lapack::extract_h(&aref), &ft_lapack::orghr(&aref, &tau_ref));

        run_spmd(2, 2, FaultScript::none(), move |ctx| {
            let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut a = a0.clone();
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
            let r = pd_hessenberg_residual(&ctx, &a0, &a, n, &tau);
            assert!(r < 3.0, "distributed residual {r}");
            // Same ballpark as the shared-memory residual.
            assert!(r < 10.0 * r_shared.max(0.01), "{r} vs shared {r_shared}");
        });
    }

    #[test]
    fn pd_orgqr_and_qr_residual_match_shared() {
        let (n, nb) = (18, 4);
        let seed = 35;
        let a0g = uniform_indexed_matrix(n, n, seed);
        let mut aref = a0g.clone();
        let mut tau_ref = vec![0.0; n];
        ft_lapack::qr::geqrf(&mut aref, nb, &mut tau_ref);
        let q_ref = ft_lapack::qr::orgqr(&aref, &tau_ref);

        run_spmd(2, 3, FaultScript::none(), move |ctx| {
            let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut a = a0.clone();
            let mut tau = vec![0.0; n];
            crate::qrd::pdgeqrf(&ctx, &mut a, &mut tau);
            let qd = pd_orgqr(&ctx, &a, n, &tau);
            let qg = qd.gather_all(&ctx, 891);
            if ctx.rank() == 0 {
                let d = qg.max_abs_diff(&q_ref);
                assert!(d < 1e-10, "Q mismatch: {d}");
            }
            let r = pd_qr_residual(&ctx, &a0, &a, n, &tau);
            assert!(r < 3.0, "distributed QR residual {r}");
            let orth = pd_orthogonality_residual(&ctx, &qd, n);
            assert!(orth < 3.0, "distributed orthogonality {orth}");
        });
    }

    #[test]
    fn chk_block_residual_detects_and_is_nan_safe() {
        // 8 logical columns + one checksum block at column 8: chk = m0 + m1
        // with m0 = block col 0, m1 = block col 1 (weights 1).
        let (n, nb) = (8, 2);
        run_spmd(2, 2, FaultScript::none(), move |ctx| {
            let desc = Desc { m: n, n: n + nb, nb };
            let mut a = DistMatrix::from_global_fn(&ctx, desc, |i, j| {
                if j < nb {
                    uniform_entry(5, i, j)
                } else if j < 2 * nb {
                    uniform_entry(6, i, j - nb)
                } else if j < n {
                    0.0
                } else {
                    uniform_entry(5, i, j - n) + uniform_entry(6, i, j - n)
                }
            });
            let members = [(0usize, 1.0f64), (nb, 1.0f64)];
            let (clean, _) = pd_chk_block_residual(&ctx, &a, n, nb, &members, n, 7700);
            assert!(clean < 1e-12, "clean residual {clean}");

            // Corrupt one entry of member block 1 (global (3, 2)): the
            // residual magnitude and row must localize exactly.
            if a.owns_row(3) && a.owns_col(2) {
                let v = a.get(3, 2);
                a.set(3, 2, v + 7.0);
            }
            let (viol, local) = pd_chk_block_residual(&ctx, &a, n, nb, &members, n, 7710);
            assert!((viol - 7.0).abs() < 1e-12, "violation {viol}");
            // The row-replicated local residual peaks at global row 3,
            // block offset 0 — on the process row owning row 3.
            let lrn = a.local_rows_below(n);
            if a.owns_row(3) {
                let lr = a.g2l_row(3);
                assert!((local[lr].abs() - 7.0).abs() < 1e-12);
            } else {
                assert!(local.iter().take(lrn).all(|x| x.abs() < 1e-12));
            }

            // NaN in the data must read as an infinite violation, not clean.
            if a.owns_row(1) && a.owns_col(5) {
                a.set(1, 5, f64::NAN);
            }
            let (viol, _) = pd_chk_block_residual(&ctx, &a, n, nb, &[(4, 1.0), (6, 1.0)], n, 7720);
            assert_eq!(viol, f64::INFINITY, "NaN dropped by the residual scan");
        });
    }

    #[test]
    fn pd_inf_norm_matches_local() {
        let (n, nb) = (13, 3);
        run_spmd(2, 3, FaultScript::none(), move |ctx| {
            let a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(9, i, j));
            let dist = pd_inf_norm(&ctx, &a, n, 7900);
            let local = ft_dense::norms::inf_norm(&uniform_indexed_matrix(n, n, 9));
            assert!((dist - local).abs() < 1e-12);
        });
    }
}
