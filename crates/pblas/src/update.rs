//! Distributed trailing-matrix updates (the `PDGEMM` / `PDLARFB` steps of
//! Algorithm 1, and of the ABFT Algorithms 2 and 3 which additionally route
//! checksum columns through the same code paths).
//!
//! Both updates take an explicit list of **local** column indices plus the
//! per-column right-operand rows, so the ABFT layer can extend them to the
//! checksum columns (whose "V row" is the pseudo checksum `Ve` row rather
//! than a row of `V` — see paper §4/§5).
//!
//! The [`PackedA`] prepacks below inherit the full DESIGN.md §14
//! determinism contract: `gemm_packed_a` is bitwise identical to
//! pack-on-the-fly `gemm` under every microkernel ISA and every
//! `FT_GEMM_THREADS` setting, so routing data and checksum columns through
//! the same prepacked panel keeps Theorem 1's "same linear update" literal
//! regardless of how the host dispatches or partitions the kernel.

use crate::dist::DistMatrix;
use crate::panel::PanelFactors;
use ft_dense::level3::{gemm_packed_a, trmm, PackedA};
use ft_dense::{Diag, Matrix, Side, Trans, UpLo};
use ft_runtime::{Ctx, Tag};

const TAG_LARFB_W: Tag = Tag::Trailing(8);

/// Split a sorted list of local column indices into maximal contiguous runs
/// `(start_position_in_list, first_lc, len)` so updates can use one GEMM per
/// run instead of one GEMV per column.
fn contiguous_runs(local_cols: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < local_cols.len() {
        let start = i;
        let lc0 = local_cols[i];
        while i + 1 < local_cols.len() && local_cols[i + 1] == local_cols[i] + 1 {
            i += 1;
        }
        runs.push((start, lc0, i - start + 1));
        i += 1;
    }
    runs
}

/// Right update `A(0..row_limit_g, cols) ← A(…) − Y·vrowsᵀ` (the paper's
/// `PDGEMM: trail(Aₑ) = trail(Aₑ) − Y·(Vₑ)ᵀ`).
///
/// * `local_cols` — sorted local column indices to update;
/// * `vrows` — `len(local_cols)×w`; row `i` is the (pseudo) `V` row of the
///   global column behind `local_cols[i]`;
/// * `y_loc` — `Y` on this process's local rows `< row_limit_g` (row `lr`
///   of `y_loc` corresponds to local row `lr` of `a`).
///
/// Purely local (no communication): `Y` is already replicated row-wise.
pub fn right_update(a: &mut DistMatrix, row_limit_g: usize, local_cols: &[usize], vrows: &Matrix, y_loc: &Matrix) {
    assert_eq!(vrows.rows(), local_cols.len());
    let w = vrows.cols();
    let m = a.local_rows_below(row_limit_g);
    assert!(y_loc.rows() >= m, "right_update: y_loc too short");
    assert_eq!(y_loc.cols(), w);
    if m == 0 || local_cols.is_empty() || w == 0 {
        return;
    }
    let ldl = a.local().ld().max(1);
    let nv = vrows.rows();
    // Y is the constant left operand of every run — original trailing
    // columns and checksum columns alike — so pack it exactly once and sweep
    // the packed panels over each run (tall-skinny friendly: the Delayed
    // variant's scope-boundary catch-up produces many short runs).
    let py = PackedA::pack(Trans::No, m, w, y_loc.as_slice(), y_loc.rows().max(1));
    for (pos, lc0, len) in contiguous_runs(local_cols) {
        // C(0..m, lc0..lc0+len) −= Y(0..m, :) · vrows(pos..pos+len, :)ᵀ
        let cbuf = &mut a.local_mut().as_mut_slice()[lc0 * ldl..];
        gemm_packed_a(&py, Trans::Yes, len, -1.0, &vrows.as_slice()[pos..], nv, 1.0, cbuf, ldl);
    }
}

/// Left update `A(row0_g..row_limit_g, cols) ← (I − V·T·Vᵀ)ᵀ·A(…)`
/// (the paper's `PDLARFB: trail(Aₑ) −= V·Tᵀ·Vᵀ·trail(Aₑ)`).
///
/// Collective within each process **column** (the `W = Vᵀ·C` reduction runs
/// down process columns); every process must call it, even with an empty
/// column list — the reduction shape only depends on the caller's own list,
/// which is identical down a process column.
///
/// * `row0_g` — first global row the block reflector acts on (the panel's
///   `k + v_row_offset`: `k+1` for Hessenberg, `k` for QR);
/// * `v_myrows` — `V` restricted to this process's local rows in
///   `[row0_g, row_limit_g)` (see [`PanelFactors::v_for_local_rows`]);
/// * `t` — the replicated `w×w` WY factor.
pub fn left_update(
    ctx: &Ctx,
    a: &mut DistMatrix,
    row0_g: usize,
    row_limit_g: usize,
    local_cols: &[usize],
    v_myrows: &Matrix,
    t: &Matrix,
) {
    left_update_op(ctx, a, row0_g, row_limit_g, local_cols, v_myrows, t, Trans::Yes)
}

/// [`left_update`] with an explicit choice of the `T` operator:
/// [`Trans::Yes`] applies `Qᵀ = I − V·Tᵀ·Vᵀ` (the reduction's left update);
/// [`Trans::No`] applies `Q = I − V·T·Vᵀ` (used when *assembling* `Q`, e.g.
/// by [`crate::verify::pd_orghr`]).
#[allow(clippy::too_many_arguments)]
pub fn left_update_op(
    ctx: &Ctx,
    a: &mut DistMatrix,
    row0_g: usize,
    row_limit_g: usize,
    local_cols: &[usize],
    v_myrows: &Matrix,
    t: &Matrix,
    t_op: Trans,
) {
    let w = t.rows();
    assert_eq!(t.cols(), w);
    assert_eq!(v_myrows.cols(), w);
    let lr0 = a.local_rows_below(row0_g);
    let lrn = a.local_rows_below(row_limit_g);
    let m = lrn - lr0;
    assert_eq!(v_myrows.rows(), m, "left_update: v_myrows rows");
    let nc = local_cols.len();
    let ldl = a.local().ld().max(1);

    // W = Vᵀ·C (w × nc): local partial, then column sum-reduce. V is the
    // constant operand across every run (data and checksum columns), so its
    // two orientations are each packed once and reused per run.
    let mut wbuf = vec![0.0f64; w * nc];
    if m > 0 && nc > 0 {
        let pvt = PackedA::pack(Trans::Yes, w, m, v_myrows.as_slice(), m.max(1));
        for (pos, lc0, len) in contiguous_runs(local_cols) {
            let cbuf = &a.local().as_slice()[lc0 * ldl + lr0..];
            gemm_packed_a(&pvt, Trans::No, len, 1.0, cbuf, ldl, 0.0, &mut wbuf[pos * w..], w);
        }
    }
    ctx.allreduce_sum_col(&mut wbuf, TAG_LARFB_W);
    if nc == 0 {
        return;
    }
    // W ← op(T)·W
    trmm(Side::Left, UpLo::Upper, t_op, Diag::NonUnit, w, nc, 1.0, t.as_slice(), w, &mut wbuf, w);
    // C −= V·W (local)
    if m > 0 {
        let pv = PackedA::pack(Trans::No, m, w, v_myrows.as_slice(), m.max(1));
        for (pos, lc0, len) in contiguous_runs(local_cols) {
            let cbuf = &mut a.local_mut().as_mut_slice()[lc0 * ldl + lr0..];
            gemm_packed_a(&pv, Trans::No, len, -1.0, &wbuf[pos * w..], w, 1.0, cbuf, ldl);
        }
    }
}

/// The full post-panel update of Algorithm 1 on the **original** matrix
/// columns: right update of the trailing columns, top-row fix of the
/// within-panel columns, left update of the trailing columns.
///
/// `col_limit_g` bounds the updated columns (`n` for the plain reduction;
/// the ABFT layer passes its own ranges and additionally updates checksum
/// columns through [`right_update`]/[`left_update`] directly).
pub fn apply_panel_updates(ctx: &Ctx, a: &mut DistMatrix, f: &PanelFactors, col_limit_g: usize) {
    let (k, w, n) = (f.k, f.w, f.n);
    debug_assert!(col_limit_g <= n);

    // ---- right update of trailing columns (all rows 0..n) -----------------
    let lc_t0 = a.local_cols_below(k + w);
    let lc_t1 = a.local_cols_below(col_limit_g);
    let trail_cols: Vec<usize> = (lc_t0..lc_t1).collect();
    let trail_g: Vec<usize> = trail_cols.iter().map(|&lc| a.l2g_col(lc)).collect();
    let vrows = f.vrows_for(&trail_g);
    right_update(a, n, &trail_cols, &vrows, &f.y_loc);

    // (The top-row fix of the within-panel columns happens inside pdlahrd —
    // the panel block column leaves the panel step already final, so the
    // ABFT bookkeeping copy is its final state.)

    // ---- left update of trailing columns (rows k+1..n) --------------------
    let v_myrows = f.v_for_local_rows(a);
    left_update(ctx, a, k + 1, n, &trail_cols, &v_myrows, &f.t);
}

/// The full post-panel update of right-looking QR on the **original**
/// matrix columns: the left update `A(k..n, k+w..col_limit_g) ← Qᵀ·A(…)` —
/// QR has no trailing right update (the factorization only multiplies from
/// the left), which is exactly why its checksum *columns* survive every
/// update untouched (paper §4: left updates preserve column checksums).
pub fn apply_qr_panel_updates(ctx: &Ctx, a: &mut DistMatrix, f: &PanelFactors, col_limit_g: usize) {
    let (k, w, n) = (f.k, f.w, f.n);
    debug_assert!(col_limit_g <= n);
    debug_assert_eq!(f.v_row_offset, 0);
    let lc_t0 = a.local_cols_below(k + w);
    let lc_t1 = a.local_cols_below(col_limit_g);
    let trail_cols: Vec<usize> = (lc_t0..lc_t1).collect();
    let v_myrows = f.v_for_local_rows(a);
    left_update(ctx, a, k, n, &trail_cols, &v_myrows, &f.t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn runs_detection() {
        assert_eq!(contiguous_runs(&[]), vec![]);
        assert_eq!(contiguous_runs(&[4]), vec![(0, 4, 1)]);
        assert_eq!(contiguous_runs(&[1, 2, 3, 7, 9, 10]), vec![(0, 1, 3), (3, 7, 1), (4, 9, 2)]);
    }

    /// One panel + apply_panel_updates must reproduce one outer iteration of
    /// the shared-memory gehrd.
    #[test]
    fn one_blocked_iteration_matches_shared() {
        let n = 17;
        let nb = 4;
        let seed = 123;

        // Shared-memory reference: run gehrd manually for exactly one panel.
        let mut aref = ft_dense::gen::uniform_indexed_matrix(n, n, seed);
        {
            let mut tau = vec![0.0; nb];
            let mut t = ft_dense::Matrix::zeros(nb, nb);
            let mut y = ft_dense::Matrix::zeros(n, nb);
            ft_lapack::lahr2(&mut aref, 0, nb, &mut tau, &mut t, &mut y);
            // right update
            let ei = aref[(nb, nb - 1)];
            aref[(nb, nb - 1)] = 1.0;
            {
                let lda = n;
                let (vpart, cpart) = aref.as_mut_slice().split_at_mut(nb * lda);
                let vb = &vpart[nb..];
                ft_dense::level3::gemm(Trans::No, Trans::Yes, n, n - nb, nb, -1.0, y.as_slice(), n, vb, lda, 1.0, cpart, lda);
            }
            aref[(nb, nb - 1)] = ei;
            // top fix (k = 0 → rows 0..=0); the distributed code does this
            // inside pdlahrd, the combined iteration result is identical.
            {
                let mut wtop = ft_dense::Matrix::from_fn(1, nb - 1, |i, jj| y[(i, jj)]);
                let lda = n;
                let abuf = aref.as_slice().to_vec();
                ft_dense::level3::trmm(
                    Side::Right,
                    UpLo::Lower,
                    Trans::Yes,
                    Diag::Unit,
                    1,
                    nb - 1,
                    1.0,
                    &abuf[1..],
                    lda,
                    wtop.as_mut_slice(),
                    1,
                );
                for jj in 0..nb - 1 {
                    aref[(0, 1 + jj)] -= wtop[(0, jj)];
                }
            }
            // left update
            {
                let lda = n;
                let (vpart, cpart) = aref.as_mut_slice().split_at_mut(nb * lda);
                let v = &vpart[1..];
                ft_lapack::householder::larfb(
                    Side::Left,
                    Trans::Yes,
                    n - 1,
                    n - nb,
                    nb,
                    v,
                    lda,
                    t.as_slice(),
                    nb,
                    &mut cpart[1..],
                    lda,
                );
            }
        }

        for (p, q) in [(2usize, 3usize), (2, 2), (1, 2), (3, 1)] {
            let aref = aref.clone();
            run_spmd(p, q, FaultScript::none(), move |ctx| {
                let mut a =
                    DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| ft_dense::gen::uniform_entry(seed, i, j));
                let f = crate::panel::pdlahrd(&ctx, &mut a, n, 0, nb);
                apply_panel_updates(&ctx, &mut a, &f, n);
                let ag = a.gather_all(&ctx, 991);
                let d = ag.max_abs_diff(&aref);
                assert!(d < 1e-10, "grid {}x{}: diff {d}", ctx.nprow(), ctx.npcol());
            });
        }
    }
}
