//! Distributed Hessenberg panel factorization (ScaLAPACK `PDLAHRD`).
//!
//! Reduces `w` consecutive columns `k..k+w` of the distributed matrix,
//! producing the blocked WY factors needed for the trailing-matrix updates.
//! The panel is owned by a single process column (the blocking factor equals
//! the panel width, as in `PDGEHRD`), but — unlike one-sided factorizations —
//! **every** process participates in every column step: computing the
//! running `Y = Â·V·T` column requires a matrix-vector product with the
//! whole trailing matrix (`A(k+1..n, c+1..n)·v`), the data dependency the
//! paper highlights in §3.4 as the reason panel results must be protected
//! immediately.
//!
//! ### Reflector storage
//!
//! Reflectors are stored below the first subdiagonal of `A` exactly as in
//! ScaLAPACK, but unit positions keep their β value — the implicit 1 is
//! materialized only in extracted copies, so no set/restore dance is needed
//! across processes.

use crate::dist::DistMatrix;
use ft_dense::level1::scal;
use ft_dense::level2::{gemv, trmv};
use ft_dense::level3::{gemm, trmm};
use ft_dense::{Diag, Matrix, Side, Trans, UpLo};
use ft_runtime::{Ctx, Tag};

const TAG_VROW: Tag = Tag::Panel(0);
const TAG_LEFTW: Tag = Tag::Panel(1);
const TAG_NRM: Tag = Tag::Panel(2);
const TAG_ALPHA: Tag = Tag::Panel(3);
const TAG_VCOL: Tag = Tag::Panel(4);
const TAG_VCAST: Tag = Tag::Panel(5);
const TAG_YRED: Tag = Tag::Panel(6);
const TAG_TCOL: Tag = Tag::Panel(7);
const TAG_VFULL: Tag = Tag::Panel(8);
const TAG_VFULLB: Tag = Tag::Panel(9);
const TAG_PTOP: Tag = Tag::Panel(10);
const TAG_YB: Tag = Tag::Panel(11);
const TAG_TB: Tag = Tag::Panel(12);
const TAG_TAUB: Tag = Tag::Panel(13);

/// The replicated/row-distributed outputs of one panel factorization —
/// exactly the `(V, T, Y)` triple the paper's Algorithms 2 and 3 checkpoint
/// after each `PDLAHRD` call.
#[derive(Debug, Clone)]
pub struct PanelFactors {
    /// First global column of the panel.
    pub k: usize,
    /// Panel width.
    pub w: usize,
    /// Logical matrix dimension `n` (the distributed matrix may be larger —
    /// the ABFT layer appends checksum rows/columns beyond `n`).
    pub n: usize,
    /// Row offset of the reflector block relative to the panel column:
    /// reflector `l`'s implicit unit sits at global row `k + l +
    /// v_row_offset` and `vfull` covers global rows `k + v_row_offset .. n`.
    /// Hessenberg panels (`pdlahrd`) use 1 (reflectors below the
    /// subdiagonal); QR panels (`pdlaqrf`) use 0 (reflectors at the
    /// diagonal).
    pub v_row_offset: usize,
    /// Reflector scalars, replicated everywhere.
    pub tau: Vec<f64>,
    /// `w×w` upper triangular WY factor, replicated everywhere.
    pub t: Matrix,
    /// `V` with explicit units/zeros, rows `k+v_row_offset..n` of the global
    /// matrix (`(n−k−v_row_offset)×w`), replicated everywhere.
    pub vfull: Matrix,
    /// `Y = Â·V·T` restricted to this process's local rows `< n`
    /// (`local_rows_below(n) × w`), identical across the process row.
    /// Empty (`0×w`) for solvers without a trailing right update.
    pub y_loc: Matrix,
}

impl PanelFactors {
    /// First global row covered by `vfull` (and by the left update).
    #[inline]
    pub fn v_row0(&self) -> usize {
        self.k + self.v_row_offset
    }

    /// Build the `len(cols)×w` matrix whose row `i` is the `V` row of global
    /// index `cols[i]` (used as the right operand of the right update
    /// `A ← A − Y·Vᵀ` for those global columns).
    pub fn vrows_for(&self, cols: &[usize]) -> Matrix {
        let m = self.vfull.rows();
        let r0 = self.v_row0();
        Matrix::from_fn(cols.len(), self.w, |i, l| {
            let g = cols[i];
            debug_assert!(g >= r0 && g < self.n);
            self.vfull.as_slice()[(g - r0) + l * m]
        })
    }

    /// `V` restricted to the caller's local rows in `[k+v_row_offset, n)`,
    /// given the distributed matrix it belongs to.
    pub fn v_for_local_rows(&self, a: &DistMatrix) -> Matrix {
        let r0 = self.v_row0();
        let lr0 = a.local_rows_below(r0);
        let lrn = a.local_rows_below(self.n);
        let m = self.vfull.rows();
        Matrix::from_fn(lrn - lr0, self.w, |i, l| {
            let g = a.l2g_row(lr0 + i);
            self.vfull.as_slice()[(g - r0) + l * m]
        })
    }
}

/// Extract this process's local rows in `[from_g, n)` of reflector columns
/// `0..j` of panel `k`, with explicit unit/zero structure. Reflector `l`'s
/// unit sits at global row `k + l + off` (`off` = the solver's
/// `v_row_offset`: 1 for Hessenberg, 0 for QR). Only meaningful on the
/// panel-owning process column.
fn extract_v_local(a: &DistMatrix, k: usize, j: usize, from_g: usize, n: usize, off: usize) -> Matrix {
    let lr0 = a.local_rows_below(from_g);
    let lrn = a.local_rows_below(n);
    let m = lrn - lr0;
    let mut v = Matrix::zeros(m, j);
    for l in 0..j {
        let unit = k + l + off;
        let lc = a.g2l_col(k + l);
        for i in 0..m {
            let g = a.l2g_row(lr0 + i);
            v[(i, l)] = match g.cmp(&unit) {
                std::cmp::Ordering::Less => 0.0,
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Greater => a.local()[(lr0 + i, lc)],
            };
        }
    }
    v
}

/// Replicate the reflector block of panel `[k, k+w)` on every process:
/// the `(n−k−off)×w` matrix `V` (global rows `k+off..n`, where `off` is the
/// solver's `v_row_offset` — 1 for Hessenberg reflectors below the first
/// subdiagonal, 0 for QR reflectors at the diagonal) with explicit
/// unit/zero structure, read from the reflectors stored in `a`. Collective.
/// Used by the panel factorizations themselves and by
/// [`crate::verify::pd_orghr`] / [`crate::verify::pd_orgqr`] to rebuild `Q`
/// after the fact.
pub fn replicate_reflector_block(ctx: &Ctx, a: &DistMatrix, n: usize, k: usize, w: usize, off: usize) -> Matrix {
    let q_pan = a.col_owner(k);
    let on_panel = ctx.mycol() == q_pan;
    let vm = n - k - off;
    let mut vfull_buf = vec![0.0f64; vm * w];
    if on_panel {
        let vmine = extract_v_local(a, k, w, k + off, n, off);
        let lr0 = a.local_rows_below(k + off);
        for l in 0..w {
            for i in 0..vmine.rows() {
                let g = a.l2g_row(lr0 + i);
                vfull_buf[(g - k - off) + l * vm] = vmine[(i, l)];
            }
        }
        ctx.allreduce_sum_col(&mut vfull_buf, TAG_VFULL);
    }
    ctx.bcast_row(q_pan, &mut vfull_buf, TAG_VFULLB);
    Matrix::from_vec(vm, w, vfull_buf)
}

/// Distributed panel factorization. SPMD: call on every process.
///
/// Requires the panel `[k, k+w)` to lie within one block column
/// (`w ≤ nb` and `k % nb == 0`) and `k + w ≤ n − 2`.
pub fn pdlahrd(ctx: &Ctx, a: &mut DistMatrix, n: usize, k: usize, w: usize) -> PanelFactors {
    assert!(w >= 1 && k + w < n, "pdlahrd: bad panel (k={k}, w={w}, n={n})");
    assert_eq!(k % a.desc().nb, 0, "pdlahrd: panel must start on a block boundary");
    assert!(w <= a.desc().nb, "pdlahrd: panel wider than the blocking factor");
    assert!(n <= a.desc().m && n <= a.desc().n, "pdlahrd: logical n exceeds the matrix");

    let q_pan = a.col_owner(k);
    let on_panel = ctx.mycol() == q_pan;
    let ldl = a.local().ld().max(1);
    let lr_n = a.local_rows_below(n);

    let mut t = Matrix::zeros(w, w);
    let mut tau = vec![0.0f64; w];
    let mut y_loc = Matrix::zeros(lr_n, w);
    let ldy = lr_n.max(1);

    for j in 0..w {
        let c = k + j;
        let u = c + 1;
        let lr0 = a.local_rows_below(k + 1);
        let mlen = lr_n - lr0;

        if on_panel {
            let lc = a.g2l_col(c);
            if j > 0 {
                // ---- right update of column c: b(k+1..n) −= Y(:,0..j)·vrowᵀ
                // vrow = row k+j of V columns 0..j (unit of reflector j−1 = 1).
                let p_r = a.row_owner(k + j);
                let mut vrow = vec![0.0; j];
                if ctx.myrow() == p_r {
                    let lrr = a.g2l_row(k + j);
                    for (l, vr) in vrow.iter_mut().enumerate() {
                        *vr = if l == j - 1 { 1.0 } else { a.local()[(lrr, a.g2l_col(k + l))] };
                    }
                }
                ctx.bcast_col(p_r, &mut vrow, TAG_VROW);
                if mlen > 0 {
                    let bcol = &mut a.local_mut().as_mut_slice()[lc * ldl + lr0..lc * ldl + lr_n];
                    gemv(Trans::No, mlen, j, -1.0, &y_loc.as_slice()[lr0..], ldy, &vrow, 1.0, bcol);
                }

                // ---- left update of column c: b −= V·Tᵀ·Vᵀ·b over rows k+1..n
                let vfix = extract_v_local(a, k, j, k + 1, n, 1);
                let mut wv = vec![0.0; j];
                if mlen > 0 {
                    let bcol = &a.local().as_slice()[lc * ldl + lr0..lc * ldl + lr_n];
                    gemv(Trans::Yes, mlen, j, 1.0, vfix.as_slice(), mlen.max(1), bcol, 0.0, &mut wv);
                }
                ctx.allreduce_sum_col(&mut wv, TAG_LEFTW);
                trmv(UpLo::Upper, Trans::Yes, Diag::NonUnit, j, t.as_slice(), w, &mut wv);
                if mlen > 0 {
                    let bcol = &mut a.local_mut().as_mut_slice()[lc * ldl + lr0..lc * ldl + lr_n];
                    gemv(Trans::No, mlen, j, -1.0, vfix.as_slice(), mlen.max(1), &wv, 1.0, bcol);
                }
            }

            // ---- generate the reflector for column c (distributed larfg) --
            let lr_u1 = a.local_rows_below(u + 1);
            let mut ss = [0.0f64];
            for lr in lr_u1..lr_n {
                let x = a.local()[(lr, lc)];
                ss[0] += x * x;
            }
            ctx.allreduce_sum_col(&mut ss, TAG_NRM);
            let p_u = a.row_owner(u);
            let mut al = vec![0.0f64];
            if ctx.myrow() == p_u {
                al[0] = a.get(u, c);
            }
            ctx.bcast_col(p_u, &mut al, TAG_ALPHA);
            let alpha = al[0];
            let xnorm = ss[0].sqrt();
            let tau_j = if xnorm == 0.0 {
                0.0
            } else {
                let beta = -f64::hypot(alpha, xnorm) * alpha.signum();
                let s = 1.0 / (alpha - beta);
                for lr in lr_u1..lr_n {
                    let v = &mut a.local_mut()[(lr, lc)];
                    *v *= s;
                }
                if ctx.myrow() == p_u {
                    a.set(u, c, beta);
                }
                (beta - alpha) / beta
            };
            tau[j] = tau_j;
        }

        // ---- replicate v = [1; A(u+1..n, c)] on every process -------------
        let mut v = vec![0.0f64; n - u];
        if on_panel {
            let lc = a.g2l_col(c);
            let lr_u = a.local_rows_below(u);
            for lr in lr_u..lr_n {
                let g = a.l2g_row(lr);
                v[g - u] = if g == u { 1.0 } else { a.local()[(lr, lc)] };
            }
            ctx.allreduce_sum_col(&mut v, TAG_VCOL);
        }
        ctx.bcast_row(q_pan, &mut v, TAG_VCAST);

        // ---- y(k+1..n) = A(k+1..n, c+1..n)·v : everyone contributes -------
        let lc0 = a.local_cols_below(c + 1);
        let lcn = a.local_cols_below(n);
        let ncl = lcn - lc0;
        let mut ypart = vec![0.0f64; mlen];
        if mlen > 0 && ncl > 0 {
            let xloc: Vec<f64> = (lc0..lcn).map(|lcx| v[a.l2g_col(lcx) - u]).collect();
            let abuf = &a.local().as_slice()[lc0 * ldl + lr0..];
            gemv(Trans::No, mlen, ncl, 1.0, abuf, ldl, &xloc, 0.0, &mut ypart);
        }
        ctx.reduce_sum_row(q_pan, &mut ypart, TAG_YRED);

        if on_panel {
            // ---- tcol = V(u..n, 0..j)ᵀ·v (rows ≥ u are plain stored data) --
            let lr_u = a.local_rows_below(u);
            let mmt = lr_n - lr_u;
            let mut tcol = vec![0.0f64; j];
            if j > 0 {
                if mmt > 0 {
                    let lck = a.g2l_col(k);
                    let vloc: Vec<f64> = (lr_u..lr_n).map(|lr| v[a.l2g_row(lr) - u]).collect();
                    let abuf = &a.local().as_slice()[lck * ldl + lr_u..];
                    gemv(Trans::Yes, mmt, j, 1.0, abuf, ldl, &vloc, 0.0, &mut tcol);
                }
                ctx.allreduce_sum_col(&mut tcol, TAG_TCOL);
            }

            // ---- assemble Y(:, j) and T(:, j) ------------------------------
            let tau_j = tau[j];
            {
                let (ydone, ycur) = y_loc.as_mut_slice().split_at_mut(j * ldy);
                let ycol = &mut ycur[lr0..lr_n];
                ycol.copy_from_slice(&ypart);
                if j > 0 && mlen > 0 {
                    gemv(Trans::No, mlen, j, -1.0, &ydone[lr0..], ldy, &tcol, 1.0, ycol);
                }
                scal(tau_j, ycol);
            }
            scal(-tau_j, &mut tcol);
            trmv(UpLo::Upper, Trans::No, Diag::NonUnit, j, t.as_slice(), w, &mut tcol);
            for (l, tv) in tcol.iter().enumerate() {
                t[(l, j)] = *tv;
            }
            t[(j, j)] = tau[j];
        }
    }

    // ---- replicate V (rows k+1..n, explicit structure) everywhere ---------
    let vfull = replicate_reflector_block(ctx, a, n, k, w, 1);

    // ---- Y top rows (0..=k): Y_top = A(0..=k, k+1..n)·V·T ------------------
    let lrtop = a.local_rows_below(k + 1);
    let lc0 = a.local_cols_below(k + 1);
    let lcn = a.local_cols_below(n);
    let ncl = lcn - lc0;
    let mut ptop = vec![0.0f64; lrtop * w];
    if lrtop > 0 && ncl > 0 {
        // vsel: V rows matching my local columns.
        let vsel = Matrix::from_fn(ncl, w, |i, l| {
            let g = a.l2g_col(lc0 + i);
            vfull[(g - k - 1, l)]
        });
        let abuf = &a.local().as_slice()[lc0 * ldl..];
        gemm(Trans::No, Trans::No, lrtop, w, ncl, 1.0, abuf, ldl, vsel.as_slice(), ncl, 0.0, &mut ptop, lrtop);
    }
    ctx.reduce_sum_row(q_pan, &mut ptop, TAG_PTOP);
    if on_panel && lrtop > 0 {
        trmm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, lrtop, w, 1.0, t.as_slice(), w, &mut ptop, lrtop);
        for l in 0..w {
            for i in 0..lrtop {
                y_loc[(i, l)] = ptop[i + l * lrtop];
            }
        }
    }

    // ---- top-row fix of the within-panel columns ---------------------------
    // A(0..=k, k+1..k+w) −= Y(0..=k, :)·V(row c, :)ᵀ finalizes the panel block
    // column completely, so the diskless checkpoint taken right after this
    // routine captures the panel's final state (ABFT Area-3 recovery relies
    // on that). This commutes with the trailing updates (disjoint columns).
    if on_panel && lrtop > 0 {
        let lcp0 = a.local_cols_below(k + 1);
        let lcp1 = a.local_cols_below(k + w);
        for lc in lcp0..lcp1 {
            let gc = a.l2g_col(lc);
            let vr: Vec<f64> = (0..w).map(|l| vfull[(gc - k - 1, l)]).collect();
            let cbuf = &mut a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrtop];
            gemv(Trans::No, lrtop, w, -1.0, y_loc.as_slice(), ldy, &vr, 1.0, cbuf);
        }
    }

    // ---- replicate Y (by row), T and tau across process rows ---------------
    let mut ybuf = y_loc.as_slice().to_vec();
    ctx.bcast_row(q_pan, &mut ybuf, TAG_YB);
    let y_loc = Matrix::from_vec(lr_n, w, ybuf);
    let mut tbuf = t.as_slice().to_vec();
    ctx.bcast_row(q_pan, &mut tbuf, TAG_TB);
    let t = Matrix::from_vec(w, w, tbuf);
    ctx.bcast_row(q_pan, &mut tau, TAG_TAUB);

    PanelFactors { k, w, n, v_row_offset: 1, tau, t, vfull, y_loc }
}

/// Distributed right-looking QR panel factorization (ScaLAPACK `PDGEQR2`
/// within one block column, plus replicated WY factor assembly). SPMD: call
/// on every process.
///
/// Reduces columns `k..k+w` of the distributed matrix to upper-triangular
/// form with Householder reflectors whose units sit **on the diagonal**
/// (`v_row_offset = 0`), storing reflectors below the diagonal with β at
/// the unit positions — the same storage convention as `pdlahrd`, shifted
/// up one row. Unlike Hessenberg, a QR panel needs no `Y = Â·V·T` running
/// product (the trailing matrix is touched only by the *left* update), so
/// only the panel-owning process column does per-column work; all other
/// processes participate solely in the final replication collectives.
/// `y_loc` comes back empty (`0×w`).
///
/// Requires the panel `[k, k+w)` to lie within one block column
/// (`w ≤ nb` and `k % nb == 0`) and `k + w ≤ n`.
pub fn pdlaqrf(ctx: &Ctx, a: &mut DistMatrix, n: usize, k: usize, w: usize) -> PanelFactors {
    assert!(w >= 1 && k + w <= n, "pdlaqrf: bad panel (k={k}, w={w}, n={n})");
    assert_eq!(k % a.desc().nb, 0, "pdlaqrf: panel must start on a block boundary");
    assert!(w <= a.desc().nb, "pdlaqrf: panel wider than the blocking factor");
    assert!(n <= a.desc().m && n <= a.desc().n, "pdlaqrf: logical n exceeds the matrix");

    let q_pan = a.col_owner(k);
    let on_panel = ctx.mycol() == q_pan;
    let ldl = a.local().ld().max(1);
    let lr_n = a.local_rows_below(n);
    let mut tau = vec![0.0f64; w];

    for (j, t) in tau.iter_mut().enumerate() {
        let c = k + j;
        let u = c; // unit on the diagonal
        if !on_panel {
            continue;
        }
        let lc = a.g2l_col(c);

        // ---- generate the reflector for column c (distributed larfg) ------
        let lr_u1 = a.local_rows_below(u + 1);
        let mut ss = [0.0f64];
        for lr in lr_u1..lr_n {
            let x = a.local()[(lr, lc)];
            ss[0] += x * x;
        }
        ctx.allreduce_sum_col(&mut ss, TAG_NRM);
        let p_u = a.row_owner(u);
        let mut al = vec![0.0f64];
        if ctx.myrow() == p_u {
            al[0] = a.get(u, c);
        }
        ctx.bcast_col(p_u, &mut al, TAG_ALPHA);
        let alpha = al[0];
        let xnorm = ss[0].sqrt();
        let tau_j = if xnorm == 0.0 {
            0.0
        } else {
            let beta = -f64::hypot(alpha, xnorm) * alpha.signum();
            let s = 1.0 / (alpha - beta);
            for lr in lr_u1..lr_n {
                let v = &mut a.local_mut()[(lr, lc)];
                *v *= s;
            }
            if ctx.myrow() == p_u {
                a.set(u, c, beta);
            }
            (beta - alpha) / beta
        };
        *t = tau_j;

        // ---- eager left application of H_j to the remaining panel columns
        // (rows u..n), the geqr2 step distributed over the process column.
        let rem = w - j - 1;
        if rem > 0 && tau_j != 0.0 {
            let lr_u = a.local_rows_below(u);
            let mt = lr_n - lr_u;
            let vj: Vec<f64> = (lr_u..lr_n)
                .map(|lr| {
                    let g = a.l2g_row(lr);
                    if g == u {
                        1.0
                    } else {
                        a.local()[(lr, lc)]
                    }
                })
                .collect();
            let lcc = a.g2l_col(c + 1);
            let mut wv = vec![0.0f64; rem];
            if mt > 0 {
                let cbuf = &a.local().as_slice()[lcc * ldl + lr_u..];
                gemv(Trans::Yes, mt, rem, 1.0, cbuf, ldl, &vj, 0.0, &mut wv);
            }
            ctx.allreduce_sum_col(&mut wv, TAG_LEFTW);
            if mt > 0 {
                for (jj, &wj) in wv.iter().enumerate() {
                    let cbuf = &mut a.local_mut().as_mut_slice()[(lcc + jj) * ldl + lr_u..(lcc + jj) * ldl + lr_n];
                    for (i, &vv) in vj.iter().enumerate() {
                        cbuf[i] -= tau_j * wj * vv;
                    }
                }
            }
        }
    }

    // ---- replicate V (rows k..n) and tau, assemble T locally --------------
    // T = larft(V, tau) is deterministic from replicated inputs, so every
    // process computes an identical copy without further communication.
    let vfull = replicate_reflector_block(ctx, a, n, k, w, 0);
    ctx.bcast_row(q_pan, &mut tau, TAG_TAUB);
    let mut t = Matrix::zeros(w, w);
    ft_lapack::householder::larft(vfull.rows(), w, vfull.as_slice(), vfull.rows().max(1), &tau, t.as_mut_slice(), w);
    let y_loc = Matrix::zeros(0, w);
    PanelFactors { k, w, n, v_row_offset: 0, tau, t, vfull, y_loc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Desc;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    /// Distributed panel must reproduce the shared-memory lahr2 outputs.
    #[test]
    fn pdlahrd_matches_shared_lahr2() {
        let n = 18;
        let nb = 4;
        let seed = 77;
        // Shared-memory reference.
        let mut aref = ft_dense::gen::uniform_indexed_matrix(n, n, seed);
        let mut tau_ref = vec![0.0; nb];
        let mut t_ref = Matrix::zeros(nb, nb);
        let mut y_ref = Matrix::zeros(n, nb);
        ft_lapack::lahr2(&mut aref, 0, nb, &mut tau_ref, &mut t_ref, &mut y_ref);
        // pdlahrd additionally applies the top-row fix to the within-panel
        // columns (k = 0 → row 0 of columns 1..nb); mirror it on the
        // reference. V(row g, l) = 0 / 1 / stored by position vs unit g=l+1.
        for gc in 1..nb {
            let mut s = 0.0;
            for l in 0..nb {
                let v = match gc.cmp(&(l + 1)) {
                    std::cmp::Ordering::Less => 0.0,
                    std::cmp::Ordering::Equal => 1.0,
                    std::cmp::Ordering::Greater => aref[(gc, l)],
                };
                s += y_ref[(0, l)] * v;
            }
            aref[(0, gc)] -= s;
        }

        for (p, q) in [(2usize, 2usize), (2, 3), (3, 2), (1, 1)] {
            let tau_ref = tau_ref.clone();
            let t_ref = t_ref.clone();
            let y_ref = y_ref.clone();
            let aref = aref.clone();
            run_spmd(p, q, FaultScript::none(), move |ctx| {
                let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
                let f = pdlahrd(&ctx, &mut a, n, 0, nb);
                // tau and T replicated and equal to reference.
                for (j, tr) in tau_ref.iter().enumerate() {
                    assert!((f.tau[j] - tr).abs() < 1e-12, "tau[{j}]");
                    for i in 0..=j {
                        assert!((f.t[(i, j)] - t_ref[(i, j)]).abs() < 1e-12, "T[{i},{j}]");
                    }
                }
                // V matches the reflectors stored by lahr2 (which stores β at
                // unit positions after the final restore — vfull holds 1).
                for l in 0..nb {
                    let unit = l + 1;
                    for g in 1..n {
                        let want = match g.cmp(&unit) {
                            std::cmp::Ordering::Less => 0.0,
                            std::cmp::Ordering::Equal => 1.0,
                            std::cmp::Ordering::Greater => aref[(g, l)],
                        };
                        assert!((f.vfull[(g - 1, l)] - want).abs() < 1e-12, "V[{g},{l}]: {} vs {want}", f.vfull[(g - 1, l)]);
                    }
                }
                // Y matches on my local rows.
                for lr in 0..f.y_loc.rows() {
                    let g = a.l2g_row(lr);
                    for l in 0..nb {
                        assert!(
                            (f.y_loc[(lr, l)] - y_ref[(g, l)]).abs() < 1e-10,
                            "Y[{g},{l}]: {} vs {}",
                            f.y_loc[(lr, l)],
                            y_ref[(g, l)]
                        );
                    }
                }
                // Panel columns of A match lahr2's in-place result.
                let ag = a.gather_all(&ctx, 990);
                for c in 0..nb {
                    for r in 0..n {
                        assert!((ag[(r, c)] - aref[(r, c)]).abs() < 1e-10, "A[{r},{c}]: {} vs {}", ag[(r, c)], aref[(r, c)]);
                    }
                }
            });
        }
    }

    /// Panels that do not start at column 0.
    #[test]
    fn pdlahrd_interior_panel_matches() {
        let n = 16;
        let nb = 3;
        let k = 3; // second block column
        let seed = 31;
        let mut aref = ft_dense::gen::uniform_indexed_matrix(n, n, seed);
        let mut tau_ref = vec![0.0; nb];
        let mut t_ref = Matrix::zeros(nb, nb);
        let mut y_ref = Matrix::zeros(n, nb);
        ft_lapack::lahr2(&mut aref, k, nb, &mut tau_ref, &mut t_ref, &mut y_ref);

        run_spmd(2, 2, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let f = pdlahrd(&ctx, &mut a, n, k, nb);
            for (j, tr) in tau_ref.iter().enumerate() {
                assert!((f.tau[j] - tr).abs() < 1e-12);
            }
            for lr in 0..f.y_loc.rows() {
                let g = a.l2g_row(lr);
                for l in 0..nb {
                    assert!((f.y_loc[(lr, l)] - y_ref[(g, l)]).abs() < 1e-10);
                }
            }
        });
    }

    #[test]
    fn vrows_helper_units_and_zeros() {
        let n = 10;
        run_spmd(1, 1, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb: 3 }, |i, j| uniform_entry(5, i, j));
            let f = pdlahrd(&ctx, &mut a, n, 0, 3);
            let vr = f.vrows_for(&[1, 2, 5]);
            // global row 1 = unit of reflector 0, zero for others
            assert_eq!(vr[(0, 0)], 1.0);
            assert_eq!(vr[(0, 1)], 0.0);
            assert_eq!(vr[(0, 2)], 0.0);
            // global row 2 = unit of reflector 1
            assert_eq!(vr[(1, 1)], 1.0);
            assert_eq!(vr[(1, 2)], 0.0);
            // row 5 all stored
            assert_eq!(vr[(2, 0)], f.vfull[(4, 0)]);
        });
    }
}
