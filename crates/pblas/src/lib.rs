//! # ft-pblas — 2D block-cyclic distribution and distributed kernels
//!
//! The ScaLAPACK/PBLAS substitute (DESIGN.md §2) built on the simulated
//! machine in [`ft_runtime`]:
//!
//! * [`layout`] — block-cyclic index arithmetic (`numroc`, `g2p`, `g2l`,
//!   `l2g`);
//! * [`dist`] — [`DistMatrix`], each process's local share of a global
//!   matrix (Figure 1 of the paper);
//! * [`panel`] — the distributed panel factorizations (`PDLAHRD` for
//!   Hessenberg, `PDLAQRF` for QR), returning the `(V, T, Y)` factors the
//!   ABFT layer must checkpoint;
//! * [`update`] — the `PDGEMM` right update and `PDLARFB` left update,
//!   parameterized over explicit column sets so the ABFT layer can route
//!   checksum columns through the identical code path;
//! * [`hessd`] — [`pdgehrd`], the fault-*intolerant* baseline (Algorithm 1)
//!   every experiment compares against;
//! * [`qrd`] — [`pdgeqrf`], the plain blocked QR baseline for the second
//!   solver of the ABFT framework.

pub mod dist;
pub mod hessd;
pub mod layout;
pub mod panel;
pub mod pdgemm;
pub mod qrd;
pub mod update;
pub mod verify;

pub use dist::{Desc, DistMatrix};
pub use hessd::pdgehrd;
pub use layout::{g2l, g2p, l2g, numroc};
pub use panel::{pdlahrd, pdlaqrf, replicate_reflector_block, PanelFactors};
pub use pdgemm::pdgemm;
pub use qrd::pdgeqrf;
pub use update::{apply_panel_updates, apply_qr_panel_updates, left_update, left_update_op, right_update};
pub use verify::{
    pd_chk_block_residual, pd_extract_h, pd_extract_r, pd_gather_traffic, pd_gather_transport, pd_hessenberg_residual,
    pd_inf_norm, pd_orghr, pd_orgqr, pd_orthogonality_residual, pd_qr_residual, Theorem1Violation,
};
