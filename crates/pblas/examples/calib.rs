//! Distributed-reduction throughput probe: effective GFLOP/s of `pdgehrd`
//! at the benchmark grid scales (all processes share this machine's cores).
//!
//! ```text
//! cargo run --release -p ft-pblas --example calib
//! ```

use ft_dense::gen::uniform_entry;
use ft_pblas::{pdgehrd, Desc, DistMatrix};
use ft_runtime::{run_spmd, FaultScript};
use std::time::Instant;

fn main() {
    println!("pdgehrd effective throughput (simulated grids on this machine):");
    for (g, n, nb) in [(2usize, 384usize, 16usize), (4, 768, 16), (6, 1152, 16)] {
        let t = Instant::now();
        run_spmd(g, g, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(1, i, j));
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
        });
        let dt = t.elapsed().as_secs_f64();
        let gf = 10.0 / 3.0 * (n as f64).powi(3) / dt / 1e9;
        println!("  {g}x{g} N={n}: {dt:.2}s  {gf:.2} GFLOP/s");
    }
}
