//! Storm battery for the framework's second solver: fault-tolerant
//! Householder QR (`ft_pdgeqrf`) under scripted fail-stop failures, chaos
//! kills at arbitrary message-op boundaries, and seeded SDC bit-flips —
//! all running on the *shared* driver/recovery/scrub machinery, with QR's
//! left-only update path (no pseudo-checksum `Ve`, empty `y_loc`).
//!
//! The oracle is eigen-free (there is no spectrum to compare): scaled
//! `‖A − QR‖` and `‖QᵀQ − I‖` residuals, plus parity of the recovered
//! factorization with the fault-free run to 1e-10 (recovery replays
//! deterministic collectives, so a healed run reproduces the clean one).

use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
use ft_dense::Matrix;
use ft_hess::{
    assert_theorem1, failpoint, ft_pdgeqrf, ft_pdgeqrf_full, ft_pdgeqrf_hooked, Encoded, FtReport, Phase, Redundancy,
    ScrubPolicy, Variant,
};
use ft_lapack::{extract_r, orgqr, orthogonality_residual, qr_residual, RESIDUAL_THRESHOLD};
use ft_runtime::{run_spmd, run_spmd_chaos, ChaosScript, Ctx, FaultScript, PlannedFailure};

/// Fault-free reference factorization (gathered logical matrix + tau).
fn clean_run(n: usize, nb: usize, p: usize, q: usize, seed: u64, variant: Variant, red: Redundancy) -> (Matrix, Vec<f64>) {
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n];
        ft_pdgeqrf(&ctx, &mut enc, variant, &mut tau).expect("fault-free");
        (enc.gather_logical(&ctx, 900), tau)
    })
    .into_iter()
    .next()
    .unwrap()
}

/// Run QR under `script` + `chaos`; returns rank 0's gathered state.
#[allow(clippy::too_many_arguments)]
fn storm_run(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    script: FaultScript,
    chaos: ChaosScript,
) -> (Matrix, Vec<f64>, FtReport) {
    let results = run_spmd_chaos(p, q, script, chaos, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n];
        let report = ft_pdgeqrf(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        let ag = enc.gather_logical(&ctx, 902);
        (ctx.rank() == 0).then_some((ag, tau, report))
    });
    results.into_iter().flatten().next().unwrap()
}

/// The eigen-free correctness oracle: scaled QR + orthogonality residuals
/// of the gathered factorization against the original matrix.
fn assert_qr_residuals(label: &str, n: usize, seed: u64, ag: &Matrix, tau: &[f64]) {
    let a0 = uniform_indexed_matrix(n, n, seed);
    let qm = orgqr(ag, tau);
    let res = qr_residual(&a0, &qm, &extract_r(ag));
    let orth = orthogonality_residual(&qm);
    assert!(res < RESIDUAL_THRESHOLD, "{label}: QR residual {res}");
    assert!(orth < RESIDUAL_THRESHOLD, "{label}: orthogonality {orth}");
}

/// Parity of a recovered run with the fault-free one — factorization and
/// tau to 1e-10 (deterministic replay makes recovery reproduce the clean
/// computation; the tolerance only absorbs printing-free bit equality we
/// don't insist on here).
fn assert_parity(label: &str, got: &(Matrix, Vec<f64>), want: &(Matrix, Vec<f64>)) {
    let d = got.0.max_abs_diff(&want.0);
    assert!(d < 1e-10, "{label}: matrix diff {d}");
    let dt = got.1.iter().zip(&want.1).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(dt < 1e-10, "{label}: tau diff {dt}");
}

/// Theorem 1 for the left-only solver: the Non-delayed QR maintains the
/// row-checksum invariant after **every** phase of every panel — with no
/// `Ve` machinery at all, because left updates mix rows only. This is the
/// QR counterpart of the Hessenberg invariance sweep in `ft_correctness`.
#[test]
fn qr_nondelayed_theorem1_every_phase() {
    let (n, nb, p, q) = (24usize, 2usize, 2usize, 2usize);
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(41, i, j));
        let mut tau = vec![0.0; n];
        let mut checked = 0usize;
        ft_pdgeqrf_hooked(&ctx, &mut enc, Variant::NonDelayed, &mut tau, &mut |ctx, enc, panel, phase| {
            let s = panel / ctx.npcol(); // w == nb here, so panel index == block column
            checked += assert_theorem1(ctx, enc, s, 1e-11, "qr", &format!("qr panel {panel} {phase:?}"));
        })
        .expect("fault-free run");
        assert!(checked > 20, "only {checked} invariant checks ran");
    });
}

/// The Delayed QR owes the invariant at scope-opening boundaries, after
/// the catch-up — which for a left-only solver runs left halves only.
#[test]
fn qr_delayed_theorem1_at_scope_boundaries() {
    let (n, nb, p, q) = (24usize, 2usize, 2usize, 2usize);
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(43, i, j));
        let mut tau = vec![0.0; n];
        ft_pdgeqrf_hooked(&ctx, &mut enc, Variant::Delayed, &mut tau, &mut |ctx, enc, panel, phase| {
            if phase == Phase::BeforePanel && panel % ctx.npcol() == 0 {
                let s = panel / ctx.npcol();
                assert_theorem1(ctx, enc, s, 1e-11, "qr", &format!("qr scope boundary at panel {panel}"));
            }
        })
        .expect("fault-free run");
    });
}

/// Scripted fail-stop sweep: one failure in every scope, rotating victims
/// and phases (including the no-op Right step, which must still carry its
/// fail point for solver-identical rollback boundaries). Each leg must
/// reproduce the fault-free factorization to 1e-10 — Areas 1–4 recovery
/// through the shared framework, exercised by the left-only solver.
#[test]
fn qr_scripted_storm_recovers_exactly() {
    let (n, nb, p, q) = (32usize, 4usize, 2usize, 2usize);
    let seed = 47;
    let reference = clean_run(n, nb, p, q, seed, Variant::NonDelayed, Redundancy::Single);
    let phases = [
        Phase::AfterPanel,
        Phase::AfterRightUpdate,
        Phase::AfterLeftUpdate,
        Phase::BeforePanel,
    ];
    let panels = n / nb; // QR tiles all of n
    let mut failures = Vec::new();
    for (i, panel) in (1..panels).step_by(q).enumerate() {
        failures.push(PlannedFailure {
            victim: (2 * i + 1) % (p * q),
            point: failpoint(panel, phases[i % phases.len()]),
        });
    }
    assert!(failures.len() >= 3, "storm too small");
    let total = failures.len();
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::new(failures), ChaosScript::none());
    assert_eq!(report.victims.len(), total);
    assert_qr_residuals("qr scripted storm", n, seed, &ag, &tau);
    assert_parity("qr scripted storm", &(ag, tau), &reference);
}

/// The Delayed variant under scripted failures at every phase of one
/// mid-scope panel: recovery's catch-up must skip the right halves (QR has
/// none) while the progress markers advance identically.
#[test]
fn qr_delayed_scripted_failures_each_phase() {
    let (n, nb, p, q) = (24usize, 2usize, 2usize, 2usize);
    let seed = 53;
    let reference = clean_run(n, nb, p, q, seed, Variant::Delayed, Redundancy::Single);
    for phase in Phase::ALL {
        for victim in [0usize, 3] {
            let (ag, tau, report) = storm_run(
                n,
                nb,
                p,
                q,
                seed,
                Variant::Delayed,
                FaultScript::one(victim, failpoint(5, phase)),
                ChaosScript::none(),
            );
            assert_eq!(report.recoveries, 1, "victim {victim} {phase:?}");
            assert_qr_residuals(&format!("qr delayed v{victim} {phase:?}"), n, seed, &ag, &tau);
            assert_parity(&format!("qr delayed v{victim} {phase:?}"), &(ag, tau), &reference);
        }
    }
}

/// A chaos kill at an arbitrary, un-scripted message-op boundary of a QR
/// run on a 2×2 grid: abort mid-phase, roll back to the last committed
/// boundary image, recover, finish — with residual/orthogonality parity
/// against the fault-free run. This is the acceptance scenario for the
/// second solver riding the shared chaos machinery.
#[test]
fn qr_chaos_kill_mid_factorization_recovers() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 59;
    let reference = clean_run(n, nb, p, q, seed, Variant::NonDelayed, Redundancy::Single);
    // The whole run is ~204 message ops at this size (probed with a
    // never-firing script + `ctx.chaos_ops()`); strike early, mid, late.
    for (victim, op) in [(2usize, 40u64), (1, 110), (3, 180)] {
        let (ag, tau, report) =
            storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none(), ChaosScript::at_op(victim, op));
        assert!(report.chaos_aborts > 0, "kill at op {op} never fired");
        assert_eq!(report.recoveries, 1, "victim {victim} op {op}");
        assert_eq!(report.victims, vec![victim]);
        assert_qr_residuals(&format!("qr chaos v{victim} op{op}"), n, seed, &ag, &tau);
        assert_parity(&format!("qr chaos v{victim} op{op}"), &(ag, tau), &reference);
    }
}

/// Scrubbed QR run with a one-shot flip injected through the hook at
/// `(panel, AfterLeftUpdate)`; returns every rank's gathered state + report.
#[allow(clippy::too_many_arguments)]
fn qr_flip_run(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    red: Redundancy,
    panel: usize,
    flip: (usize, usize, f64),
) -> Vec<(Matrix, Vec<f64>, ft_hess::ScrubReport)> {
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n];
        let mut fired = false;
        let mut hook = |_ctx: &Ctx, enc: &mut Encoded, pi: usize, ph: Phase| {
            if !fired && pi == panel && ph == Phase::AfterLeftUpdate {
                fired = true;
                if enc.a.owns_row(flip.0) && enc.a.owns_col(flip.1) {
                    let v = enc.a.get(flip.0, flip.1);
                    enc.a.set(flip.0, flip.1, v + flip.2);
                }
            }
        };
        let rep = ft_pdgeqrf_full(&ctx, &mut enc, Variant::NonDelayed, &mut tau, ScrubPolicy::every_panels(1), &mut hook)
            .expect("scrub heals");
        (enc.gather_logical(&ctx, 904), tau, rep.scrub)
    })
}

/// The acceptance scenario: a seeded SDC bit-flip-style corruption on the
/// 2×2 grid. With only `Single` redundancy (all Q = 2 admits), the scrub
/// engine detects the violation, cannot localize, and escalates to a
/// verified-boundary rollback — healing the run to exact parity with the
/// flip-free reference.
#[test]
fn qr_sdc_flip_on_2x2_escalates_to_rollback_and_heals() {
    let (n, nb, p, q) = (24usize, 2usize, 2usize, 2usize);
    let seed = 61;
    let reference = clean_run(n, nb, p, q, seed, Variant::NonDelayed, Redundancy::Single);
    for (panel, flip_col) in [(1usize, 8usize), (3, 14)] {
        let results = qr_flip_run(n, nb, p, q, seed, Redundancy::Single, panel, (n - 1, flip_col, 0.43));
        for (ag, tau, scrub) in results {
            assert!(scrub.detections >= 1, "panel {panel} col {flip_col}: no detection");
            assert_eq!(scrub.corrections, 0, "Single cannot localize on Q > 1");
            assert!(scrub.escalations >= 1, "panel {panel} col {flip_col}");
            assert!(scrub.rollbacks >= 1, "panel {panel} col {flip_col}");
            assert_qr_residuals(&format!("qr sdc 2x2 panel {panel} col {flip_col}"), n, seed, &ag, &tau);
            assert_parity(&format!("qr sdc 2x2 panel {panel} col {flip_col}"), &(ag, tau), &reference);
        }
    }
}

/// With `Dual` redundancy (needs Q ≥ 4 process columns) the same flip is
/// localized to its member block and corrected in place — no rollback.
#[test]
fn qr_sdc_flip_corrected_in_place_dual() {
    let (n, nb, p, q) = (32usize, 2usize, 2usize, 4usize);
    let seed = 63;
    let reference = clean_run(n, nb, p, q, seed, Variant::NonDelayed, Redundancy::Dual);
    let (panel, flip_col) = (2usize, 16usize); // trailing group for scope 0
    let results = qr_flip_run(n, nb, p, q, seed, Redundancy::Dual, panel, (n - 1, flip_col, 0.37));
    for (ag, tau, scrub) in results {
        assert!(scrub.detections >= 1, "no detection");
        assert!(scrub.corrections >= 1, "no in-place correction");
        assert_eq!(scrub.escalations, 0);
        assert_eq!(scrub.rollbacks, 0);
        assert_qr_residuals("qr sdc dual", n, seed, &ag, &tau);
        assert_parity("qr sdc dual", &(ag, tau), &reference);
    }
}

/// Coded(f) on the second solver: k simultaneous same-row victims for every
/// k ≤ f = 3 reconstruct through the shared Vandermonde solve and reproduce
/// the fault-free QR factorization to 1e-10 parity.
#[test]
fn qr_coded3_multi_kill_same_row_recovers_exactly() {
    let (n, nb, p, q) = (24usize, 2usize, 1usize, 6usize);
    let seed = 69;
    let reference = clean_run(n, nb, p, q, seed, Variant::NonDelayed, Redundancy::Coded(3));
    for victims in [vec![4usize], vec![0, 3], vec![1, 3, 5]] {
        let script = FaultScript::new(
            victims
                .iter()
                .map(|&v| PlannedFailure { victim: v, point: failpoint(3, Phase::AfterLeftUpdate) })
                .collect(),
        );
        let (ag, tau, rec) = run_spmd(p, q, script, move |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Coded(3), |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n];
            let rep = ft_pdgeqrf(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
            (enc.gather_logical(&ctx, 906), tau, rep.recoveries)
        })
        .into_iter()
        .next()
        .unwrap();
        assert_eq!(rec, 1, "victims {victims:?}");
        assert_qr_residuals(&format!("qr coded3 {victims:?}"), n, seed, &ag, &tau);
        assert_parity(&format!("qr coded3 {victims:?}"), &(ag, tau), &reference);
    }
}

/// Beyond-distance on QR: k = f + 1 same-row victims yield the identical
/// typed `ExceededCodeDistance` on every rank of the second solver too.
#[test]
fn qr_coded2_beyond_distance_rejected() {
    let script = FaultScript::new(
        (0..3)
            .map(|v| PlannedFailure { victim: v, point: failpoint(2, Phase::AfterPanel) })
            .collect(),
    );
    let errs = run_spmd(1, 4, script, |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Coded(2), |i, j| uniform_entry(71, i, j));
        let mut tau = vec![0.0; 16];
        ft_pdgeqrf(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let ft_hess::FtError::ExceededCodeDistance { victims, row, count, max_per_row, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1, 2]);
        assert_eq!((*row, *count, *max_per_row), (0, 3, 2));
    }
}

/// Determinism witness: two identical fault-injected runs produce bitwise
/// identical factorizations — the property all parity checks above lean on.
#[test]
fn qr_recovered_runs_are_deterministic() {
    let (n, nb, p, q) = (24usize, 2usize, 2usize, 2usize);
    let seed = 67;
    let run = || {
        storm_run(
            n,
            nb,
            p,
            q,
            seed,
            Variant::NonDelayed,
            FaultScript::one(1, failpoint(3, Phase::AfterPanel)),
            ChaosScript::none(),
        )
    };
    let (a1, t1, _) = run();
    let (a2, t2, _) = run();
    assert_eq!(a1.max_abs_diff(&a2), 0.0);
    assert_eq!(t1, t2);
}
