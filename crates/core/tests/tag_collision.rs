//! Guard test for the message-tag channel map (DESIGN.md §3): every
//! subsystem carves private channel sub-ranges out of its `Tag` family, and
//! nothing but convention keeps them apart. This test enumerates every
//! channel each subsystem can legally use — over the full legal parameter
//! space of `N`, `nb`, `Q`, redundancy copies and backup-holder distances —
//! and asserts the combined set is collision-free. Adding a tag that
//! overlaps an existing range fails here, not as a cross-protocol message
//! mix-up three layers deep.

use ft_runtime::Tag;
use std::collections::HashMap;

/// The per-panel offset families `TAG_A12_RED`/`TAG_A12_CHK` are offset by
/// the recovered-column/copy index, so each owns a range this wide starting
/// at its base. No legal `nb` or copy count comes anywhere near it.
const A12_RANGE: u16 = 0x1000;

/// Largest legal panel width we guard for (the drivers assert `nb ≥ 1`;
/// production runs use `nb ≤ 64`, the guard is generous).
const NB_MAX: u16 = 256;
/// Checksum copies: `Redundancy::Single`/`Dual` both keep 2; the guard
/// covers a hypothetical 4-copy extension (the issue's stated ceiling).
const NCOPIES_MAX: u16 = 4;
/// Backup-holder ring distances: `holders ≤ max_failures_per_row() ≤ 2`.
const HOLDERS_MAX: u16 = 2;

/// Every (subsystem, channel) the codebase can put on the wire, with a
/// human-readable owner for the failure message.
fn inventory() -> Vec<(&'static str, Tag)> {
    let mut tags: Vec<(&'static str, Tag)> = Vec::new();

    // pblas panel factorization: Panel(0..=13).
    for c in 0..=13 {
        tags.push(("pblas/panel", Tag::Panel(c)));
    }
    // pblas SUMMA pdgemm: Trailing(0..=5); pblas left update: Trailing(8).
    for c in 0..=5 {
        tags.push(("pblas/pdgemm", Tag::Trailing(c)));
    }
    tags.push(("pblas/left-update", Tag::Trailing(8)));
    // pblas verification gathers.
    tags.push(("pblas/verify", Tag::User(0x170)));

    // Initial encoding: Checksum(0) offset by the copy index.
    for copy in 0..NCOPIES_MAX {
        tags.push(("core/encode", Tag::Checksum(0).offset(copy)));
    }
    // Scrub engine: TAG_SCRUB = Checksum(0x80). The per-copy residual
    // kernels use offsets 4·copy off the base (and off base+36 for the
    // correction-path verification); the correction protocol itself uses
    // the single offsets 32 and 34. TAG_T1 = Checksum(0x90), residual
    // kernel offsets 4·copy.
    for base in [0, 36] {
        for copy in 0..NCOPIES_MAX {
            tags.push(("core/scrub-residual", Tag::Checksum(0x80).offset(base + 4 * copy)));
        }
    }
    tags.push(("core/scrub-correct-red", Tag::Checksum(0x80).offset(32)));
    tags.push(("core/scrub-correct-move", Tag::Checksum(0x80).offset(34)));
    for copy in 0..NCOPIES_MAX {
        tags.push(("core/scrub-t1", Tag::Checksum(0x90).offset(4 * copy)));
    }

    // Checkpoint/restart baseline: Checkpoint(0), Recovery(0x10..=0x11).
    tags.push(("core/ckpt", Tag::Checkpoint(0)));
    tags.push(("core/ckpt-restore", Tag::Recovery(0x10)));
    tags.push(("core/ckpt-rearm", Tag::Recovery(0x11)));

    // Scope snapshots + bookkeeping: Checkpoint(0x100/0x200) offset by the
    // ring distance d = 1..=holders.
    for d in 1..=HOLDERS_MAX {
        tags.push(("core/scope-snap", Tag::Checkpoint(0x100).offset(d)));
        tags.push(("core/scope-book", Tag::Checkpoint(0x200).offset(d)));
    }
    // Scope repair: Recovery(0x20..=0x23).
    for c in 0x20..=0x23 {
        tags.push(("core/scope-repair", Tag::Recovery(c)));
    }

    // §5.3 recovery: Recovery(0x40/0x41) plus the per-column offset
    // families at 0x1000/0x2000.
    tags.push(("core/recovery-dup", Tag::Recovery(0x40)));
    tags.push(("core/recovery-peer", Tag::Recovery(0x41)));
    for c in 0..A12_RANGE {
        tags.push(("core/recovery-a12-red", Tag::Recovery(0x1000).offset(c)));
        tags.push(("core/recovery-a12-chk", Tag::Recovery(0x2000).offset(c)));
    }

    // Distributed recovery handshake: Recovery(0x50/0x51).
    tags.push(("core/dist-ctl-image", Tag::Recovery(0x50)));
    tags.push(("core/dist-boundary-min", Tag::Recovery(0x51)));

    tags
}

#[test]
fn subsystem_tag_ranges_never_collide() {
    let mut seen: HashMap<Tag, &'static str> = HashMap::new();
    for (owner, tag) in inventory() {
        if let Some(prev) = seen.insert(tag, owner) {
            // Same owner re-listing a channel is fine (scrub's offset
            // grids overlap within the subsystem by construction); a
            // *cross*-subsystem collision is the bug this test guards.
            assert_eq!(prev, owner, "tag {tag:?} claimed by both {prev} and {owner}");
        }
    }
}

#[test]
fn a12_offset_families_hold_any_legal_panel_width() {
    // The recovered-column offsets stay inside each family's range for any
    // legal nb (and any copy count): 0x1000 + c < 0x2000 and 0x2000 + c
    // stays within u16 for every c the recovery can produce.
    let c_max = (NB_MAX * NCOPIES_MAX).max(NCOPIES_MAX);
    assert!(c_max < A12_RANGE, "A12 offset range too narrow for nb = {NB_MAX}");
    assert!(0x2000u16.checked_add(A12_RANGE - 1).is_some(), "A12_CHK family overflows u16");
}
