//! Tests of the `Redundancy::Dual` extension — the paper's §8 future work
//! ("tolerate multiple simultaneous failures"): Vandermonde-weighted
//! checksums (4 per group, any 2 surviving rows reconstruct 2 lost member
//! blocks) plus dual-holder diskless checkpoints, tolerating **two**
//! simultaneous failures in the *same* process row.

use ft_dense::gen::uniform_entry;
use ft_dense::Matrix;
use ft_hess::{failpoint, ft_pdgehrd, Encoded, FtError, Phase, Redundancy, Variant};
use ft_runtime::{run_spmd, FaultScript, PlannedFailure};

#[allow(clippy::too_many_arguments)]
fn ft_result(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    red: Redundancy,
    script: FaultScript,
) -> (Matrix, usize) {
    run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        (enc.gather_logical(&ctx, 630), rep.recoveries)
    })
    .into_iter()
    .next()
    .unwrap()
}

#[test]
fn dual_fault_free_matches_single() {
    // The weighted checksums ride along without touching the logical
    // computation: bitwise identical results across redundancy levels.
    let (n, nb, p, q) = (16, 2, 2, 4);
    let (a_single, _) = ft_result(n, nb, p, q, 50, Variant::NonDelayed, Redundancy::Single, FaultScript::none());
    let (a_dual, _) = ft_result(n, nb, p, q, 50, Variant::NonDelayed, Redundancy::Dual, FaultScript::none());
    assert_eq!(a_single.max_abs_diff(&a_dual), 0.0);
}

#[test]
fn dual_survives_single_failures_like_single() {
    let (n, nb, p, q) = (16, 2, 2, 4);
    let (reference, _) = ft_result(n, nb, p, q, 51, Variant::NonDelayed, Redundancy::Dual, FaultScript::none());
    for phase in Phase::ALL {
        let (got, rec) =
            ft_result(n, nb, p, q, 51, Variant::NonDelayed, Redundancy::Dual, FaultScript::one(5, failpoint(2, phase)));
        assert_eq!(rec, 1);
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-9, "{phase:?}: diff {d}");
    }
}

/// The headline capability: two victims in the SAME process row at the same
/// instant — impossible under the paper's scheme, recovered under Dual.
#[test]
fn dual_survives_two_failures_same_row() {
    let (n, nb, p, q) = (16, 2, 2, 4);
    let (reference, _) = ft_result(n, nb, p, q, 52, Variant::NonDelayed, Redundancy::Dual, FaultScript::none());
    // Ranks 4..8 are process row 1 on a 2×4 grid; pick columns 1 and 3.
    for (va, vb) in [(5usize, 7usize), (4, 5), (6, 7), (4, 7)] {
        for phase in Phase::ALL {
            let script = FaultScript::new(vec![
                PlannedFailure { victim: va, point: failpoint(3, phase) },
                PlannedFailure { victim: vb, point: failpoint(3, phase) },
            ]);
            let (got, rec) = ft_result(n, nb, p, q, 52, Variant::NonDelayed, Redundancy::Dual, script);
            assert_eq!(rec, 1);
            let d = got.max_abs_diff(&reference);
            assert!(d < 1e-8, "victims ({va},{vb}) {phase:?}: diff {d}");
        }
    }
}

#[test]
fn dual_survives_two_failures_adjacent_columns() {
    // Adjacent victim columns stress the holder chains the hardest (one of
    // each victim's two holders is the other victim).
    let (n, nb, p, q) = (24, 2, 2, 4);
    let (reference, _) = ft_result(n, nb, p, q, 53, Variant::Delayed, Redundancy::Dual, FaultScript::none());
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 4, point: failpoint(5, Phase::AfterRightUpdate) },
        PlannedFailure { victim: 5, point: failpoint(5, Phase::AfterRightUpdate) },
    ]);
    let (got, rec) = ft_result(n, nb, p, q, 53, Variant::Delayed, Redundancy::Dual, script);
    assert_eq!(rec, 1);
    let d = got.max_abs_diff(&reference);
    assert!(d < 1e-8, "diff {d}");
}

#[test]
fn dual_survives_four_victims_two_rows() {
    // Two victims in each of two rows simultaneously.
    let (n, nb, p, q) = (16, 2, 2, 4);
    let (reference, _) = ft_result(n, nb, p, q, 54, Variant::NonDelayed, Redundancy::Dual, FaultScript::none());
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 0, point: failpoint(4, Phase::AfterLeftUpdate) },
        PlannedFailure { victim: 2, point: failpoint(4, Phase::AfterLeftUpdate) },
        PlannedFailure { victim: 5, point: failpoint(4, Phase::AfterLeftUpdate) },
        PlannedFailure { victim: 7, point: failpoint(4, Phase::AfterLeftUpdate) },
    ]);
    let (got, rec) = ft_result(n, nb, p, q, 54, Variant::NonDelayed, Redundancy::Dual, script);
    assert_eq!(rec, 1);
    let d = got.max_abs_diff(&reference);
    assert!(d < 1e-8, "diff {d}");
}

#[test]
fn dual_sweep_over_panels_and_phases() {
    let (n, nb, p, q) = (16, 2, 2, 4);
    let (reference, _) = ft_result(n, nb, p, q, 55, Variant::NonDelayed, Redundancy::Dual, FaultScript::none());
    let panels = 7; // (16-2)/2
    for panel in 0..panels {
        for phase in [Phase::AfterPanel, Phase::AfterLeftUpdate] {
            let script = FaultScript::new(vec![
                PlannedFailure { victim: 1, point: failpoint(panel, phase) },
                PlannedFailure { victim: 2, point: failpoint(panel, phase) },
            ]);
            let (got, rec) = ft_result(n, nb, p, q, 55, Variant::NonDelayed, Redundancy::Dual, script);
            assert_eq!(rec, 1);
            let d = got.max_abs_diff(&reference);
            assert!(d < 1e-8, "panel {panel} {phase:?}: diff {d}");
        }
    }
}

#[test]
fn three_failures_same_row_rejected_even_dual() {
    // Beyond even the Dual tolerance: a typed error on every rank, no panic.
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 4, point: failpoint(1, Phase::AfterPanel) },
        PlannedFailure { victim: 5, point: failpoint(1, Phase::AfterPanel) },
        PlannedFailure { victim: 6, point: failpoint(1, Phase::AfterPanel) },
    ]);
    let errs = run_spmd(2, 4, script, |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(56, i, j));
        let mut tau = vec![0.0; 15];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ExceededCodeDistance { victims, row, count, max_per_row, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[4, 5, 6]);
        assert_eq!((*row, *count, *max_per_row), (1, 3, 2));
    }
}

#[test]
fn dual_requires_q_at_least_4() {
    let result = std::panic::catch_unwind(|| {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            let _ = Encoded::with_redundancy(&ctx, 12, 2, Redundancy::Dual, |_, _| 0.0);
        })
    });
    assert!(result.is_err());
}

#[test]
fn weighted_checksums_detect_corruption() {
    // The Vandermonde weights keep per-copy violation proportional to the
    // weight of the corrupted member — the locate signal.
    run_spmd(1, 4, FaultScript::none(), |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 8, 2, Redundancy::Dual, |i, j| (i * 8 + j) as f64);
        enc.compute_initial_checksums(&ctx);
        // Corrupt one entry in member index 2 of group 0 (column 4).
        if enc.a.owns_row(3) && enc.a.owns_col(4) {
            let v = enc.a.get(3, 4);
            enc.a.set(3, 4, v + 5.0);
        }
        let v0 = enc.checksum_violation(&ctx, 0, 0, 7200);
        let v1 = enc.checksum_violation(&ctx, 0, 1, 7210);
        let v2 = enc.checksum_violation(&ctx, 0, 2, 7220);
        // Member 2 of a 4-member group has node 1 + 2/4 = 1.5.
        assert!((v0 - 5.0).abs() < 1e-9, "copy0 violation {v0}");
        assert!((v1 - 7.5).abs() < 1e-9, "copy1 violation {v1} (node 1.5)");
        assert!((v2 - 11.25).abs() < 1e-9, "copy2 violation {v2} (node² 2.25)");
        // Ratio v1/v0 = node of the corrupted member → locates it.
        assert!(((v1 / v0) - 1.5).abs() < 1e-9);
    });
}
