//! Edge cases of the fault-tolerant reduction: extreme geometry, boundary
//! failure placement, and misuse detection.

use ft_dense::gen::uniform_entry;
use ft_dense::Matrix;
use ft_hess::{failpoint, ft_pdgehrd, Encoded, FtError, Phase, Variant};
use ft_runtime::{run_spmd, FaultScript, PlannedFailure};

fn ft_result(n: usize, nb: usize, p: usize, q: usize, seed: u64, variant: Variant, script: FaultScript) -> Matrix {
    run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        enc.gather_logical(&ctx, 620)
    })
    .into_iter()
    .next()
    .unwrap()
}

fn last_panel(n: usize, nb: usize) -> usize {
    let (mut c, mut k) = (0usize, 0usize);
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c - 1
}

#[test]
fn failure_in_very_first_panel() {
    let (n, nb, p, q) = (12, 2, 2, 2);
    let reference = ft_result(n, nb, p, q, 5, Variant::NonDelayed, FaultScript::none());
    for phase in Phase::ALL {
        let got = ft_result(n, nb, p, q, 5, Variant::NonDelayed, FaultScript::one(3, failpoint(0, phase)));
        assert!(got.max_abs_diff(&reference) < 1e-10, "{phase:?}");
    }
}

#[test]
fn failure_in_very_last_panel() {
    let (n, nb, p, q) = (14, 2, 2, 2);
    let lp = last_panel(n, nb);
    let reference = ft_result(n, nb, p, q, 6, Variant::NonDelayed, FaultScript::none());
    for phase in Phase::ALL {
        let got = ft_result(n, nb, p, q, 6, Variant::NonDelayed, FaultScript::one(2, failpoint(lp, phase)));
        assert!(got.max_abs_diff(&reference) < 1e-10, "{phase:?}");
    }
}

#[test]
fn single_process_row_grid() {
    // P = 1: every process is alone in its row; single failures still
    // recoverable (the constraint is per-row, and each row has one victim).
    let (n, nb, p, q) = (12, 2, 1, 3);
    let reference = ft_result(n, nb, p, q, 7, Variant::NonDelayed, FaultScript::none());
    for victim in 0..3 {
        let got = ft_result(n, nb, p, q, 7, Variant::NonDelayed, FaultScript::one(victim, failpoint(2, Phase::AfterRightUpdate)));
        assert!(got.max_abs_diff(&reference) < 1e-10, "victim {victim}");
    }
}

#[test]
fn tall_grid_many_rows() {
    let (n, nb, p, q) = (16, 2, 4, 2);
    let reference = ft_result(n, nb, p, q, 8, Variant::Delayed, FaultScript::none());
    let got = ft_result(n, nb, p, q, 8, Variant::Delayed, FaultScript::one(5, failpoint(3, Phase::AfterLeftUpdate)));
    assert!(got.max_abs_diff(&reference) < 1e-10);
}

#[test]
fn rank_zero_is_not_special() {
    // Rank 0 often plays collective-root roles; it must be as expendable
    // as anyone else.
    let (n, nb, p, q) = (12, 2, 2, 3);
    let reference = ft_result(n, nb, p, q, 9, Variant::NonDelayed, FaultScript::none());
    for phase in Phase::ALL {
        let got = ft_result(n, nb, p, q, 9, Variant::NonDelayed, FaultScript::one(0, failpoint(1, phase)));
        assert!(got.max_abs_diff(&reference) < 1e-10, "{phase:?}");
    }
}

#[test]
fn nb_equals_n_over_two() {
    // Giant blocking factor: two block columns, one checksum group per
    // process-column pair; scope logic still sound.
    let (n, nb, p, q) = (16, 8, 2, 2);
    let reference = ft_result(n, nb, p, q, 10, Variant::NonDelayed, FaultScript::none());
    let got = ft_result(n, nb, p, q, 10, Variant::NonDelayed, FaultScript::one(1, failpoint(0, Phase::AfterPanel)));
    assert!(got.max_abs_diff(&reference) < 1e-10);
}

#[test]
fn nb_one_degenerate_blocks() {
    let (n, nb, p, q) = (10, 1, 2, 2);
    let reference = ft_result(n, nb, p, q, 11, Variant::NonDelayed, FaultScript::none());
    let got = ft_result(n, nb, p, q, 11, Variant::NonDelayed, FaultScript::one(2, failpoint(4, Phase::AfterLeftUpdate)));
    assert!(got.max_abs_diff(&reference) < 1e-10);
}

#[test]
fn tiny_matrices_no_panels() {
    // n ≤ 2: nothing to reduce; the FT driver must still terminate cleanly
    // (encode + no iterations).
    {
        let n = 2usize;
        run_spmd(2, 2, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, 1, |i, j| (i + j) as f64);
            let mut tau = vec![0.0; 1];
            let rep = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap();
            assert_eq!(rep.recoveries, 0);
        });
    }
}

#[test]
fn two_failures_same_row_rejected() {
    // Ranks 0 and 1 share process row 0 on a 2×2 grid — beyond the fault
    // model; every rank must return the identical typed error instead of
    // panicking or corrupting silently.
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 0, point: failpoint(1, Phase::AfterPanel) },
        PlannedFailure { victim: 1, point: failpoint(1, Phase::AfterPanel) },
    ]);
    let errs = run_spmd(2, 2, script, |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, 12, 2, |i, j| uniform_entry(12, i, j));
        let mut tau = vec![0.0; 11];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ExceededCodeDistance { victims, panel, phase, row, count, max_per_row, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1]);
        assert_eq!((*panel, *phase), (1, Phase::AfterPanel));
        assert_eq!((*row, *count, *max_per_row), (0, 2, 1));
    }
}

#[test]
fn back_to_back_failures_same_scope() {
    // Two failure events within one panel scope (protection re-armed
    // between them).
    let (n, nb, p, q) = (16, 2, 2, 2);
    let reference = ft_result(n, nb, p, q, 13, Variant::NonDelayed, FaultScript::none());
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 1, point: failpoint(2, Phase::AfterPanel) },
        PlannedFailure { victim: 2, point: failpoint(3, Phase::AfterRightUpdate) },
    ]);
    let got = ft_result(n, nb, p, q, 13, Variant::NonDelayed, script);
    assert!(got.max_abs_diff(&reference) < 1e-10);
}

#[test]
fn same_victim_fails_twice() {
    let (n, nb, p, q) = (20, 2, 2, 2);
    let reference = ft_result(n, nb, p, q, 14, Variant::Delayed, FaultScript::none());
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 3, point: failpoint(1, Phase::AfterLeftUpdate) },
        PlannedFailure { victim: 3, point: failpoint(6, Phase::BeforePanel) },
    ]);
    let got = ft_result(n, nb, p, q, 14, Variant::Delayed, script);
    assert!(got.max_abs_diff(&reference) < 1e-10);
}
