//! Sustained resilience under storms of failures — scripted (cooperative
//! fail points) and chaos-mode (kills at arbitrary message-op boundaries,
//! no cooperation from the algorithm).
//!
//! Promoted from the old `failure_storm` example; all seeds and kill
//! schedules are fixed so every run reproduces exactly.

use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
use ft_hess::{assert_theorem1, failpoint, ft_pdgehrd, ft_pdgehrd_hooked, Encoded, FtError, FtReport, Phase, Variant};
use ft_lapack::{extract_h, hessenberg_residual, orghr};
use ft_runtime::{run_spmd, run_spmd_chaos, ChaosKill, ChaosPoint, ChaosScript, FaultScript, PlannedFailure};

/// Run the FT reduction under `script` + `chaos` and return
/// `(rank-0 gathered matrix, tau, report)`; the residual is checked by the
/// caller. Panics in any rank propagate out of `run_spmd_chaos`, so a
/// passing test doubles as a zero-panic assertion over every survivor.
#[allow(clippy::too_many_arguments)]
fn storm_run(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    script: FaultScript,
    chaos: ChaosScript,
) -> (ft_dense::Matrix, Vec<f64>, FtReport) {
    let results = run_spmd_chaos(p, q, script, chaos, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        let ag = enc.gather_logical(&ctx, 1);
        (ctx.rank() == 0).then_some((ag, tau, report))
    });
    results.into_iter().flatten().next().unwrap()
}

fn residual_of(n: usize, seed: u64, ag: &ft_dense::Matrix, tau: &[f64]) -> f64 {
    let a0 = uniform_indexed_matrix(n, n, seed);
    let h = extract_h(ag);
    let qm = orghr(ag, tau);
    hessenberg_residual(&a0, &h, &qm)
}

/// The original storm: one scripted failure per panel scope with rotating
/// victims and phases, plus one simultaneous two-victim event in distinct
/// process rows (the paper's §1 fault model at its limit).
#[test]
fn scripted_storm_one_failure_per_scope() {
    let (n, nb, p, q) = (120usize, 4usize, 2usize, 3usize);
    let seed = 13;
    let panels = {
        let (mut c, mut k) = (0, 0);
        while k + 2 < n {
            k += nb.min(n - 2 - k);
            c += 1;
        }
        c
    };

    let phases = [
        Phase::AfterPanel,
        Phase::AfterRightUpdate,
        Phase::AfterLeftUpdate,
        Phase::BeforePanel,
    ];
    let mut failures = Vec::new();
    let mut i = 0;
    let mut panel = 1;
    while panel < panels {
        failures.push(PlannedFailure {
            victim: (i * 2 + 1) % (p * q),
            point: failpoint(panel, phases[i % phases.len()]),
        });
        i += 1;
        panel += q;
    }
    // Simultaneous double failure: ranks 0 and 5 sit in process rows 0 and 1.
    failures.push(PlannedFailure { victim: 0, point: failpoint(2, Phase::AfterRightUpdate) });
    failures.push(PlannedFailure { victim: 5, point: failpoint(2, Phase::AfterRightUpdate) });
    let total_victims = failures.len();
    assert!(total_victims >= 12, "storm too small: {total_victims}");

    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::new(failures), ChaosScript::none());
    assert_eq!(report.victims.len(), total_victims);
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual after the storm: {r}");
}

/// A chaos kill at an arbitrary, un-scripted message-op boundary: the run
/// aborts mid-phase, rolls back to the last committed boundary, recovers,
/// and still produces a backward-stable factorization.
#[test]
fn chaos_kill_at_unscripted_boundary_recovers() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 29;
    // A fault-free rank performs ~410-430 message ops at this size (see
    // `Ctx::chaos_ops`); these land early, middle, and late in the run.
    for (victim, op) in [(2usize, 137u64), (1, 260), (3, 350)] {
        let (ag, tau, report) =
            storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none(), ChaosScript::at_op(victim, op));
        assert!(report.chaos_aborts > 0, "kill at op {op} never fired");
        assert_eq!(report.recoveries, 1, "victim {victim} op {op}");
        assert_eq!(report.victims, vec![victim]);
        let r = residual_of(n, seed, &ag, &tau);
        assert!(r < 3.0, "victim {victim} op {op}: residual {r}");
    }
}

/// Chaos under the Delayed (Algorithm 3) variant too — the rollback images
/// must capture the deferred-checksum bookkeeping correctly.
#[test]
fn chaos_kill_delayed_variant() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 31;
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::Delayed, FaultScript::none(), ChaosScript::at_op(0, 333));
    assert!(report.chaos_aborts > 0);
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual {r}");
}

/// Two sequential chaos kills in *different* scopes under Delayed: the
/// second recovery reads checksum copies the first recovery's catch-up has
/// touched. Regression test — the catch-up's left updates used to mix the
/// first victim's garbage blocks into the survivors' blocks of every
/// checksum copy on the victim's process column, which nothing read until
/// a later recovery solved Area 1/2 from them (residual blew up to ~1e13).
#[test]
fn chaos_delayed_double_kill_across_scopes() {
    let (n, nb, p, q) = (96usize, 8usize, 2usize, 3usize);
    let seed = 2013;
    let chaos = ChaosScript::new(vec![
        ChaosKill { victim: 1, at: ChaosPoint::Op(63) },
        ChaosKill { victim: 3, at: ChaosPoint::Op(304) },
    ]);
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::Delayed, FaultScript::none(), chaos);
    assert!(report.chaos_aborts >= 2, "both kills must fire: {} aborts", report.chaos_aborts);
    assert_eq!(report.recoveries, 2);
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual {r}");
}

/// The root-cause assertion behind the double-kill regression: after a
/// Delayed recovery, Theorem 1 must still hold for every *future* group's
/// checksum copies at the next scope boundaries — those copies are exactly
/// what a subsequent recovery would solve from.
#[test]
fn delayed_recovery_preserves_future_checksums() {
    let (n, nb, p, q) = (96usize, 8usize, 2usize, 3usize);
    run_spmd(p, q, FaultScript::one(1, failpoint(1, Phase::BeforePanel)), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(2013, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd_hooked(&ctx, &mut enc, Variant::Delayed, &mut tau, &mut |ctx, enc, panel, phase| {
            // Delayed defers checksum updates mid-scope, so the invariant
            // is only owed at scope-opening boundaries.
            if phase == Phase::BeforePanel && panel % ctx.npcol() == 0 {
                let s = panel / ctx.npcol();
                assert_theorem1(ctx, enc, s, 1e-9, "hessenberg", &format!("scope {s} open (post-recovery)"));
            }
        })
        .expect("within the fault model");
    });
}

/// A failure that strikes while a previous failure is being repaired: the
/// recovery aborts, the survivors re-agree on the union victim set, and the
/// (re-entrant) recovery completes from the same boundary image.
#[test]
fn chaos_failure_during_recovery_is_recovered() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 37;
    // Rank 1 dies mid-run; rank 2 (different process row) dies at the 2nd
    // message op of the resulting recovery round — while rank 1's repair is
    // still in flight.
    let chaos = ChaosScript::new(vec![
        ChaosKill { victim: 1, at: ChaosPoint::Op(250) },
        ChaosKill { victim: 2, at: ChaosPoint::RecoveryOp { round: 1, op: 1 } },
    ]);
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none(), chaos);
    assert!(report.chaos_aborts >= 2, "nested abort never happened: {} aborts", report.chaos_aborts);
    assert!(report.victims.contains(&1) && report.victims.contains(&2), "victims: {:?}", report.victims);
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual {r}");
}

/// A seeded multi-kill chaos schedule — the CI soak's in-process twin.
#[test]
fn chaos_seeded_storm_recovers() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 3usize);
    let seed = 41;
    // Seed 8 on a 6-rank world with ops in [100, 350): kills ranks 1 and 4
    // (distinct process rows) at ops 167 and 222 — a fixed, reproducible
    // schedule well inside the ~380-op run.
    let chaos = ChaosScript::seeded(8, p * q, 2, 100, 350);
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none(), chaos);
    assert!(report.chaos_aborts > 0, "no kill fired");
    assert!(!report.victims.is_empty());
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual {r}");
}

/// Beyond-tolerance chaos: two kills in the same process row. Every rank —
/// survivors and replacements alike — must return the *identical* typed
/// error, with no panic anywhere.
#[test]
fn chaos_beyond_tolerance_identical_typed_error() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 43;
    // Ranks 0 and 1 share process row 0 on a 2×2 grid; Single redundancy
    // tolerates one failure per row. Rank 0 dies *inside* the recovery of
    // rank 1, so both deaths land in the same agreement round — two kills
    // at independent op counts could otherwise resolve as two sequential
    // (recoverable) single failures depending on thread timing.
    let chaos = ChaosScript::new(vec![
        ChaosKill { victim: 1, at: ChaosPoint::Op(250) },
        ChaosKill { victim: 0, at: ChaosPoint::RecoveryOp { round: 1, op: 0 } },
    ]);
    let errs = run_spmd_chaos(p, q, FaultScript::none(), chaos, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ExceededCodeDistance { victims, row, count, max_per_row, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1]);
        assert_eq!((*row, *count, *max_per_row), (0, 2, 1));
    }
}

/// Chaos layered on top of a scripted failure in a different panel: both
/// events recovered, protection re-armed between them.
#[test]
fn chaos_and_scripted_failures_compose() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 47;
    let script = FaultScript::one(3, failpoint(1, Phase::AfterPanel));
    let chaos = ChaosScript::at_op(1, 300);
    let (ag, tau, report) = storm_run(n, nb, p, q, seed, Variant::NonDelayed, script, chaos);
    assert!(report.recoveries >= 2, "recoveries: {}", report.recoveries);
    assert!(report.chaos_aborts > 0);
    let r = residual_of(n, seed, &ag, &tau);
    assert!(r < 3.0, "residual {r}");
}

/// Determinism: the same chaos seed twice gives bitwise-identical results
/// and identical reports — the property the CI soak relies on.
#[test]
fn chaos_runs_are_deterministic() {
    let (n, nb, p, q) = (48usize, 4usize, 2usize, 2usize);
    let seed = 53;
    let run = || storm_run(n, nb, p, q, seed, Variant::NonDelayed, FaultScript::none(), ChaosScript::at_op(2, 700));
    let (a1, t1, r1) = run();
    let (a2, t2, r2) = run();
    assert_eq!(a1.max_abs_diff(&a2), 0.0);
    assert_eq!(t1, t2);
    assert_eq!(r1.recoveries, r2.recoveries);
    assert_eq!(r1.victims, r2.victims);
    assert_eq!(r1.chaos_aborts, r2.chaos_aborts);
}

/// Scripted beyond-tolerance failures still work through `run_spmd` (no
/// chaos armed at all): same typed error, every rank.
#[test]
fn scripted_storm_beyond_tolerance_typed_error() {
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 0, point: failpoint(2, Phase::AfterRightUpdate) },
        PlannedFailure { victim: 1, point: failpoint(2, Phase::AfterRightUpdate) },
    ]);
    let errs = run_spmd(2, 2, script, |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, 24, 2, |i, j| uniform_entry(59, i, j));
        let mut tau = vec![0.0; 23];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0]);
        let FtError::ExceededCodeDistance { victims, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1]);
    }
}
