//! Tests of `Redundancy::Coded(f)` — the configurable Reed–Solomon-style
//! generalization of the duplicate/Dual schemes: each checksum group
//! carries `2f` independent Vandermonde-weighted rows, so any `f`
//! simultaneous failures in the *same* process row are reconstructed by
//! solving an f×f (or smaller) Vandermonde system per group. `Dual` is
//! exactly `Coded(2)`; `Coded(1)` is a weighted single-failure code.

use ft_dense::gen::uniform_entry;
use ft_dense::Matrix;
use ft_hess::{failpoint, ft_pdgehrd, Encoded, FtError, Phase, Redundancy, Variant};
use ft_runtime::{run_spmd, FaultScript, PlannedFailure};

#[allow(clippy::too_many_arguments)]
fn ft_result(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    red: Redundancy,
    script: FaultScript,
) -> (Matrix, usize) {
    run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        (enc.gather_logical(&ctx, 640), rep.recoveries)
    })
    .into_iter()
    .next()
    .unwrap()
}

#[test]
fn coded_fault_free_matches_single() {
    // The coded checksums ride along without touching the logical
    // computation: bitwise identical results across redundancy levels.
    let (n, nb, p, q) = (18, 2, 1, 6);
    let (a_single, _) = ft_result(n, nb, p, q, 70, Variant::NonDelayed, Redundancy::Single, FaultScript::none());
    for f in 1..=3 {
        let (a_coded, _) = ft_result(n, nb, p, q, 70, Variant::NonDelayed, Redundancy::Coded(f), FaultScript::none());
        assert_eq!(a_single.max_abs_diff(&a_coded), 0.0, "f = {f}");
    }
}

#[test]
fn coded2_is_dual() {
    // Same copy count, same Vandermonde weights, same solve paths: Coded(2)
    // and Dual must agree bitwise even through a two-failure recovery.
    let (n, nb, p, q) = (16, 2, 2, 4);
    let script = || {
        FaultScript::new(vec![
            PlannedFailure { victim: 5, point: failpoint(3, Phase::AfterPanel) },
            PlannedFailure { victim: 7, point: failpoint(3, Phase::AfterPanel) },
        ])
    };
    let (a_dual, rec_dual) = ft_result(n, nb, p, q, 71, Variant::NonDelayed, Redundancy::Dual, script());
    let (a_coded, rec_coded) = ft_result(n, nb, p, q, 71, Variant::NonDelayed, Redundancy::Coded(2), script());
    assert_eq!((rec_dual, rec_coded), (1, 1));
    assert_eq!(a_dual.max_abs_diff(&a_coded), 0.0);
}

#[test]
fn coded1_survives_single_failures() {
    // f = 1 on a narrow grid: the weighted single-failure code, recovered
    // by the divide-by-weight fast path.
    let (n, nb, p, q) = (12, 2, 2, 2);
    let (reference, _) = ft_result(n, nb, p, q, 72, Variant::NonDelayed, Redundancy::Coded(1), FaultScript::none());
    for phase in Phase::ALL {
        let (got, rec) =
            ft_result(n, nb, p, q, 72, Variant::NonDelayed, Redundancy::Coded(1), FaultScript::one(3, failpoint(2, phase)));
        assert_eq!(rec, 1);
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-9, "{phase:?}: diff {d}");
    }
}

/// The headline capability: k simultaneous victims in the SAME process row
/// for every k up to the code distance f = 3 — the m×m Vandermonde solve.
#[test]
fn coded3_survives_up_to_three_failures_same_row() {
    let (n, nb, p, q) = (18, 2, 1, 6);
    let (reference, _) = ft_result(n, nb, p, q, 73, Variant::NonDelayed, Redundancy::Coded(3), FaultScript::none());
    for victims in [vec![2usize], vec![1, 4], vec![0, 2, 4], vec![1, 2, 3], vec![3, 4, 5]] {
        for phase in [Phase::AfterPanel, Phase::AfterLeftUpdate] {
            let script = FaultScript::new(
                victims
                    .iter()
                    .map(|&v| PlannedFailure { victim: v, point: failpoint(2, phase) })
                    .collect(),
            );
            let (got, rec) = ft_result(n, nb, p, q, 73, Variant::NonDelayed, Redundancy::Coded(3), script);
            assert_eq!(rec, 1, "victims {victims:?} {phase:?}");
            let d = got.max_abs_diff(&reference);
            assert!(d < 1e-8, "victims {victims:?} {phase:?}: diff {d}");
        }
    }
}

/// Adjacent victim sets pick the closest-spaced Vandermonde nodes (gap
/// `1/Q`) — the worst-conditioned recovery subsystems the code admits. The
/// acceptance metric is parity against the fault-free run: it must stay
/// within 1e-10 at CLI scale (n = 96), even though the paper's
/// `ε·N·‖A‖`-normalized residual gate is stricter than the intrinsic
/// `‖A_S⁻¹‖·drift` recovery accuracy for these subsets (DESIGN.md §13.1).
#[test]
fn coded3_adjacent_victims_parity_at_scale() {
    let (n, nb, p, q) = (96, 8, 1, 6);
    let (reference, _) = ft_result(n, nb, p, q, 2013, Variant::NonDelayed, Redundancy::Coded(3), FaultScript::none());
    for victims in [[0usize, 1, 2], [3, 4, 5]] {
        let script = FaultScript::new(
            victims
                .iter()
                .map(|&v| PlannedFailure { victim: v, point: failpoint(2, Phase::AfterPanel) })
                .collect(),
        );
        let (got, rec) = ft_result(n, nb, p, q, 2013, Variant::NonDelayed, Redundancy::Coded(3), script);
        assert_eq!(rec, 1, "victims {victims:?}");
        let d = got.max_abs_diff(&reference);
        eprintln!("adjacent victims {victims:?}: parity {d:.3e}");
        assert!(d < 1e-10, "victims {victims:?}: diff {d}");
    }
}

#[test]
fn coded3_survives_three_failures_each_of_two_rows() {
    // Per-row budgets are independent: 3 + 3 victims across two rows on a
    // 2×6 grid, all at the same instant.
    let (n, nb, p, q) = (18, 2, 2, 6);
    let (reference, _) = ft_result(n, nb, p, q, 74, Variant::NonDelayed, Redundancy::Coded(3), FaultScript::none());
    let script = FaultScript::new(
        [0usize, 2, 5, 7, 9, 10]
            .iter()
            .map(|&v| PlannedFailure { victim: v, point: failpoint(3, Phase::AfterLeftUpdate) })
            .collect(),
    );
    let (got, rec) = ft_result(n, nb, p, q, 74, Variant::NonDelayed, Redundancy::Coded(3), script);
    assert_eq!(rec, 1);
    let d = got.max_abs_diff(&reference);
    assert!(d < 1e-8, "diff {d}");
}

#[test]
fn coded3_delayed_variant_sweep() {
    // Alg-3 scopes + coded recovery: the catch-up path replays into the
    // same Vandermonde solve.
    let (n, nb, p, q) = (18, 2, 1, 6);
    let (reference, _) = ft_result(n, nb, p, q, 75, Variant::Delayed, Redundancy::Coded(3), FaultScript::none());
    for panel in [1usize, 4, 6] {
        let script = FaultScript::new(vec![
            PlannedFailure { victim: 0, point: failpoint(panel, Phase::AfterPanel) },
            PlannedFailure { victim: 3, point: failpoint(panel, Phase::AfterPanel) },
            PlannedFailure { victim: 5, point: failpoint(panel, Phase::AfterPanel) },
        ]);
        let (got, rec) = ft_result(n, nb, p, q, 75, Variant::Delayed, Redundancy::Coded(3), script);
        assert_eq!(rec, 1, "panel {panel}");
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-8, "panel {panel}: diff {d}");
    }
}

#[test]
fn four_failures_same_row_rejected_coded3() {
    // k = f + 1 is beyond the code distance: every rank returns the
    // identical typed error, no panic, no hang.
    let script = FaultScript::new(
        (0..4)
            .map(|v| PlannedFailure { victim: v, point: failpoint(1, Phase::AfterPanel) })
            .collect(),
    );
    let errs = run_spmd(1, 6, script, |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 18, 2, Redundancy::Coded(3), |i, j| uniform_entry(76, i, j));
        let mut tau = vec![0.0; 17];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ExceededCodeDistance { victims, row, count, max_per_row, encoding_max, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1, 2, 3]);
        assert_eq!((*row, *count, *max_per_row, *encoding_max), (0, 4, 3, 3));
    }
}

#[test]
fn two_failures_same_row_rejected_coded1() {
    // The typed rejection holds at every redundancy level, not just the
    // widest: f = 1 rejects its k = 2 the same way Single does.
    let script = FaultScript::new(vec![
        PlannedFailure { victim: 0, point: failpoint(2, Phase::AfterLeftUpdate) },
        PlannedFailure { victim: 1, point: failpoint(2, Phase::AfterLeftUpdate) },
    ]);
    let errs = run_spmd(2, 2, script, |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 12, 2, Redundancy::Coded(1), |i, j| uniform_entry(77, i, j));
        let mut tau = vec![0.0; 11];
        ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).unwrap_err()
    });
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ExceededCodeDistance { victims, row, count, max_per_row, .. } = e else {
            panic!("expected ExceededCodeDistance, got {e:?}");
        };
        assert_eq!(victims, &[0, 1]);
        assert_eq!((*row, *count, *max_per_row), (0, 2, 1));
    }
}

#[test]
fn coded_requires_q_at_least_2f() {
    let result = std::panic::catch_unwind(|| {
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            let _ = Encoded::with_redundancy(&ctx, 12, 2, Redundancy::Coded(3), |_, _| 0.0);
        })
    });
    assert!(result.is_err());
}

#[test]
fn coded_checksum_violation_ratios_locate_members() {
    // The Vandermonde weights keep per-copy violations proportional to
    // node(idx)^copy of the corrupted member — the scrub locate signal,
    // here verified through copy 3 (node 1 + 4/6 = 5/3).
    run_spmd(1, 6, FaultScript::none(), |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, 12, 2, Redundancy::Coded(3), |i, j| (i * 12 + j) as f64);
        enc.compute_initial_checksums(&ctx);
        // Corrupt one entry in member index 4 of group 0 (column 8).
        if enc.a.owns_row(5) && enc.a.owns_col(8) {
            let v = enc.a.get(5, 8);
            enc.a.set(5, 8, v + 2.0);
        }
        for copy in 0..4 {
            let v = enc.checksum_violation(&ctx, 0, copy, 7300 + 10 * copy as u64);
            let want = 2.0 * (5.0f64 / 3.0).powi(copy as i32);
            assert!((v - want).abs() < 1e-6, "copy {copy}: violation {v}, want {want}");
        }
    });
}
