//! Integration tests of the ABFT Hessenberg reduction:
//!
//! * fault-free equivalence with the unprotected `pdgehrd` (the checksum
//!   machinery must not perturb the logical computation at all);
//! * Theorem 1: the row-checksum invariant for every group after the
//!   current panel scope, checked after **every** phase of every iteration;
//! * recovery: failures injected at every (iteration × phase × victim)
//!   combination must reproduce the fault-free factorization.

use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
use ft_dense::Matrix;
use ft_hess::{assert_theorem1, failpoint, ft_pdgehrd, ft_pdgehrd_hooked, Encoded, Phase, Variant};
use ft_lapack::{extract_h, hessenberg_residual, is_hessenberg, orghr};
use ft_pblas::{pdgehrd, Desc, DistMatrix};
use ft_runtime::{run_spmd, FaultScript, PlannedFailure};

/// Fault-free reference: plain distributed reduction, gathered.
fn plain_reference(p: usize, q: usize, n: usize, nb: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let out = run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        pdgehrd(&ctx, &mut a, &mut tau);
        (a.gather_all(&ctx, 700), tau)
    });
    out.into_iter().next().unwrap()
}

fn ft_run(
    p: usize,
    q: usize,
    n: usize,
    nb: usize,
    seed: u64,
    variant: Variant,
    script_fn: impl Fn() -> FaultScript + Sync,
) -> (Matrix, Vec<f64>, usize) {
    let out = run_spmd(p, q, script_fn(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model");
        (enc.gather_logical(&ctx, 702), tau, report.recoveries)
    });
    out.into_iter().next().unwrap()
}

#[test]
fn fault_free_matches_plain_bitwise() {
    let (n, nb) = (16, 2);
    for (p, q) in [(2usize, 2usize), (2, 3), (1, 2)] {
        let (aref, tau_ref) = plain_reference(p, q, n, nb, 42);
        for variant in [Variant::NonDelayed, Variant::Delayed] {
            let (aft, tau_ft, rec) = ft_run(p, q, n, nb, 42, variant, FaultScript::none);
            assert_eq!(rec, 0);
            let d = aft.max_abs_diff(&aref);
            assert_eq!(d, 0.0, "{p}x{q} {variant:?}: fault-free FT diverged by {d}");
            assert_eq!(tau_ft, tau_ref);
        }
    }
}

#[test]
fn theorem1_invariant_all_phases() {
    // After every phase, the checksums of every group strictly after the
    // current panel scope must match the live data to rounding accuracy.
    let (n, nb, p, q) = (24, 2, 2, 3);
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(7, i, j));
        let mut tau = vec![0.0; n - 1];
        let mut checked = 0usize;
        ft_pdgehrd_hooked(&ctx, &mut enc, Variant::NonDelayed, &mut tau, &mut |ctx, enc, panel, phase| {
            let s = (panel * nb / nb) / ctx.npcol(); // scope of this panel
            checked += assert_theorem1(ctx, enc, s, 1e-11, "hessenberg", &format!("panel {panel} {phase:?}"));
        })
        .expect("within the fault model");
        // The sweep actually exercised trailing groups.
        assert!(checked > 20, "only {checked} invariant checks ran");
    });
}

#[test]
fn theorem1_invariant_delayed_at_scope_boundaries() {
    // Algorithm 3 restores the invariant at scope boundaries (BeforePanel
    // of a scope-opening iteration ≡ just after the previous scope's
    // catch-up + recompute).
    let (n, nb, p, q) = (24, 2, 2, 2);
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(8, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd_hooked(&ctx, &mut enc, Variant::Delayed, &mut tau, &mut |ctx, enc, panel, phase| {
            let bc = panel; // w == nb here, so panel index == block column
            if phase == Phase::BeforePanel && bc % ctx.npcol() == 0 {
                let s = bc / ctx.npcol();
                assert_theorem1(ctx, enc, s, 1e-11, "hessenberg", &format!("scope boundary at panel {panel}"));
            }
        })
        .expect("within the fault model");
    });
}

/// Exhaustive single-failure sweep on a small problem: every iteration,
/// every phase, every victim rank; the recovered factorization must agree
/// with the fault-free one to rounding accuracy.
fn sweep_recovery(variant: Variant, p: usize, q: usize, n: usize, nb: usize, seed: u64, tol: f64) {
    let (aref, tau_ref) = {
        let (a, t, _) = ft_run(p, q, n, nb, seed, variant, FaultScript::none);
        (a, t)
    };
    let panels = {
        // mirror the driver's loop
        let mut c = 0;
        let mut k = 0;
        while k + 2 < n {
            let w = nb.min(n - 2 - k);
            k += w;
            c += 1;
        }
        c
    };
    for panel in 0..panels {
        for phase in Phase::ALL {
            for victim in 0..p * q {
                let (aft, tau_ft, rec) = ft_run(p, q, n, nb, seed, variant, || FaultScript::one(victim, failpoint(panel, phase)));
                assert_eq!(rec, 1, "panel {panel} {phase:?} victim {victim}: no recovery ran");
                let d = aft.max_abs_diff(&aref);
                assert!(d < tol, "{variant:?} panel {panel} {phase:?} victim {victim}: diff {d}");
                let dt: f64 = tau_ft.iter().zip(&tau_ref).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
                assert!(dt < tol, "tau diverged by {dt}");
            }
        }
    }
}

#[test]
fn recovery_sweep_nondelayed_2x2() {
    sweep_recovery(Variant::NonDelayed, 2, 2, 12, 2, 11, 1e-10);
}

#[test]
fn recovery_sweep_delayed_2x2() {
    sweep_recovery(Variant::Delayed, 2, 2, 12, 2, 11, 1e-10);
}

#[test]
fn recovery_sweep_nondelayed_2x3() {
    sweep_recovery(Variant::NonDelayed, 2, 3, 12, 2, 13, 1e-10);
}

#[test]
fn recovery_sweep_delayed_3x2() {
    sweep_recovery(Variant::Delayed, 3, 2, 12, 2, 17, 1e-10);
}

#[test]
fn simultaneous_failures_different_rows() {
    // Two victims in one event, different process rows (the paper's §1
    // fault model: tolerated as long as no process row loses two).
    let (n, nb, p, q) = (16, 2, 2, 2);
    let (aref, _) = {
        let (a, t, _) = ft_run(p, q, n, nb, 19, Variant::NonDelayed, FaultScript::none);
        (a, t)
    };
    for phase in Phase::ALL {
        // victims: rank 0 = (0,0) and rank 3 = (1,1) — different rows.
        let (aft, _, rec) = ft_run(p, q, n, nb, 19, Variant::NonDelayed, || {
            FaultScript::new(vec![
                PlannedFailure { victim: 0, point: failpoint(3, phase) },
                PlannedFailure { victim: 3, point: failpoint(3, phase) },
            ])
        });
        assert_eq!(rec, 1);
        let d = aft.max_abs_diff(&aref);
        assert!(d < 1e-10, "{phase:?}: diff {d}");
    }
}

#[test]
fn repeated_failures_across_the_run() {
    // One failure per scope, different victims — recover, keep going,
    // recover again ("ready to recover from the next failure", §8).
    let (n, nb, p, q) = (24, 2, 2, 3);
    let (aref, _) = {
        let (a, t, _) = ft_run(p, q, n, nb, 23, Variant::NonDelayed, FaultScript::none);
        (a, t)
    };
    let (aft, _, rec) = ft_run(p, q, n, nb, 23, Variant::NonDelayed, || {
        FaultScript::new(vec![
            PlannedFailure { victim: 1, point: failpoint(1, Phase::AfterPanel) },
            PlannedFailure { victim: 4, point: failpoint(4, Phase::AfterRightUpdate) },
            PlannedFailure { victim: 2, point: failpoint(8, Phase::AfterLeftUpdate) },
        ])
    });
    assert_eq!(rec, 3);
    let d = aft.max_abs_diff(&aref);
    assert!(d < 1e-9, "diff after three recoveries: {d}");
}

#[test]
fn recovered_run_is_backward_stable() {
    // §7.3 / Table 1: the residual after a failure + recovery stays at the
    // same order as the fault-free one, below the paper's threshold r_t = 3.
    let (n, nb, p, q) = (32, 4, 2, 2);
    let seed = 31;
    let a0 = uniform_indexed_matrix(n, n, seed);

    let run = |script: FaultScript| {
        let a0 = a0.clone();
        let out = run_spmd(p, q, script, move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
            let ag = enc.gather_logical(&ctx, 704);
            if ctx.rank() == 0 {
                let h = extract_h(&ag);
                assert!(is_hessenberg(&h));
                let qm = orghr(&ag, &tau);
                Some(hessenberg_residual(&a0, &h, &qm))
            } else {
                None
            }
        });
        out.into_iter().flatten().next().unwrap()
    };

    let r_ok = run(FaultScript::none());
    let r_ft = run(FaultScript::one(2, failpoint(3, Phase::AfterRightUpdate)));
    assert!(r_ok < 3.0, "fault-free residual {r_ok}");
    assert!(r_ft < 3.0, "post-recovery residual {r_ft}");
    assert!(r_ft < 10.0 * r_ok.max(0.01), "recovery degraded stability: {r_ft} vs {r_ok}");
}
