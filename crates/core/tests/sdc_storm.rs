//! SDC storm battery: seeded single- and multi-bit flips into every
//! recovery area (trailing, finished, checksum copies), across both
//! variants and awkward geometries. Each case checks the scrub engine's
//! full contract — detect, localize, correct (or escalate to a verified
//! rollback) — and that the final reduction matches the flip-free run.

use ft_dense::gen::uniform_entry;
use ft_dense::Matrix;
use ft_hess::{failpoint, ft_pdgehrd, ft_pdgehrd_full, Encoded, FtError, Phase, Redundancy, ScrubPolicy, ScrubReport, Variant};
use ft_lapack::{extract_h, hessenberg_eigenvalues};
use ft_runtime::{run_spmd, run_spmd_full, ChaosScript, Ctx, FaultScript, SdcScript};

/// Flip-free reference reduction (scrub disabled).
fn clean_run(n: usize, nb: usize, p: usize, q: usize, seed: u64, variant: Variant, red: Redundancy) -> Matrix {
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("fault-free");
        enc.gather_logical(&ctx, 800)
    })
    .into_iter()
    .next()
    .unwrap()
}

/// Run the scrubbed reduction with a one-shot corruption injected through
/// the observation hook at `(panel, phase)`. Returns every rank's gathered
/// matrix + scrub report (replicated verdict fields must agree).
#[allow(clippy::too_many_arguments)]
fn corrupted_run(
    n: usize,
    nb: usize,
    p: usize,
    q: usize,
    seed: u64,
    variant: Variant,
    red: Redundancy,
    policy: ScrubPolicy,
    panel: usize,
    phase: Phase,
    inject: impl Fn(&Ctx, &mut Encoded) + Sync,
) -> Vec<Result<(Matrix, ScrubReport), FtError>> {
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n.saturating_sub(1).max(1)];
        let mut fired = false;
        let inject = &inject;
        let mut hook = |ctx: &Ctx, enc: &mut Encoded, pi: usize, ph: Phase| {
            if !fired && pi == panel && ph == phase {
                fired = true;
                inject(ctx, enc);
            }
        };
        match ft_pdgehrd_full(&ctx, &mut enc, variant, &mut tau, policy, &mut hook) {
            Ok(rep) => Ok((enc.gather_logical(&ctx, 802), rep.scrub)),
            Err(e) => Err(e),
        }
    })
}

/// Add `delta` to logical entry `(i, j)` on whichever rank owns it.
fn bump(enc: &mut Encoded, i: usize, j: usize, delta: f64) {
    if enc.a.owns_row(i) && enc.a.owns_col(j) {
        let v = enc.a.get(i, j);
        enc.a.set(i, j, v + delta);
    }
}

// ---------------------------------------------------------------------------
// Area 1 (trailing): in-place correction under Dual redundancy.
// ---------------------------------------------------------------------------

#[test]
fn trailing_flip_corrected_in_place_nondelayed() {
    let (n, nb, p, q) = (32, 2, 2, 4);
    let reference = clean_run(n, nb, p, q, 70, Variant::NonDelayed, Redundancy::Dual);
    // Only phases after the (column-mixing) right update keep a single
    // corrupted member block; earlier injections spread across the row and
    // are covered by the escalation tests below.
    for panel in [0usize, 2, 5] {
        for phase in [Phase::AfterRightUpdate, Phase::AfterLeftUpdate] {
            let s = panel / q;
            let col = (s + 1) * q * nb; // first column of the next (trailing) group
            let results = corrupted_run(
                n,
                nb,
                p,
                q,
                70,
                Variant::NonDelayed,
                Redundancy::Dual,
                ScrubPolicy::every_panels(1),
                panel,
                phase,
                move |_ctx, enc| bump(enc, n - 1, col, 0.37),
            );
            for r in results {
                let (got, scrub) = r.expect("corrected in place");
                assert!(scrub.detections >= 1, "panel {panel} {phase:?}: no detection");
                assert!(scrub.corrections >= 1, "panel {panel} {phase:?}: no correction");
                assert_eq!(scrub.escalations, 0, "panel {panel} {phase:?}");
                assert_eq!(scrub.rollbacks, 0, "panel {panel} {phase:?}");
                let d = got.max_abs_diff(&reference);
                assert!(d < 1e-10, "panel {panel} {phase:?}: diff {d}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Area 2 (finished): mid-scope scans cover it in both variants.
// ---------------------------------------------------------------------------

#[test]
fn finished_flip_corrected_in_place_delayed() {
    let (n, nb, p, q) = (40, 2, 2, 4);
    let reference = clean_run(n, nb, p, q, 71, Variant::Delayed, Redundancy::Dual);
    for phase in [Phase::AfterPanel, Phase::AfterLeftUpdate] {
        // Panel 5 sits in scope 1: group 0 is finished, its columns (and
        // checksums) are frozen — a flip there stays a single-member hit.
        let results = corrupted_run(
            n,
            nb,
            p,
            q,
            71,
            Variant::Delayed,
            Redundancy::Dual,
            ScrubPolicy::every_panels(1),
            5,
            phase,
            |_ctx, enc| bump(enc, 30, 2, -0.61),
        );
        for r in results {
            let (got, scrub) = r.expect("corrected in place");
            assert!(scrub.detections >= 1, "{phase:?}: no detection");
            assert!(scrub.corrections >= 1, "{phase:?}: no correction");
            assert_eq!(scrub.rollbacks, 0, "{phase:?}");
            let d = got.max_abs_diff(&reference);
            assert!(d < 1e-10, "{phase:?}: diff {d}");
        }
    }
}

// ---------------------------------------------------------------------------
// Checksum-copy corruption: repaired from the surviving copy, data blameless.
// ---------------------------------------------------------------------------

#[test]
fn checksum_copy_flip_repaired_both_variants() {
    let (n, nb, p, q) = (32, 2, 2, 4);
    for (variant, panel, group, copy) in [(Variant::NonDelayed, 1usize, 1usize, 1usize), (Variant::Delayed, 5, 0, 0)] {
        let reference = clean_run(n, nb, p, q, 72, variant, Redundancy::Dual);
        let results = corrupted_run(
            n,
            nb,
            p,
            q,
            72,
            variant,
            Redundancy::Dual,
            ScrubPolicy::every_panels(1),
            panel,
            Phase::AfterRightUpdate,
            move |_ctx, enc| {
                let cc = enc.chk_col(group, copy, 0);
                bump(enc, n / 2, cc, 4.2);
            },
        );
        for r in results {
            let (got, scrub) = r.expect("checksum repaired");
            assert!(scrub.detections >= 1, "{variant:?}: no detection");
            assert!(scrub.chk_repairs >= 1, "{variant:?}: no checksum repair");
            assert_eq!(scrub.corrections, 0, "{variant:?}: data was rewritten");
            assert_eq!(scrub.rollbacks, 0, "{variant:?}");
            // The data path never changed: bit-identical result.
            assert_eq!(got.max_abs_diff(&reference), 0.0, "{variant:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Escalation: unlocalizable (Single) and spread (multi-member) corruption
// fall back to the verified-boundary rollback and still finish exactly.
// ---------------------------------------------------------------------------

#[test]
fn single_redundancy_flip_escalates_to_rollback_and_heals() {
    let (n, nb, p, q) = (24, 2, 2, 2);
    let reference = clean_run(n, nb, p, q, 73, Variant::NonDelayed, Redundancy::Single);
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        73,
        Variant::NonDelayed,
        Redundancy::Single,
        ScrubPolicy::every_panels(1),
        2,
        Phase::AfterLeftUpdate,
        |_ctx, enc| bump(enc, 20, 8, 1.0),
    );
    for r in results {
        let (got, scrub) = r.expect("rollback heals");
        assert!(scrub.detections >= 1);
        assert_eq!(scrub.corrections, 0, "Single cannot localize on Q > 1");
        assert!(scrub.escalations >= 1);
        assert!(scrub.rollbacks >= 1);
        // Replay from the verified image is deterministic: exact match.
        assert_eq!(got.max_abs_diff(&reference), 0.0);
    }
}

#[test]
fn multi_block_corruption_escalates_and_rolls_back_dual() {
    let (n, nb, p, q) = (32, 2, 2, 4);
    let reference = clean_run(n, nb, p, q, 74, Variant::NonDelayed, Redundancy::Dual);
    // Two member blocks of the same trailing group corrupted at once (a bad
    // DIMM spanning blocks): the per-copy violation ratios match no single
    // member, so in-place repair is impossible even under Dual.
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        74,
        Variant::NonDelayed,
        Redundancy::Dual,
        ScrubPolicy::every_panels(1),
        2,
        Phase::AfterLeftUpdate,
        |_ctx, enc| {
            bump(enc, 28, 8, 2.5);
            bump(enc, 29, 12, -1.9);
        },
    );
    for r in results {
        let (got, scrub) = r.expect("rollback heals");
        assert!(scrub.detections >= 1);
        assert_eq!(scrub.corrections, 0);
        assert!(scrub.escalations >= 1);
        assert!(scrub.rollbacks >= 1);
        assert_eq!(got.max_abs_diff(&reference), 0.0);
    }
}

#[test]
fn delayed_trailing_flip_is_rollback_only() {
    // Under the delayed variant a mid-scope trailing flip is consumed by
    // the scope-boundary checksum catch-up: the visible residual looks like
    // a single member, but an in-place rewrite would keep the consistent
    // spread. The engine must refuse the shortcut and take the rollback.
    let (n, nb, p, q) = (40, 2, 2, 4);
    let reference = clean_run(n, nb, p, q, 81, Variant::Delayed, Redundancy::Dual);
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        81,
        Variant::Delayed,
        Redundancy::Dual,
        ScrubPolicy::every_panels(1),
        5, // mid-scope in scope 1 (panels 4..7)
        Phase::AfterLeftUpdate,
        |_ctx, enc| bump(enc, 33, 24, 1.7), // group 3: trailing
    );
    for r in results {
        let (got, scrub) = r.expect("rollback heals");
        assert!(scrub.detections >= 1);
        assert_eq!(scrub.corrections, 0, "suspect trailing verdicts must not correct in place");
        assert!(scrub.rollbacks >= 1);
        assert_eq!(got.max_abs_diff(&reference), 0.0);
    }
}

#[test]
fn uncorrectable_without_rollback_is_typed_error_on_all_ranks() {
    let (n, nb, p, q) = (24, 2, 2, 2);
    let policy = ScrubPolicy { rollback: false, ..ScrubPolicy::every_panels(1) };
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        75,
        Variant::NonDelayed,
        Redundancy::Single,
        policy,
        2,
        Phase::AfterLeftUpdate,
        |_ctx, enc| bump(enc, 20, 8, 1.0),
    );
    let errs: Vec<FtError> = results.into_iter().map(|r| r.expect_err("must not complete")).collect();
    for e in &errs {
        assert_eq!(e, &errs[0], "ranks diverge on the error");
        let FtError::ScrubUnrecoverable { panel, group, block_col } = e else {
            panic!("expected ScrubUnrecoverable, got {e:?}");
        };
        assert_eq!(*panel, 2);
        assert_eq!(*group, 2, "flip at column 8 lives in group 2 (Q·nb = 4)");
        assert_eq!(*block_col, 4);
    }
}

// ---------------------------------------------------------------------------
// Edge shapes through the scrub path.
// ---------------------------------------------------------------------------

#[test]
fn ragged_n_and_narrow_last_scope_scrub() {
    // N = 19 with nb = 4 on Q = 4: five block columns, the last one ragged
    // (three real columns) and alone in its group — the final scope is
    // narrower than Q.
    let (n, nb, p, q) = (19, 4, 1, 4);
    let reference = clean_run(n, nb, p, q, 76, Variant::NonDelayed, Redundancy::Dual);
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        76,
        Variant::NonDelayed,
        Redundancy::Dual,
        ScrubPolicy::every_panels(1),
        0,
        Phase::AfterLeftUpdate,
        |_ctx, enc| bump(enc, 17, 16, 0.9), // inside the ragged trailing block
    );
    for r in results {
        let (got, scrub) = r.expect("corrected in place");
        assert!(scrub.detections >= 1);
        assert!(scrub.corrections >= 1);
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-10, "diff {d}");
    }
}

#[test]
fn one_by_one_grid_scrub_corrects() {
    // Q = 1: useless against fail-stop loss, but the scrub checksums still
    // localize trivially (every group has one member) and correct in place.
    let (n, nb) = (12, 2);
    let reference = clean_run(n, nb, 1, 1, 77, Variant::NonDelayed, Redundancy::Single);
    let results = corrupted_run(
        n,
        nb,
        1,
        1,
        77,
        Variant::NonDelayed,
        Redundancy::Single,
        ScrubPolicy::every_panels(1),
        1,
        Phase::AfterLeftUpdate,
        |_ctx, enc| bump(enc, 9, 6, -0.8),
    );
    for r in results {
        let (got, scrub) = r.expect("corrected in place");
        assert!(scrub.detections >= 1);
        assert!(scrub.corrections >= 1);
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-10, "diff {d}");
    }
}

// ---------------------------------------------------------------------------
// Downstream parity: the corrected reduction feeds the eigensolver the same
// Hessenberg matrix as the flip-free run.
// ---------------------------------------------------------------------------

#[test]
fn eigenvalues_match_flip_free() {
    let (n, nb, p, q) = (32, 2, 2, 4);
    let reference = clean_run(n, nb, p, q, 78, Variant::NonDelayed, Redundancy::Dual);
    let results = corrupted_run(
        n,
        nb,
        p,
        q,
        78,
        Variant::NonDelayed,
        Redundancy::Dual,
        ScrubPolicy::every_panels(1),
        1,
        Phase::AfterRightUpdate,
        |_ctx, enc| bump(enc, 25, 8, 0.5),
    );
    let (got, scrub) = results.into_iter().next().unwrap().expect("corrected in place");
    assert!(scrub.corrections >= 1);
    let mut clean_eigs = hessenberg_eigenvalues(&extract_h(&reference)).expect("converges");
    let mut sdc_eigs = hessenberg_eigenvalues(&extract_h(&got)).expect("converges");
    let key = |e: &ft_lapack::Eigenvalue| (e.re, e.im);
    clean_eigs.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
    sdc_eigs.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
    assert_eq!(clean_eigs.len(), sdc_eigs.len());
    for (c, s) in clean_eigs.iter().zip(&sdc_eigs) {
        let d = f64::hypot(c.re - s.re, c.im - s.im);
        assert!(d < 1e-10, "eigenvalue drift {d}");
    }
}

// ---------------------------------------------------------------------------
// Randomized storm through the runtime injector (the CLI's --sdc path).
// ---------------------------------------------------------------------------

#[test]
fn seeded_storm_heals_both_variants() {
    let (n, nb, p, q) = (32, 2, 2, 4);
    // Matches the CLI's op-clock window for this shape.
    let panels = 15u64;
    let op_hi = (panels * (4 * nb as u64 + 20)).max(200);
    for variant in [Variant::NonDelayed, Variant::Delayed] {
        let reference = clean_run(n, nb, p, q, 79, variant, Redundancy::Dual);
        for sdc_seed in [1u64, 2, 3, 4] {
            for flips in [1usize, 2] {
                let sdc = SdcScript::seeded(sdc_seed, p * q, flips, 50, op_hi);
                let results = run_spmd_full(p, q, FaultScript::none(), ChaosScript::none(), sdc, move |ctx| {
                    let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Dual, |i, j| uniform_entry(79, i, j));
                    let mut tau = vec![0.0; n - 1];
                    let rep =
                        ft_pdgehrd_full(&ctx, &mut enc, variant, &mut tau, ScrubPolicy::every_panels(1), &mut |_, _, _, _| {})
                            .expect("storm within the scrub model");
                    (enc.gather_logical(&ctx, 804), rep.scrub)
                });
                for (got, scrub) in results {
                    // Flips into low mantissa bits of small entries sit below
                    // the detectability floor (tol = 1e-8) by design; they are
                    // equally invisible to the final residual check. Everything
                    // above it must have been healed.
                    let d = got.max_abs_diff(&reference);
                    assert!(d < 1e-7, "{variant:?} seed {sdc_seed} flips {flips}: diff {d} ({scrub:?})");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fail-stop + scrub: the post-recovery pass runs and the run still matches.
// ---------------------------------------------------------------------------

#[test]
fn post_recovery_scan_extra_pass() {
    let (n, nb, p, q) = (24, 2, 2, 2);
    let reference = clean_run(n, nb, p, q, 80, Variant::NonDelayed, Redundancy::Single);
    let panels = 11; // (24 - 2) / 2
    let results = run_spmd(p, q, FaultScript::one(3, failpoint(4, Phase::AfterRightUpdate)), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Single, |i, j| uniform_entry(80, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep =
            ft_pdgehrd_full(&ctx, &mut enc, Variant::NonDelayed, &mut tau, ScrubPolicy::every_panels(1), &mut |_, _, _, _| {})
                .expect("within the fault model");
        (enc.gather_logical(&ctx, 806), rep.recoveries, rep.scrub)
    });
    for (got, recoveries, scrub) in results {
        assert_eq!(recoveries, 1);
        assert!(scrub.scans > panels, "post-recovery pass missing: {} scans", scrub.scans);
        assert_eq!(scrub.escalations, 0);
        let d = got.max_abs_diff(&reference);
        assert!(d < 1e-10, "diff {d}");
    }
}
