//! The solver-agnostic ABFT framework contract (DESIGN.md §12).
//!
//! The paper develops its checksum machinery for the Hessenberg reduction,
//! but nothing in the encode / verify / recover / scrub pipeline is
//! Hessenberg-specific: the framework only needs to know the solver's panel
//! geometry (where panels exist, how wide they are, where the reflector
//! units sit) and whether the solver applies a trailing **right** update —
//! the one operation that requires the pseudo-checksum `Ve` machinery,
//! because a right update mixes *columns* and therefore moves mass between
//! checksum groups. Left updates (`QᵀA`) mix rows only, so column checksums
//! are invariant under them for free (Theorem 1's easy half).
//!
//! [`FtSolver`] captures exactly that contract. The driver in
//! [`crate::algorithm`], recovery in [`crate::recovery`] and the scrub
//! engine in [`crate::scrub`] are written once against `&dyn FtSolver`;
//! [`Hessenberg`] and [`HouseholderQr`] are the two instantiations. A third
//! solver (say FT-LU with partial pivoting disabled, or two-sided
//! tridiagonalization) slots in by implementing the seven methods — see
//! DESIGN.md §12 for the slot-in walkthrough.

use ft_pblas::{pdlahrd, pdlaqrf, DistMatrix, PanelFactors};
use ft_runtime::Ctx;

/// The per-solver knobs of the ABFT framework: panel geometry, update
/// structure, and the distributed panel kernel. Everything else — encoding,
/// Theorem-1 verification, §5.3 recovery, SDC scrubbing, chaos rollback —
/// is shared code parameterized over this trait.
pub trait FtSolver: Sync {
    /// Short name for diagnostics (`"hessenberg"`, `"qr"`): surfaces in
    /// [`ft_pblas::Theorem1Violation`] messages and the CLI.
    fn name(&self) -> &'static str;

    /// Row offset of the reflector units relative to the panel's first
    /// column: reflector `l` of panel `k` has its implicit unit at global
    /// row `k + l + v_row_offset()`. Hessenberg reflectors sit below the
    /// subdiagonal (1); QR reflectors sit on the diagonal (0). Must match
    /// the `v_row_offset` of every [`PanelFactors`] the kernel returns.
    fn v_row_offset(&self) -> usize;

    /// Whether the solver applies a trailing **right** update
    /// (`A ← A − Y·Vᵀ`). Only right updates need the pseudo-checksum `Ve`
    /// rows and the right half of the Algorithm-3 catch-up / Area-4 replay;
    /// a left-only solver (QR) skips all of it and its `y_loc` is empty.
    fn has_right_update(&self) -> bool;

    /// Is there a panel to factor at column `k` of an `n×n` matrix?
    /// (Hessenberg stops at `n−2` — the last two columns are already
    /// Hessenberg; QR runs to the end.)
    fn panel_exists(&self, k: usize, n: usize) -> bool;

    /// Width of the panel at column `k` (the ragged last panel is narrower
    /// than `nb`).
    fn panel_width(&self, k: usize, n: usize, nb: usize) -> usize;

    /// Required length of the `tau` output for an `n×n` matrix
    /// (`n−1` reflectors for Hessenberg, `n` for QR).
    fn tau_len(&self, n: usize) -> usize;

    /// The distributed panel factorization kernel (SPMD, collective).
    fn factor_panel(&self, ctx: &Ctx, a: &mut DistMatrix, n: usize, k: usize, w: usize) -> PanelFactors;
}

/// The paper's solver: blocked Hessenberg reduction (`PDLAHRD` panels,
/// right + left trailing updates, reflectors below the subdiagonal).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hessenberg;

impl FtSolver for Hessenberg {
    fn name(&self) -> &'static str {
        "hessenberg"
    }

    fn v_row_offset(&self) -> usize {
        1
    }

    fn has_right_update(&self) -> bool {
        true
    }

    fn panel_exists(&self, k: usize, n: usize) -> bool {
        k + 2 < n
    }

    fn panel_width(&self, k: usize, n: usize, nb: usize) -> usize {
        nb.min(n - 2 - k)
    }

    fn tau_len(&self, n: usize) -> usize {
        n.saturating_sub(1)
    }

    fn factor_panel(&self, ctx: &Ctx, a: &mut DistMatrix, n: usize, k: usize, w: usize) -> PanelFactors {
        pdlahrd(ctx, a, n, k, w)
    }
}

/// The second solver: right-looking blocked Householder QR (`PDLAQRF`
/// panels, **left-only** trailing updates, reflectors on the diagonal).
/// Exercises the framework's left-only path: no `Ve`, no right half in
/// catch-up or replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct HouseholderQr;

impl FtSolver for HouseholderQr {
    fn name(&self) -> &'static str {
        "qr"
    }

    fn v_row_offset(&self) -> usize {
        0
    }

    fn has_right_update(&self) -> bool {
        false
    }

    fn panel_exists(&self, k: usize, n: usize) -> bool {
        k < n
    }

    fn panel_width(&self, k: usize, n: usize, nb: usize) -> usize {
        nb.min(n - k)
    }

    fn tau_len(&self, n: usize) -> usize {
        n
    }

    fn factor_panel(&self, ctx: &Ctx, a: &mut DistMatrix, n: usize, k: usize, w: usize) -> PanelFactors {
        pdlaqrf(ctx, a, n, k, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hessenberg_geometry() {
        let h = Hessenberg;
        assert_eq!(h.name(), "hessenberg");
        assert_eq!(h.v_row_offset(), 1);
        assert!(h.has_right_update());
        assert!(h.panel_exists(0, 3));
        assert!(!h.panel_exists(1, 3));
        assert_eq!(h.panel_width(0, 16, 4), 4);
        assert_eq!(h.panel_width(12, 16, 4), 2); // ragged: n−2−k
        assert_eq!(h.tau_len(16), 15);
        assert_eq!(h.tau_len(1), 0);
    }

    #[test]
    fn qr_geometry() {
        let s = HouseholderQr;
        assert_eq!(s.name(), "qr");
        assert_eq!(s.v_row_offset(), 0);
        assert!(!s.has_right_update());
        assert!(s.panel_exists(15, 16));
        assert!(!s.panel_exists(16, 16));
        assert_eq!(s.panel_width(12, 14, 4), 2);
        assert_eq!(s.tau_len(16), 16);
    }

    /// The two solvers' panel schedules tile the matrix exactly: widths sum
    /// to the factored range and every panel starts on the previous end.
    #[test]
    fn panel_schedules_tile() {
        for solver in [&Hessenberg as &dyn FtSolver, &HouseholderQr] {
            for n in [1usize, 2, 3, 13, 16] {
                for nb in [1usize, 2, 4, 8] {
                    let mut k = 0;
                    while solver.panel_exists(k, n) {
                        let w = solver.panel_width(k, n, nb);
                        assert!(w >= 1 && w <= nb, "{} n={n} nb={nb} k={k}: w={w}", solver.name());
                        k += w;
                    }
                    let expect = if solver.has_right_update() { n.saturating_sub(2) } else { n };
                    assert_eq!(k, expect, "{} n={n} nb={nb}", solver.name());
                }
            }
        }
    }
}
