//! Panel-scope diskless checkpointing (paper §5: Algorithm 2 lines 4, 8–9).
//!
//! A *panel scope* is the group of `Q` consecutive block columns currently
//! being factorized — exactly one checksum group, and exactly one block
//! column per process column. Two protections run inside a scope:
//!
//! * **Snapshot** (line 4): at scope entry every process copies its local
//!   part of the scope columns and also sends it to its `h` right neighbors
//!   in the process row (`(p, q+d mod Q)`, `d = 1..=h`). The local copy
//!   serves the Area-4 replay on survivors; the remote copies serve the
//!   victims.
//! * **Panel bookkeeping** (lines 8–9): after each panel factorization the
//!   owning process column sends its local panel columns plus its `Y` and
//!   `T` pieces to the next `h` process columns. The panel copy is the
//!   Area-3 recovery source; `Y`/`T` (and the replicated `V`) drive the
//!   Area-4 replay.
//!
//! The holder count `h` equals the redundancy level's failure tolerance
//! ([`crate::encode::Redundancy::max_failures_per_row`]): with at most `h`
//! failures per process row, a victim always has at least one live holder
//! among its `h` right neighbors (the other victims occupy at most `h−1` of
//! them).

use crate::encode::Encoded;
use ft_dense::Matrix;
use ft_pblas::PanelFactors;
use ft_runtime::{Ctx, Tag};

// SNAP/BOOK are offset by the ring distance `d` (bounded by the tolerated
// failure count), so they get disjoint channel ranges.
const TAG_SNAP: Tag = Tag::Checkpoint(0x100);
const TAG_BOOK: Tag = Tag::Checkpoint(0x200);
const TAG_RESTORE_FACTORS: Tag = Tag::Recovery(0x20);
const TAG_RESTORE_SNAP: Tag = Tag::Recovery(0x21);
const TAG_RESTORE_PANEL: Tag = Tag::Recovery(0x22);
const TAG_REBUILD_BACKUPS: Tag = Tag::Recovery(0x23);

/// Checksum-update progress within the scope (only meaningful for the
/// delayed Algorithm 3, where checksum-column updates lag the data updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChkProgress {
    /// Panels of this scope whose right+left updates have been applied to
    /// the checksum columns.
    pub panels_done: usize,
    /// The *next* panel's right update has additionally been applied
    /// (recovery can stop between the two halves).
    pub right_done_for_next: bool,
}

/// Everything a process keeps while a panel scope is in flight.
///
/// `Clone` exists for the chaos-mode boundary images: the driver snapshots
/// the whole scope state at each committed fail-point boundary so an
/// arbitrary-point failure can roll back to it.
#[derive(Clone)]
pub struct ScopeState {
    /// Scope id = checksum group index.
    pub scope: usize,
    /// First global column of the scope.
    pub start_col: usize,
    /// One-past-last global column of the scope (clamped to `N`).
    pub end_col: usize,
    /// Number of right-neighbor backup holders (`h`).
    pub holders: usize,
    /// My local column indices inside the scope.
    pub local_cols: Vec<usize>,
    /// Snapshot of my local scope columns at scope entry
    /// (`lrn × local_cols.len()`, column-major).
    pub snapshot_own: Vec<f64>,
    /// Left neighbors' snapshot pieces, index `d−1` ↔ the neighbor at
    /// distance `d` to my left (I am its backup holder).
    pub snapshot_backups: Vec<Vec<f64>>,
    /// Factors of the panels factorized so far in this scope (replicated
    /// `V`/`T`/`tau`, row-local `Y`).
    pub factors: Vec<PanelFactors>,
    /// Panel-column copies received from left neighbors:
    /// `(distance, panel_index_in_scope, data)`.
    pub panel_backups: Vec<(usize, usize, Vec<f64>)>,
    /// My own sent panel pieces (kept so the backup chain can be rebuilt
    /// for a replacement process): `(panel_index_in_scope, data)`.
    pub my_panel_pieces: Vec<(usize, Vec<f64>)>,
    /// Algorithm 3 checksum lag tracking.
    pub chk: ChkProgress,
}

fn copy_local_cols(enc: &Encoded, cols: &[usize]) -> Vec<f64> {
    let lrn = enc.a.local_rows_below(enc.n());
    let ldl = enc.a.local().ld().max(1);
    let mut out = Vec::with_capacity(lrn * cols.len());
    for &lc in cols {
        out.extend_from_slice(&enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn]);
    }
    out
}

fn write_local_cols(enc: &mut Encoded, cols: &[usize], data: &[f64]) {
    let lrn = enc.a.local_rows_below(enc.n());
    let ldl = enc.a.local().ld().max(1);
    assert_eq!(data.len(), lrn * cols.len());
    for (i, &lc) in cols.iter().enumerate() {
        enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].copy_from_slice(&data[i * lrn..(i + 1) * lrn]);
    }
}

impl ScopeState {
    /// A sentinel "no scope active" state, used by the chaos-mode driver for
    /// the boundary image taken before the first panel scope begins. Its
    /// scope id is `enc.groups()` — past every real group — so recovery's
    /// `g == s` scope exclusion never matches and Areas 1/2 reconstruction
    /// covers the whole matrix from the initial checksums. Purely local
    /// (no snapshot exchange); the backup vectors exist but are empty.
    pub fn empty(ctx: &Ctx, enc: &Encoded) -> Self {
        let q = ctx.npcol();
        let holders = enc.redundancy().max_failures_per_row().min(q.saturating_sub(1));
        Self {
            scope: enc.groups(),
            start_col: 0,
            end_col: 0,
            holders,
            local_cols: Vec::new(),
            snapshot_own: Vec::new(),
            snapshot_backups: vec![Vec::new(); holders],
            factors: Vec::new(),
            panel_backups: Vec::new(),
            my_panel_pieces: Vec::new(),
            chk: ChkProgress::default(),
        }
    }

    /// Scope entry: take the diskless snapshot (local copy + copies on the
    /// `h` right neighbors). Collective.
    pub fn begin(ctx: &Ctx, enc: &Encoded, scope: usize) -> Self {
        let q = ctx.npcol();
        let holders = enc.redundancy().max_failures_per_row().min(q.saturating_sub(1));
        let start_col = scope * q * enc.nb();
        let end_col = ((scope + 1) * q * enc.nb()).min(enc.n());
        let lc0 = enc.a.local_cols_below(start_col);
        let lc1 = enc.a.local_cols_below(end_col);
        let local_cols: Vec<usize> = (lc0..lc1).collect();
        let snapshot_own = copy_local_cols(enc, &local_cols);

        // Ring exchanges within the process row: send to +d, receive from −d.
        let mut snapshot_backups = Vec::with_capacity(holders);
        for d in 1..=holders {
            let right = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + d) % q);
            let left = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + q - d) % q);
            ctx.send(right, TAG_SNAP.offset(d as u16), &snapshot_own);
            snapshot_backups.push(ctx.recv(left, TAG_SNAP.offset(d as u16)));
        }

        Self {
            scope,
            start_col,
            end_col,
            holders,
            local_cols,
            snapshot_own,
            snapshot_backups,
            factors: Vec::new(),
            panel_backups: Vec::new(),
            my_panel_pieces: Vec::new(),
            chk: ChkProgress::default(),
        }
    }

    /// Panel bookkeeping (Algorithm 2 lines 8–9): the panel-owning process
    /// column sends its finished panel columns, `Y` and `T` to the next `h`
    /// process columns; receivers store the panel piece. Everyone records
    /// the factors. Call right after `pdlahrd`.
    pub fn bookkeep_panel(&mut self, ctx: &Ctx, enc: &Encoded, f: &PanelFactors) {
        let q = ctx.npcol();
        let q_pan = enc.a.col_owner(f.k);
        let scope_panel_idx = (f.k / enc.nb()) % q;

        if ctx.mycol() == q_pan && self.holders > 0 {
            let lcs: Vec<usize> = {
                let lc0 = enc.a.local_cols_below(f.k);
                let lc1 = enc.a.local_cols_below(f.k + f.w);
                (lc0..lc1).collect()
            };
            let panel_piece = copy_local_cols(enc, &lcs);
            // Paper line 8/9: the panel itself, Y and T travel to the next
            // process column(s). One message per holder keeps the
            // communication accounting faithful.
            let mut msg = Vec::with_capacity(panel_piece.len() + f.y_loc.as_slice().len() + f.t.as_slice().len());
            msg.extend_from_slice(&panel_piece);
            msg.extend_from_slice(f.y_loc.as_slice());
            msg.extend_from_slice(f.t.as_slice());
            for d in 1..=self.holders {
                let dst = ctx.grid().rank_of(ctx.myrow(), (q_pan + d) % q);
                ctx.send(dst, TAG_BOOK.offset(d as u16), &msg);
            }
            self.my_panel_pieces.push((scope_panel_idx, panel_piece));
        } else {
            for d in 1..=self.holders {
                if ctx.mycol() == (q_pan + d) % q {
                    let src = ctx.grid().rank_of(ctx.myrow(), q_pan);
                    let msg = ctx.recv(src, TAG_BOOK.offset(d as u16));
                    let lrn = enc.a.local_rows_below(enc.n());
                    let panel_piece = msg[..lrn * f.w].to_vec();
                    self.panel_backups.push((d, scope_panel_idx, panel_piece));
                }
            }
        }
        self.factors.push(f.clone());
    }

    /// Restore the scope columns in `[from_col, end_col)` from the local
    /// snapshot (the Area-4 rollback on every process). The victim must
    /// have had its `snapshot_own` restored first.
    pub fn restore_snapshot_from(&self, enc: &mut Encoded, from_col: usize) {
        let lrn = enc.a.local_rows_below(enc.n());
        for (i, &lc) in self.local_cols.iter().enumerate() {
            let gc = enc.a.l2g_col(lc);
            if gc >= from_col && gc < self.end_col {
                let piece = &self.snapshot_own[i * lrn..(i + 1) * lrn];
                let ldl = enc.a.local().ld().max(1);
                enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].copy_from_slice(piece);
            }
        }
    }

    /// First live (non-victim) right neighbor of `(pv, qv)` within holder
    /// distance, as `(rank, distance)`.
    fn live_holder(&self, ctx: &Ctx, victims: &[usize], pv: usize, qv: usize) -> (usize, usize) {
        let q = ctx.npcol();
        for d in 1..=self.holders {
            let cand = ctx.grid().rank_of(pv, (qv + d) % q);
            if !victims.contains(&cand) {
                return (cand, d);
            }
        }
        panic!("no live backup holder for victim ({pv},{qv}) — fault model violated");
    }

    /// Victim-side + helper-side repair of the scope state after a failure
    /// (paper §5.3 steps 1/4/5 support). Two passes over the victim list:
    ///
    /// 1. restore every victim (factors + checksum-progress marker, its own
    ///    snapshot piece, and the Area-3 panel columns it owned), each from
    ///    a live holder;
    /// 2. rebuild every victim's *holder* role from its (now fully
    ///    restored) left neighbors, re-arming protection for the next
    ///    failure.
    ///
    /// Collective: all processes call with the same victim list.
    pub fn repair_after_failure(&mut self, ctx: &Ctx, enc: &mut Encoded, victims: &[usize], i_am_victim: bool) {
        let q = ctx.npcol();
        if victims.is_empty() {
            return;
        }
        assert!(self.holders > 0, "cannot recover without backup holders (Q too small)");

        // ---- pass 1: restore each victim ---------------------------------
        for &v in victims {
            let (pv, qv) = ctx.grid().coords_of(v);
            let (helper, dist) = self.live_holder(ctx, victims, pv, qv);

            // (1a) factors + checksum-progress marker + snapshot piece.
            if ctx.rank() == helper {
                let mut buf = serialize_factors(&self.factors);
                buf.push(self.chk.panels_done as f64);
                buf.push(if self.chk.right_done_for_next { 1.0 } else { 0.0 });
                ctx.send(v, TAG_RESTORE_FACTORS, &buf);
                ctx.send(v, TAG_RESTORE_SNAP, &self.snapshot_backups[dist - 1]);
            }
            if ctx.rank() == v {
                let buf = ctx.recv(helper, TAG_RESTORE_FACTORS);
                let m = buf.len();
                self.chk = ChkProgress {
                    panels_done: buf[m - 2] as usize,
                    right_done_for_next: buf[m - 1] == 1.0,
                };
                self.factors = deserialize_factors(&buf[..m - 2]);
                self.snapshot_own = ctx.recv(helper, TAG_RESTORE_SNAP);
            }

            // (1b) Area-3 panel pieces: backups (at the matching distance)
            //      of panels the victim owned.
            if ctx.rank() == helper {
                let mine: Vec<&(usize, usize, Vec<f64>)> = self.panel_backups.iter().filter(|(d, _, _)| *d == dist).collect();
                let mut header = vec![mine.len() as f64];
                for (_, idx, piece) in &mine {
                    header.push(*idx as f64);
                    header.push(piece.len() as f64);
                }
                ctx.send(v, TAG_RESTORE_PANEL, &header);
                for (_, _, piece) in &mine {
                    ctx.send(v, TAG_RESTORE_PANEL, piece);
                }
            }
            if ctx.rank() == v {
                let header = ctx.recv(helper, TAG_RESTORE_PANEL);
                let cnt = header[0] as usize;
                self.my_panel_pieces.clear();
                let lrn = enc.a.local_rows_below(enc.n());
                for e in 0..cnt {
                    let idx = header[1 + 2 * e] as usize;
                    let piece = ctx.recv(helper, TAG_RESTORE_PANEL);
                    // The panel may be narrower than nb (ragged last panel);
                    // derive its width from the piece itself.
                    let k = self.start_col + idx * enc.nb();
                    let lc0 = enc.a.local_cols_below(k);
                    let cols_cnt = piece.len().checked_div(lrn).unwrap_or(0);
                    let cols: Vec<usize> = (lc0..lc0 + cols_cnt).collect();
                    write_local_cols(enc, &cols, &piece);
                    self.my_panel_pieces.push((idx, piece));
                }
            }
        }

        // ---- pass 2: rebuild each victim's holder role --------------------
        // All victims are restored now, so even a victim left-neighbor can
        // serve as a source.
        for &v in victims {
            let (pv, qv) = ctx.grid().coords_of(v);
            if ctx.rank() == v {
                self.snapshot_backups = Vec::with_capacity(self.holders);
                self.panel_backups.clear();
            }
            for d in 1..=self.holders {
                let left = ctx.grid().rank_of(pv, (qv + q - d) % q);
                if ctx.rank() == left {
                    ctx.send(v, TAG_REBUILD_BACKUPS, &self.snapshot_own);
                    let mut header = vec![self.my_panel_pieces.len() as f64];
                    for (idx, piece) in &self.my_panel_pieces {
                        header.push(*idx as f64);
                        header.push(piece.len() as f64);
                    }
                    ctx.send(v, TAG_REBUILD_BACKUPS, &header);
                    for (_, piece) in &self.my_panel_pieces {
                        ctx.send(v, TAG_REBUILD_BACKUPS, piece);
                    }
                }
                if ctx.rank() == v {
                    self.snapshot_backups.push(ctx.recv(left, TAG_REBUILD_BACKUPS));
                    let header = ctx.recv(left, TAG_REBUILD_BACKUPS);
                    let cnt = header[0] as usize;
                    for e in 0..cnt {
                        let idx = header[1 + 2 * e] as usize;
                        let piece = ctx.recv(left, TAG_REBUILD_BACKUPS);
                        self.panel_backups.push((d, idx, piece));
                    }
                }
            }
        }
        let _ = i_am_victim;
    }
}

/// Flatten a factor list into one `f64` buffer (victim restoration). Each
/// factor carries a 5-word header `[k, w, n, y_rows, v_row_offset]` so the
/// receiver can rebuild the solver-specific reflector geometry.
pub fn serialize_factors(fs: &[PanelFactors]) -> Vec<f64> {
    let mut out = vec![fs.len() as f64];
    for f in fs {
        out.push(f.k as f64);
        out.push(f.w as f64);
        out.push(f.n as f64);
        out.push(f.y_loc.rows() as f64);
        out.push(f.v_row_offset as f64);
        out.extend_from_slice(&f.tau);
        out.extend_from_slice(f.t.as_slice());
        out.extend_from_slice(f.vfull.as_slice());
        out.extend_from_slice(f.y_loc.as_slice());
    }
    out
}

/// Inverse of [`serialize_factors`].
pub fn deserialize_factors(buf: &[f64]) -> Vec<PanelFactors> {
    let mut fs = Vec::new();
    let mut p = 0;
    let cnt = buf[p] as usize;
    p += 1;
    for _ in 0..cnt {
        let k = buf[p] as usize;
        let w = buf[p + 1] as usize;
        let n = buf[p + 2] as usize;
        let yrows = buf[p + 3] as usize;
        let v_row_offset = buf[p + 4] as usize;
        p += 5;
        let tau = buf[p..p + w].to_vec();
        p += w;
        let t = Matrix::from_vec(w, w, buf[p..p + w * w].to_vec());
        p += w * w;
        let vm = n - k - v_row_offset;
        let vfull = Matrix::from_vec(vm, w, buf[p..p + vm * w].to_vec());
        p += vm * w;
        let y_loc = Matrix::from_vec(yrows, w, buf[p..p + yrows * w].to_vec());
        p += yrows * w;
        fs.push(PanelFactors { k, w, n, v_row_offset, tau, t, vfull, y_loc });
    }
    assert_eq!(p, buf.len(), "factor deserialization length mismatch");
    fs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn factor_serialization_roundtrip() {
        let f = PanelFactors {
            k: 4,
            w: 2,
            n: 9,
            v_row_offset: 1,
            tau: vec![0.5, 0.25],
            t: Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64),
            vfull: Matrix::from_fn(4, 2, |i, j| (10 * i + j) as f64),
            y_loc: Matrix::from_fn(5, 2, |i, j| (100 * i + j) as f64),
        };
        // A QR-shaped factor: reflectors start on the diagonal (offset 0,
        // one more vfull row) and there is no right update (empty Y).
        let g = PanelFactors {
            k: 4,
            w: 2,
            n: 9,
            v_row_offset: 0,
            tau: vec![0.75, 0.125],
            t: Matrix::from_fn(2, 2, |i, j| (7 * i + j) as f64),
            vfull: Matrix::from_fn(5, 2, |i, j| (20 * i + j) as f64),
            y_loc: Matrix::zeros(0, 2),
        };
        let buf = serialize_factors(&[f.clone(), g.clone(), f.clone()]);
        let back = deserialize_factors(&buf);
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].k, 4);
        assert_eq!(back[2].tau, f.tau);
        assert_eq!(back[0].t, f.t);
        assert_eq!(back[0].vfull, f.vfull);
        assert_eq!(back[0].y_loc, f.y_loc);
        assert_eq!(back[0].v_row_offset, 1);
        assert_eq!(back[1].v_row_offset, 0);
        assert_eq!(back[1].vfull, g.vfull);
        assert_eq!(back[1].y_loc.rows(), 0);
        assert_eq!(back[1].v_row0(), 4);
        assert_eq!(back[0].v_row0(), 5);
    }

    #[test]
    fn snapshot_restores_scope_columns() {
        let n = 12;
        let nb = 2;
        run_spmd(2, 3, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(8, i, j));
            let before = enc.gather_logical(&ctx, 970);
            let st = ScopeState::begin(&ctx, &enc, 0);
            assert_eq!(st.start_col, 0);
            assert_eq!(st.end_col, 6);
            assert_eq!(st.holders, 1);
            // Trash the scope columns, then restore.
            for lc in 0..enc.a.lcols() {
                let gc = enc.a.l2g_col(lc);
                if gc < 6 {
                    let lrn = enc.a.local_rows_below(n);
                    let ldl = enc.a.local().ld().max(1);
                    enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].fill(-7.0);
                }
            }
            st.restore_snapshot_from(&mut enc, 0);
            let after = enc.gather_logical(&ctx, 972);
            assert_eq!(before, after);
        });
    }

    #[test]
    fn dual_redundancy_has_two_holders() {
        use crate::encode::Redundancy;
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            let enc = Encoded::with_redundancy(&ctx, 8, 2, Redundancy::Dual, |i, j| (i + j) as f64);
            let st = ScopeState::begin(&ctx, &enc, 0);
            assert_eq!(st.holders, 2);
            assert_eq!(st.snapshot_backups.len(), 2);
        });
    }

    #[test]
    fn partial_restore_respects_from_col() {
        let n = 12;
        let nb = 2;
        run_spmd(1, 3, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| (i + 2 * j) as f64);
            let st = ScopeState::begin(&ctx, &enc, 0);
            // Overwrite all scope columns, restore only from column 2.
            for lc in 0..enc.a.lcols() {
                let gc = enc.a.l2g_col(lc);
                if gc < 6 {
                    let lrn = enc.a.local_rows_below(n);
                    let ldl = enc.a.local().ld().max(1);
                    enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].fill(99.0);
                }
            }
            st.restore_snapshot_from(&mut enc, 2);
            let g = enc.gather_logical(&ctx, 974);
            for r in 0..n {
                assert_eq!(g[(r, 0)], 99.0);
                assert_eq!(g[(r, 1)], 99.0);
                for c in 2..6 {
                    assert_eq!(g[(r, c)], (r + 2 * c) as f64);
                }
            }
        });
    }
}
