//! The recovery procedure (paper §5.3, Figure 5).
//!
//! Matrix areas at failure time (Figure 5):
//!
//! * **Area 1** — trailing columns after the panel scope (checksum groups
//!   `> s`): recovered from the live row checksums by a re-reduction
//!   (`lost = checksum − Σ live members`) — the dominant recovery cost the
//!   paper measures in §7.2.
//! * **Area 2** — finished columns (groups `< s`): same formula against the
//!   checksums recomputed once at their scope's completion.
//! * **Area 3** — factorized panel columns inside the scope: copied back
//!   from the diskless bookkeeping on the next process column(s).
//! * **Area 4** — not-yet-factorized scope columns: rolled back to the
//!   scope snapshot and brought forward by replaying the saved per-panel
//!   updates (right/left, phase-aware for the interrupted iteration).
//!
//! We restore Area 4 from the snapshot on **all** processes and replay
//! everywhere: the collectives are deterministic, so survivors recompute
//! bit-identical values and only the victims' blocks actually change. This
//! covers simultaneous multi-row failures with the same code path (see
//! DESIGN.md §6); the paper recovers only lost blocks, so our recovery does
//! strictly more local work — the difference is noted in EXPERIMENTS.md.
//!
//! Tolerated failure set: any number of simultaneous victims with at most
//! `max_failures_per_row()` per process row — 1 with the paper's duplicated
//! checksums ([`Redundancy::Single`]), 2 with the weighted extension
//! ([`Redundancy::Dual`], the paper's §8 future work), and `f` with the
//! Reed–Solomon generalization ([`Redundancy::Coded`]`(f)`, DESIGN.md §13).
//! For multiple victims in one row, Areas 1/2 become a per-element
//! Vandermonde solve: the surviving weighted checksums give as many
//! independent equations as there are lost member blocks.

use crate::algorithm::{alg3_catch_up, ft_left, ft_right, store_ve, ve_rows, Phase, Variant};
use crate::encode::{Encoded, Redundancy};
use crate::scope::ScopeState;
use crate::solver::FtSolver;
use ft_runtime::{Ctx, Tag};
use std::collections::{BTreeSet, HashMap};

// A12_RED/A12_CHK are offset by the recovered column index, so they get
// disjoint channel ranges wide enough for any panel width.
const TAG_DUP: Tag = Tag::Recovery(0x40);
const TAG_A12_RED: Tag = Tag::Recovery(0x1000);
const TAG_A12_CHK: Tag = Tag::Recovery(0x2000);
const TAG_A12_PEER: Tag = Tag::Recovery(0x41);

/// Which constraint produced the effective per-row failure budget in
/// [`check_tolerance`] — the answer to "would a stronger encoding have
/// helped, or is the grid itself too narrow?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceCap {
    /// The checksum encoding itself: `max_failures_per_row()` of the active
    /// [`Redundancy`] level. More redundancy would raise the budget.
    Encoding,
    /// The process grid: only `Q − 1` right-neighbor backup holders exist,
    /// so fewer victims per row are survivable than the encoding could
    /// decode. A wider grid (not a stronger encoding) would raise the
    /// budget.
    BackupHolders,
}

/// A victim set that exceeds what the encoding can repair — the typed
/// verdict of [`check_tolerance`], reported before any recovery work starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToleranceExceeded {
    /// The process row that overflowed.
    pub row: usize,
    /// Victims observed in that row.
    pub count: usize,
    /// The effective per-row limit: `min(encoding_max, Q − 1)`.
    pub max_per_row: usize,
    /// The encoding's own per-row tolerance, before the `Q − 1` backup
    /// holder cap.
    pub encoding_max: usize,
    /// Which of the two constraints set `max_per_row`.
    pub cap: ToleranceCap,
}

/// Check a victim set against the fault model **before** attempting
/// recovery: at most [`Redundancy::max_failures_per_row`] simultaneous
/// victims per process row, further capped at `Q − 1` (a victim needs at
/// least one live backup holder among its right neighbors — the verdict's
/// [`ToleranceCap`] says which constraint actually bound). Deterministic —
/// every rank evaluating the same victim list gets the identical verdict,
/// which is what lets the driver return the same typed error everywhere
/// instead of panicking on some ranks.
pub fn check_tolerance(ctx: &Ctx, redundancy: Redundancy, victims: &[usize]) -> Result<(), ToleranceExceeded> {
    let encoding_max = redundancy.max_failures_per_row();
    let holder_cap = ctx.npcol().saturating_sub(1);
    let max_per_row = encoding_max.min(holder_cap);
    let cap = if holder_cap < encoding_max {
        ToleranceCap::BackupHolders
    } else {
        ToleranceCap::Encoding
    };
    let mut rows: HashMap<usize, usize> = HashMap::new();
    for &v in victims {
        let (pv, _) = ctx.grid().coords_of(v);
        let c = rows.entry(pv).or_insert(0);
        *c += 1;
        if *c > max_per_row {
            return Err(ToleranceExceeded { row: pv, count: *c, max_per_row, encoding_max, cap });
        }
    }
    Ok(())
}

/// Run the full §5.3 recovery. Collective: every process calls with the
/// same `victims` list (as delivered by the fail-point check); `me` marks
/// the victims themselves, which act as the replacement processes.
///
/// Precondition: the victim set satisfies [`check_tolerance`] — the callers
/// in the driver verify it first and surface a typed error instead of ever
/// reaching this function with an unrecoverable set.
#[allow(clippy::too_many_arguments)]
pub fn recover(
    ctx: &Ctx,
    solver: &dyn FtSolver,
    enc: &mut Encoded,
    st: &mut ScopeState,
    victims: &[usize],
    me: bool,
    variant: Variant,
    phase: Phase,
    s: usize,
) {
    debug_assert!(
        check_tolerance(ctx, enc.redundancy(), victims).is_ok(),
        "recover() called with an unrecoverable victim set {victims:?} — the driver must check first"
    );
    // Group victims by process row (the fault model was verified upstream).
    let mut rows: HashMap<usize, Vec<usize>> = HashMap::new();
    for &v in victims {
        let (pv, _) = ctx.grid().coords_of(v);
        rows.entry(pv).or_default().push(v);
    }

    // Step 1 (§5.3 step 1 is grid repair — the replacement thread itself):
    // the victim drops everything it had. This is the data loss.
    if me {
        enc.a.wipe_local();
        st.factors.clear();
        st.snapshot_own.clear();
        st.snapshot_backups.clear();
        st.panel_backups.clear();
        st.my_panel_pieces.clear();
    }

    // Step 2: restore the victims' scope state (factors, snapshot pieces,
    // Area-3 panel columns) and re-establish the backup chains.
    st.repair_after_failure(ctx, enc, victims, me);

    // Step 3 (Algorithm 3 only): bring the surviving checksum columns up to
    // date with the data before using them (Algorithm 3 lines 18–21).
    //
    // The catch-up's left updates reduce over *every* process row of each
    // checksum column, so a victim's garbage blocks would contaminate the
    // survivors' blocks of every checksum copy the victim's process column
    // owns — corruption that nothing reads until a *later* failure solves
    // Area 1/2 from those copies. Under `Single` the two copies are
    // bit-identical at any quiescent point, so restore the victims' blocks
    // from the surviving duplicates first; the copies then flow through the
    // catch-up like everyone else's and step 6 has nothing left to do.
    // Under `Dual`/`Coded` the Area 1/2 solve never reads victim-column
    // copies and step 6 recomputes every affected group from the recovered
    // data, so the contamination window is already closed there.
    let chk_catch_up = variant == Variant::Delayed && !st.factors.is_empty();
    let pre_restored = chk_catch_up && enc.redundancy() == Redundancy::Single;
    if pre_restored {
        restore_checksum_duplicates(ctx, enc, victims);
    }
    if chk_catch_up {
        let (full, extra_right) = match phase {
            Phase::BeforePanel | Phase::AfterLeftUpdate => (st.factors.len(), false),
            Phase::AfterPanel => (st.factors.len() - 1, false),
            Phase::AfterRightUpdate => (st.factors.len() - 1, true),
        };
        alg3_catch_up(ctx, solver, enc, st, s, full, extra_right);
    }

    // Step 4: Areas 1 and 2 — per process row, solve for the lost member
    // blocks of every group except the scope's own.
    recover_areas_1_2(ctx, enc, &rows, s);

    // Step 5: Area 4 — roll the unfactorized scope columns back to the
    // snapshot everywhere, then replay the saved panel updates.
    replay_area4(ctx, solver, enc, st, s, phase);

    // Step 6: restore the victims' lost checksum blocks. With the paper's
    // duplicated checksums, copy from the surviving duplicate (§5.2); with
    // weighted checksums the copies differ, so recompute the affected
    // groups from the (now fully recovered) member columns.
    match enc.redundancy() {
        Redundancy::Single if pre_restored => {} // done before the catch-up
        Redundancy::Single => restore_checksum_duplicates(ctx, enc, victims),
        Redundancy::Dual | Redundancy::Coded(_) => {
            let mut affected: BTreeSet<usize> = BTreeSet::new();
            for &v in victims {
                let (_, qv) = ctx.grid().coords_of(v);
                for g in 0..enc.groups() {
                    for copy in 0..enc.ncopies() {
                        if enc.a.col_owner(enc.chk_col(g, copy, 0)) == qv {
                            affected.insert(g);
                        }
                    }
                }
            }
            for g in affected {
                enc.compute_group_checksum(ctx, g);
            }
        }
    }

    // Step 7: restore the Ve bottom-row storage for the current panel
    // (local writes; owners overwrite with identical values). Left-only
    // solvers never store Ve, so there is nothing to restore.
    if solver.has_right_update() && variant == Variant::NonDelayed {
        if let Some(f) = st.factors.last() {
            let f = f.clone();
            let ve = ve_rows(enc, &f);
            store_ve(enc, &f, &ve);
        }
    }
}

/// §5.3 step 5 — shared with the scrub engine's Area-4 refresh: roll the
/// unfactorized scope columns back to the scope snapshot on **every**
/// process and replay the saved per-panel updates (phase-aware for the
/// interrupted iteration). The collectives are deterministic, so the
/// rebuild is bit-identical on clean processes and only wrong blocks
/// actually change — which is what makes it safe to run over a
/// *suspected-corrupt* matrix as well as after a fail-stop wipe.
pub(crate) fn replay_area4(ctx: &Ctx, solver: &dyn FtSolver, enc: &mut Encoded, st: &ScopeState, s: usize, phase: Phase) {
    // (At BeforePanel the interrupted panel has not run, but `factors` then
    // holds only completed panels, so this bound is right at every phase.)
    let a4_start = st.factors.last().map(|f| f.k + f.w).unwrap_or(st.start_col);
    if a4_start >= st.end_col {
        return; // no unfactorized scope columns left (uniform: replicated bookkeeping)
    }
    st.restore_snapshot_from(enc, a4_start);
    let nfac = st.factors.len();
    for j in 0..nfac {
        let f = st.factors[j].clone();
        let last = j + 1 == nfac;
        let (do_right, do_left) = if !last {
            (true, true)
        } else {
            match phase {
                Phase::BeforePanel => (true, true), // all factors are completed panels
                Phase::AfterPanel => (false, false),
                Phase::AfterRightUpdate => (true, false),
                Phase::AfterLeftUpdate => (true, true),
            }
        };
        if do_right && solver.has_right_update() {
            let ve = ve_rows(enc, &f);
            ft_right(enc, &f, &ve, a4_start, st.end_col, false, s);
        }
        if do_left {
            ft_left(ctx, enc, &f, a4_start, st.end_col, false, s);
        }
    }
}

/// §5.2: every checksum block a victim owned is copied back from its
/// surviving duplicate (the two copies sit on different process columns and
/// are updated identically, hence bit-equal). Single-redundancy only.
fn restore_checksum_duplicates(ctx: &Ctx, enc: &mut Encoded, victims: &[usize]) {
    for &v in victims {
        let (pv, qv) = ctx.grid().coords_of(v);
        if ctx.myrow() != pv {
            continue;
        }
        for g in 0..enc.groups() {
            for copy in 0..2 {
                if enc.a.col_owner(enc.chk_col(g, copy, 0)) != qv {
                    continue; // the victim does not own this copy
                }
                debug_assert_ne!(enc.a.col_owner(enc.chk_col(g, 1 - copy, 0)), qv);
                // The surviving duplicate travels to the victim's column.
                if let Some(buf) = enc.move_chk_block_to(ctx, g, 1 - copy, qv, TAG_DUP) {
                    enc.write_chk_block(g, copy, &buf);
                }
            }
        }
    }
}

/// §5.3 step 3: Areas 1 and 2, generalized to `m ≤ max_failures_per_row()`
/// victims per process row. For each victim row and each group `g ≠ s`:
///
/// * unknowns: the victims' member blocks `x₁ … x_m` of the group;
/// * equations: the first `m` checksum copies whose owner column is live —
///   `Σᵥ w_c(idxᵥ)·xᵥ = chk_c − Σ_live w_c(idx)·a` (any `m` Vandermonde
///   rows are independent);
/// * one weighted live-sum row-reduction per equation, solved element-wise
///   on the first victim, which sends the other victims their blocks.
///
/// The `m ≤ 2` solves use the historical closed forms (division, Cramer) so
/// `Single`/`Dual` recoveries stay bit-identical across releases; `m ≥ 3`
/// goes through [`solve_block_system`].
fn recover_areas_1_2(ctx: &Ctx, enc: &mut Encoded, rows: &HashMap<usize, Vec<usize>>, s: usize) {
    let mut row_list: Vec<(&usize, &Vec<usize>)> = rows.iter().collect();
    row_list.sort_by_key(|(p, _)| **p);

    for (&pv, vlist) in row_list {
        if ctx.myrow() != pv {
            continue; // other rows lost nothing in these victims' failures
        }
        let lrn = enc.a.local_rows_below(enc.n());
        let mut vsorted = vlist.clone();
        vsorted.sort_unstable();
        let solver = vsorted[0];
        let victim_cols: Vec<usize> = vsorted.iter().map(|&v| ctx.grid().coords_of(v).1).collect();

        for g in 0..enc.groups() {
            if g == s {
                continue; // the scope itself is Areas 3/4
            }
            // Unknowns: victims' member blocks that exist in this group.
            let unknowns: Vec<(usize, usize, usize)> = vsorted
                .iter()
                .zip(&victim_cols)
                .filter_map(|(&v, &qv)| {
                    let base = crate::areas::member_base(enc, g, qv);
                    (base < enc.n()).then_some((v, qv, base))
                })
                .collect();
            let m = unknowns.len();
            if m == 0 {
                continue;
            }
            // Equations: the first m checksum copies on live columns.
            let eq_copies: Vec<usize> = (0..enc.ncopies())
                .filter(|&c| !victim_cols.contains(&enc.a.col_owner(enc.chk_col(g, c, 0))))
                .take(m)
                .collect();
            assert_eq!(eq_copies.len(), m, "not enough surviving checksums for group {g}");

            // rhs_c = chk_c − Σ_live w_c·a, assembled on the solver.
            let mut rhs: Vec<Vec<f64>> = Vec::with_capacity(m);
            for &c in &eq_copies {
                // Weighted live partial over my member columns (victims'
                // wiped columns contribute zero, as required).
                let mut partial = crate::areas::weighted_partial_block(enc, g, lrn, |_| true, |col| enc.col_weight(c, col));
                let solver_col = ctx.grid().coords_of(solver).1;
                ctx.reduce_sum_row(solver_col, &mut partial, TAG_A12_RED.offset(c as u16));

                // The checksum block travels to the solver.
                let chk = enc.move_chk_block_to(ctx, g, c, solver_col, TAG_A12_CHK.offset(c as u16));
                if ctx.rank() == solver {
                    let chk = chk.expect("solver column holds the moved block");
                    rhs.push(chk.iter().zip(&partial).map(|(a, b)| a - b).collect());
                }
            }

            if ctx.rank() == solver {
                // Solve the m×m Vandermonde system element-wise.
                let nmem = enc.members_per_group();
                let widx: Vec<usize> = unknowns.iter().map(|&(_, qv, _)| qv).collect();
                let sols: Vec<Vec<f64>> = match m {
                    1 => {
                        let w = enc.redundancy().weight(eq_copies[0], widx[0], nmem);
                        vec![rhs[0].iter().map(|r| r / w).collect()]
                    }
                    2 => {
                        let a11 = enc.redundancy().weight(eq_copies[0], widx[0], nmem);
                        let a12 = enc.redundancy().weight(eq_copies[0], widx[1], nmem);
                        let a21 = enc.redundancy().weight(eq_copies[1], widx[0], nmem);
                        let a22 = enc.redundancy().weight(eq_copies[1], widx[1], nmem);
                        let det = a11 * a22 - a12 * a21;
                        assert!(det.abs() > 1e-12, "singular recovery system");
                        let x1: Vec<f64> = rhs[0].iter().zip(&rhs[1]).map(|(r1, r2)| (r1 * a22 - r2 * a12) / det).collect();
                        let x2: Vec<f64> = rhs[0].iter().zip(&rhs[1]).map(|(r1, r2)| (a11 * r2 - a21 * r1) / det).collect();
                        vec![x1, x2]
                    }
                    _ => {
                        let a: Vec<Vec<f64>> = eq_copies
                            .iter()
                            .map(|&c| widx.iter().map(|&w| enc.redundancy().weight(c, w, nmem)).collect())
                            .collect();
                        solve_block_system(a, &rhs)
                    }
                };
                for ((v, _, base), sol) in unknowns.iter().zip(sols) {
                    if *v == solver {
                        crate::areas::write_member_block(enc, *base, lrn, &sol);
                    } else {
                        ctx.send(*v, TAG_A12_PEER, &sol);
                    }
                }
            }
            for &(v, _, base) in &unknowns {
                if ctx.rank() == v && v != solver {
                    let sol = ctx.recv(solver, TAG_A12_PEER);
                    crate::areas::write_member_block(enc, base, lrn, &sol);
                }
            }
        }
    }
}

/// Solve the `m×m` system `A·X = R` for `m` unknown blocks at once, where
/// every position of the `lrn·nb`-long blocks shares the same coefficient
/// matrix (the Vandermonde weights of the surviving checksum copies over
/// the lost member indices). Used for `m ≥ 3` ([`Redundancy::Coded`] with
/// `f ≥ 3`); the `m ≤ 2` closed forms in [`recover_areas_1_2`] are kept
/// verbatim for bit-stability.
///
/// The solve itself is [`ge_block_solve`] plus one
/// step of iterative refinement: the residual
/// `R − A·X` is evaluated with compensated (`mul_add`-split) products and
/// Neumaier accumulation, the correction re-solved through the same
/// factorization path, and added back. For the worst-conditioned victim sets
/// (adjacent member indices — Vandermonde nodes only `1/Q` apart) plain
/// elimination leaves an error `~ε·κ(A)` that the refinement step removes,
/// because `κ(A)·ε ≪ 1` always holds here (`m ≤ f`, nodes in `[1, 2)`).
/// step of iterative refinement on top of [`ge_block_solve`]: the residual
/// `R − A·X` is evaluated with compensated (`mul_add`-split) products and
/// Neumaier accumulation, the correction re-solved through the same
/// factorization path, and added back. For the worst-conditioned victim sets
/// (adjacent member indices — Vandermonde nodes only `1/Q` apart) plain
/// elimination leaves an error `~ε·κ(A)` that the refinement step removes,
/// because `κ(A)·ε ≪ 1` always holds here (`m ≤ f`, nodes in `[1, 2)`).
fn solve_block_system(a: Vec<Vec<f64>>, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let m = a.len();
    debug_assert!(rhs.len() == m && a.iter().all(|row| row.len() == m));
    let len = rhs.first().map_or(0, |r| r.len());
    let mut x = ge_block_solve(a.clone(), rhs.to_vec());
    // Compensated residual r = rhs − A·x: each product is split into its
    // rounded value and exact rounding error via mul_add, and both streams
    // are folded with a Neumaier running compensation, so r carries the
    // true residual to well below working precision.
    let mut r: Vec<Vec<f64>> = vec![vec![0.0; len]; m];
    for i in 0..m {
        let ri = &mut r[i];
        for (t, r_it) in ri.iter_mut().enumerate() {
            let mut s = rhs[i][t];
            let mut c = 0.0f64;
            for j in 0..m {
                let aij = -a[i][j];
                let p = aij * x[j][t];
                let e = aij.mul_add(x[j][t], -p);
                for add in [p, e] {
                    let t0 = s + add;
                    c += if s.abs() >= add.abs() { (s - t0) + add } else { (add - t0) + s };
                    s = t0;
                }
            }
            *r_it = s + c;
        }
    }
    let delta = ge_block_solve(a, r);
    for (xi, di) in x.iter_mut().zip(&delta) {
        for (x_t, d_t) in xi.iter_mut().zip(di) {
            *x_t += d_t;
        }
    }
    x
}

/// Gaussian elimination with partial pivoting on `m` stacked right-hand-side
/// blocks; the row operations apply to whole blocks so the factorization
/// cost is paid once, not per element.
fn ge_block_solve(mut a: Vec<Vec<f64>>, mut b: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let m = a.len();
    let len = b.first().map_or(0, |r| r.len());
    for k in 0..m {
        let piv = (k..m)
            .max_by(|&i, &j| a[i][k].abs().partial_cmp(&a[j][k].abs()).expect("finite weights"))
            .expect("non-empty pivot range");
        if piv != k {
            a.swap(k, piv);
            b.swap(k, piv);
        }
        assert!(a[k][k].abs() > 1e-12, "singular recovery system");
        let bk = b[k].clone();
        let ak = a[k].clone();
        for i in k + 1..m {
            let l = a[i][k] / ak[k];
            if l == 0.0 {
                continue;
            }
            for (aij, akj) in a[i][k..m].iter_mut().zip(&ak[k..m]) {
                *aij -= l * akj;
            }
            let bi = &mut b[i];
            for t in 0..len {
                bi[t] -= l * bk[t];
            }
        }
    }
    let mut x: Vec<Vec<f64>> = vec![Vec::new(); m];
    for k in (0..m).rev() {
        let mut acc = std::mem::take(&mut b[k]);
        for j in k + 1..m {
            let akj = a[k][j];
            if akj == 0.0 {
                continue;
            }
            let xj = &x[j];
            for t in 0..len {
                acc[t] -= akj * xj[t];
            }
        }
        let d = a[k][k];
        for t in acc.iter_mut() {
            *t /= d;
        }
        x[k] = acc;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_runtime::{run_spmd, FaultScript};

    /// `Dual` decodes 2 losses per row, but on a 1×2 grid only one backup
    /// holder exists — the effective budget is 1 and the verdict must blame
    /// the grid, not the encoding.
    #[test]
    fn tolerance_cap_names_the_backup_holder_limit() {
        let verdicts = run_spmd(1, 2, FaultScript::none(), |ctx| check_tolerance(&ctx, Redundancy::Dual, &[0, 1]));
        for v in verdicts {
            let e = v.expect_err("two victims in one row exceed the 1-holder budget");
            assert_eq!(
                e,
                ToleranceExceeded {
                    row: 0,
                    count: 2,
                    max_per_row: 1,
                    encoding_max: 2,
                    cap: ToleranceCap::BackupHolders,
                }
            );
        }
    }

    /// On a grid wide enough for the holders, overflowing the budget is the
    /// encoding's own fault: 3 same-row victims against `Dual`'s 2.
    #[test]
    fn tolerance_cap_names_the_encoding_limit() {
        let verdicts = run_spmd(1, 4, FaultScript::none(), |ctx| check_tolerance(&ctx, Redundancy::Dual, &[0, 1, 2]));
        for v in verdicts {
            let e = v.expect_err("three victims in one row exceed Dual's tolerance");
            assert_eq!(
                e,
                ToleranceExceeded {
                    row: 0,
                    count: 3,
                    max_per_row: 2,
                    encoding_max: 2,
                    cap: ToleranceCap::Encoding,
                }
            );
        }
    }

    /// Within budget on both axes: `Single` tolerates one victim per row,
    /// and one per row is exactly what this set has.
    #[test]
    fn tolerance_accepts_one_victim_per_row() {
        let verdicts = run_spmd(2, 2, FaultScript::none(), |ctx| check_tolerance(&ctx, Redundancy::Single, &[0, 3]));
        for v in verdicts {
            v.expect("one victim per process row is within Single's budget");
        }
    }

    /// `Coded(3)` accepts three same-row victims on a wide grid and rejects
    /// the fourth with the encoding named as the binding cap.
    #[test]
    fn tolerance_coded3_budget() {
        let verdicts = run_spmd(1, 6, FaultScript::none(), |ctx| {
            check_tolerance(&ctx, Redundancy::Coded(3), &[0, 2, 4]).expect("three victims within Coded(3)");
            check_tolerance(&ctx, Redundancy::Coded(3), &[0, 1, 2, 3])
        });
        for v in verdicts {
            let e = v.expect_err("four victims in one row exceed Coded(3)");
            assert_eq!(
                e,
                ToleranceExceeded {
                    row: 0,
                    count: 4,
                    max_per_row: 3,
                    encoding_max: 3,
                    cap: ToleranceCap::Encoding,
                }
            );
        }
    }

    /// The general elimination path agrees with a hand-solved Vandermonde
    /// system (integer nodes {1, 3, 5}, powers {0, 1, 2} — the solver takes
    /// any coefficient matrix; the encoding's `[1, 2)` nodes share the
    /// structure).
    #[test]
    fn block_system_solves_vandermonde_exactly() {
        let idx = [0usize, 2, 4];
        let copies = [0usize, 1, 2];
        let a: Vec<Vec<f64>> = copies
            .iter()
            .map(|&c| idx.iter().map(|&i| ((i + 1) as f64).powi(c as i32)).collect())
            .collect();
        // Known solution blocks (len 4), rhs = A·x.
        let x_want = [
            vec![1.0, -2.0, 0.5, 3.0],
            vec![4.0, 0.0, -1.5, 2.0],
            vec![-0.25, 7.0, 1.0, -3.5],
        ];
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|r| (0..4).map(|t| (0..3).map(|c| a[r][c] * x_want[c][t]).sum()).collect())
            .collect();
        let x = solve_block_system(a, &rhs);
        for (got, want) in x.iter().zip(&x_want) {
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-12, "{g} vs {w}");
            }
        }
    }
}
