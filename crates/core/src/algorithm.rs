//! The solver-agnostic ABFT driver — Algorithm 2 (non-delayed) and
//! Algorithm 3 (delayed) of the paper, written once against the
//! [`FtSolver`] contract and instantiated for the Hessenberg reduction
//! ([`ft_pdgehrd`]) and Householder QR ([`ft_pdgeqrf`]).
//!
//! Per panel iteration:
//!
//! 1. at scope entry (`block_col ≡ 0 mod Q`): snapshot the panel scope
//!    (Algorithm 2 line 4);
//! 2. the solver's panel kernel — `PDLAHRD` / `PDLAQRF` (line 6);
//! 3. pseudo checksum `Ve` of `V` (line 7) — only for solvers with a right
//!    update; Algorithm 2 computes it every panel, Algorithm 3 only when it
//!    updates the checksums;
//! 4. bookkeeping of `(panel, Y, T)` to the next process column (lines 8–9);
//! 5. right update `trail(Aₑ) −= Y·(Vₑ)ᵀ` (line 10) — Algorithm 2 includes
//!    the checksum columns of the groups after the scope, Algorithm 3 only
//!    the original columns. A left-only solver (QR) has no right update:
//!    the step still commits its boundary, so fail-point ids and the chaos
//!    rollback protocol are identical for every solver;
//! 6. left update `trail(Aₑ) −= V·Tᵀ·Vᵀ·trail(Aₑ)` (line 11), same column
//!    scope rule — row checksums are invariant under left updates for both
//!    solvers (Theorem 1), whether or not the checksum columns ride along;
//! 7. at scope end: Algorithm 3 catches the checksum columns up
//!    (lines 10–17 of Algorithm 3), then the finished group's checksum is
//!    recomputed once — it protects the finished columns (Area 2) forever.
//!
//! Fail points sit between the phases; on a failure every process runs the
//! recovery procedure of §5.3 (see [`crate::recovery`]).

use crate::encode::Encoded;
use crate::recovery;
use crate::scope::{ChkProgress, ScopeState};
use crate::scrub::{ScrubEngine, ScrubEscalation, ScrubPolicy, ScrubReport, TrailingScan};
use crate::solver::{FtSolver, Hessenberg, HouseholderQr};
use ft_dense::Matrix;
use ft_pblas::{left_update, right_update, PanelFactors};
use ft_runtime::{catch_interrupt, Ctx, FailCheck, Tag};
use std::time::Instant;

/// Driver-milestone trace for multi-process debugging, enabled by setting
/// `FT_DIST_TRACE` in the environment. Goes to stderr (the launcher passes
/// child stderr through), so a wedged distributed run shows how far each
/// rank got.
macro_rules! dtrace {
    ($ctx:expr, $($arg:tt)*) => {
        if std::env::var_os("FT_DIST_TRACE").is_some() {
            eprintln!("[ft rank {}] {}", $ctx.rank(), format!($($arg)*));
        }
    };
}

/// Control image shipped to a respawned replacement process (distributed
/// recovery): the driver bookkeeping a fresh process cannot reconstruct
/// locally. The matrix data itself is rebuilt by [`crate::recovery`].
const TAG_CTL_IMAGE: Tag = Tag::Recovery(0x50);
/// World-wide min-reduction of boundary-image ids — picks the common
/// rollback boundary when survivors' images diverge by one commit.
const TAG_BOUNDARY_MIN: Tag = Tag::Recovery(0x51);

/// Which ABFT variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Algorithm 2: checksum columns are updated fused with the trailing
    /// matrix, every iteration.
    NonDelayed,
    /// Algorithm 3: checksum updates are postponed to the end of each panel
    /// scope and applied panel-by-panel (tall-skinny updates — the cause of
    /// the overhead up-tick at large grids in Figure 7).
    Delayed,
}

/// Phase boundaries within one panel iteration where failures can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// After the scope snapshot, before the panel factorization.
    BeforePanel,
    /// After `PDLAHRD` + bookkeeping, before the right update.
    AfterPanel,
    /// After the right update (`PDGEMM`), before the left update.
    AfterRightUpdate,
    /// After the left update (`PDLARFB`).
    AfterLeftUpdate,
}

impl Phase {
    /// All phases, in iteration order.
    pub const ALL: [Phase; 4] = [
        Phase::BeforePanel,
        Phase::AfterPanel,
        Phase::AfterRightUpdate,
        Phase::AfterLeftUpdate,
    ];

    fn index(self) -> u64 {
        match self {
            Phase::BeforePanel => 0,
            Phase::AfterPanel => 1,
            Phase::AfterRightUpdate => 2,
            Phase::AfterLeftUpdate => 3,
        }
    }

    fn from_index(i: u64) -> Phase {
        Phase::ALL[i as usize]
    }
}

/// Encode a fail point id for [`ft_runtime::FaultScript`]: failure of panel
/// iteration `panel` at `phase`.
pub fn failpoint(panel: usize, phase: Phase) -> u64 {
    (panel as u64) * 4 + phase.index()
}

/// Terminal failure of a fault-tolerant reduction: the observed victim set
/// exceeds what the active redundancy level can repair. Every rank returns
/// the **identical** error (the tolerance check is deterministic over the
/// agreed victim set) — no rank panics and no rank proceeds with garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtError {
    /// More simultaneous failures in one process row than the code distance
    /// of the active redundancy level — the victim set erases more blocks
    /// per (row × group) than the surviving checksum copies can determine
    /// (see [`crate::recovery::check_tolerance`]). Raised at the
    /// deterministic tolerance gate, before any recovery work, for every
    /// redundancy level (`Single`, `Dual`, `Coded(f)`).
    ExceededCodeDistance {
        /// The agreed victim set (sorted for chaos failures, announcement
        /// order for scripted ones).
        victims: Vec<usize>,
        /// Panel iteration of the last consistent boundary.
        panel: usize,
        /// Phase of the last consistent boundary.
        phase: Phase,
        /// The process row that overflowed.
        row: usize,
        /// Victims observed in that row.
        count: usize,
        /// Effective per-row tolerance: `min(encoding_max, Q − 1)`.
        max_per_row: usize,
        /// The encoding's own per-row distance, before the backup-holder
        /// cap.
        encoding_max: usize,
        /// Which constraint bound the budget (the encoding's distance or
        /// the `Q − 1` backup holders).
        cap: crate::recovery::ToleranceCap,
    },
    /// Silent data corruption the scrub engine detected but could neither
    /// correct in place nor clear by rolling back to its last verified
    /// boundary image (rollback disabled, no image, or the same image
    /// already failed to make progress). Derived from replicated scan
    /// verdicts, so every rank returns the identical error.
    ScrubUnrecoverable {
        /// Panel iteration whose boundary scan escalated.
        panel: usize,
        /// First checksum group that stayed corrupt.
        group: usize,
        /// The group's copy-0 checksum block column (global block index).
        block_col: usize,
    },
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::ExceededCodeDistance {
                victims,
                panel,
                phase,
                row,
                count,
                max_per_row,
                encoding_max,
                cap,
            } => {
                let bound = match cap {
                    crate::recovery::ToleranceCap::Encoding => "the code distance".to_string(),
                    crate::recovery::ToleranceCap::BackupHolders => {
                        format!("the Q-1 backup holders (the code itself would tolerate {encoding_max})")
                    }
                };
                write!(
                    f,
                    "exceeded code distance at panel {panel} ({phase:?}): victims {victims:?} put {count} \
                     failure(s) in process row {row}, but {bound} caps recovery at {max_per_row} per row"
                )
            }
            FtError::ScrubUnrecoverable { panel, group, block_col } => write!(
                f,
                "unrecoverable silent corruption at panel {panel}: checksum group {group} (block \
                 column {block_col}) stayed violated after in-place correction and rollback were exhausted"
            ),
        }
    }
}

impl std::error::Error for FtError {}

/// Outcome statistics of a fault-tolerant reduction.
#[derive(Debug, Clone, Default)]
pub struct FtReport {
    /// Number of recovery events (a multi-victim failure counts once).
    pub recoveries: usize,
    /// Chaos-mode aborts: times an arbitrary-point failure unwound the
    /// driver to its last committed boundary (a nested failure during
    /// recovery counts again). Always 0 in scripted-only runs.
    pub chaos_aborts: usize,
    /// All victim ranks recovered, in event order.
    pub victims: Vec<usize>,
    /// Seconds in the initial checksum encoding (Algorithm 2 line 1).
    pub encode_secs: f64,
    /// Seconds in scope snapshots (line 4).
    pub snapshot_secs: f64,
    /// Seconds in per-panel bookkeeping sends (lines 8–9).
    pub bookkeeping_secs: f64,
    /// Seconds in scope-end work (checksum recompute; Algorithm 3 catch-up).
    pub scope_end_secs: f64,
    /// Seconds spent in recovery.
    pub recovery_secs: f64,
    /// Total wall seconds of the reduction on this process.
    pub total_secs: f64,
    /// Scrub engine statistics (all zeros when the engine is disabled).
    pub scrub: ScrubReport,
}

/// Row index of checksum column `(g, copy, off)` inside the [`ve_rows`]
/// matrix.
#[inline]
pub fn ve_row_index(enc: &Encoded, g: usize, copy: usize, off: usize) -> usize {
    (copy * enc.groups() + g) * enc.nb() + off
}

/// Pseudo column checksums of `V` (paper §4): one row per checksum column
/// `(g, copy, off)` (see [`ve_row_index`]), holding
/// `Σ_q w(copy, q)·V((gQ+q)·nb + off, :)` — the "V row" of that checksum
/// column in the extended right update. With [`crate::encode::Redundancy::Single`]
/// the weights are 1 and the two copies' rows are identical; with `Dual`
/// they carry the Vandermonde weights. Deterministic and identical on every
/// process (computed from the replicated `V`).
pub fn ve_rows(enc: &Encoded, f: &PanelFactors) -> Matrix {
    let nb = enc.nb();
    let ncopies = enc.ncopies();
    let r0 = f.v_row0();
    let mut ve = Matrix::zeros(ncopies * enc.groups() * nb, f.w);
    for copy in 0..ncopies {
        for g in 0..enc.groups() {
            for off in 0..nb {
                let r = ve_row_index(enc, g, copy, off);
                for c in enc.member_cols(g, off) {
                    if c >= r0 && c < f.n {
                        let w = enc.col_weight(copy, c);
                        for l in 0..f.w {
                            ve[(r, l)] += w * f.vfull[(c - r0, l)];
                        }
                    }
                }
            }
        }
    }
    ve
}

/// Store `Ve` into the bottom pseudo-checksum rows (both copies) under the
/// panel columns — the extra storage allocated at encoding time (§4).
/// Purely local writes on the owners.
pub fn store_ve(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix) {
    if !enc.a.owns_col(f.k) {
        return;
    }
    let nb = enc.nb();
    for copy in 0..enc.ncopies() {
        for g in 0..enc.groups() {
            for off in 0..nb {
                let r = enc.chk_row(g, copy, off);
                if enc.a.owns_row(r) {
                    let vr = ve_row_index(enc, g, copy, off);
                    for l in 0..f.w {
                        enc.a.set(r, f.k + l, ve[(vr, l)]);
                    }
                }
            }
        }
    }
}

/// My local columns among the **original** columns `[from, to)`, with their
/// global indices.
fn local_orig_cols(enc: &Encoded, from: usize, to: usize) -> (Vec<usize>, Vec<usize>) {
    let lc0 = enc.a.local_cols_below(from);
    let lc1 = enc.a.local_cols_below(to.min(enc.n()));
    let locals: Vec<usize> = (lc0..lc1).collect();
    let globals = locals.iter().map(|&lc| enc.a.l2g_col(lc)).collect();
    (locals, globals)
}

/// My local checksum columns of groups `> s` (all copies), with their
/// `(g, copy, off)` identity.
fn local_chk_cols_after(enc: &Encoded, s: usize) -> (Vec<usize>, Vec<(usize, usize, usize)>) {
    let mut locals = Vec::new();
    let mut meta = Vec::new();
    for g in s + 1..enc.groups() {
        for copy in 0..enc.ncopies() {
            for off in 0..enc.nb() {
                let cc = enc.chk_col(g, copy, off);
                if enc.a.owns_col(cc) {
                    locals.push(enc.a.g2l_col(cc));
                    meta.push((g, copy, off));
                }
            }
        }
    }
    // Keep the combined column list sorted by local index (checksum columns
    // are globally after every original column, and locals are globally
    // monotone, so appending preserves order; sort defensively anyway).
    let mut idx: Vec<usize> = (0..locals.len()).collect();
    idx.sort_by_key(|&i| locals[i]);
    (idx.iter().map(|&i| locals[i]).collect(), idx.iter().map(|&i| meta[i]).collect())
}

/// Right update of panel `f` on the original columns `[from, to)` and —
/// when `include_chk` — the checksum columns of groups after scope `s`.
pub(crate) fn ft_right(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix, from: usize, to: usize, include_chk: bool, s: usize) {
    let (mut locals, orig_g) = local_orig_cols(enc, from, to);
    let mut vrows = f.vrows_for(&orig_g);
    if include_chk {
        let (chk_locals, meta) = local_chk_cols_after(enc, s);
        if !chk_locals.is_empty() {
            let mut combined = Matrix::zeros(vrows.rows() + chk_locals.len(), f.w);
            for i in 0..vrows.rows() {
                for l in 0..f.w {
                    combined[(i, l)] = vrows[(i, l)];
                }
            }
            for (i, &(g, copy, off)) in meta.iter().enumerate() {
                let vr = ve_row_index(enc, g, copy, off);
                for l in 0..f.w {
                    combined[(vrows.rows() + i, l)] = ve[(vr, l)];
                }
            }
            locals.extend_from_slice(&chk_locals);
            vrows = combined;
        }
    }
    let n = enc.n();
    right_update(&mut enc.a, n, &locals, &vrows, &f.y_loc);
}

/// Right update applied to the checksum columns only (Algorithm 3 catch-up).
pub(crate) fn ft_right_chk_only(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix, s: usize) {
    let (locals, meta) = local_chk_cols_after(enc, s);
    let vrows = Matrix::from_fn(locals.len(), f.w, |i, l| {
        let (g, copy, off) = meta[i];
        ve[(ve_row_index(enc, g, copy, off), l)]
    });
    let n = enc.n();
    right_update(&mut enc.a, n, &locals, &vrows, &f.y_loc);
}

/// Left update of panel `f` on the original columns `[from, to)` and —
/// when `include_chk` — the checksum columns of groups after scope `s`.
/// Collective (column reductions): every process must call it.
pub(crate) fn ft_left(ctx: &Ctx, enc: &mut Encoded, f: &PanelFactors, from: usize, to: usize, include_chk: bool, s: usize) {
    let (mut locals, _) = local_orig_cols(enc, from, to);
    if include_chk {
        let (chk_locals, _) = local_chk_cols_after(enc, s);
        locals.extend_from_slice(&chk_locals);
    }
    let v_myrows = f.v_for_local_rows(&enc.a);
    let n = enc.n();
    left_update(ctx, &mut enc.a, f.v_row0(), n, &locals, &v_myrows, &f.t);
}

/// Left update on the checksum columns only (Algorithm 3 catch-up).
pub(crate) fn ft_left_chk_only(ctx: &Ctx, enc: &mut Encoded, f: &PanelFactors, s: usize) {
    let (locals, _) = local_chk_cols_after(enc, s);
    let v_myrows = f.v_for_local_rows(&enc.a);
    let n = enc.n();
    left_update(ctx, &mut enc.a, f.v_row0(), n, &locals, &v_myrows, &f.t);
}

/// Algorithm 3: bring the checksum columns up to date with the data state
/// "(full updates of `factors[0..full]`) + (right update of `factors[full]`
/// when `extra_right`)". Tracks progress in `st.chk` so updates are applied
/// exactly once. For a left-only solver the right halves are no-ops (the
/// progress marker still advances identically, keeping recovery's phase
/// bookkeeping solver-agnostic).
pub(crate) fn alg3_catch_up(
    ctx: &Ctx,
    solver: &dyn FtSolver,
    enc: &mut Encoded,
    st: &mut ScopeState,
    s: usize,
    full: usize,
    extra_right: bool,
) {
    let right = solver.has_right_update();
    let mut done = st.chk.panels_done;
    let mut right_done = st.chk.right_done_for_next;
    while done < full {
        let f = st.factors[done].clone();
        if right && !right_done {
            let ve = ve_rows(enc, &f);
            ft_right_chk_only(enc, &f, &ve, s);
        }
        ft_left_chk_only(ctx, enc, &f, s);
        done += 1;
        right_done = false;
    }
    if extra_right && !right_done {
        if right {
            let f = st.factors[full].clone();
            let ve = ve_rows(enc, &f);
            ft_right_chk_only(enc, &f, &ve, s);
        }
        right_done = true;
    }
    st.chk.panels_done = done;
    st.chk.right_done_for_next = extra_right && right_done;
}

/// Resume point within one panel iteration — where re-execution picks up
/// after a chaos rollback to a committed boundary. The driver loop is a
/// fall-through sequence of these steps; a fresh iteration starts at
/// [`Step::Begin`], a restored one at whatever the boundary image says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Scope entry (snapshot) + the `BeforePanel` fail point.
    Begin,
    /// `pdlahrd` + bookkeeping + the `AfterPanel` fail point.
    Panel,
    /// Right update + the `AfterRightUpdate` fail point.
    Right,
    /// Left update + the `AfterLeftUpdate` fail point.
    Left,
    /// tau write, checksum-progress marker, scope-end work, advance.
    ScopeEnd,
}

impl Step {
    fn index(self) -> u64 {
        match self {
            Step::Begin => 0,
            Step::Panel => 1,
            Step::Right => 2,
            Step::Left => 3,
            Step::ScopeEnd => 4,
        }
    }

    fn from_index(i: u64) -> Step {
        match i {
            0 => Step::Begin,
            1 => Step::Panel,
            2 => Step::Right,
            3 => Step::Left,
            4 => Step::ScopeEnd,
            _ => panic!("invalid Step index {i}"),
        }
    }
}

/// The driver's restartable control state (everything the loop mutates
/// besides the matrix itself).
struct DriverState {
    scope: Option<ScopeState>,
    k: usize,
    panel_idx: usize,
    resume: Step,
}

/// Bitwise image of one process's state at a committed fail-point boundary.
/// Captured only when chaos injection is live ([`ft_runtime::Ctx::chaos_enabled`]
/// — scripted-only and fault-free runs pay nothing); an arbitrary-point
/// failure rolls every rank back to its image (all ranks always hold images
/// of the *same* boundary, see `commit_boundary_image`) and re-enters
/// through [`crate::recovery::recover`].
struct BoundaryImage {
    /// Full copy of the local (encoded) matrix buffer.
    local: Vec<f64>,
    tau: Vec<f64>,
    scope: Option<ScopeState>,
    k: usize,
    panel_idx: usize,
    resume: Step,
    /// The boundary's phase — tells recovery how far the interrupted
    /// iteration had progressed, exactly like the scripted path.
    phase: Phase,
    /// Scope (= checksum group) index at the boundary; `enc.groups()` for
    /// the pre-loop boundary where no scope exists yet.
    s: usize,
    /// Boundary id (`failpoint + 1`; 0 for the pre-loop boundary). In
    /// distributed runs this is what the survivors min-reduce over to agree
    /// on a common rollback point.
    id: u64,
}

/// The chaos/distributed rollback images. In-process chaos runs only ever
/// use `cur` — the revocable commit barrier keeps every rank's image on the
/// same boundary. Over a real network a SIGKILL mid-barrier can leave
/// survivors **one** commit apart (the victim's final barrier frame may have
/// reached some peers and not others), so distributed runs keep the previous
/// boundary too and [`dist_align_boundary`] demotes the leaders.
#[derive(Default)]
struct Images {
    cur: Option<BoundaryImage>,
    prev: Option<BoundaryImage>,
}

/// Whether the fault-tolerance machinery (commit barriers, boundary images)
/// is live: chaos injection in-process, or any distributed run — over a real
/// transport ranks can die for real, scripted or not.
fn ft_live(ctx: &Ctx) -> bool {
    ctx.chaos_enabled() || ctx.distributed()
}

fn capture_image(enc: &Encoded, tau: &[f64], st: &DriverState, phase: Phase, s: usize, id: u64) -> BoundaryImage {
    BoundaryImage {
        local: enc.a.local().as_slice().to_vec(),
        tau: tau.to_vec(),
        scope: st.scope.clone(),
        k: st.k,
        panel_idx: st.panel_idx,
        resume: st.resume,
        phase,
        s,
        id,
    }
}

fn restore_image(enc: &mut Encoded, tau: &mut [f64], st: &mut DriverState, img: &BoundaryImage) {
    enc.a.local_mut().as_mut_slice().copy_from_slice(&img.local);
    tau[..img.tau.len()].copy_from_slice(&img.tau);
    st.scope = img.scope.clone();
    st.k = img.k;
    st.panel_idx = img.panel_idx;
    st.resume = img.resume;
}

/// Commit the fail-point boundary `(panel_idx, phase)` and, when chaos is
/// live, refresh this rank's boundary image.
///
/// The barrier is what keeps every rank's image pinned to the same
/// boundary: a revocable barrier is all-or-none, survivors only observe an
/// interrupt inside communication calls, and between the completed barrier
/// and the (purely local) capture there are none. So either every rank
/// refreshes its image or — if the barrier is revoked first — none does,
/// and all roll back to the previous common boundary.
#[allow(clippy::too_many_arguments)] // internal plumbing of the driver loop
fn commit_boundary_image(
    ctx: &Ctx,
    enc: &Encoded,
    tau: &[f64],
    st: &mut DriverState,
    imgs: &mut Images,
    next: Step,
    phase: Phase,
    s: usize,
) {
    if ft_live(ctx) {
        ctx.barrier();
    }
    st.resume = next;
    // Boundary ids are failpoint ids shifted by one; id 0 is the pre-loop
    // boundary right after the initial encoding.
    let id = failpoint(st.panel_idx, phase) + 1;
    if ft_live(ctx) {
        if ctx.distributed() {
            // Keep the previous boundary too: a real SIGKILL mid-barrier can
            // leave survivors one commit apart, and the laggards' boundary
            // is the one everybody can roll back to.
            imgs.prev = imgs.cur.take();
        }
        imgs.cur = Some(capture_image(enc, tau, st, phase, s, id));
    }
    ctx.commit_boundary(id);
}

/// Flat encoding of a [`BoundaryImage`]'s control state (everything but the
/// matrix buffer, which [`crate::recovery`] rebuilds from the checksums) for
/// shipping to a respawned replacement process. Layout: a 13-word header
/// followed by the full `tau` vector.
fn serialize_ctl_image(img: &BoundaryImage) -> Vec<f64> {
    let mut buf = vec![0.0; CTL_HEADER + img.tau.len()];
    buf[0] = img.id as f64;
    buf[1] = img.k as f64;
    buf[2] = img.panel_idx as f64;
    buf[3] = img.resume.index() as f64;
    buf[4] = img.phase.index() as f64;
    buf[5] = img.s as f64;
    if let Some(sc) = &img.scope {
        buf[6] = 1.0;
        buf[7] = sc.scope as f64;
        buf[8] = sc.start_col as f64;
        buf[9] = sc.end_col as f64;
        buf[10] = sc.holders as f64;
        buf[11] = sc.chk.panels_done as f64;
        buf[12] = if sc.chk.right_done_for_next { 1.0 } else { 0.0 };
    }
    buf[CTL_HEADER..].copy_from_slice(&img.tau);
    buf
}

const CTL_HEADER: usize = 13;

/// Rebuild a [`BoundaryImage`] on a replacement process from the control
/// state a survivor shipped. The matrix part is this process's current
/// (garbage) buffer — [`crate::recovery::recover`] overwrites every word of
/// it — and the scope carries only the locally-computable layout fields;
/// snapshots, factors and panel backups are restored from the live holders
/// by [`ScopeState::repair_after_failure`].
fn deserialize_ctl_image(enc: &Encoded, buf: &[f64]) -> BoundaryImage {
    let scope = if buf[6] != 0.0 {
        let start_col = buf[8] as usize;
        let end_col = buf[9] as usize;
        let holders = buf[10] as usize;
        let lc0 = enc.a.local_cols_below(start_col);
        let lc1 = enc.a.local_cols_below(end_col);
        Some(ScopeState {
            scope: buf[7] as usize,
            start_col,
            end_col,
            holders,
            local_cols: (lc0..lc1).collect(),
            snapshot_own: Vec::new(),
            snapshot_backups: vec![Vec::new(); holders],
            factors: Vec::new(),
            panel_backups: Vec::new(),
            my_panel_pieces: Vec::new(),
            chk: ChkProgress {
                panels_done: buf[11] as usize,
                right_done_for_next: buf[12] != 0.0,
            },
        })
    } else {
        None
    };
    BoundaryImage {
        local: enc.a.local().as_slice().to_vec(),
        tau: buf[CTL_HEADER..].to_vec(),
        scope,
        k: buf[1] as usize,
        panel_idx: buf[2] as usize,
        resume: Step::from_index(buf[3] as u64),
        phase: Phase::from_index(buf[4] as u64),
        s: buf[5] as usize,
        id: buf[0] as u64,
    }
}

/// Distributed recovery, step 0: get every rank onto the **same** boundary
/// image before the rollback.
///
/// 1. World-wide min-reduction of boundary ids — victims (and any rank with
///    no image) contribute `+∞`; survivors contribute `cur.id`. The minimum
///    is the newest boundary *every* survivor holds: commits happen behind a
///    revocable barrier, so survivor images diverge by at most one commit,
///    and the laggards' boundary is held by the leaders as `prev`.
/// 2. Survivors one commit ahead demote `prev` to `cur`.
/// 3. The lowest-ranked survivor ships the control image to each victim,
///    which synthesizes a local [`BoundaryImage`] from it.
fn dist_align_boundary(ctx: &Ctx, enc: &Encoded, imgs: &mut Images, victims: &[usize], me: bool) {
    let mut bid = [if me {
        f64::INFINITY
    } else {
        imgs.cur.as_ref().map_or(f64::INFINITY, |i| i.id as f64)
    }];
    dtrace!(ctx, "align: entering boundary min-reduce (mine={})", bid[0]);
    ctx.allreduce_min_world(&mut bid, TAG_BOUNDARY_MIN);
    dtrace!(ctx, "align: agreed boundary id {}", bid[0]);
    assert!(bid[0].is_finite(), "distributed recovery: no survivor holds a boundary image");
    let common = bid[0] as u64;
    if !me && imgs.cur.as_ref().map(|i| i.id) != Some(common) {
        let prev = imgs.prev.take().expect("survivor lacks the agreed boundary image");
        assert_eq!(prev.id, common, "survivor boundary images diverged by more than one commit");
        imgs.cur = Some(prev);
    }
    let lead = (0..ctx.grid().size())
        .find(|r| !victims.contains(r))
        .expect("no survivor in the world");
    if ctx.rank() == lead {
        let buf = serialize_ctl_image(imgs.cur.as_ref().unwrap());
        for &v in victims {
            dtrace!(ctx, "align: shipping control image to replacement {v}");
            ctx.send(v, TAG_CTL_IMAGE, &buf);
        }
    }
    if me {
        let buf = ctx.recv(lead, TAG_CTL_IMAGE);
        imgs.cur = Some(deserialize_ctl_image(enc, &buf));
        dtrace!(ctx, "align: received control image from lead {lead}");
    }
    // Either way `prev` is now behind the agreed boundary (or synthesized
    // never existed); the first post-recovery commit re-seeds it.
    imgs.prev = None;
}

/// The fault-tolerant distributed Hessenberg reduction (SPMD).
///
/// Reduces the logical `N×N` part of `enc` in place; on exit the Hessenberg
/// entries and reflectors are stored exactly like [`ft_pblas::pdgehrd`]'s
/// output and `tau` is replicated. Failures scripted through the runtime's
/// [`ft_runtime::FaultScript`] at [`failpoint`] ids are detected at phase
/// boundaries and repaired transparently; chaos kills injected through
/// [`ft_runtime::ChaosScript`] at arbitrary message-op boundaries are
/// detected by the runtime's agreement layer and rolled back to the last
/// committed boundary. The returned [`FtReport`] counts both. A victim set
/// beyond the redundancy level's tolerance yields
/// [`FtError::ExceededCodeDistance`] — identically on every rank.
///
/// ```
/// use ft_hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Rank 2 dies right after the second panel's factorization …
/// let script = FaultScript::one(2, failpoint(1, Phase::AfterPanel));
/// let recoveries = run_spmd(2, 2, script, |ctx| {
///     let mut enc = Encoded::from_global_fn(&ctx, 16, 2, |i, j| {
///         ft_dense::gen::uniform_entry(42, i, j)
///     });
///     let mut tau = vec![0.0; 15];
///     ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau)
///         .expect("one failure per row is within the fault model")
///         .recoveries
/// });
/// // … and every process reports exactly one transparent recovery.
/// assert_eq!(recoveries, vec![1, 1, 1, 1]);
/// ```
pub fn ft_pdgehrd(ctx: &Ctx, enc: &mut Encoded, variant: Variant, tau: &mut [f64]) -> Result<FtReport, FtError> {
    ft_pdgehrd_full(ctx, enc, variant, tau, ScrubPolicy::disabled(), &mut |_, _, _, _| {})
}

/// The fault-tolerant distributed Householder QR (SPMD) — the second solver
/// of the ABFT framework, running on the **identical** shared driver,
/// recovery, scrub and chaos machinery as [`ft_pdgehrd`] via the
/// [`FtSolver`] contract.
///
/// Factors the logical `N×N` part of `enc` in place: `R` in the upper
/// triangle, reflectors below the diagonal, `tau` (length ≥ N) replicated
/// on exit — exactly [`ft_pblas::pdgeqrf`]'s output. QR applies only left
/// updates, so the checksum columns stay consistent without pseudo-checksum
/// (`Ve`) machinery; everything else (scopes, bookkeeping, §5.3 recovery,
/// boundary images) is the shared code path.
///
/// ```
/// use ft_hess::{failpoint, ft_pdgeqrf, Encoded, Phase, Variant};
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Rank 1 dies right after the second QR panel's factorization …
/// let script = FaultScript::one(1, failpoint(1, Phase::AfterPanel));
/// let recoveries = run_spmd(2, 2, script, |ctx| {
///     let mut enc = Encoded::from_global_fn(&ctx, 12, 2, |i, j| {
///         ft_dense::gen::uniform_entry(7, i, j)
///     });
///     let mut tau = vec![0.0; 12];
///     ft_pdgeqrf(&ctx, &mut enc, Variant::NonDelayed, &mut tau)
///         .expect("one failure per row is within the fault model")
///         .recoveries
/// });
/// // … and every process reports exactly one transparent recovery.
/// assert_eq!(recoveries, vec![1, 1, 1, 1]);
/// ```
pub fn ft_pdgeqrf(ctx: &Ctx, enc: &mut Encoded, variant: Variant, tau: &mut [f64]) -> Result<FtReport, FtError> {
    ft_pdgeqrf_full(ctx, enc, variant, tau, ScrubPolicy::disabled(), &mut |_, _, _, _| {})
}

/// [`ft_pdgeqrf`] with the online SDC scrub engine enabled — the QR
/// counterpart of [`ft_pdgehrd_scrubbed`].
pub fn ft_pdgeqrf_scrubbed(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
) -> Result<FtReport, FtError> {
    ft_pdgeqrf_full(ctx, enc, variant, tau, policy, &mut |_, _, _, _| {})
}

/// [`ft_pdgeqrf`] with an observation hook — the QR counterpart of
/// [`ft_pdgehrd_hooked`] (same hook contract and caveats).
pub fn ft_pdgeqrf_hooked(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
) -> Result<FtReport, FtError> {
    ft_pdgeqrf_full(ctx, enc, variant, tau, ScrubPolicy::disabled(), hook)
}

/// The full-surface QR driver: scrub policy + observation hook. All other
/// `ft_pdgeqrf*` entry points delegate here.
pub fn ft_pdgeqrf_full(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
) -> Result<FtReport, FtError> {
    ft_solver_driver(ctx, &HouseholderQr, enc, variant, tau, policy, hook, DriverControl::default())
}

/// Replacement-process entry point for a distributed QR run — the QR
/// counterpart of [`ft_pdgehrd_replacement`].
pub fn ft_pdgeqrf_replacement(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
) -> Result<FtReport, FtError> {
    assert!(ctx.distributed(), "ft_pdgeqrf_replacement only makes sense on a real transport");
    ft_solver_driver(
        ctx,
        &HouseholderQr,
        enc,
        variant,
        tau,
        policy,
        &mut |_, _, _, _| {},
        DriverControl { replacement: true, ..DriverControl::default() },
    )
}

/// [`ft_pdgehrd`] with the online SDC scrub engine enabled: at the
/// boundaries `policy` schedules, the engine verifies every live checksum
/// copy, separates data from checksum corruption, localizes and corrects
/// single-block damage in place, and escalates the rest to a
/// verified-boundary rollback (or [`FtError::ScrubUnrecoverable`]). The
/// returned report carries the per-rank [`FtReport::scrub`] statistics.
pub fn ft_pdgehrd_scrubbed(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
) -> Result<FtReport, FtError> {
    ft_pdgehrd_full(ctx, enc, variant, tau, policy, &mut |_, _, _, _| {})
}

/// [`ft_pdgehrd`] with an observation hook called (collectively, on every
/// process) after each phase boundary — used by the test suites to check
/// the Theorem 1 checksum invariant at every step and to inject silent
/// corruption into the encoded matrix. The hook may run collectives and
/// corrupt matrix *data*, but must not mutate driver bookkeeping.
/// Chaos-mode rollbacks resume *after* a boundary, so under chaos injection
/// a boundary's hook invocation can be skipped on re-execution —
/// invariant-checking hooks belong to scripted runs.
pub fn ft_pdgehrd_hooked(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
) -> Result<FtReport, FtError> {
    ft_pdgehrd_full(ctx, enc, variant, tau, ScrubPolicy::disabled(), hook)
}

/// The full-surface driver: scrub policy + observation hook. All other
/// `ft_pdgehrd*` entry points delegate here.
pub fn ft_pdgehrd_full(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
) -> Result<FtReport, FtError> {
    ft_solver_driver(ctx, &Hessenberg, enc, variant, tau, policy, hook, DriverControl::default())
}

/// Entry point for a **respawned replacement process** in a distributed run:
/// a rank that was SIGKILLed, re-spawned by the launcher and re-admitted by
/// the transport's epoch-fenced handshake. The replacement holds a freshly
/// allocated (garbage) encoded matrix; it skips the initial encoding and the
/// pre-loop boundary and goes straight into the recovery protocol, where the
/// survivors' agreement names it a victim, a survivor ships it the control
/// image of the rollback boundary, and §5.3 recovery rebuilds its matrix
/// data. From then on it runs the driver loop like everybody else and
/// returns the same result.
pub fn ft_pdgehrd_replacement(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
) -> Result<FtReport, FtError> {
    assert!(ctx.distributed(), "ft_pdgehrd_replacement only makes sense on a real transport");
    ft_solver_driver(
        ctx,
        &Hessenberg,
        enc,
        variant,
        tau,
        policy,
        &mut |_, _, _, _| {},
        DriverControl { replacement: true, ..DriverControl::default() },
    )
}

/// Serving-layer controls for a driver run: resume a factorization from a
/// checkpointed scope boundary, join as a replacement, and/or observe scope
/// closes for checkpoint capture. The plain entry points are all shorthands
/// for specific settings of this struct.
///
/// ## Resume contract
///
/// `start_panel` must be a *scope entry* — a panel index whose block column
/// is a multiple of Q (the state [`crate::FtCheckpoint`] captures, because
/// the scope sink only fires at scope closes). Before calling the driver
/// with `start_panel > 0`, the caller must have restored the encoded matrix
/// and the tau prefix from such a checkpoint on **every** rank
/// ([`crate::FtCheckpoint::restore`]); the driver then skips the initial
/// encoding (the restored matrix already carries live checksums — at a
/// scope close the Theorem 1 invariant holds under both variants, the
/// delayed catch-up included) and re-enters the loop at the recorded panel.
/// Re-execution from a restored scope boundary is deterministic (DESIGN.md
/// §14), so a resumed run's result is bitwise identical to an uninterrupted
/// one.
#[derive(Default)]
pub struct DriverControl<'a> {
    /// First panel iteration to execute; 0 runs from the start. Must be a
    /// scope entry (see the resume contract above).
    pub start_panel: usize,
    /// This process is a respawned replacement joining an in-flight run
    /// (see [`ft_pdgehrd_replacement`]). Mutually exclusive with a nonzero
    /// `start_panel`: a replacement's state comes from its peers, not from
    /// a checkpoint.
    pub replacement: bool,
    /// Called (collectively, on every rank) after each scope close except
    /// the final one, with the just-finished panel index — the exact
    /// boundary [`crate::FtCheckpoint::capture`] serializes and the resume
    /// contract re-enters at (`start_panel` = panel + 1). Under chaos a
    /// rolled-back scope can fire the sink again; re-execution is
    /// deterministic, so the re-captured image is bitwise identical.
    pub scope_sink: Option<&'a mut ScopeSink<'a>>,
}

/// Callback fired at every scope close with `(ctx, enc, tau, panel)` — the
/// checkpointable boundary state (see [`DriverControl::scope_sink`]).
pub type ScopeSink<'a> = dyn FnMut(&Ctx, &Encoded, &[f64], usize) + 'a;

/// [`ft_pdgehrd`] under explicit [`DriverControl`] — the serving layer's
/// entry point (checkpoint capture and restart-resume).
pub fn ft_pdgehrd_ctl(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
    ctl: DriverControl,
) -> Result<FtReport, FtError> {
    ft_solver_driver(ctx, &Hessenberg, enc, variant, tau, policy, &mut |_, _, _, _| {}, ctl)
}

/// [`ft_pdgeqrf`] under explicit [`DriverControl`] — the QR counterpart of
/// [`ft_pdgehrd_ctl`].
pub fn ft_pdgeqrf_ctl(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
    ctl: DriverControl,
) -> Result<FtReport, FtError> {
    ft_solver_driver(ctx, &HouseholderQr, enc, variant, tau, policy, &mut |_, _, _, _| {}, ctl)
}

/// The generic driver every `ft_pdgehrd*` / `ft_pdgeqrf*` entry point
/// delegates to: the whole ABFT state machine, written once over the
/// [`FtSolver`] contract.
#[allow(clippy::too_many_arguments)] // internal plumbing of the driver loop
fn ft_solver_driver(
    ctx: &Ctx,
    solver: &dyn FtSolver,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    policy: ScrubPolicy,
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
    ctl: DriverControl,
) -> Result<FtReport, FtError> {
    let DriverControl { start_panel, replacement, mut scope_sink } = ctl;
    let n = enc.n();
    let nb = enc.nb();
    let q = ctx.npcol();
    // Q = 1 keeps both checksum copies on the one process column: useless
    // against fail-stop loss (check_tolerance caps the per-row budget at
    // Q − 1 = 0 and returns the typed error), but the scrub engine still
    // detects and corrects silent corruption there — each group has exactly
    // one member, so localization is trivial.
    assert!(q >= 2 || ctx.grid().size() == 1, "Q = 1 is only supported on a 1×1 grid");
    assert!(tau.len() >= solver.tau_len(n), "ft driver ({}): tau too short", solver.name());

    let mut report = FtReport::default();
    let t_total = Instant::now();

    // A resumed run re-enters at a checkpointed scope entry: walk the panel
    // widths to the matching matrix offset and verify the alignment the
    // resume contract promises.
    assert!(!(replacement && start_panel > 0), "a replacement cannot also resume from a checkpoint");
    let mut start_k = 0usize;
    for p in 0..start_panel {
        assert!(
            solver.panel_exists(start_k, n),
            "start_panel {start_panel} is beyond the final panel (stuck at {p})"
        );
        start_k += solver.panel_width(start_k, n, nb);
    }
    assert!(
        start_panel == 0 || !solver.panel_exists(start_k, n) || (start_k / nb).is_multiple_of(q),
        "resume must start at a scope entry (block column a multiple of Q)"
    );
    let resuming = start_panel > 0;

    let mut st = DriverState {
        scope: None,
        k: start_k,
        panel_idx: start_panel,
        resume: Step::Begin,
    };
    let mut imgs = Images::default();

    if !replacement && !resuming {
        let t0 = Instant::now();
        enc.compute_initial_checksums(ctx);
        report.encode_secs = t0.elapsed().as_secs_f64();
    }

    // The protection domain opens once the checksums exist — data lost
    // before that is outside the paper's fault model (§5). A replacement
    // arms immediately: its peers are already deep inside the domain.
    ctx.arm_chaos();

    if ft_live(ctx) && !replacement {
        // Pre-loop boundary: a kill before the first panel's fail point
        // rolls back to "everything encoded, nothing factorized", where the
        // whole matrix is reconstructible from the initial checksums. A
        // resumed run's pre-loop boundary is its restored checkpoint — the
        // same shape (no scope open, every group solvable from its stored
        // checksum), just at a later panel.
        ctx.barrier();
        imgs.cur = Some(capture_image(enc, tau, &st, Phase::BeforePanel, enc.groups(), 0));
        ctx.commit_boundary(0);
    }

    let mut scrub = ScrubCtl {
        engine: ScrubEngine::new(policy),
        img: None,
        last_rollback: None,
    };
    if scrub.engine.active() && scrub.engine.policy.rollback && !replacement {
        // The freshly encoded matrix is trusted by definition (the paper's
        // protection domain opens here): it is the first verified image.
        // A replacement's buffer is garbage; its first verified image comes
        // from its first clean boundary scan.
        scrub.img = Some(capture_image(enc, tau, &st, Phase::BeforePanel, enc.groups(), 0));
    }

    // A replacement enters the recovery protocol before running a single
    // step: the survivors' agreement is already waiting to name it a victim.
    let mut need_recovery = replacement;

    'run: loop {
        if !need_recovery {
            match catch_interrupt(|| {
                run_loop(ctx, solver, enc, variant, tau, hook, &mut scope_sink, &mut st, &mut imgs, &mut scrub, &mut report)
            }) {
                Ok(done) => {
                    done?;
                    break 'run;
                }
                Err(_interrupt) => {
                    // An arbitrary-point failure (or the revocation it
                    // caused) unwound this rank. Converge on the victim set,
                    // roll back to the last committed boundary, recover,
                    // re-execute.
                    report.chaos_aborts += 1;
                    dtrace!(ctx, "driver: interrupted, entering agreement");
                }
            }
        }
        need_recovery = false;
        loop {
            let agreed = ctx.agree_on_failures();
            let me = agreed.victims.contains(&ctx.rank());
            dtrace!(ctx, "driver: agreed victims={:?} epoch={} me={me}", agreed.victims, agreed.epoch);
            if let Err(tol) = recovery::check_tolerance(ctx, enc.redundancy(), &agreed.victims) {
                // Deterministic over the agreed set: every rank returns
                // this same error, none panics. A replacement has no image
                // yet — it reports the pre-loop boundary.
                let (panel, phase) = imgs.cur.as_ref().map_or((0, Phase::BeforePanel), |i| (i.panel_idx, i.phase));
                return Err(FtError::ExceededCodeDistance {
                    victims: agreed.victims,
                    panel,
                    phase,
                    row: tol.row,
                    count: tol.count,
                    max_per_row: tol.max_per_row,
                    encoding_max: tol.encoding_max,
                    cap: tol.cap,
                });
            }
            let t = Instant::now();
            ctx.begin_recovery();
            let outcome = catch_interrupt(|| {
                if ctx.distributed() {
                    dist_align_boundary(ctx, enc, &mut imgs, &agreed.victims, me);
                }
                let image = imgs.cur.as_ref().expect("chaos abort before the pre-loop boundary image");
                restore_image(enc, tau, &mut st, image);
                let (phase, s, id) = (image.phase, image.s, image.id);
                dtrace!(ctx, "driver: rolled back to boundary id={id} panel={} phase={phase:?}", st.panel_idx);
                let sc = st.scope.get_or_insert_with(|| ScopeState::empty(ctx, enc));
                recovery::recover(ctx, solver, enc, sc, &agreed.victims, me, variant, phase, s);
                dtrace!(ctx, "driver: §5.3 recovery done");
                (phase, s, id)
            });
            ctx.end_recovery();
            report.recovery_secs += t.elapsed().as_secs_f64();
            match outcome {
                Ok((phase, s, id)) => {
                    report.recoveries += 1;
                    report.victims.extend_from_slice(&agreed.victims);
                    if ctx.distributed() {
                        // Recapture the boundary from the *recovered* state
                        // on every rank: a victim's synthesized image holds
                        // a garbage matrix buffer and an empty scope, and
                        // must never be rolled back to again.
                        imgs.cur = Some(capture_image(enc, tau, &st, phase, s, id));
                        imgs.prev = None;
                    }
                    continue 'run;
                }
                Err(_nested) => {
                    // A failure struck during recovery itself. The detector
                    // round is cumulative, so the next agreement returns the
                    // union and recovery re-enters from the same image.
                    report.chaos_aborts += 1;
                }
            }
        }
    }

    report.total_secs = t_total.elapsed().as_secs_f64();
    report.scrub = scrub.engine.report;
    Ok(report)
}

/// The scrub engine's driver-side control block: the engine itself plus the
/// rollback machinery the engine's verdicts feed. `img` is refreshed only
/// after a boundary whose scan came back clean (or fully corrected) — chaos
/// boundary images are *not* reusable here, because seeded flips land
/// between captures and an image may already carry the corruption.
struct ScrubCtl {
    engine: ScrubEngine,
    /// Last *verified* boundary image.
    img: Option<BoundaryImage>,
    /// Panel index of the last image rolled back to — the progress guard:
    /// escalating out of the same image twice means rollback cannot help
    /// (the corruption re-appears deterministically or predates the image).
    last_rollback: Option<usize>,
}

/// Resolve an escalation: roll back to the last verified image when policy
/// and the progress guard allow it (the caller then re-executes), otherwise
/// return the typed terminal error. Deterministic over replicated state —
/// every rank takes the same branch.
fn scrub_escalate(
    enc: &mut Encoded,
    tau: &mut [f64],
    st: &mut DriverState,
    scrub: &mut ScrubCtl,
    panel_idx: usize,
    esc: ScrubEscalation,
) -> Result<(), FtError> {
    let rollback_ok =
        scrub.engine.policy.rollback && scrub.img.as_ref().is_some_and(|i| scrub.last_rollback != Some(i.panel_idx));
    if !rollback_ok {
        return Err(FtError::ScrubUnrecoverable { panel: panel_idx, group: esc.group, block_col: esc.block_col });
    }
    let image = scrub.img.as_ref().unwrap();
    restore_image(enc, tau, st, image);
    scrub.last_rollback = Some(image.panel_idx);
    scrub.engine.report.rollbacks += 1;
    Ok(())
}

/// Apply the runtime's fired-but-pending silent bit flips to my local
/// buffer (the injector counts message ops but cannot see matrix storage).
/// Word indices wrap modulo the buffer length, so every scheduled flip
/// lands. Purely local.
fn apply_sdc_flips(ctx: &Ctx, enc: &mut Encoded) {
    for flip in ctx.take_sdc_flips() {
        let buf = enc.a.local_mut().as_mut_slice();
        if buf.is_empty() {
            continue;
        }
        let w = (flip.word % buf.len() as u64) as usize;
        buf[w] = f64::from_bits(buf[w].to_bits() ^ (1u64 << flip.bit));
    }
}

/// One pass of the driver loop from `st.resume` to completion. Unwinds with
/// an [`ft_runtime::Interrupt`] on a chaos failure (caught by the caller);
/// returns `Err` only for the typed beyond-tolerance verdict.
#[allow(clippy::too_many_arguments)] // internal plumbing of the driver loop
fn run_loop(
    ctx: &Ctx,
    solver: &dyn FtSolver,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    hook: &mut dyn FnMut(&Ctx, &mut Encoded, usize, Phase),
    sink: &mut Option<&mut ScopeSink>,
    st: &mut DriverState,
    imgs: &mut Images,
    scrub: &mut ScrubCtl,
    report: &mut FtReport,
) -> Result<(), FtError> {
    let n = enc.n();
    let nb = enc.nb();
    let q = ctx.npcol();
    let include_chk = variant == Variant::NonDelayed;

    while solver.panel_exists(st.k, n) {
        let w = solver.panel_width(st.k, n, nb);
        let bc = st.k / nb;
        let s = bc / q;

        if st.resume == Step::Begin {
            if bc.is_multiple_of(q) {
                let t = Instant::now();
                st.scope = Some(ScopeState::begin(ctx, enc, s));
                report.snapshot_secs += t.elapsed().as_secs_f64();
            }
            let sc = st.scope.as_mut().expect("scope always begins before panels");
            handle_failpoint(ctx, solver, enc, sc, variant, s, st.panel_idx, Phase::BeforePanel, scrub, report)?;
            commit_boundary_image(ctx, enc, tau, st, imgs, Step::Panel, Phase::BeforePanel, s);
            hook(ctx, enc, st.panel_idx, Phase::BeforePanel);
        }

        if st.resume == Step::Panel {
            let f = solver.factor_panel(ctx, &mut enc.a, n, st.k, w);
            debug_assert_eq!(f.v_row_offset, solver.v_row_offset(), "panel kernel/solver geometry mismatch");
            if solver.has_right_update() && variant == Variant::NonDelayed {
                let ve = ve_rows(enc, &f);
                store_ve(enc, &f, &ve);
            }
            {
                let t = Instant::now();
                st.scope.as_mut().unwrap().bookkeep_panel(ctx, enc, &f);
                report.bookkeeping_secs += t.elapsed().as_secs_f64();
            }
            let sc = st.scope.as_mut().unwrap();
            handle_failpoint(ctx, solver, enc, sc, variant, s, st.panel_idx, Phase::AfterPanel, scrub, report)?;
            commit_boundary_image(ctx, enc, tau, st, imgs, Step::Right, Phase::AfterPanel, s);
            hook(ctx, enc, st.panel_idx, Phase::AfterPanel);
        }

        if st.resume == Step::Right {
            // On resume after a rollback the panel's factors come from the
            // scope bookkeeping (replicated and deterministic), not from a
            // re-run of the panel kernel. A left-only solver does no work
            // here, but the step still runs its fail point and commits its
            // boundary so fail-point ids and the rollback protocol are
            // solver-independent.
            if solver.has_right_update() {
                let f = st.scope.as_ref().unwrap().factors.last().expect("panel factored").clone();
                let ve = ve_rows(enc, &f);
                ft_right(enc, &f, &ve, st.k + w, n, include_chk, s);
            }
            let sc = st.scope.as_mut().unwrap();
            handle_failpoint(ctx, solver, enc, sc, variant, s, st.panel_idx, Phase::AfterRightUpdate, scrub, report)?;
            commit_boundary_image(ctx, enc, tau, st, imgs, Step::Left, Phase::AfterRightUpdate, s);
            hook(ctx, enc, st.panel_idx, Phase::AfterRightUpdate);
        }

        if st.resume == Step::Left {
            let f = st.scope.as_ref().unwrap().factors.last().expect("panel factored").clone();
            ft_left(ctx, enc, &f, st.k + w, n, include_chk, s);
            let sc = st.scope.as_mut().unwrap();
            handle_failpoint(ctx, solver, enc, sc, variant, s, st.panel_idx, Phase::AfterLeftUpdate, scrub, report)?;
            commit_boundary_image(ctx, enc, tau, st, imgs, Step::ScopeEnd, Phase::AfterLeftUpdate, s);
            hook(ctx, enc, st.panel_idx, Phase::AfterLeftUpdate);
        }

        // Step::ScopeEnd — tau write, progress marker, scope-end work.
        {
            let sc = st.scope.as_mut().unwrap();
            if include_chk {
                // Keep the progress marker meaningful for both variants.
                sc.chk.panels_done = sc.factors.len();
            }
            let f_tau = sc.factors.last().expect("panel factored").tau.clone();
            tau[st.k..st.k + w].copy_from_slice(&f_tau);
        }
        // Seeded silent corruption lands here — the quiescent boundary the
        // injector's message-op clock drains into. A re-execution after a
        // rollback does not re-flip (the runtime fires each flip once).
        if ctx.sdc_enabled() {
            apply_sdc_flips(ctx, enc);
        }
        let last_panel_overall = !solver.panel_exists(st.k + w, n);
        let scope_closing = bc % q == q - 1 || last_panel_overall;
        let scan_due = scrub.engine.due(st.panel_idx, scope_closing);
        if scope_closing {
            let t = Instant::now();
            let sc = st.scope.as_mut().unwrap();
            if variant == Variant::Delayed {
                alg3_catch_up(ctx, solver, enc, sc, s, sc.factors.len(), false);
            }
            // The scope-boundary scan runs after the catch-up (every live
            // copy satisfies Theorem 1 now, both variants) and strictly
            // before the group-s recompute below, which would absorb any
            // lingering corruption into the new checksum for good. Under
            // the delayed variant the catch-up has just been computed
            // *through* any mid-scope trailing corruption, so trailing
            // data damage is only trustworthy for rollback, not for an
            // in-place rewrite (TrailingScan::Suspect).
            if scan_due {
                let trailing = if variant == Variant::NonDelayed {
                    TrailingScan::Live
                } else {
                    TrailingScan::Suspect
                };
                let sc = st.scope.as_ref().unwrap();
                if let Err(esc) = scrub
                    .engine
                    .scrub_pass(ctx, solver, enc, sc, s, Phase::AfterLeftUpdate, trailing)
                {
                    scrub_escalate(enc, tau, st, scrub, st.panel_idx, esc)?;
                    continue; // re-execute from the restored verified boundary
                }
            }
            // Algorithm 2 line 16 analogue / §5: the finished group's
            // checksum is recomputed once and protects Area 2 forever.
            enc.compute_group_checksum(ctx, s);
            report.scope_end_secs += t.elapsed().as_secs_f64();
            // The scope is closed and every live checksum copy satisfies
            // Theorem 1 (catch-up included): the exact boundary the resume
            // contract of [`DriverControl`] re-enters at. Hand it to the
            // checkpoint sink — except after the final panel, where there
            // is nothing left to resume.
            if !last_panel_overall {
                if let Some(f) = sink.as_mut() {
                    f(ctx, enc, tau, st.panel_idx);
                }
            }
        } else if scan_due {
            // Mid-scope: under the delayed variant the trailing checksums
            // lag the data until the catch-up, so only the finished groups
            // are scanned; the trailing groups get their scan at the scope
            // boundary above.
            let sc = st.scope.as_ref().unwrap();
            let trailing = if variant == Variant::NonDelayed {
                TrailingScan::Live
            } else {
                TrailingScan::Skip
            };
            if let Err(esc) = scrub
                .engine
                .scrub_pass(ctx, solver, enc, sc, s, Phase::AfterLeftUpdate, trailing)
            {
                scrub_escalate(enc, tau, st, scrub, st.panel_idx, esc)?;
                continue;
            }
        }

        st.panel_idx += 1;
        st.k += w;
        st.resume = Step::Begin;

        // A clean (or fully corrected) scan verifies this boundary: refresh
        // the scrub rollback image. Chaos boundary images are not reused —
        // flips land between their captures, so they may carry corruption.
        // Mid-scope scans under the delayed variant skip the (stale)
        // trailing groups, so they verify nothing about Area 1 — refreshing
        // there could freeze trailing corruption into the "known-good"
        // image; only full-coverage scans move it forward.
        let full_coverage = scope_closing || variant == Variant::NonDelayed;
        if scan_due && full_coverage && scrub.engine.policy.rollback {
            let s_next = if solver.panel_exists(st.k, n) { (st.k / nb) / q } else { enc.groups() };
            // Scrub images never enter the distributed boundary agreement
            // (they are rollback-only, per rank), so their id is unused.
            scrub.img = Some(capture_image(enc, tau, st, Phase::BeforePanel, s_next, 0));
        }
    }

    if ft_live(ctx) {
        // Drain barrier: nobody leaves the protection domain while a peer
        // can still die mid-protocol (agreement needs the full world). No
        // message ops run between this barrier completing and the disarm,
        // so once it passes no kill can fire on any rank.
        ctx.barrier();
        ctx.disarm_chaos();
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // internal plumbing of the driver loop
fn handle_failpoint(
    ctx: &Ctx,
    solver: &dyn FtSolver,
    enc: &mut Encoded,
    st: &mut ScopeState,
    variant: Variant,
    s: usize,
    panel_idx: usize,
    phase: Phase,
    scrub: &mut ScrubCtl,
    report: &mut FtReport,
) -> Result<(), FtError> {
    match ctx.check_failpoint(failpoint(panel_idx, phase)) {
        FailCheck::AllGood => Ok(()),
        FailCheck::Failure { victims, me } => {
            if let Err(tol) = recovery::check_tolerance(ctx, enc.redundancy(), &victims) {
                return Err(FtError::ExceededCodeDistance {
                    victims,
                    panel: panel_idx,
                    phase,
                    row: tol.row,
                    count: tol.count,
                    max_per_row: tol.max_per_row,
                    encoding_max: tol.encoding_max,
                    cap: tol.cap,
                });
            }
            let t = Instant::now();
            // Scripted recovery runs inside a recovery round too, so the
            // chaos injector can target it (ChaosPoint::RecoveryOp) and
            // exercise re-entrant recovery.
            ctx.begin_recovery();
            recovery::recover(ctx, solver, enc, st, &victims, me, variant, phase, s);
            ctx.end_recovery();
            report.recoveries += 1;
            report.victims.extend_from_slice(&victims);
            report.recovery_secs += t.elapsed().as_secs_f64();
            // Post-recovery scan: recovery rebuilt lost blocks *from* the
            // checksums, so silent corruption that predated the failure is
            // now woven into the recovered data — catch it before more
            // updates spread it. The catch-up inside recovery left every
            // live copy consistent with the data (both variants), but under
            // the delayed variant it was computed through any pre-existing
            // trailing corruption, so those verdicts are rollback-only.
            // Escalation is terminal here — there is no verified image that
            // also reflects the fail-stop repair.
            if scrub.engine.active() && scrub.engine.policy.post_recovery {
                let trailing = if variant == Variant::NonDelayed {
                    TrailingScan::Live
                } else {
                    TrailingScan::Suspect
                };
                if let Err(esc) = scrub.engine.scrub_pass(ctx, solver, enc, st, s, phase, trailing) {
                    return Err(FtError::ScrubUnrecoverable { panel: panel_idx, group: esc.group, block_col: esc.block_col });
                }
            }
            Ok(())
        }
    }
}
