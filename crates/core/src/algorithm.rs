//! The ABFT Hessenberg reduction driver — Algorithm 2 (non-delayed) and
//! Algorithm 3 (delayed) of the paper.
//!
//! Per panel iteration:
//!
//! 1. at scope entry (`block_col ≡ 0 mod Q`): snapshot the panel scope
//!    (Algorithm 2 line 4);
//! 2. `PDLAHRD` (line 6);
//! 3. pseudo checksum `Ve` of `V` (line 7) — Algorithm 2 computes it every
//!    panel, Algorithm 3 only when it updates the checksums;
//! 4. bookkeeping of `(panel, Y, T)` to the next process column (lines 8–9);
//! 5. right update `trail(Aₑ) −= Y·(Vₑ)ᵀ` (line 10) — Algorithm 2 includes
//!    the checksum columns of the groups after the scope, Algorithm 3 only
//!    the original columns;
//! 6. left update `trail(Aₑ) −= V·Tᵀ·Vᵀ·trail(Aₑ)` (line 11), same column
//!    scope rule;
//! 7. at scope end: Algorithm 3 catches the checksum columns up
//!    (lines 10–17 of Algorithm 3), then the finished group's checksum is
//!    recomputed once — it protects the finished columns (Area 2) forever.
//!
//! Fail points sit between the phases; on a failure every process runs the
//! recovery procedure of §5.3 (see [`crate::recovery`]).

use crate::encode::Encoded;
use crate::recovery;
use crate::scope::ScopeState;
use ft_dense::Matrix;
use ft_pblas::{left_update, pdlahrd, right_update, PanelFactors};
use ft_runtime::{Ctx, FailCheck};
use std::time::Instant;

/// Which ABFT variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Algorithm 2: checksum columns are updated fused with the trailing
    /// matrix, every iteration.
    NonDelayed,
    /// Algorithm 3: checksum updates are postponed to the end of each panel
    /// scope and applied panel-by-panel (tall-skinny updates — the cause of
    /// the overhead up-tick at large grids in Figure 7).
    Delayed,
}

/// Phase boundaries within one panel iteration where failures can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// After the scope snapshot, before the panel factorization.
    BeforePanel,
    /// After `PDLAHRD` + bookkeeping, before the right update.
    AfterPanel,
    /// After the right update (`PDGEMM`), before the left update.
    AfterRightUpdate,
    /// After the left update (`PDLARFB`).
    AfterLeftUpdate,
}

impl Phase {
    /// All phases, in iteration order.
    pub const ALL: [Phase; 4] = [
        Phase::BeforePanel,
        Phase::AfterPanel,
        Phase::AfterRightUpdate,
        Phase::AfterLeftUpdate,
    ];

    fn index(self) -> u64 {
        match self {
            Phase::BeforePanel => 0,
            Phase::AfterPanel => 1,
            Phase::AfterRightUpdate => 2,
            Phase::AfterLeftUpdate => 3,
        }
    }
}

/// Encode a fail point id for [`ft_runtime::FaultScript`]: failure of panel
/// iteration `panel` at `phase`.
pub fn failpoint(panel: usize, phase: Phase) -> u64 {
    (panel as u64) * 4 + phase.index()
}

/// Outcome statistics of a fault-tolerant reduction.
#[derive(Debug, Clone, Default)]
pub struct FtReport {
    /// Number of recovery events (a multi-victim failure counts once).
    pub recoveries: usize,
    /// All victim ranks recovered, in event order.
    pub victims: Vec<usize>,
    /// Seconds in the initial checksum encoding (Algorithm 2 line 1).
    pub encode_secs: f64,
    /// Seconds in scope snapshots (line 4).
    pub snapshot_secs: f64,
    /// Seconds in per-panel bookkeeping sends (lines 8–9).
    pub bookkeeping_secs: f64,
    /// Seconds in scope-end work (checksum recompute; Algorithm 3 catch-up).
    pub scope_end_secs: f64,
    /// Seconds spent in recovery.
    pub recovery_secs: f64,
    /// Total wall seconds of the reduction on this process.
    pub total_secs: f64,
}

/// Row index of checksum column `(g, copy, off)` inside the [`ve_rows`]
/// matrix.
#[inline]
pub fn ve_row_index(enc: &Encoded, g: usize, copy: usize, off: usize) -> usize {
    (copy * enc.groups() + g) * enc.nb() + off
}

/// Pseudo column checksums of `V` (paper §4): one row per checksum column
/// `(g, copy, off)` (see [`ve_row_index`]), holding
/// `Σ_q w(copy, q)·V((gQ+q)·nb + off, :)` — the "V row" of that checksum
/// column in the extended right update. With [`crate::encode::Redundancy::Single`]
/// the weights are 1 and the two copies' rows are identical; with `Dual`
/// they carry the Vandermonde weights. Deterministic and identical on every
/// process (computed from the replicated `V`).
pub fn ve_rows(enc: &Encoded, f: &PanelFactors) -> Matrix {
    let nb = enc.nb();
    let ncopies = enc.ncopies();
    let mut ve = Matrix::zeros(ncopies * enc.groups() * nb, f.w);
    for copy in 0..ncopies {
        for g in 0..enc.groups() {
            for off in 0..nb {
                let r = ve_row_index(enc, g, copy, off);
                for c in enc.member_cols(g, off) {
                    if c > f.k && c < f.n {
                        let w = enc.col_weight(copy, c);
                        for l in 0..f.w {
                            ve[(r, l)] += w * f.vfull[(c - f.k - 1, l)];
                        }
                    }
                }
            }
        }
    }
    ve
}

/// Store `Ve` into the bottom pseudo-checksum rows (both copies) under the
/// panel columns — the extra storage allocated at encoding time (§4).
/// Purely local writes on the owners.
pub fn store_ve(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix) {
    if !enc.a.owns_col(f.k) {
        return;
    }
    let nb = enc.nb();
    for copy in 0..enc.ncopies() {
        for g in 0..enc.groups() {
            for off in 0..nb {
                let r = enc.chk_row(g, copy, off);
                if enc.a.owns_row(r) {
                    let vr = ve_row_index(enc, g, copy, off);
                    for l in 0..f.w {
                        enc.a.set(r, f.k + l, ve[(vr, l)]);
                    }
                }
            }
        }
    }
}

/// My local columns among the **original** columns `[from, to)`, with their
/// global indices.
fn local_orig_cols(enc: &Encoded, from: usize, to: usize) -> (Vec<usize>, Vec<usize>) {
    let lc0 = enc.a.local_cols_below(from);
    let lc1 = enc.a.local_cols_below(to.min(enc.n()));
    let locals: Vec<usize> = (lc0..lc1).collect();
    let globals = locals.iter().map(|&lc| enc.a.l2g_col(lc)).collect();
    (locals, globals)
}

/// My local checksum columns of groups `> s` (all copies), with their
/// `(g, copy, off)` identity.
fn local_chk_cols_after(enc: &Encoded, s: usize) -> (Vec<usize>, Vec<(usize, usize, usize)>) {
    let mut locals = Vec::new();
    let mut meta = Vec::new();
    for g in s + 1..enc.groups() {
        for copy in 0..enc.ncopies() {
            for off in 0..enc.nb() {
                let cc = enc.chk_col(g, copy, off);
                if enc.a.owns_col(cc) {
                    locals.push(enc.a.g2l_col(cc));
                    meta.push((g, copy, off));
                }
            }
        }
    }
    // Keep the combined column list sorted by local index (checksum columns
    // are globally after every original column, and locals are globally
    // monotone, so appending preserves order; sort defensively anyway).
    let mut idx: Vec<usize> = (0..locals.len()).collect();
    idx.sort_by_key(|&i| locals[i]);
    (idx.iter().map(|&i| locals[i]).collect(), idx.iter().map(|&i| meta[i]).collect())
}

/// Right update of panel `f` on the original columns `[from, to)` and —
/// when `include_chk` — the checksum columns of groups after scope `s`.
pub(crate) fn ft_right(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix, from: usize, to: usize, include_chk: bool, s: usize) {
    let (mut locals, orig_g) = local_orig_cols(enc, from, to);
    let mut vrows = f.vrows_for(&orig_g);
    if include_chk {
        let (chk_locals, meta) = local_chk_cols_after(enc, s);
        if !chk_locals.is_empty() {
            let mut combined = Matrix::zeros(vrows.rows() + chk_locals.len(), f.w);
            for i in 0..vrows.rows() {
                for l in 0..f.w {
                    combined[(i, l)] = vrows[(i, l)];
                }
            }
            for (i, &(g, copy, off)) in meta.iter().enumerate() {
                let vr = ve_row_index(enc, g, copy, off);
                for l in 0..f.w {
                    combined[(vrows.rows() + i, l)] = ve[(vr, l)];
                }
            }
            locals.extend_from_slice(&chk_locals);
            vrows = combined;
        }
    }
    let n = enc.n();
    right_update(&mut enc.a, n, &locals, &vrows, &f.y_loc);
}

/// Right update applied to the checksum columns only (Algorithm 3 catch-up).
pub(crate) fn ft_right_chk_only(enc: &mut Encoded, f: &PanelFactors, ve: &Matrix, s: usize) {
    let (locals, meta) = local_chk_cols_after(enc, s);
    let vrows = Matrix::from_fn(locals.len(), f.w, |i, l| {
        let (g, copy, off) = meta[i];
        ve[(ve_row_index(enc, g, copy, off), l)]
    });
    let n = enc.n();
    right_update(&mut enc.a, n, &locals, &vrows, &f.y_loc);
}

/// Left update of panel `f` on the original columns `[from, to)` and —
/// when `include_chk` — the checksum columns of groups after scope `s`.
/// Collective (column reductions): every process must call it.
pub(crate) fn ft_left(ctx: &Ctx, enc: &mut Encoded, f: &PanelFactors, from: usize, to: usize, include_chk: bool, s: usize) {
    let (mut locals, _) = local_orig_cols(enc, from, to);
    if include_chk {
        let (chk_locals, _) = local_chk_cols_after(enc, s);
        locals.extend_from_slice(&chk_locals);
    }
    let v_myrows = f.v_for_local_rows(&enc.a);
    let n = enc.n();
    left_update(ctx, &mut enc.a, f.k, n, &locals, &v_myrows, &f.t);
}

/// Left update on the checksum columns only (Algorithm 3 catch-up).
pub(crate) fn ft_left_chk_only(ctx: &Ctx, enc: &mut Encoded, f: &PanelFactors, s: usize) {
    let (locals, _) = local_chk_cols_after(enc, s);
    let v_myrows = f.v_for_local_rows(&enc.a);
    let n = enc.n();
    left_update(ctx, &mut enc.a, f.k, n, &locals, &v_myrows, &f.t);
}

/// Algorithm 3: bring the checksum columns up to date with the data state
/// "(full updates of `factors[0..full]`) + (right update of `factors[full]`
/// when `extra_right`)". Tracks progress in `st.chk` so updates are applied
/// exactly once.
pub(crate) fn alg3_catch_up(ctx: &Ctx, enc: &mut Encoded, st: &mut ScopeState, s: usize, full: usize, extra_right: bool) {
    let mut done = st.chk.panels_done;
    let mut right_done = st.chk.right_done_for_next;
    while done < full {
        let f = st.factors[done].clone();
        let ve = ve_rows(enc, &f);
        if !right_done {
            ft_right_chk_only(enc, &f, &ve, s);
        }
        ft_left_chk_only(ctx, enc, &f, s);
        done += 1;
        right_done = false;
    }
    if extra_right && !right_done {
        let f = st.factors[full].clone();
        let ve = ve_rows(enc, &f);
        ft_right_chk_only(enc, &f, &ve, s);
        right_done = true;
    }
    st.chk.panels_done = done;
    st.chk.right_done_for_next = extra_right && right_done;
}

/// The fault-tolerant distributed Hessenberg reduction (SPMD).
///
/// Reduces the logical `N×N` part of `enc` in place; on exit the Hessenberg
/// entries and reflectors are stored exactly like [`ft_pblas::pdgehrd`]'s
/// output and `tau` is replicated. Failures scripted through the runtime's
/// [`ft_runtime::FaultScript`] at [`failpoint`] ids are detected at phase
/// boundaries and repaired transparently; the returned [`FtReport`] counts
/// them.
///
/// ```
/// use ft_hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Rank 2 dies right after the second panel's factorization …
/// let script = FaultScript::one(2, failpoint(1, Phase::AfterPanel));
/// let recoveries = run_spmd(2, 2, script, |ctx| {
///     let mut enc = Encoded::from_global_fn(&ctx, 16, 2, |i, j| {
///         ft_dense::gen::uniform_entry(42, i, j)
///     });
///     let mut tau = vec![0.0; 15];
///     ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).recoveries
/// });
/// // … and every process reports exactly one transparent recovery.
/// assert_eq!(recoveries, vec![1, 1, 1, 1]);
/// ```
pub fn ft_pdgehrd(ctx: &Ctx, enc: &mut Encoded, variant: Variant, tau: &mut [f64]) -> FtReport {
    ft_pdgehrd_hooked(ctx, enc, variant, tau, &mut |_, _, _, _| {})
}

/// [`ft_pdgehrd`] with an observation hook called (collectively, on every
/// process) after each phase boundary — used by the test suite to check the
/// Theorem 1 checksum invariant at every step. The hook may run collectives
/// but must not mutate algorithm state.
pub fn ft_pdgehrd_hooked(
    ctx: &Ctx,
    enc: &mut Encoded,
    variant: Variant,
    tau: &mut [f64],
    hook: &mut dyn FnMut(&Ctx, &Encoded, usize, Phase),
) -> FtReport {
    let n = enc.n();
    let nb = enc.nb();
    let q = ctx.npcol();
    assert!(q >= 2, "the ABFT scheme needs Q ≥ 2 (duplicated checksums live on distinct process columns)");
    if n > 1 {
        assert!(tau.len() >= n - 1, "ft_pdgehrd: tau too short");
    }

    let mut report = FtReport::default();
    let t_total = Instant::now();

    let t0 = Instant::now();
    enc.compute_initial_checksums(ctx);
    report.encode_secs = t0.elapsed().as_secs_f64();

    let mut scope: Option<ScopeState> = None;
    let mut panel_idx = 0usize;
    let mut k = 0usize;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);
        let bc = k / nb;
        let s = bc / q;

        if bc.is_multiple_of(q) {
            let t = Instant::now();
            scope = Some(ScopeState::begin(ctx, enc, s));
            report.snapshot_secs += t.elapsed().as_secs_f64();
        }
        let st = scope.as_mut().expect("scope always begins before panels");

        handle_failpoint(ctx, enc, st, variant, s, panel_idx, Phase::BeforePanel, &mut report);
        hook(ctx, enc, panel_idx, Phase::BeforePanel);

        let f = pdlahrd(ctx, &mut enc.a, n, k, w);
        let ve = ve_rows(enc, &f);
        if variant == Variant::NonDelayed {
            store_ve(enc, &f, &ve);
        }
        {
            let t = Instant::now();
            st.bookkeep_panel(ctx, enc, &f);
            report.bookkeeping_secs += t.elapsed().as_secs_f64();
        }

        handle_failpoint(ctx, enc, st, variant, s, panel_idx, Phase::AfterPanel, &mut report);
        hook(ctx, enc, panel_idx, Phase::AfterPanel);

        let include_chk = variant == Variant::NonDelayed;
        ft_right(enc, &f, &ve, k + w, n, include_chk, s);

        handle_failpoint(ctx, enc, st, variant, s, panel_idx, Phase::AfterRightUpdate, &mut report);
        hook(ctx, enc, panel_idx, Phase::AfterRightUpdate);

        ft_left(ctx, enc, &f, k + w, n, include_chk, s);

        handle_failpoint(ctx, enc, st, variant, s, panel_idx, Phase::AfterLeftUpdate, &mut report);
        hook(ctx, enc, panel_idx, Phase::AfterLeftUpdate);

        if include_chk {
            // Keep the progress marker meaningful for both variants.
            let st = scope.as_mut().unwrap();
            st.chk.panels_done = st.factors.len();
        }
        tau[k..k + w].copy_from_slice(&f.tau);

        let last_panel_overall = k + w + 2 >= n;
        if bc % q == q - 1 || last_panel_overall {
            let t = Instant::now();
            let st = scope.as_mut().unwrap();
            if variant == Variant::Delayed {
                alg3_catch_up(ctx, enc, st, s, st.factors.len(), false);
            }
            // Algorithm 2 line 16 analogue / §5: the finished group's
            // checksum is recomputed once and protects Area 2 forever.
            enc.compute_group_checksum(ctx, s);
            report.scope_end_secs += t.elapsed().as_secs_f64();
        }

        panel_idx += 1;
        k += w;
    }

    report.total_secs = t_total.elapsed().as_secs_f64();
    report
}

#[allow(clippy::too_many_arguments)] // internal plumbing of the driver loop
fn handle_failpoint(
    ctx: &Ctx,
    enc: &mut Encoded,
    st: &mut ScopeState,
    variant: Variant,
    s: usize,
    panel_idx: usize,
    phase: Phase,
    report: &mut FtReport,
) {
    match ctx.check_failpoint(failpoint(panel_idx, phase)) {
        FailCheck::AllGood => {}
        FailCheck::Failure { victims, me } => {
            let t = Instant::now();
            recovery::recover(ctx, enc, st, &victims, me, variant, phase, s);
            report.recoveries += 1;
            report.victims.extend_from_slice(&victims);
            report.recovery_secs += t.elapsed().as_secs_f64();
        }
    }
}
