//! The Checkpoint/Restart baseline (paper §2).
//!
//! The paper motivates ABFT by arguing that classic C/R is a poor fit for
//! the Hessenberg reduction: "the whole trailing matrix … is modified very
//! frequently, annihilating even the potential benefits of incremental
//! checkpointing", so every checkpoint must copy essentially the whole
//! matrix. This module implements that comparison point faithfully as a
//! *diskless* C/R (checkpoints to a neighbor's memory, the strongest
//! variant discussed — refs [39, 25, 35]): a full local-state checkpoint
//! every `interval` panels, global rollback on failure.
//!
//! Differences from the ABFT scheme that the `ablations` bench quantifies:
//!
//! * checkpoint volume is the **whole matrix** per checkpoint, vs the ABFT
//!   scheme's one panel scope;
//! * a failure loses **all work since the last checkpoint** on *every*
//!   process (global rollback), vs the ABFT scheme's localized
//!   reconstruction;
//! * no extra flops during computation (no checksum updates), so the
//!   fault-free overhead is pure copy/communication time.

use ft_pblas::{apply_panel_updates, pdlahrd, DistMatrix};
use ft_runtime::{Ctx, FailCheck, Tag};
use std::time::Instant;

const TAG_CKPT: Tag = Tag::Checkpoint(0);
const TAG_CKPT_RESTORE: Tag = Tag::Recovery(0x10);
const TAG_CKPT_REARM: Tag = Tag::Recovery(0x11);

/// Outcome statistics of a C/R run.
#[derive(Debug, Clone, Default)]
pub struct CrReport {
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Rollbacks performed (= failure events survived).
    pub rollbacks: usize,
    /// Panel iterations re-executed due to rollbacks (the lost work).
    pub lost_panels: usize,
    /// Seconds spent taking checkpoints.
    pub checkpoint_secs: f64,
    /// Seconds spent restoring state on rollback.
    pub restore_secs: f64,
    /// Total wall seconds.
    pub total_secs: f64,
}

struct Checkpoint {
    /// Global column the reduction resumes at.
    k: usize,
    /// Panel counter at the checkpoint (for lost-work accounting).
    panel_idx: usize,
    /// Full copy of this process's local matrix.
    local: Vec<f64>,
    /// Copy of tau.
    tau: Vec<f64>,
}

/// Fail-point id for the C/R driver: the same `(panel, phase)` space as the
/// ABFT driver, restricted to its two check locations (`BeforePanel` = even,
/// `AfterIteration` = odd), so fault scripts are portable across both.
pub fn cr_failpoint(panel: usize, after: bool) -> u64 {
    crate::algorithm::failpoint(
        panel,
        if after {
            crate::algorithm::Phase::AfterLeftUpdate
        } else {
            crate::algorithm::Phase::BeforePanel
        },
    )
}

/// Distributed Hessenberg reduction protected by diskless
/// checkpoint/restart: checkpoint every `interval` panels, roll the whole
/// computation back on failure. SPMD; fault script semantics as in
/// [`crate::ft_pdgehrd`] (fail points fire once).
pub fn cr_pdgehrd(ctx: &Ctx, a: &mut DistMatrix, interval: usize, tau: &mut [f64]) -> CrReport {
    let n = a.desc().n;
    let nb = a.desc().nb;
    let q = ctx.npcol();
    assert!(q >= 2, "C/R needs a neighbor process column to hold the remote checkpoint");
    assert!(interval >= 1);
    let mut report = CrReport::default();
    let t_total = Instant::now();

    let right = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + 1) % q);
    let left = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + q - 1) % q);

    let mut ckpt: Option<Checkpoint> = None;
    // The left neighbor's checkpoint piece (this process is its holder).
    let mut ckpt_backup: Vec<f64> = Vec::new();

    let mut k = 0usize;
    let mut panel_idx = 0usize;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);

        if panel_idx.is_multiple_of(interval) {
            // ---- full diskless checkpoint --------------------------------
            let t = Instant::now();
            let local = a.local().as_slice().to_vec();
            ctx.send(right, TAG_CKPT, &local);
            ckpt_backup = ctx.recv(left, TAG_CKPT);
            ckpt = Some(Checkpoint { k, panel_idx, local, tau: tau.to_vec() });
            report.checkpoints += 1;
            report.checkpoint_secs += t.elapsed().as_secs_f64();
        }

        // ---- fail point before the panel ---------------------------------
        if let FailCheck::Failure { victims, me } = ctx.check_failpoint(cr_failpoint(panel_idx, false)) {
            rollback(
                ctx,
                a,
                tau,
                ckpt.as_ref().expect("checkpoint exists"),
                &mut ckpt_backup,
                &victims,
                me,
                right,
                left,
                &mut report,
            );
            let c = ckpt.as_ref().unwrap();
            report.lost_panels += panel_idx - c.panel_idx;
            k = c.k;
            panel_idx = c.panel_idx;
            continue;
        }

        // ---- one unprotected iteration ------------------------------------
        let f = pdlahrd(ctx, a, n, k, w);
        apply_panel_updates(ctx, a, &f, n);
        tau[k..k + w].copy_from_slice(&f.tau);

        // ---- fail point after the iteration --------------------------------
        if let FailCheck::Failure { victims, me } = ctx.check_failpoint(cr_failpoint(panel_idx, true)) {
            rollback(
                ctx,
                a,
                tau,
                ckpt.as_ref().expect("checkpoint exists"),
                &mut ckpt_backup,
                &victims,
                me,
                right,
                left,
                &mut report,
            );
            let c = ckpt.as_ref().unwrap();
            report.lost_panels += panel_idx + 1 - c.panel_idx;
            k = c.k;
            panel_idx = c.panel_idx;
            continue;
        }

        k += w;
        panel_idx += 1;
    }

    report.total_secs = t_total.elapsed().as_secs_f64();
    report
}

/// Global rollback: the victims re-fetch their checkpoint piece from the
/// right neighbor that holds it, everyone restores the checkpointed local
/// state, and the victims' holder role is re-armed by the left neighbor.
#[allow(clippy::too_many_arguments)]
fn rollback(
    ctx: &Ctx,
    a: &mut DistMatrix,
    tau: &mut [f64],
    ckpt: &Checkpoint,
    ckpt_backup: &mut Vec<f64>,
    victims: &[usize],
    me: bool,
    right: usize,
    left: usize,
    report: &mut CrReport,
) {
    let t = Instant::now();
    // One victim per process row, as in the ABFT scheme (the remote
    // checkpoint has a single holder).
    {
        use std::collections::HashSet;
        let mut rows = HashSet::new();
        for &v in victims {
            let (pv, _) = ctx.grid().coords_of(v);
            assert!(rows.insert(pv), "C/R: two failures in one process row are unrecoverable");
        }
    }
    // The victim's local checkpoint copy is gone with its memory; the
    // holder returns it.
    let mut restored: Option<Vec<f64>> = None;
    for &v in victims {
        let (pv, qv) = ctx.grid().coords_of(v);
        let holder = ctx.grid().rank_of(pv, (qv + 1) % ctx.npcol());
        if ctx.rank() == holder {
            ctx.send(v, TAG_CKPT_RESTORE, ckpt_backup);
        }
        if ctx.rank() == v {
            restored = Some(ctx.recv(holder, TAG_CKPT_RESTORE));
        }
    }
    // Everyone rolls back to the checkpoint.
    let state = if me {
        restored.expect("victim received its checkpoint")
    } else {
        ckpt.local.clone()
    };
    a.local_mut().as_mut_slice().copy_from_slice(&state);
    tau[..ckpt.tau.len()].copy_from_slice(&ckpt.tau);
    // Re-arm the victims' holder role (they hold the left neighbor's piece).
    for &v in victims {
        let (pv, qv) = ctx.grid().coords_of(v);
        let vleft = ctx.grid().rank_of(pv, (qv + ctx.npcol() - 1) % ctx.npcol());
        if ctx.rank() == vleft {
            ctx.send(v, TAG_CKPT_REARM, &ckpt.local);
        }
        if ctx.rank() == v {
            *ckpt_backup = ctx.recv(vleft, TAG_CKPT_REARM);
        }
    }
    let _ = (right, left);
    report.rollbacks += 1;
    report.restore_secs += t.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen::uniform_entry;
    use ft_dense::Matrix;
    use ft_pblas::{pdgehrd, Desc};
    use ft_runtime::{run_spmd, FaultScript};

    fn cr_result(n: usize, nb: usize, p: usize, q: usize, seed: u64, interval: usize, script: FaultScript) -> (Matrix, CrReport) {
        run_spmd(p, q, script, move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            let rep = cr_pdgehrd(&ctx, &mut a, interval, &mut tau);
            (a.gather_all(&ctx, 640), rep)
        })
        .into_iter()
        .next()
        .unwrap()
    }

    fn plain_result(n: usize, nb: usize, p: usize, q: usize, seed: u64) -> Matrix {
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
            a.gather_all(&ctx, 642)
        })
        .into_iter()
        .next()
        .unwrap()
    }

    #[test]
    fn cr_fault_free_matches_plain() {
        let (n, nb, p, q) = (16, 2, 2, 2);
        let plain = plain_result(n, nb, p, q, 60);
        let (cr, rep) = cr_result(n, nb, p, q, 60, 2, FaultScript::none());
        assert_eq!(cr.max_abs_diff(&plain), 0.0);
        assert_eq!(rep.rollbacks, 0);
        assert!(rep.checkpoints >= 3);
    }

    #[test]
    fn cr_recovers_via_rollback() {
        let (n, nb, p, q) = (16, 2, 2, 2);
        let plain = plain_result(n, nb, p, q, 61);
        for after in [false, true] {
            let (cr, rep) = cr_result(n, nb, p, q, 61, 2, FaultScript::one(3, cr_failpoint(4, after)));
            assert_eq!(rep.rollbacks, 1, "after={after}");
            // Failing right after a fresh checkpoint (panel 4, interval 2,
            // before the panel ran) legitimately loses zero panels; the
            // after-iteration failure loses the iteration.
            assert_eq!(rep.lost_panels, usize::from(after));
            let d = cr.max_abs_diff(&plain);
            assert_eq!(d, 0.0, "after={after}: rollback re-execution diverged by {d}");
        }
    }

    #[test]
    fn cr_lost_work_grows_with_interval() {
        // A failure right before a would-be checkpoint loses interval−1
        // panels of work.
        let (n, nb, p, q) = (24, 2, 2, 2);
        let (_, rep_small) = cr_result(n, nb, p, q, 62, 2, FaultScript::one(1, cr_failpoint(5, false)));
        let (_, rep_large) = cr_result(n, nb, p, q, 62, 5, FaultScript::one(1, cr_failpoint(4, true)));
        assert!(
            rep_large.lost_panels > rep_small.lost_panels,
            "large interval {} vs small {}",
            rep_large.lost_panels,
            rep_small.lost_panels
        );
    }

    #[test]
    fn cr_survives_multiple_failures() {
        use ft_runtime::PlannedFailure;
        let (n, nb, p, q) = (20, 2, 2, 3);
        let plain = plain_result(n, nb, p, q, 63);
        let script = FaultScript::new(vec![
            PlannedFailure { victim: 2, point: cr_failpoint(2, true) },
            PlannedFailure { victim: 4, point: cr_failpoint(6, false) },
        ]);
        let (cr, rep) = cr_result(n, nb, p, q, 63, 3, script);
        assert_eq!(rep.rollbacks, 2);
        assert_eq!(cr.max_abs_diff(&plain), 0.0);
    }
}
