//! The Checkpoint/Restart baseline (paper §2).
//!
//! The paper motivates ABFT by arguing that classic C/R is a poor fit for
//! the Hessenberg reduction: "the whole trailing matrix … is modified very
//! frequently, annihilating even the potential benefits of incremental
//! checkpointing", so every checkpoint must copy essentially the whole
//! matrix. This module implements that comparison point faithfully as a
//! *diskless* C/R (checkpoints to a neighbor's memory, the strongest
//! variant discussed — refs [39, 25, 35]): a full local-state checkpoint
//! every `interval` panels, global rollback on failure.
//!
//! Differences from the ABFT scheme that the `ablations` bench quantifies:
//!
//! * checkpoint volume is the **whole matrix** per checkpoint, vs the ABFT
//!   scheme's one panel scope;
//! * a failure loses **all work since the last checkpoint** on *every*
//!   process (global rollback), vs the ABFT scheme's localized
//!   reconstruction;
//! * no extra flops during computation (no checksum updates), so the
//!   fault-free overhead is pure copy/communication time.
//!
//! The module also provides [`FtCheckpoint`], a serializable per-rank
//! snapshot of a mid-factorization **encoded** state (extended local
//! matrix + completed `tau` prefix) that round-trips through bytes
//! bit-exactly — the bridge between the ABFT drivers' in-memory scope
//! checkpoints and external storage.

use crate::encode::Encoded;
use ft_pblas::{apply_panel_updates, pdlahrd, DistMatrix};
use ft_runtime::{Ctx, FailCheck, Tag};
use std::time::Instant;

const TAG_CKPT: Tag = Tag::Checkpoint(0);
const TAG_CKPT_RESTORE: Tag = Tag::Recovery(0x10);
const TAG_CKPT_REARM: Tag = Tag::Recovery(0x11);

/// Outcome statistics of a C/R run.
#[derive(Debug, Clone, Default)]
pub struct CrReport {
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Rollbacks performed (= failure events survived).
    pub rollbacks: usize,
    /// Panel iterations re-executed due to rollbacks (the lost work).
    pub lost_panels: usize,
    /// Seconds spent taking checkpoints.
    pub checkpoint_secs: f64,
    /// Seconds spent restoring state on rollback.
    pub restore_secs: f64,
    /// Total wall seconds.
    pub total_secs: f64,
}

/// Magic prefix of the [`FtCheckpoint`] wire format (versioned).
const FT_CKPT_MAGIC: [u8; 8] = *b"FTHCKPT1";

/// A serializable per-rank checkpoint of a mid-factorization **encoded**
/// state: the rank's full extended local matrix (logical data *and* its
/// checksum columns/rows travel together, so Theorem 1 can be re-verified
/// on the restored image), plus the `tau` prefix completed so far.
///
/// This is the externalizable counterpart of the in-memory diskless
/// checkpoint [`cr_pdgehrd`] keeps on a neighbor: the byte format lets a
/// checkpoint outlive the process (disk, object store, a spare's memory).
/// Capture it from an observation hook
/// ([`crate::ft_pdgehrd_hooked`] / [`crate::ft_pdgeqrf_hooked`]); the hook
/// holds no borrow of `tau`, so the reflector prefix is attached afterwards
/// via [`FtCheckpoint::record_tau`] — sound because every driver writes
/// each `tau` entry exactly once (a completed panel's entries never change
/// later in the run).
#[derive(Debug, Clone, PartialEq)]
pub struct FtCheckpoint {
    /// Logical dimension `N` of the encoding this snapshot came from.
    n: usize,
    /// Blocking factor of the encoding.
    nb: usize,
    /// Panel index the snapshot was taken at.
    panel: usize,
    /// This rank's full extended local matrix (data + checksums).
    local: Vec<f64>,
    /// The `tau` prefix written by the panels completed so far.
    tau: Vec<f64>,
}

impl FtCheckpoint {
    /// Snapshot this rank's extended local state at `panel`. `tau` is the
    /// reflector prefix completed so far — pass `&[]` when capturing from
    /// inside an observation hook and attach it later with
    /// [`FtCheckpoint::record_tau`].
    pub fn capture(enc: &Encoded, tau: &[f64], panel: usize) -> Self {
        Self {
            n: enc.n(),
            nb: enc.nb(),
            panel,
            local: enc.a.local().as_slice().to_vec(),
            tau: tau.to_vec(),
        }
    }

    /// Attach (or replace) the completed-`tau` prefix. Callable after the
    /// driver returns because `tau` entries are write-once per panel: the
    /// final run's prefix is bitwise the capture-time prefix.
    pub fn record_tau(&mut self, tau: &[f64]) {
        self.tau = tau.to_vec();
    }

    /// Panel index this checkpoint was captured at.
    pub fn panel(&self) -> usize {
        self.panel
    }

    /// Serialize: magic, five `u64` header words (`n`, `nb`, `panel`,
    /// local length, tau length), then the two payloads as little-endian
    /// IEEE bit patterns (bit-exact round-trip, `-0.0` and subnormals
    /// included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 5 * 8 + 8 * (self.local.len() + self.tau.len()));
        out.extend_from_slice(&FT_CKPT_MAGIC);
        for v in [self.n, self.nb, self.panel, self.local.len(), self.tau.len()] {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
        for &x in self.local.iter().chain(&self.tau) {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out
    }

    /// Parse a [`FtCheckpoint::to_bytes`] image. Fails (never panics) on a
    /// foreign magic, a truncated buffer, or trailing garbage — the three
    /// ways a stored checkpoint goes bad.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        fn take<'a>(bytes: &'a [u8], off: &mut usize, len: usize) -> Result<&'a [u8], String> {
            let end = off
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("checkpoint truncated: need {len} bytes at offset {off}, buffer has {}", bytes.len()))?;
            let s = &bytes[*off..end];
            *off = end;
            Ok(s)
        }
        fn take_u64(bytes: &[u8], off: &mut usize) -> Result<usize, String> {
            Ok(u64::from_le_bytes(take(bytes, off, 8)?.try_into().unwrap()) as usize)
        }
        fn take_f64s(bytes: &[u8], off: &mut usize, count: usize) -> Result<Vec<f64>, String> {
            let raw = take(bytes, off, count.checked_mul(8).ok_or("checkpoint header overflows")?)?;
            Ok(raw
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                .collect())
        }
        let mut off = 0usize;
        let magic = take(bytes, &mut off, 8)?;
        if magic != FT_CKPT_MAGIC {
            return Err(format!("bad checkpoint magic {magic:02x?}"));
        }
        let n = take_u64(bytes, &mut off)?;
        let nb = take_u64(bytes, &mut off)?;
        let panel = take_u64(bytes, &mut off)?;
        let nlocal = take_u64(bytes, &mut off)?;
        let ntau = take_u64(bytes, &mut off)?;
        let local = take_f64s(bytes, &mut off, nlocal)?;
        let tau = take_f64s(bytes, &mut off, ntau)?;
        if off != bytes.len() {
            return Err(format!("trailing garbage: {} bytes past the checkpoint payload", bytes.len() - off));
        }
        Ok(Self { n, nb, panel, local, tau })
    }

    /// Restore this snapshot into a freshly allocated encoding of the same
    /// shape: overwrite the rank's full extended local matrix and the
    /// completed-`tau` prefix (entries past the prefix are untouched).
    /// Panics on a shape mismatch — restoring into the wrong geometry is a
    /// deployment bug, not a runtime condition.
    pub fn restore(&self, enc: &mut Encoded, tau: &mut [f64]) {
        assert_eq!(self.n, enc.n(), "checkpoint N does not match the target encoding");
        assert_eq!(self.nb, enc.nb(), "checkpoint nb does not match the target encoding");
        let local = enc.a.local_mut().as_mut_slice();
        assert_eq!(self.local.len(), local.len(), "checkpoint local size does not match the target rank's local matrix");
        assert!(self.tau.len() <= tau.len(), "checkpoint tau prefix longer than the target tau buffer");
        local.copy_from_slice(&self.local);
        tau[..self.tau.len()].copy_from_slice(&self.tau);
    }
}

struct Checkpoint {
    /// Global column the reduction resumes at.
    k: usize,
    /// Panel counter at the checkpoint (for lost-work accounting).
    panel_idx: usize,
    /// Full copy of this process's local matrix.
    local: Vec<f64>,
    /// Copy of tau.
    tau: Vec<f64>,
}

/// Fail-point id for the C/R driver: the same `(panel, phase)` space as the
/// ABFT driver, restricted to its two check locations (`BeforePanel` = even,
/// `AfterIteration` = odd), so fault scripts are portable across both.
pub fn cr_failpoint(panel: usize, after: bool) -> u64 {
    crate::algorithm::failpoint(
        panel,
        if after {
            crate::algorithm::Phase::AfterLeftUpdate
        } else {
            crate::algorithm::Phase::BeforePanel
        },
    )
}

/// Distributed Hessenberg reduction protected by diskless
/// checkpoint/restart: checkpoint every `interval` panels, roll the whole
/// computation back on failure. SPMD; fault script semantics as in
/// [`crate::ft_pdgehrd`] (fail points fire once).
pub fn cr_pdgehrd(ctx: &Ctx, a: &mut DistMatrix, interval: usize, tau: &mut [f64]) -> CrReport {
    let n = a.desc().n;
    let nb = a.desc().nb;
    let q = ctx.npcol();
    assert!(q >= 2, "C/R needs a neighbor process column to hold the remote checkpoint");
    assert!(interval >= 1);
    let mut report = CrReport::default();
    let t_total = Instant::now();

    let right = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + 1) % q);
    let left = ctx.grid().rank_of(ctx.myrow(), (ctx.mycol() + q - 1) % q);

    let mut ckpt: Option<Checkpoint> = None;
    // The left neighbor's checkpoint piece (this process is its holder).
    let mut ckpt_backup: Vec<f64> = Vec::new();

    let mut k = 0usize;
    let mut panel_idx = 0usize;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);

        if panel_idx.is_multiple_of(interval) {
            // ---- full diskless checkpoint --------------------------------
            let t = Instant::now();
            let local = a.local().as_slice().to_vec();
            ctx.send(right, TAG_CKPT, &local);
            ckpt_backup = ctx.recv(left, TAG_CKPT);
            ckpt = Some(Checkpoint { k, panel_idx, local, tau: tau.to_vec() });
            report.checkpoints += 1;
            report.checkpoint_secs += t.elapsed().as_secs_f64();
        }

        // ---- fail point before the panel ---------------------------------
        if let FailCheck::Failure { victims, me } = ctx.check_failpoint(cr_failpoint(panel_idx, false)) {
            rollback(
                ctx,
                a,
                tau,
                ckpt.as_ref().expect("checkpoint exists"),
                &mut ckpt_backup,
                &victims,
                me,
                right,
                left,
                &mut report,
            );
            let c = ckpt.as_ref().unwrap();
            report.lost_panels += panel_idx - c.panel_idx;
            k = c.k;
            panel_idx = c.panel_idx;
            continue;
        }

        // ---- one unprotected iteration ------------------------------------
        let f = pdlahrd(ctx, a, n, k, w);
        apply_panel_updates(ctx, a, &f, n);
        tau[k..k + w].copy_from_slice(&f.tau);

        // ---- fail point after the iteration --------------------------------
        if let FailCheck::Failure { victims, me } = ctx.check_failpoint(cr_failpoint(panel_idx, true)) {
            rollback(
                ctx,
                a,
                tau,
                ckpt.as_ref().expect("checkpoint exists"),
                &mut ckpt_backup,
                &victims,
                me,
                right,
                left,
                &mut report,
            );
            let c = ckpt.as_ref().unwrap();
            report.lost_panels += panel_idx + 1 - c.panel_idx;
            k = c.k;
            panel_idx = c.panel_idx;
            continue;
        }

        k += w;
        panel_idx += 1;
    }

    report.total_secs = t_total.elapsed().as_secs_f64();
    report
}

/// Global rollback: the victims re-fetch their checkpoint piece from the
/// right neighbor that holds it, everyone restores the checkpointed local
/// state, and the victims' holder role is re-armed by the left neighbor.
#[allow(clippy::too_many_arguments)]
fn rollback(
    ctx: &Ctx,
    a: &mut DistMatrix,
    tau: &mut [f64],
    ckpt: &Checkpoint,
    ckpt_backup: &mut Vec<f64>,
    victims: &[usize],
    me: bool,
    right: usize,
    left: usize,
    report: &mut CrReport,
) {
    let t = Instant::now();
    // One victim per process row, as in the ABFT scheme (the remote
    // checkpoint has a single holder).
    {
        use std::collections::HashSet;
        let mut rows = HashSet::new();
        for &v in victims {
            let (pv, _) = ctx.grid().coords_of(v);
            assert!(rows.insert(pv), "C/R: two failures in one process row are unrecoverable");
        }
    }
    // The victim's local checkpoint copy is gone with its memory; the
    // holder returns it.
    let mut restored: Option<Vec<f64>> = None;
    for &v in victims {
        let (pv, qv) = ctx.grid().coords_of(v);
        let holder = ctx.grid().rank_of(pv, (qv + 1) % ctx.npcol());
        if ctx.rank() == holder {
            ctx.send(v, TAG_CKPT_RESTORE, ckpt_backup);
        }
        if ctx.rank() == v {
            restored = Some(ctx.recv(holder, TAG_CKPT_RESTORE));
        }
    }
    // Everyone rolls back to the checkpoint.
    let state = if me {
        restored.expect("victim received its checkpoint")
    } else {
        ckpt.local.clone()
    };
    a.local_mut().as_mut_slice().copy_from_slice(&state);
    tau[..ckpt.tau.len()].copy_from_slice(&ckpt.tau);
    // Re-arm the victims' holder role (they hold the left neighbor's piece).
    for &v in victims {
        let (pv, qv) = ctx.grid().coords_of(v);
        let vleft = ctx.grid().rank_of(pv, (qv + ctx.npcol() - 1) % ctx.npcol());
        if ctx.rank() == vleft {
            ctx.send(v, TAG_CKPT_REARM, &ckpt.local);
        }
        if ctx.rank() == v {
            *ckpt_backup = ctx.recv(vleft, TAG_CKPT_REARM);
        }
    }
    let _ = (right, left);
    report.rollbacks += 1;
    report.restore_secs += t.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen::uniform_entry;
    use ft_dense::Matrix;
    use ft_pblas::{pdgehrd, Desc};
    use ft_runtime::{run_spmd, FaultScript};

    fn cr_result(n: usize, nb: usize, p: usize, q: usize, seed: u64, interval: usize, script: FaultScript) -> (Matrix, CrReport) {
        run_spmd(p, q, script, move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            let rep = cr_pdgehrd(&ctx, &mut a, interval, &mut tau);
            (a.gather_all(&ctx, 640), rep)
        })
        .into_iter()
        .next()
        .unwrap()
    }

    fn plain_result(n: usize, nb: usize, p: usize, q: usize, seed: u64) -> Matrix {
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n - 1];
            pdgehrd(&ctx, &mut a, &mut tau);
            a.gather_all(&ctx, 642)
        })
        .into_iter()
        .next()
        .unwrap()
    }

    #[test]
    fn cr_fault_free_matches_plain() {
        let (n, nb, p, q) = (16, 2, 2, 2);
        let plain = plain_result(n, nb, p, q, 60);
        let (cr, rep) = cr_result(n, nb, p, q, 60, 2, FaultScript::none());
        assert_eq!(cr.max_abs_diff(&plain), 0.0);
        assert_eq!(rep.rollbacks, 0);
        assert!(rep.checkpoints >= 3);
    }

    #[test]
    fn cr_recovers_via_rollback() {
        let (n, nb, p, q) = (16, 2, 2, 2);
        let plain = plain_result(n, nb, p, q, 61);
        for after in [false, true] {
            let (cr, rep) = cr_result(n, nb, p, q, 61, 2, FaultScript::one(3, cr_failpoint(4, after)));
            assert_eq!(rep.rollbacks, 1, "after={after}");
            // Failing right after a fresh checkpoint (panel 4, interval 2,
            // before the panel ran) legitimately loses zero panels; the
            // after-iteration failure loses the iteration.
            assert_eq!(rep.lost_panels, usize::from(after));
            let d = cr.max_abs_diff(&plain);
            assert_eq!(d, 0.0, "after={after}: rollback re-execution diverged by {d}");
        }
    }

    #[test]
    fn cr_lost_work_grows_with_interval() {
        // A failure right before a would-be checkpoint loses interval−1
        // panels of work.
        let (n, nb, p, q) = (24, 2, 2, 2);
        let (_, rep_small) = cr_result(n, nb, p, q, 62, 2, FaultScript::one(1, cr_failpoint(5, false)));
        let (_, rep_large) = cr_result(n, nb, p, q, 62, 5, FaultScript::one(1, cr_failpoint(4, true)));
        assert!(
            rep_large.lost_panels > rep_small.lost_panels,
            "large interval {} vs small {}",
            rep_large.lost_panels,
            rep_small.lost_panels
        );
    }

    #[test]
    fn ft_checkpoint_bytes_roundtrip_bit_exact() {
        let ckpt = FtCheckpoint {
            n: 8,
            nb: 2,
            panel: 3,
            local: vec![0.5, -1.25, f64::MIN_POSITIVE, -0.0, 3.5e300],
            tau: vec![1.75, 3e-300],
        };
        let bytes = ckpt.to_bytes();
        let back = FtCheckpoint::from_bytes(&bytes).expect("well-formed image parses");
        assert_eq!(back.n, ckpt.n);
        assert_eq!(back.nb, ckpt.nb);
        assert_eq!(back.panel(), ckpt.panel);
        // Element-wise bit equality: `-0.0` and subnormals must survive.
        for (a, b) in back.local.iter().zip(&ckpt.local) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.tau.iter().zip(&ckpt.tau) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.local.len(), ckpt.local.len());
        assert_eq!(back.tau.len(), ckpt.tau.len());
    }

    #[test]
    fn ft_checkpoint_from_bytes_rejects_malformed_images() {
        let ckpt = FtCheckpoint { n: 4, nb: 2, panel: 1, local: vec![1.0, 2.0], tau: vec![0.5] };
        let bytes = ckpt.to_bytes();
        assert!(FtCheckpoint::from_bytes(&[]).is_err(), "empty buffer");
        for cut in [4usize, 8, 24, bytes.len() - 1] {
            assert!(FtCheckpoint::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} must not parse");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        let e = FtCheckpoint::from_bytes(&bad_magic).expect_err("foreign magic");
        assert!(e.contains("magic"), "unexpected error: {e}");
        let mut long = bytes.clone();
        long.push(0);
        let e = FtCheckpoint::from_bytes(&long).expect_err("trailing byte");
        assert!(e.contains("trailing"), "unexpected error: {e}");
    }

    #[test]
    fn ft_checkpoint_capture_restore_single_redundancy_grid() {
        use crate::encode::Encoded;
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 12, 2, |i, j| uniform_entry(9, i, j));
            let tau = [0.25, 0.5];
            let mut ckpt = FtCheckpoint::capture(&enc, &[], 1);
            ckpt.record_tau(&tau);
            let back = FtCheckpoint::from_bytes(&ckpt.to_bytes()).expect("round-trip");
            let mut enc2 = Encoded::from_global_fn(&ctx, 12, 2, |_, _| 0.0);
            let mut tau2 = vec![0.0; 5];
            back.restore(&mut enc2, &mut tau2);
            for (a, b) in enc2.a.local().as_slice().iter().zip(enc.a.local().as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "restored local state must be bitwise identical");
            }
            assert_eq!(&tau2[..2], &tau[..]);
            assert!(tau2[2..].iter().all(|&x| x == 0.0), "entries past the prefix stay untouched");
        });
    }

    /// The ISSUE's round-trip scenario: capture a mid-factorization
    /// checkpoint under Coded(3) from the observation hook, push it through
    /// bytes, restore it into a **fresh** encoding in a separate SPMD world,
    /// and prove the restored state is a genuine mid-factorization image:
    /// Theorem 1 holds for every group strictly after the captured panel's
    /// scope, and the restored `tau` prefix is bitwise the solver's.
    fn ft_checkpoint_roundtrip(solver: &'static str) {
        use crate::algorithm::{ft_pdgehrd_hooked, ft_pdgeqrf_hooked, Phase, Variant};
        use crate::encode::{Encoded, Redundancy};
        use crate::scrub::assert_theorem1;
        use std::sync::Arc;

        // Coded(3) needs Q >= 6; n/nb = 12 block columns over Q = 6 gives
        // two checksum groups, so a panel-2 capture (scope 0) leaves group 1
        // strictly-after-scope for the Theorem-1 re-verification.
        let (n, nb, p, q) = (96usize, 8usize, 1usize, 6usize);
        const CAPTURE_PANEL: usize = 2;
        let seed = 77u64;
        let tau_len = match solver {
            "hessenberg" => n - 1,
            _ => n,
        };

        // Run 1: fault-free factorization; the hook snapshots the encoded
        // state right after panel 2's left update, tau rides along after
        // the driver returns (write-once per panel).
        let per_rank: Vec<(Vec<u8>, Vec<f64>)> = run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Coded(3), |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; tau_len];
            let mut ckpt: Option<FtCheckpoint> = None;
            let mut hook = |_: &Ctx, enc: &mut Encoded, panel: usize, phase: Phase| {
                if panel == CAPTURE_PANEL && phase == Phase::AfterLeftUpdate {
                    ckpt = Some(FtCheckpoint::capture(enc, &[], panel));
                }
            };
            match solver {
                "hessenberg" => ft_pdgehrd_hooked(&ctx, &mut enc, Variant::NonDelayed, &mut tau, &mut hook),
                _ => ft_pdgeqrf_hooked(&ctx, &mut enc, Variant::NonDelayed, &mut tau, &mut hook),
            }
            .expect("fault-free run");
            let mut ckpt = ckpt.expect("capture hook fired at panel 2");
            ckpt.record_tau(&tau[..(CAPTURE_PANEL + 1) * nb]);
            (ckpt.to_bytes(), tau)
        });

        // Run 2: a separate world restores the serialized checkpoint into a
        // freshly allocated encoding and re-verifies the invariant.
        let payload = Arc::new(per_rank);
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let (bytes, tau_final) = &payload[ctx.rank()];
            let ckpt = FtCheckpoint::from_bytes(bytes).expect("stored checkpoint parses");
            assert_eq!(ckpt.panel(), CAPTURE_PANEL);
            let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Coded(3), |_, _| 0.0);
            let mut tau = vec![0.0; tau_len];
            ckpt.restore(&mut enc, &mut tau);
            // tau prefix: write-once per panel means the completed run's
            // prefix IS the capture-time prefix — bitwise.
            let written = (CAPTURE_PANEL + 1) * nb;
            for (a, b) in tau[..written].iter().zip(&tau_final[..written]) {
                assert_eq!(a.to_bits(), b.to_bits(), "{solver}: restored tau prefix diverged");
            }
            assert!(tau[written..].iter().all(|&x| x == 0.0));
            // Theorem 1 on the restored image: every group strictly after
            // the captured scope, every Coded(3) checksum copy.
            let scope = CAPTURE_PANEL / ctx.npcol();
            let checked = assert_theorem1(&ctx, &enc, scope, 1e-11, solver, "restored checkpoint");
            assert_eq!(
                checked,
                (enc.groups() - scope - 1) * enc.ncopies(),
                "{solver}: Theorem-1 re-verification did not cover every trailing (group, copy) pair"
            );
            assert!(checked > 0, "{solver}: no trailing groups were checked — the capture point is miscalibrated");
        });
    }

    #[test]
    fn ft_checkpoint_roundtrip_theorem1_hessenberg_coded3() {
        ft_checkpoint_roundtrip("hessenberg");
    }

    #[test]
    fn ft_checkpoint_roundtrip_theorem1_qr_coded3() {
        ft_checkpoint_roundtrip("qr");
    }

    /// The serving layer's resume path: run once uninterrupted with the
    /// driver's scope sink collecting checkpoints, then restore a mid-run
    /// checkpoint into a fresh encoding and resume via
    /// `DriverControl::start_panel` — the factorization and tau must come
    /// out bitwise identical for both solvers.
    fn driver_resume_roundtrip(qr: bool) {
        use crate::algorithm::{ft_pdgehrd_ctl, ft_pdgeqrf_ctl, DriverControl, Variant};
        use crate::encode::Encoded;
        use crate::scrub::ScrubPolicy;

        let (n, nb, seed) = (16usize, 2usize, 91u64);
        run_spmd(2, 2, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
            let mut tau = vec![0.0; n];
            let mut ckpts: Vec<FtCheckpoint> = Vec::new();
            {
                let mut sink = |_: &Ctx, e: &Encoded, t: &[f64], panel: usize| {
                    ckpts.push(FtCheckpoint::capture(e, t, panel));
                };
                let ctl = DriverControl { scope_sink: Some(&mut sink), ..DriverControl::default() };
                if qr {
                    ft_pdgeqrf_ctl(&ctx, &mut enc, Variant::NonDelayed, &mut tau, ScrubPolicy::disabled(), ctl)
                } else {
                    ft_pdgehrd_ctl(&ctx, &mut enc, Variant::NonDelayed, &mut tau, ScrubPolicy::disabled(), ctl)
                }
                .expect("fault-free run");
            }
            let reference = enc.gather_logical(&ctx, 650);
            assert!(!ckpts.is_empty(), "no scope close fired the sink");
            // Scope closes land on odd block columns for Q = 2, so every
            // captured panel + 1 is a scope entry.
            let ck = ckpts.first().unwrap();
            let mut enc2 = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
            let mut tau2 = vec![0.0; n];
            ck.restore(&mut enc2, &mut tau2);
            let ctl = DriverControl { start_panel: ck.panel() + 1, ..DriverControl::default() };
            if qr {
                ft_pdgeqrf_ctl(&ctx, &mut enc2, Variant::NonDelayed, &mut tau2, ScrubPolicy::disabled(), ctl)
            } else {
                ft_pdgehrd_ctl(&ctx, &mut enc2, Variant::NonDelayed, &mut tau2, ScrubPolicy::disabled(), ctl)
            }
            .expect("resumed run");
            let resumed = enc2.gather_logical(&ctx, 652);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        reference[(i, j)].to_bits(),
                        resumed[(i, j)].to_bits(),
                        "qr={qr}: resumed factorization diverged at ({i},{j})"
                    );
                }
            }
            for (a, b) in tau.iter().zip(&tau2) {
                assert_eq!(a.to_bits(), b.to_bits(), "qr={qr}: resumed tau diverged");
            }
        });
    }

    #[test]
    fn driver_resume_from_scope_checkpoint_is_bitwise_identical_hessenberg() {
        driver_resume_roundtrip(false);
    }

    #[test]
    fn driver_resume_from_scope_checkpoint_is_bitwise_identical_qr() {
        driver_resume_roundtrip(true);
    }

    #[test]
    fn cr_survives_multiple_failures() {
        use ft_runtime::PlannedFailure;
        let (n, nb, p, q) = (20, 2, 2, 3);
        let plain = plain_result(n, nb, p, q, 63);
        let script = FaultScript::new(vec![
            PlannedFailure { victim: 2, point: cr_failpoint(2, true) },
            PlannedFailure { victim: 4, point: cr_failpoint(6, false) },
        ]);
        let (cr, rep) = cr_result(n, nb, p, q, 63, 3, script);
        assert_eq!(rep.rollbacks, 2);
        assert_eq!(cr.max_abs_diff(&plain), 0.0);
    }
}
