//! Soft-error scrubbing: detect — and with weighted checksums locate and
//! correct — *silent* data corruption using the same row checksums that
//! protect against fail-stop failures.
//!
//! The paper's fault model is fail-stop, but its checksum machinery is the
//! direct descendant of Huang & Abraham's ABFT for silent errors (the
//! paper's ref. 29) and of the backward-error assertions of Boley et al.
//! (its ref. 7, cited in §7.3). This module closes that loop:
//!
//! * **Detect** (any redundancy): group `g` is flagged when
//!   `‖Σ members − chk‖` exceeds a tolerance scaled to the accumulated
//!   update roundoff.
//! * **Locate** ([`crate::Redundancy::Dual`]): for a single corrupted
//!   element, the violation of weighted copy `c` is `w_c(idx)·δ`, so the
//!   ratio of two copies' violations reveals the member index `idx`.
//! * **Correct** ([`crate::Redundancy::Dual`]): rewrite the corrupted
//!   member block from `lost = chk − Σ other members` (exactly the Area-1
//!   formula with the located column as the "victim").
//!
//! Scrubbing applies to columns whose checksums are currently *live*:
//! trailing groups (`> current scope`) during the factorization, or every
//! group before it starts / after it completes.

use crate::encode::{Encoded, Redundancy};
use ft_runtime::{Ctx, Tag};

const TAG_SCRUB: Tag = Tag::Checksum(0x80);
const TAG_T1: Tag = Tag::Checksum(0x90);

/// Assert the Theorem-1 row-checksum invariant: every group strictly after
/// scope `scope` must satisfy `‖Σ members − chk‖ < tol` for **all** live
/// checksum copies. Returns the number of (group, copy) pairs checked so
/// callers can assert coverage. Collective — every process must call it at
/// the same point; the panic message carries `context` to name the call
/// site (iteration/phase) on failure.
///
/// This is the paper's Theorem 1 made executable: the Non-delayed variant
/// (Algorithm 2) maintains it after *every* phase of every iteration, the
/// Delayed variant (Algorithm 3) restores it at scope boundaries after the
/// catch-up. The core test suites call this helper instead of hand-rolling
/// the loop.
pub fn assert_theorem1(ctx: &Ctx, enc: &Encoded, scope: usize, tol: f64, context: &str) -> usize {
    let mut checked = 0usize;
    for g in scope + 1..enc.groups() {
        for copy in 0..enc.ncopies() {
            let viol = enc.checksum_violation(ctx, g, copy, TAG_T1);
            assert!(viol < tol, "Theorem 1 violated at {context}: group {g} copy {copy}: violation {viol} ≥ {tol}");
            checked += 1;
        }
    }
    checked
}

/// One detected (and possibly corrected) checksum violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubFinding {
    /// Checksum group.
    pub group: usize,
    /// Largest absolute violation observed (copy 0).
    pub magnitude: f64,
    /// Located member index within the group (Dual redundancy only).
    pub member_index: Option<usize>,
    /// Whether the member block was rewritten from the checksums.
    pub corrected: bool,
}

/// Scan the checksum groups in `groups` (global indices) against the
/// current data; with [`Redundancy::Dual`], locate and correct a single
/// corrupted member block per flagged group. Collective; the findings are
/// replicated on every process.
///
/// `tol` is the absolute violation threshold (scale it to
/// `‖A‖·N·ε·updates` for production use; tests use tight values).
pub fn scrub_groups(ctx: &Ctx, enc: &mut Encoded, groups: impl Iterator<Item = usize>, tol: f64) -> Vec<ScrubFinding> {
    let mut findings = Vec::new();
    for g in groups {
        let v0 = enc.checksum_violation(ctx, g, 0, TAG_SCRUB);
        if v0 <= tol {
            continue;
        }
        let mut finding = ScrubFinding {
            group: g,
            magnitude: v0,
            member_index: None,
            corrected: false,
        };
        if enc.redundancy() == Redundancy::Dual {
            // Locate: violation of copy 1 is w₁(idx)·δ = (idx+1)·δ.
            let v1 = enc.checksum_violation(ctx, g, 1, TAG_SCRUB.offset(2));
            let ratio = v1 / v0;
            let idx = (ratio.round() as usize).saturating_sub(1);
            if idx < ctx.npcol() && (ratio - (idx + 1) as f64).abs() < 0.25 {
                finding.member_index = Some(idx);
                correct_member(ctx, enc, g, idx);
                finding.corrected = true;
            }
        }
        findings.push(finding);
    }
    findings
}

/// Rewrite member block `idx` of group `g` from checksum copy 0 and the
/// other members: `member = chk₀ − Σ_{other} members` (weights of copy 0
/// are 1). Collective.
fn correct_member(ctx: &Ctx, enc: &mut Encoded, g: usize, idx: usize) {
    let nb = enc.nb();
    let q = ctx.npcol();
    let base = (g * q + idx) * nb;
    if base >= enc.n() {
        return;
    }
    let owner_q = enc.a.col_owner(base);
    let lrn = enc.a.local_rows_below(enc.n());
    let ldl = enc.a.local().ld().max(1);

    // Partial sums of the *other* members over my columns.
    let mut partial = vec![0.0f64; lrn * nb];
    for off in 0..nb {
        for c in enc.member_cols(g, off) {
            if c != base + off && enc.a.owns_col(c) {
                let lc = enc.a.g2l_col(c);
                let col = &enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn];
                for (i, v) in col.iter().enumerate() {
                    partial[i + off * lrn] += v;
                }
            }
        }
    }
    ctx.reduce_sum_row(owner_q, &mut partial, TAG_SCRUB.offset(4));

    // Checksum copy 0 travels to the member owner.
    let qc = enc.a.col_owner(enc.chk_col(g, 0, 0));
    if ctx.mycol() == qc && qc != owner_q {
        let mut buf = Vec::with_capacity(lrn * nb);
        for off in 0..nb {
            let lc = enc.a.g2l_col(enc.chk_col(g, 0, off));
            buf.extend_from_slice(&enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn]);
        }
        let dst = ctx.grid().rank_of(ctx.myrow(), owner_q);
        ctx.send(dst, TAG_SCRUB.offset(6), &buf);
    }
    if ctx.mycol() == owner_q {
        let chk: Vec<f64> = if qc == owner_q {
            let mut buf = Vec::with_capacity(lrn * nb);
            for off in 0..nb {
                let lc = enc.a.g2l_col(enc.chk_col(g, 0, off));
                buf.extend_from_slice(&enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn]);
            }
            buf
        } else {
            let src = ctx.grid().rank_of(ctx.myrow(), qc);
            ctx.recv(src, TAG_SCRUB.offset(6))
        };
        for off in 0..nb {
            let lc = enc.a.g2l_col(base + off);
            let dst = &mut enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn];
            for i in 0..lrn {
                dst[i] = chk[i + off * lrn] - partial[i + off * lrn];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Redundancy;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn clean_matrix_yields_no_findings() {
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(1, i, j));
            enc.compute_initial_checksums(&ctx);
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-10);
            assert!(f.is_empty(), "{f:?}");
        });
    }

    #[test]
    fn single_redundancy_detects_without_correcting() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| (i + j) as f64);
            enc.compute_initial_checksums(&ctx);
            if enc.a.owns_row(2) && enc.a.owns_col(1) {
                let v = enc.a.get(2, 1);
                enc.a.set(2, 1, v + 9.0);
            }
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-10);
            assert_eq!(f.len(), 1);
            assert_eq!(f[0].group, 0);
            assert!((f[0].magnitude - 9.0).abs() < 1e-10);
            assert_eq!(f[0].member_index, None);
            assert!(!f[0].corrected);
        });
    }

    #[test]
    fn dual_locates_and_corrects_each_member() {
        let n = 16;
        let nb = 2;
        for corrupt_col in [0usize, 3, 5, 6] {
            run_spmd(2, 4, FaultScript::none(), move |ctx| {
                let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Dual, |i, j| uniform_entry(4, i, j));
                enc.compute_initial_checksums(&ctx);
                let before = enc.gather_logical(&ctx, 7300);
                // Corrupt one element of group 0 at the chosen member column.
                if enc.a.owns_row(5) && enc.a.owns_col(corrupt_col) {
                    let v = enc.a.get(5, corrupt_col);
                    enc.a.set(5, corrupt_col, v - 3.5);
                }
                let gs = 0..enc.groups();
                let f = scrub_groups(&ctx, &mut enc, gs, 1e-9);
                assert_eq!(f.len(), 1, "col {corrupt_col}");
                assert_eq!(f[0].member_index, Some(enc.member_index(corrupt_col)));
                assert!(f[0].corrected);
                // The corruption is healed.
                let after = enc.gather_logical(&ctx, 7302);
                let d = after.max_abs_diff(&before);
                assert!(d < 1e-10, "col {corrupt_col}: residual corruption {d}");
            });
        }
    }

    #[test]
    fn dual_corrects_whole_block_corruption() {
        // A whole nb-column of garbage (e.g. a bad DIMM) in one block.
        run_spmd(2, 4, FaultScript::none(), |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(6, i, j));
            enc.compute_initial_checksums(&ctx);
            let before = enc.gather_logical(&ctx, 7304);
            for r in 0..16 {
                if enc.a.owns_row(r) && enc.a.owns_col(4) {
                    enc.a.set(r, 4, 1e6);
                }
                if enc.a.owns_row(r) && enc.a.owns_col(5) {
                    enc.a.set(r, 5, -1e6);
                }
            }
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-9);
            assert_eq!(f.len(), 1);
            assert!(f[0].corrected);
            let after = enc.gather_logical(&ctx, 7306);
            assert!(after.max_abs_diff(&before) < 1e-9);
        });
    }
}
