//! Shared checksum-group address arithmetic and the weighted partial-block
//! sum — the one copy of the loops that `encode`, `recovery` and `scrub`
//! all used to carry inline.
//!
//! The invariant everything here serves (paper §4): checksum copy `c` of
//! group `g` stores `Σ_idx w(c, idx) · member_block(g, idx)` over the
//! logical rows, where member `idx` of group `g` is the `nb`-wide block
//! column starting at [`member_base`]. Encoding computes that sum forward;
//! recovery and scrub correction rearrange it to solve for a lost or
//! corrupted member. All three need the identical partial-sum loop —
//! identical down to the floating-point accumulation order, because
//! recovery's bit-exactness guarantees ride on every process computing the
//! same sums the encoder did.

use crate::encode::Encoded;

/// First global column of member block `idx` of checksum group `g`:
/// `(g·Q + idx)·nb`. May lie in the ragged-`N` padding (`[N, n_pad)`) or
/// past the matrix entirely for the last group — callers clamp against
/// [`Encoded::n`] / [`Encoded::n_pad`] as their algebra requires.
#[inline]
pub(crate) fn member_base(enc: &Encoded, g: usize, idx: usize) -> usize {
    member_block_col(enc, g, idx) * enc.nb()
}

/// Global *block*-column index of member `idx` of group `g`: `g·Q + idx`.
#[inline]
pub(crate) fn member_block_col(enc: &Encoded, g: usize, idx: usize) -> usize {
    g * enc.members_per_group() + idx
}

/// The weighted partial-block sum over **my** columns of group `g`:
/// `partial[i + off·lrn] = Σ w(c) · A_local(i, c)` over the member columns
/// `c` of offset `off` that I own and that `include` admits. This is the
/// row-local half of every checksum equation; callers finish it with a
/// `reduce_sum_row` onto whichever process column their algebra lives on.
///
/// The loop nest (block offset outer, member columns inner, local rows
/// innermost) fixes the floating-point accumulation order — it is shared
/// by initial encoding ([`Encoded::compute_group_checksum`]), Area-1/2
/// recovery, and scrub correction precisely so that all three compute
/// bit-identical sums from identical data.
///
/// `include` admits skipping a member column *entirely* (scrub correction
/// excludes the convicted block, whose contents may be Inf/NaN garbage that
/// a zero weight would not neutralize); `weight_of` maps an admitted global
/// column to its checksum weight.
pub(crate) fn weighted_partial_block(
    enc: &Encoded,
    g: usize,
    lrn: usize,
    include: impl Fn(usize) -> bool,
    weight_of: impl Fn(usize) -> f64,
) -> Vec<f64> {
    let nb = enc.nb();
    let ldl = enc.a.local().ld().max(1);
    let mut partial = vec![0.0f64; lrn * nb];
    for off in 0..nb {
        for c in enc.member_cols(g, off) {
            if include(c) && enc.a.owns_col(c) {
                let w = weight_of(c);
                let lc = enc.a.g2l_col(c);
                let col = &enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn];
                for (i, v) in col.iter().enumerate() {
                    partial[i + off * lrn] += w * v;
                }
            }
        }
    }
    partial
}

/// Overwrite my local rows (`0..N`) of the `nb`-wide block starting at
/// global column `base` with `data` (the [`weighted_partial_block`] layout:
/// `nb` stacked columns of `lrn` entries). Caller must own the block's
/// process column. The write-back twin of the partial-sum loop, shared by
/// recovery's Area-1/2 solve and scrub's member rewrite.
pub(crate) fn write_member_block(enc: &mut Encoded, base: usize, lrn: usize, data: &[f64]) {
    let nb = enc.nb();
    let ldl = enc.a.local().ld().max(1);
    debug_assert_eq!(data.len(), lrn * nb);
    for off in 0..nb {
        let lc = enc.a.g2l_col(base + off);
        enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].copy_from_slice(&data[off * lrn..(off + 1) * lrn]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn member_addressing_matches_group_geometry() {
        run_spmd(1, 3, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 18, 3, |i, j| (i + j) as f64);
            // Group 1 covers block columns 3..6 → bases 9, 12, 15.
            for idx in 0..3 {
                assert_eq!(member_block_col(&enc, 1, idx), 3 + idx);
                assert_eq!(member_base(&enc, 1, idx), 9 + 3 * idx);
                assert_eq!(enc.member_index(member_base(&enc, 1, idx)), idx);
            }
        });
    }

    #[test]
    fn partial_block_matches_direct_sum() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| (1 + i * 8 + j) as f64);
            let lrn = enc.a.local_rows_below(enc.n());
            let skip = member_base(&enc, 0, 1); // exclude member 1 entirely
            let partial = weighted_partial_block(&enc, 0, lrn, |c| c < skip || c >= skip + 2, |c| enc.col_weight(0, c));
            for off in 0..2 {
                for lr in 0..lrn {
                    let gr = enc.a.l2g_row(lr);
                    let want: f64 = enc
                        .member_cols(0, off)
                        .filter(|&c| !(c >= skip && c < skip + 2) && enc.a.owns_col(c))
                        .map(|c| enc.a.get(gr, c))
                        .sum();
                    assert_eq!(partial[lr + off * lrn], want);
                }
            }
        });
    }

    /// Ragged N: the last group's member bases run past the logical N (into
    /// the zero padding, or past storage for the final group) and the
    /// partial sum only ever reads clamped member columns.
    #[test]
    fn member_addressing_and_partials_with_ragged_n() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            // N = 7, nb = 2 → n_pad = 8, 4 block columns, Q = 2 → 2 groups.
            let enc = Encoded::from_global_fn(&ctx, 7, 2, |i, j| (1 + i * 7 + j) as f64);
            assert_eq!(member_base(&enc, 1, 0), 4);
            // Member 1 of group 1 is the ragged block: base 6 < n_pad = 8,
            // but its second column (global 7) is pure padding.
            assert_eq!(member_base(&enc, 1, 1), 6);
            let lrn = enc.a.local_rows_below(enc.n());
            let partial = weighted_partial_block(&enc, 1, lrn, |_| true, |c| enc.col_weight(0, c));
            assert_eq!(partial.len(), lrn * 2);
            for off in 0..2 {
                for lr in 0..lrn {
                    let gr = enc.a.l2g_row(lr);
                    // member_cols clamps at N, so offset 1 has only col 5.
                    let want: f64 = enc
                        .member_cols(1, off)
                        .filter(|&c| enc.a.owns_col(c))
                        .map(|c| enc.a.get(gr, c))
                        .sum();
                    assert_eq!(partial[lr + off * lrn], want);
                }
            }
        });
    }

    /// 1×1 grid: one member per group, every block column its own group,
    /// and the partial sum degenerates to a weighted copy of that member.
    #[test]
    fn partial_block_on_1x1_grid() {
        run_spmd(1, 1, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 6, 2, |i, j| (1 + i * 6 + j) as f64);
            assert_eq!(enc.groups(), 3);
            for g in 0..enc.groups() {
                assert_eq!(member_block_col(&enc, g, 0), g);
                assert_eq!(member_base(&enc, g, 0), 2 * g);
                let lrn = enc.a.local_rows_below(enc.n());
                let partial = weighted_partial_block(&enc, g, lrn, |_| true, |c| enc.col_weight(1, c));
                for off in 0..2 {
                    for r in 0..lrn {
                        // Single's copy-1 weight is still 1.0 (duplicates).
                        assert_eq!(partial[r + off * lrn], enc.a.get(r, 2 * g + off));
                    }
                }
            }
        });
    }

    /// Dual weights: the weighted partial applies (idx+1)^copy per member —
    /// checked against a direct per-element sum, and the write-back twin
    /// round-trips a member block exactly.
    #[test]
    fn dual_weighted_partial_and_write_back_round_trip() {
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            use crate::encode::Redundancy;
            let mut enc = Encoded::with_redundancy(&ctx, 8, 2, Redundancy::Dual, |i, j| (1 + i * 8 + j) as f64);
            let lrn = enc.a.local_rows_below(enc.n());
            for copy in 0..enc.ncopies() {
                let partial = weighted_partial_block(&enc, 0, lrn, |_| true, |c| enc.col_weight(copy, c));
                for off in 0..2 {
                    for lr in 0..lrn {
                        let gr = enc.a.l2g_row(lr);
                        let want: f64 = enc
                            .member_cols(0, off)
                            .filter(|&c| enc.a.owns_col(c))
                            .map(|c| (1.0 + enc.member_index(c) as f64 / 4.0).powi(copy as i32) * enc.a.get(gr, c))
                            .sum();
                        assert_eq!(partial[lr + off * lrn], want, "copy {copy} off {off} lr {lr}");
                    }
                }
            }
            // Round-trip: read member 2's block via an include-one partial
            // with weight 1, write it back, and nothing changes.
            let base = member_base(&enc, 0, 2);
            if enc.a.owns_col(base) {
                let before: Vec<f64> = (0..2)
                    .flat_map(|off| (0..lrn).map(move |r| (r, off)))
                    .map(|(r, off)| enc.a.get(enc.a.l2g_row(r), base + off))
                    .collect();
                let block = weighted_partial_block(&enc, 0, lrn, |c| c >= base && c < base + 2, |_| 1.0);
                write_member_block(&mut enc, base, lrn, &block);
                let after: Vec<f64> = (0..2)
                    .flat_map(|off| (0..lrn).map(move |r| (r, off)))
                    .map(|(r, off)| enc.a.get(enc.a.l2g_row(r), base + off))
                    .collect();
                assert_eq!(before, after);
            }
        });
    }
}
