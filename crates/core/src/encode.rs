//! Checksum encoding of the input matrix (paper §4, Figure 4).
//!
//! The logical `N×N` matrix is embedded in a larger distributed matrix:
//!
//! * **Right**: `G` groups of row-checksum block columns, two identical
//!   copies each, appended at global columns `N ..`. Group `g` covers the
//!   `Q` consecutive block columns `gQ .. gQ+Q−1` ("data blocks in the same
//!   local position of different processes of the same process row"), i.e.
//!   checksum column `(g, off)` = Σ_q `A(:, (gQ+q)·nb + off)`. The two
//!   copies land on adjacent block columns and therefore on *different*
//!   process columns (§5.2) — one always survives a single failure per
//!   process row.
//! * **Bottom**: the same number of block rows, used as storage for the
//!   *pseudo column checksums* `Ve` of the reflector block `V` — the
//!   grouping pretends the grid is `Q×Q` so that `Ve`'s block structure
//!   aligns with the right-hand checksum columns (§4).
//!
//! A ragged `N` (not a multiple of `nb`) is padded up to
//! `n_pad = ⌈N/nb⌉·nb`: the padding rows/columns in `[N, n_pad)` are
//! zero-filled, never touched by the reduction (its loops are bounded by
//! the logical `N`), and simply ride along inside the last checksum group —
//! a zero member contributes zero to every weighted sum, so Theorem 1 and
//! all recovery algebra hold unchanged. Checksum storage starts at `n_pad`.

use ft_dense::Matrix;
use ft_pblas::{Desc, DistMatrix};
use ft_runtime::{Ctx, Tag};

const TAG_ENCODE: Tag = Tag::Checksum(0);

/// Checksum redundancy level.
///
/// [`Redundancy::Single`] is the paper's scheme: two *identical* checksum
/// copies per group on distinct process columns, tolerating one failure per
/// process row. [`Redundancy::Dual`] implements the paper's stated future
/// work ("exploring methods to tolerate multiple simultaneous failures",
/// §8): four *Vandermonde-weighted* checksums per group — checksum `c` of
/// group `g` stores `Σ_q node(q)^c·A(:, member_q)` with the nodes
/// `node(q) = 1 + q/Q` (see [`Redundancy::node`] for why the nodes live in
/// `[1, 2)`). Any two of the four weight rows are linearly independent, so
/// any two lost blocks per
/// (process row × group) — data or checksum — are recoverable: two
/// surviving checksums give a 2×2 Vandermonde system for the two lost
/// member blocks, and lost checksum blocks are recomputed afterwards.
/// Requires `Q ≥ 4` so the four checksum block columns land on distinct
/// process columns.
///
/// [`Redundancy::Coded`]`(f)` generalizes Dual to an arbitrary distance:
/// `2f` Vandermonde-weighted checksum copies per group (checksum `c`
/// stores `Σ_q node(q)^c·A(:, member_q)`), tolerating up to `f` simultaneous
/// failures per (process row × group). The count is `2f`, not `f+1`: a
/// worst-case failure of `f` ranks in one process row erases up to `f`
/// member blocks *and* up to `f` checksum copies of the same group, and
/// the `f` surviving copies (any `f` rows of a Vandermonde matrix with
/// distinct nodes are independent) still determine the `f` lost members.
/// `Dual` is exactly `Coded(2)` — same geometry, same weights — and is
/// kept as a named level for the CLI and the existing test batteries.
/// Requires `Q ≥ 2f` distinct process columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// Paper §5.2: duplicated checksums; ≤ 1 failure per process row.
    #[default]
    Single,
    /// Weighted checksums; ≤ 2 simultaneous failures per process row.
    Dual,
    /// Reed–Solomon/Vandermonde checksums with `2f` copies per group;
    /// ≤ `f` simultaneous failures per process row.
    Coded(usize),
}

impl Redundancy {
    /// Number of checksum block columns per group.
    pub fn ncopies(self) -> usize {
        match self {
            Redundancy::Single => 2,
            Redundancy::Dual => 4,
            Redundancy::Coded(f) => 2 * f,
        }
    }

    /// Maximum simultaneous failures per process row this level tolerates.
    pub fn max_failures_per_row(self) -> usize {
        match self {
            Redundancy::Single => 1,
            Redundancy::Dual => 2,
            Redundancy::Coded(f) => f,
        }
    }

    /// Vandermonde node of group-member index `idx` (0-based) in a group of
    /// `members` blocks: `1 + idx/members ∈ [1, 2)`.
    ///
    /// The nodes are distinct and strictly positive, so the weight matrix
    /// `w_c(idx) = node(idx)^c` is strictly totally positive and **every**
    /// square submatrix is invertible — any `m` surviving copies determine
    /// any `m` lost members. Keeping the nodes inside `[1, 2)` caps the
    /// largest weight at `2^(ncopies-1)` independently of the grid width;
    /// the naive integer nodes `idx+1` reach `Q^(2f-1)` (7776 already at
    /// `Q = 6`, `f = 3`), which amplifies the checksums' accumulated
    /// rounding and the recovery solve's conditioning enough to push a
    /// recovered run past the paper's `r_t` verification threshold.
    #[inline]
    pub fn node(self, idx: usize, members: usize) -> f64 {
        match self {
            Redundancy::Single => 1.0, // flat duplicates carry no position
            Redundancy::Dual | Redundancy::Coded(_) => 1.0 + idx as f64 / members as f64,
        }
    }

    /// Weight of group-member index `idx` (0-based within the group, out of
    /// `members`) in checksum copy `copy`: `node(idx, members)^copy`.
    #[inline]
    pub fn weight(self, copy: usize, idx: usize, members: usize) -> f64 {
        match self {
            Redundancy::Single => 1.0, // both copies are plain duplicates
            Redundancy::Dual | Redundancy::Coded(_) => self.node(idx, members).powi(copy as i32),
        }
    }

    /// Whether the per-copy weights carry position information (the
    /// Vandermonde ratio signal scrub localization reads). `Single`'s flat
    /// duplicates do not.
    #[inline]
    pub fn weights_localize(self) -> bool {
        !matches!(self, Redundancy::Single)
    }

    /// Minimum grid width `Q` this level needs so every checksum copy of a
    /// group lands on a distinct process column and enough survive any
    /// in-tolerance failure.
    pub fn min_q(self) -> usize {
        match self {
            Redundancy::Single => 2,
            Redundancy::Dual | Redundancy::Coded(_) => self.ncopies(),
        }
    }
}

/// The encoded (checksum-augmented) distributed matrix.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The extended distributed matrix: logical data in `[0,n)×[0,n)`,
    /// checksum columns at `[0,n)×[n,n+2·G·nb)`, pseudo-checksum rows at
    /// `[n,n+2·G·nb)×[0,n)`.
    pub a: DistMatrix,
    /// Logical dimension `N`.
    n: usize,
    /// `N` rounded up to a whole number of blocks — where checksum storage
    /// starts. Equal to `n` unless `N % nb != 0`.
    n_pad: usize,
    /// Blocking factor.
    nb: usize,
    /// Number of checksum groups `G = ⌈⌈N/nb⌉/Q⌉`.
    groups: usize,
    /// Process-grid columns `Q` (group width).
    q: usize,
    /// Checksum redundancy level.
    redundancy: Redundancy,
}

impl Encoded {
    /// Allocate the extended matrix and fill the logical part from `f`
    /// (global-index generator; no communication). Checksums are **not**
    /// computed yet — call [`Encoded::compute_initial_checksums`]
    /// (Algorithm 2, line 1) or let the FT driver do it.
    pub fn from_global_fn(ctx: &Ctx, n: usize, nb: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        Self::with_redundancy(ctx, n, nb, Redundancy::Single, f)
    }

    /// Like [`Encoded::from_global_fn`] with an explicit redundancy level.
    pub fn with_redundancy(ctx: &Ctx, n: usize, nb: usize, redundancy: Redundancy, f: impl Fn(usize, usize) -> f64) -> Self {
        assert!(nb > 0 && n > 0, "encoding requires N > 0 and nb > 0");
        let q = ctx.npcol();
        match redundancy {
            Redundancy::Single => {}
            Redundancy::Dual => {
                assert!(q >= 4, "Dual redundancy needs Q >= 4 distinct process columns for its checksums");
            }
            Redundancy::Coded(f) => {
                assert!(f >= 1, "Coded redundancy needs f >= 1");
                assert!(
                    q >= 2 * f,
                    "Coded({f}) redundancy needs Q >= {} distinct process columns for its checksums (got Q = {q})",
                    2 * f
                );
            }
        }
        let nblocks = n.div_ceil(nb);
        let n_pad = nblocks * nb;
        let groups = nblocks.div_ceil(q);
        let ext = redundancy.ncopies() * groups * nb;
        let desc = Desc { m: n_pad + ext, n: n_pad + ext, nb };
        let a = DistMatrix::from_global_fn(ctx, desc, |i, j| if i < n && j < n { f(i, j) } else { 0.0 });
        Self { a, n, n_pad, nb, groups, q, redundancy }
    }

    /// The redundancy level of this encoding.
    #[inline]
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Number of checksum copies per group.
    #[inline]
    pub fn ncopies(&self) -> usize {
        self.redundancy.ncopies()
    }

    /// Member index (0-based within its group) of logical column `c` —
    /// the index whose weight enters the weighted checksums.
    #[inline]
    pub fn member_index(&self, c: usize) -> usize {
        (c / self.nb) % self.q
    }

    /// Member blocks per checksum group (= the grid width `Q` the encoding
    /// was built on).
    #[inline]
    pub fn members_per_group(&self) -> usize {
        self.q
    }

    /// Weight of logical column `c` in checksum copy `copy` of its group.
    #[inline]
    pub fn col_weight(&self, copy: usize, c: usize) -> f64 {
        self.redundancy.weight(copy, self.member_index(c), self.q)
    }

    /// Logical dimension `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `N` rounded up to a whole number of `nb` blocks — the start of the
    /// checksum extension. Equal to [`Encoded::n`] when `N % nb == 0`.
    #[inline]
    pub fn n_pad(&self) -> usize {
        self.n_pad
    }

    /// Blocking factor.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of checksum groups.
    #[inline]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Checksum group of logical column `c` (= its panel scope: group `s`
    /// covers block columns `sQ..sQ+Q−1`).
    #[inline]
    pub fn group_of_col(&self, c: usize) -> usize {
        debug_assert!(c < self.n);
        (c / self.nb) / self.q
    }

    /// Logical columns of group `g` (clamped to `N`).
    pub fn group_cols(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.q * self.nb;
        let end = ((g + 1) * self.q * self.nb).min(self.n);
        start..end
    }

    /// Global column index of checksum column `(g, copy, off)`,
    /// `copy ∈ 0..ncopies()`, `off ∈ 0..nb`.
    #[inline]
    pub fn chk_col(&self, g: usize, copy: usize, off: usize) -> usize {
        let nc = self.ncopies();
        debug_assert!(g < self.groups && copy < nc && off < self.nb);
        self.n_pad + (nc * g + copy) * self.nb + off
    }

    /// Global row index of pseudo-checksum row `(g, copy, off)` (bottom
    /// storage for `Ve`).
    #[inline]
    pub fn chk_row(&self, g: usize, copy: usize, off: usize) -> usize {
        // Same extension size on rows as on columns.
        self.chk_col(g, copy, off)
    }

    /// The logical columns summed into checksum column `(g, ·, off)`:
    /// `(gQ+q)·nb + off` for `q` in `0..Q` (clamped to `N`).
    pub fn member_cols(&self, g: usize, off: usize) -> impl Iterator<Item = usize> + '_ {
        let nb = self.nb;
        let n = self.n;
        let base = g * self.q;
        (0..self.q).map(move |qq| (base + qq) * nb + off).filter(move |&c| c < n)
    }

    /// Compute (or recompute) the right row checksums of group `g` from the
    /// current contents of its member columns, writing **both** copies.
    /// Collective: one deterministic row-reduction per copy, exactly the
    /// cost the paper's §6 model charges (`T_Q · N/(nb·Q)` at encode time).
    pub fn compute_group_checksum(&mut self, ctx: &Ctx, g: usize) {
        let lrn = self.a.local_rows_below(self.n);
        for copy in 0..self.ncopies() {
            // Weighted partial block: Σ w(copy, idx)·member columns I own —
            // the shared loop in `areas`, so encode/recover/scrub accumulate
            // in the identical order.
            let mut partial = crate::areas::weighted_partial_block(self, g, lrn, |_| true, |c| self.col_weight(copy, c));
            let owner_q = self.a.col_owner(self.chk_col(g, copy, 0));
            ctx.reduce_sum_row(owner_q, &mut partial, TAG_ENCODE.offset(copy as u16));
            self.write_chk_block(g, copy, &partial);
        }
    }

    /// Algorithm 2/3, line 1: encode every group.
    pub fn compute_initial_checksums(&mut self, ctx: &Ctx) {
        for g in 0..self.groups {
            self.compute_group_checksum(ctx, g);
        }
    }

    /// Gather the full **logical** `N×N` matrix on every process (tests /
    /// result extraction only).
    pub fn gather_logical(&self, ctx: &Ctx, tag: impl Into<Tag>) -> Matrix {
        let full = self.a.gather_all(ctx, tag);
        full.submatrix(0, 0, self.n, self.n)
    }

    /// Gather the logical `N×N` matrix on rank 0 only (collective; `None`
    /// elsewhere) — linear total traffic, for result extraction at scale.
    pub fn gather_logical_root(&self, ctx: &Ctx, tag: impl Into<Tag>) -> Option<Matrix> {
        self.a.gather_root(ctx, tag).map(|full| full.submatrix(0, 0, self.n, self.n))
    }

    /// The `(base column, weight)` of every member *block* of group `g` in
    /// checksum copy `copy` — the explicit member list the shared
    /// [`ft_pblas::pd_chk_block_residual`] scan and the recovery solvers
    /// consume. Padding blocks (ragged `N`) are included: they exist in
    /// storage, hold zeros, and contribute zero to every weighted sum.
    pub fn weighted_members(&self, g: usize, copy: usize) -> Vec<(usize, f64)> {
        (0..self.q)
            .map(|qq| ((g * self.q + qq) * self.nb, self.redundancy.weight(copy, qq, self.q)))
            .filter(|&(base, _)| base < self.n_pad)
            .collect()
    }

    /// Maximum absolute checksum violation of group `g`, copy `copy`, over
    /// logical rows `0..N`, measured against the current member columns.
    /// Collective; result replicated (NaN-safe: Inf/NaN reads as
    /// `f64::INFINITY`). This is the direct test of Theorem 1.
    pub fn checksum_violation(&self, ctx: &Ctx, g: usize, copy: usize, tag: impl Into<Tag>) -> f64 {
        let members = self.weighted_members(g, copy);
        let (max, _) = ft_pblas::pd_chk_block_residual(ctx, &self.a, self.n, self.nb, &members, self.chk_col(g, copy, 0), tag);
        max
    }

    /// Read my local rows (`0..N`) of checksum block `(g, copy)` — `Some`
    /// only on the owning process column. Layout: `nb` stacked columns of
    /// `local_rows_below(N)` entries.
    pub fn read_chk_block(&self, g: usize, copy: usize) -> Option<Vec<f64>> {
        if !self.a.owns_col(self.chk_col(g, copy, 0)) {
            return None;
        }
        let lrn = self.a.local_rows_below(self.n);
        let ldl = self.a.local().ld().max(1);
        let mut buf = Vec::with_capacity(lrn * self.nb);
        for off in 0..self.nb {
            let lc = self.a.g2l_col(self.chk_col(g, copy, off));
            buf.extend_from_slice(&self.a.local().as_slice()[lc * ldl..lc * ldl + lrn]);
        }
        Some(buf)
    }

    /// Overwrite my local rows of checksum block `(g, copy)` with `buf` (the
    /// [`Encoded::read_chk_block`] layout). No-op off the owning column.
    pub fn write_chk_block(&mut self, g: usize, copy: usize, buf: &[f64]) {
        if !self.a.owns_col(self.chk_col(g, copy, 0)) {
            return;
        }
        let lrn = self.a.local_rows_below(self.n);
        let ldl = self.a.local().ld().max(1);
        for off in 0..self.nb {
            let lc = self.a.g2l_col(self.chk_col(g, copy, off));
            self.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].copy_from_slice(&buf[off * lrn..(off + 1) * lrn]);
        }
    }

    /// Move my process row's share of checksum block `(g, copy)` from its
    /// owning process column to column `dst_q`: the shared "checksum block
    /// travels to the solver" step of recovery, duplicate restore, and
    /// scrub correction. Pure row-local P2P — callable by any subset of
    /// process rows (each row acts independently; rows not calling it do
    /// nothing). Returns `Some(block)` on ranks in column `dst_q`.
    pub fn move_chk_block_to(&self, ctx: &Ctx, g: usize, copy: usize, dst_q: usize, tag: impl Into<Tag>) -> Option<Vec<f64>> {
        let tag = tag.into();
        let owner_q = self.a.col_owner(self.chk_col(g, copy, 0));
        if owner_q == dst_q {
            return self.read_chk_block(g, copy);
        }
        if let Some(buf) = self.read_chk_block(g, copy) {
            ctx.send(ctx.grid().rank_of(ctx.myrow(), dst_q), tag, &buf);
        }
        (ctx.mycol() == dst_q).then(|| ctx.recv(ctx.grid().rank_of(ctx.myrow(), owner_q), tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn group_geometry() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 18, 3, |i, j| (i + j) as f64);
            // 6 block columns, Q=3 → 2 groups.
            assert_eq!(enc.groups(), 2);
            assert_eq!(enc.group_of_col(0), 0);
            assert_eq!(enc.group_of_col(8), 0);
            assert_eq!(enc.group_of_col(9), 1);
            assert_eq!(enc.group_cols(0), 0..9);
            assert_eq!(enc.group_cols(1), 9..18);
            // Checksum columns start at N and copies are adjacent blocks.
            assert_eq!(enc.chk_col(0, 0, 0), 18);
            assert_eq!(enc.chk_col(0, 1, 0), 21);
            assert_eq!(enc.chk_col(1, 0, 2), 26);
            // Members of (g=0, off=1): columns 1, 4, 7.
            let m: Vec<usize> = enc.member_cols(0, 1).collect();
            assert_eq!(m, vec![1, 4, 7]);
            // Extended matrix is (18+12)².
            assert_eq!(enc.a.desc().m, 30);
            assert_eq!(enc.a.desc().n, 30);
        });
    }

    #[test]
    fn duplicated_copies_on_different_process_columns() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            let enc = Encoded::from_global_fn(&ctx, 18, 3, |_, _| 0.0);
            for g in 0..enc.groups() {
                let q0 = enc.a.col_owner(enc.chk_col(g, 0, 0));
                let q1 = enc.a.col_owner(enc.chk_col(g, 1, 0));
                assert_ne!(q0, q1, "group {g} copies share a process column");
            }
        });
    }

    #[test]
    fn initial_checksums_sum_members() {
        let n = 12;
        let nb = 2;
        run_spmd(2, 3, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(3, i, j));
            enc.compute_initial_checksums(&ctx);
            let full = enc.a.gather_all(&ctx, 950);
            for g in 0..enc.groups() {
                for copy in 0..2 {
                    for off in 0..nb {
                        let cc = enc.chk_col(g, copy, off);
                        for r in 0..n {
                            let want: f64 = enc.member_cols(g, off).map(|c| full[(r, c)]).sum();
                            let got = full[(r, cc)];
                            assert!((got - want).abs() < 1e-12, "g={g} copy={copy} off={off} r={r}");
                        }
                    }
                }
            }
            // Violation metric agrees.
            for g in 0..enc.groups() {
                assert!(enc.checksum_violation(&ctx, g, 0, 955) < 1e-12);
                assert!(enc.checksum_violation(&ctx, g, 1, 957) < 1e-12);
            }
        });
    }

    #[test]
    fn violation_detects_corruption() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| (i * 8 + j) as f64);
            enc.compute_initial_checksums(&ctx);
            // Corrupt one logical entry on its owner.
            if enc.a.owns_row(3) && enc.a.owns_col(1) {
                let v = enc.a.get(3, 1);
                enc.a.set(3, 1, v + 5.0);
            }
            let viol = enc.checksum_violation(&ctx, 0, 0, 960);
            assert!((viol - 5.0).abs() < 1e-12, "violation {viol}");
        });
    }

    #[test]
    fn ragged_n_pads_to_whole_blocks() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            // N=7, nb=2 → n_pad=8, 4 blocks, Q=2 → 2 groups.
            let mut enc = Encoded::from_global_fn(&ctx, 7, 2, |i, j| uniform_entry(11, i, j));
            assert_eq!(enc.n(), 7);
            assert_eq!(enc.n_pad(), 8);
            assert_eq!(enc.groups(), 2);
            // Checksum storage starts at n_pad, not n.
            assert_eq!(enc.chk_col(0, 0, 0), 8);
            // The last member block of group 1 is the ragged block (base 6):
            // present in the member list, zero-padded in storage.
            assert_eq!(enc.weighted_members(1, 0), vec![(4, 1.0), (6, 1.0)]);
            // member_cols clamps to the logical N.
            let m: Vec<usize> = enc.member_cols(1, 1).collect();
            assert_eq!(m, vec![5]);
            enc.compute_initial_checksums(&ctx);
            for g in 0..enc.groups() {
                for copy in 0..2 {
                    let v = enc.checksum_violation(&ctx, g, copy, 965 + 4 * g as u32 + 2 * copy as u32);
                    assert!(v < 1e-12, "g={g} copy={copy}: {v}");
                }
            }
            // The logical gather is exactly N×N.
            let full = enc.gather_logical(&ctx, 970);
            assert_eq!((full.rows(), full.cols()), (7, 7));
            for i in 0..7 {
                for j in 0..7 {
                    assert_eq!(full[(i, j)], uniform_entry(11, i, j));
                }
            }
        });
    }

    #[test]
    fn chk_block_moves_row_locally() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| uniform_entry(12, i, j));
            enc.compute_initial_checksums(&ctx);
            let owner = enc.a.col_owner(enc.chk_col(0, 0, 0));
            let dst = 1 - owner; // 2 process columns
            let got = enc.move_chk_block_to(&ctx, 0, 0, dst, 975);
            assert_eq!(got.is_some(), ctx.mycol() == dst);
            if let Some(buf) = got {
                // The moved block equals what the owner reads in place.
                let lrn = enc.a.local_rows_below(enc.n());
                assert_eq!(buf.len(), lrn * enc.nb());
                let full = enc.a.gather_all(&ctx, 980);
                for off in 0..enc.nb() {
                    for lr in 0..lrn {
                        let gr = enc.a.l2g_row(lr);
                        assert_eq!(buf[off * lrn + lr], full[(gr, enc.chk_col(0, 0, off))]);
                    }
                }
            } else {
                // Everyone still participates in the gather above.
                let _ = enc.a.gather_all(&ctx, 980);
            }
        });
    }
}
