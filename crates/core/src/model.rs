//! The Section 6 cost model: extra flops, communication and storage of the
//! ABFT scheme, as closed-form/loop-exact counts.
//!
//! The paper derives `FLOP_pdgemm ≈ 2N³/Q` and `FLOP_pdlarfb ≈ 8N³/(3Q)`
//! for the checksum-column updates (both duplicate copies included), giving
//!
//! ```text
//! overhead → (2 + 8/3)·N³/Q ÷ (10/3)·N³ = 7/(5Q)   as N → ∞
//! ```
//!
//! Note: the paper's Equation 2 prints the asymptote as `1/(5Q)`; its own
//! leading terms (`2N³/Q` + `8N³/(3Q)` over `10N³/3`) evaluate to `7/(5Q)`
//! as above. We implement the loop-exact sums, validate them against the
//! runtime flop counters in the `model_validation` bench, and report the
//! discrepancy in EXPERIMENTS.md. Either way the structural claim that the
//! figures test — *overhead ∝ 1/Q, vanishing relative cost at scale* — is
//! unchanged.

/// Exact-count flop model of one fault-free FT reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlopModel {
    /// Flops of the unprotected reduction (`10/3·N³` leading order).
    pub orig: f64,
    /// Extra flops: right updates (`PDGEMM`) on the checksum columns.
    pub extra_right: f64,
    /// Extra flops: left updates (`PDLARFB`) on the checksum columns.
    pub extra_left: f64,
    /// Extra flops: initial checksum encoding.
    pub encode: f64,
    /// Extra flops: per-panel pseudo checksums `Ve` of `V`.
    pub ve: f64,
}

impl FlopModel {
    /// Total extra flops.
    pub fn extra(&self) -> f64 {
        self.extra_right + self.extra_left + self.encode + self.ve
    }

    /// Predicted flop-overhead ratio `FLOP_extra / FLOP_orig`.
    pub fn overhead_ratio(&self) -> f64 {
        self.extra() / self.orig
    }
}

/// The `N → ∞` flop-overhead asymptote for a `·×Q` grid (see module docs
/// regarding the paper's printed `1/(5Q)`).
pub fn asymptotic_overhead(q: usize) -> f64 {
    7.0 / (5.0 * q as f64)
}

/// Loop-exact flop counts for `N×N`, blocking `nb`, grid `P×Q`, mirroring
/// the iteration structure of Algorithm 2 (`variant` differences only move
/// *when* checksum flops happen, not how many — Algorithm 3 performs the
/// same per-column update work at scope boundaries).
pub fn flop_model(n: usize, nb: usize, q: usize) -> FlopModel {
    let nf = n as f64;
    let orig = 10.0 / 3.0 * nf * nf * nf;

    let nblocks = n / nb;
    let groups = nblocks.div_ceil(q);
    // Initial encoding: each group sums up to Q member columns into one
    // checksum column, twice (both copies): ~ (members−1)·n adds per column.
    let mut encode = 0.0;
    for g in 0..groups {
        let members = ((g * q + q).min(nblocks)) - (g * q).min(nblocks);
        if members > 1 {
            encode += 2.0 * (members as f64 - 1.0) * nf * nb as f64;
        }
    }

    let mut extra_right = 0.0;
    let mut extra_left = 0.0;
    let mut ve = 0.0;
    let mut k = 0usize;
    while k + 2 < n {
        let w = nb.min(n - 2 - k);
        let s = (k / nb) / q;
        let chk_cols = 2 * nb * groups.saturating_sub(s + 1);
        let m_rows = (n - k - 1) as f64;
        // Right update on a checksum column: Y (n×w) times a w-row → 2·n·w.
        extra_right += chk_cols as f64 * 2.0 * nf * w as f64;
        // Left update on a checksum column: W = Vᵀc (2mw), TᵀW (w²),
        // c −= V·W (2mw).
        extra_left += chk_cols as f64 * (4.0 * m_rows * w as f64 + (w * w) as f64);
        // Ve: summing up to Q V-rows per pseudo-checksum row (both copies
        // stored, one summation): ~ n·w adds.
        ve += nf * w as f64;
        k += w;
    }

    FlopModel { orig, extra_right, extra_left, encode, ve }
}

/// Storage overhead in `f64` elements, global across the machine:
/// checksum columns + pseudo-checksum rows (4·G·nb·N ≈ 4N²/Q), the scope
/// snapshot (own + neighbor copy: 2·N·Q·nb) and the per-panel bookkeeping
/// high-water mark (panel + Y + T per scope panel). Compare with the
/// paper's `4N²/Q + (N+nb)·N/Q` aggregate.
pub fn storage_overhead_elements(n: usize, nb: usize, q: usize) -> usize {
    let nblocks = n / nb;
    let groups = nblocks.div_ceil(q);
    let checksums = 4 * groups * nb * n;
    let snapshot = 2 * n * q * nb;
    let bookkeeping = q * (n * nb /* panel */ + n * nb /* Y */ + nb * nb/* T */);
    checksums + snapshot + bookkeeping
}

/// The paper's printed storage formula (§6), for comparison.
pub fn paper_storage_formula(n: usize, nb: usize, q: usize) -> f64 {
    let (nf, nbf, qf) = (n as f64, nb as f64, q as f64);
    4.0 * nf * nf / qf + (nf + nbf) * (nf / qf) + nf * (nf / qf + 2.0 * nbf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_decreases_with_q() {
        let o2 = flop_model(512, 16, 2).overhead_ratio();
        let o4 = flop_model(512, 16, 4).overhead_ratio();
        let o8 = flop_model(512, 16, 8).overhead_ratio();
        assert!(o2 > o4 && o4 > o8, "{o2} {o4} {o8}");
    }

    #[test]
    fn overhead_approaches_asymptote_with_n_at_fixed_q() {
        // At fixed Q the pure-flop ratio approaches the asymptote
        // monotonically as N grows (the measured Figure 6 decrease comes
        // from amortizing fixed communication costs on top of this).
        let asym = asymptotic_overhead(4);
        let d1 = (flop_model(256, 16, 4).overhead_ratio() - asym).abs();
        let d2 = (flop_model(1024, 16, 4).overhead_ratio() - asym).abs();
        let d3 = (flop_model(4096, 16, 4).overhead_ratio() - asym).abs();
        assert!(d1 > d2 && d2 > d3, "{d1} {d2} {d3}");
    }

    #[test]
    fn converges_to_asymptote() {
        let q = 4;
        let big = flop_model(32768, 32, q).overhead_ratio();
        let asym = asymptotic_overhead(q);
        assert!((big - asym).abs() / asym < 0.1, "model {big} vs asymptote {asym}");
        // And approaches from above (finite-N overheads are higher).
        assert!(big > asym * 0.8);
    }

    #[test]
    fn storage_scales_like_4n2_over_q() {
        let n = 4096;
        let q = 8;
        let s = storage_overhead_elements(n, 32, q) as f64;
        let lead = 4.0 * (n * n) as f64 / q as f64;
        assert!(s > lead && s < 1.7 * lead, "storage {s} vs leading {lead}");
        // Same order as the paper's aggregate formula.
        let paper = paper_storage_formula(n, 32, q);
        assert!(s / paper > 0.4 && s / paper < 2.5, "{s} vs paper {paper}");
    }
}
