//! # ft-hess — a solver-agnostic ABFT framework, instantiated for the
//! # fault-tolerant Hessenberg reduction and Householder QR
//!
//! The paper's contribution (Jia, Bosilca, Luszczek, Dongarra, SC '13): a
//! hybrid ABFT + diskless-checkpointing scheme that makes the distributed
//! blocked Hessenberg reduction resilient to fail-stop process failures.
//! The machinery is written once against the [`FtSolver`] contract
//! (DESIGN.md §12) and instantiated twice: [`ft_pdgehrd`] (the paper's
//! solver) and [`ft_pdgeqrf`] (right-looking Householder QR, a left-only
//! solver that needs none of the pseudo-checksum `Ve` machinery).
//!
//! * [`solver`] — the [`FtSolver`] trait: panel geometry, reflector offset,
//!   and whether a trailing right update exists.
//! * [`encode`] — checksum encoding of the input matrix (§4): duplicated
//!   row-checksum block columns on the right, pseudo-checksum rows at the
//!   bottom for `Ve`.
//! * `areas` (crate-internal) — the shared checksum-group address
//!   arithmetic and the one copy of the weighted partial-sum loop that
//!   encoding, recovery and scrub correction all use.
//! * [`algorithm`] — [`ft_pdgehrd`] / [`ft_pdgeqrf`], Algorithm 2
//!   (non-delayed) and Algorithm 3 (delayed checksum updates), with
//!   scripted fail points between the phases of every iteration.
//! * [`scope`] — the panel-scope diskless checkpoints: snapshots and the
//!   per-panel `(panel, Y, T)` bookkeeping on the next process column.
//! * [`recovery`] — the §5.3 recovery procedure over the four areas of
//!   Figure 5; tolerates any simultaneous failures with at most one victim
//!   per process row.
//! * [`model`] — the §6 flop/storage cost model (validated against runtime
//!   flop counters by the `model_validation` bench).
//! * [`scrub`] — the online SDC scrub engine (DESIGN.md §10): checksum
//!   residual scans at a configurable cadence, data-vs-checksum diagnosis,
//!   single-block localization, in-place correction, and escalation to a
//!   verified-boundary rollback.
//!
//! The fault-free output is element-wise identical to
//! [`ft_pblas::pdgehrd`]'s (the checksum columns ride along without
//! touching the logical computation), and a fault-injected run recovers to
//! the exact same factorization — the property the integration tests sweep
//! across every (iteration × phase × victim) combination.

pub mod algorithm;
pub(crate) mod areas;
pub mod checkpoint_restart;
pub mod encode;
pub mod model;
pub mod recovery;
pub mod scope;
pub mod scrub;
pub mod solver;

pub use algorithm::{
    failpoint, ft_pdgehrd, ft_pdgehrd_ctl, ft_pdgehrd_full, ft_pdgehrd_hooked, ft_pdgehrd_replacement, ft_pdgehrd_scrubbed,
    ft_pdgeqrf, ft_pdgeqrf_ctl, ft_pdgeqrf_full, ft_pdgeqrf_hooked, ft_pdgeqrf_replacement, ft_pdgeqrf_scrubbed, ve_rows,
    DriverControl, FtError, FtReport, Phase, Variant,
};
pub use checkpoint_restart::{cr_failpoint, cr_pdgehrd, CrReport, FtCheckpoint};
pub use encode::{Encoded, Redundancy};
pub use model::{asymptotic_overhead, flop_model, storage_overhead_elements, FlopModel};
pub use recovery::{check_tolerance, recover, ToleranceCap, ToleranceExceeded};
pub use scope::ScopeState;
pub use scrub::{
    assert_theorem1, diagnose, first_theorem1_violation, local_row_span, locate_member, scan_group, scrub_groups, Diagnosis,
    GroupScan, ScrubCadence, ScrubEngine, ScrubEscalation, ScrubFinding, ScrubPolicy, ScrubReport, TrailingScan,
};
pub use solver::{FtSolver, Hessenberg, HouseholderQr};
