//! # ft-hess — algorithm-based fault tolerant Hessenberg reduction
//!
//! The paper's contribution (Jia, Bosilca, Luszczek, Dongarra, SC '13): a
//! hybrid ABFT + diskless-checkpointing scheme that makes the distributed
//! blocked Hessenberg reduction resilient to fail-stop process failures.
//!
//! * [`encode`] — checksum encoding of the input matrix (§4): duplicated
//!   row-checksum block columns on the right, pseudo-checksum rows at the
//!   bottom for `Ve`.
//! * [`algorithm`] — [`ft_pdgehrd`], Algorithm 2 (non-delayed) and
//!   Algorithm 3 (delayed checksum updates), with scripted fail points
//!   between the phases of every iteration.
//! * [`scope`] — the panel-scope diskless checkpoints: snapshots and the
//!   per-panel `(panel, Y, T)` bookkeeping on the next process column.
//! * [`recovery`] — the §5.3 recovery procedure over the four areas of
//!   Figure 5; tolerates any simultaneous failures with at most one victim
//!   per process row.
//! * [`model`] — the §6 flop/storage cost model (validated against runtime
//!   flop counters by the `model_validation` bench).
//! * [`scrub`] — the online SDC scrub engine (DESIGN.md §10): checksum
//!   residual scans at a configurable cadence, data-vs-checksum diagnosis,
//!   single-block localization, in-place correction, and escalation to a
//!   verified-boundary rollback.
//!
//! The fault-free output is element-wise identical to
//! [`ft_pblas::pdgehrd`]'s (the checksum columns ride along without
//! touching the logical computation), and a fault-injected run recovers to
//! the exact same factorization — the property the integration tests sweep
//! across every (iteration × phase × victim) combination.

pub mod algorithm;
pub mod checkpoint_restart;
pub mod encode;
pub mod model;
pub mod recovery;
pub mod scope;
pub mod scrub;

pub use algorithm::{
    failpoint, ft_pdgehrd, ft_pdgehrd_full, ft_pdgehrd_hooked, ft_pdgehrd_replacement, ft_pdgehrd_scrubbed, ve_rows, FtError,
    FtReport, Phase, Variant,
};
pub use checkpoint_restart::{cr_failpoint, cr_pdgehrd, CrReport};
pub use encode::{Encoded, Redundancy};
pub use model::{asymptotic_overhead, flop_model, storage_overhead_elements, FlopModel};
pub use recovery::{check_tolerance, recover, ToleranceCap, ToleranceExceeded};
pub use scope::ScopeState;
pub use scrub::{
    assert_theorem1, diagnose, first_theorem1_violation, local_row_span, locate_member, scan_group, scrub_groups, Diagnosis,
    GroupScan, ScrubCadence, ScrubEngine, ScrubEscalation, ScrubFinding, ScrubPolicy, ScrubReport, TrailingScan,
};
