//! Residual scanning and diagnosis: recompute the Theorem-1 row-checksum
//! residual of every live copy of a group and cross-check the copies to
//! decide *where* the corruption sits.
//!
//! The cross-check exploits that every member weight is ≥ 1: corruption in
//! a **data** block perturbs *all* copies of its group, while corruption in
//! a **checksum** block perturbs only that copy. A strict subset of
//! violated copies therefore convicts the checksums and acquits the data —
//! the surviving clean copies are the vouchers.

use crate::encode::Encoded;
use ft_pblas::{pd_chk_block_residual, Theorem1Violation};
use ft_runtime::{Ctx, Tag};

pub(crate) const TAG_SCRUB: Tag = Tag::Checksum(0x80);
pub(crate) const TAG_T1: Tag = Tag::Checksum(0x90);

/// Residuals of every checksum copy of one group, from one scan.
#[derive(Debug, Clone)]
pub struct GroupScan {
    /// Checksum group index.
    pub group: usize,
    /// Blocking factor (layout of the `local` blocks).
    pub nb: usize,
    /// Replicated max-abs residual per copy (`f64::INFINITY` for Inf/NaN).
    pub viol: Vec<f64>,
    /// Per-copy row-local residual block (`local rows × nb`, column-major
    /// by block offset; row-replicated across the process row) — the "row"
    /// half of the (row, block-column) localization intersection.
    pub local: Vec<Vec<f64>>,
}

/// Scan one group: one distributed residual per checksum copy. Collective;
/// `viol` is replicated on every process.
pub fn scan_group(ctx: &Ctx, enc: &Encoded, g: usize, tag: Tag) -> GroupScan {
    let mut viol = Vec::with_capacity(enc.ncopies());
    let mut local = Vec::with_capacity(enc.ncopies());
    for copy in 0..enc.ncopies() {
        let members = enc.weighted_members(g, copy);
        let (v, r) =
            pd_chk_block_residual(ctx, &enc.a, enc.n(), enc.nb(), &members, enc.chk_col(g, copy, 0), tag.offset(4 * copy as u16));
        viol.push(v);
        local.push(r);
    }
    GroupScan { group: g, nb: enc.nb(), viol, local }
}

/// What a group scan says about where the corruption sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnosis {
    /// Every copy within tolerance.
    Clean,
    /// A strict subset of copies violated: those *checksum* blocks are
    /// corrupt and the data is vouched for by the clean copies (any data
    /// corruption violates every copy — all weights are ≥ 1).
    ChecksumCorrupt {
        /// The violated copy indices.
        copies: Vec<usize>,
    },
    /// All copies violated: a data block is corrupt. `member` is the
    /// located group-member index; `None` when localization is impossible
    /// (Single redundancy on `Q > 1`) or inconsistent (multi-block damage).
    DataCorrupt { member: Option<usize> },
}

/// Cross-check the per-copy violations of one scan. Deterministic over the
/// replicated `viol` values, so every rank reaches the identical verdict.
pub fn diagnose(enc: &Encoded, scan: &GroupScan, q: usize, tol: f64) -> Diagnosis {
    let violated: Vec<usize> = scan.viol.iter().enumerate().filter(|(_, &v)| v > tol).map(|(c, _)| c).collect();
    if violated.is_empty() {
        Diagnosis::Clean
    } else if violated.len() < scan.viol.len() {
        Diagnosis::ChecksumCorrupt { copies: violated }
    } else {
        Diagnosis::DataCorrupt {
            member: super::localize::locate_member(enc.redundancy(), scan, q),
        }
    }
}

/// The first Theorem-1 violation among the live copies of every group
/// except the active scope itself (whose checksums are legitimately stale
/// mid-scope), as `(group, copy, violation)` — plus the number of
/// `(group, copy)` pairs that were checked before one failed (all of them
/// on a clean pass). `solver` names the running [`crate::FtSolver`] in the
/// violation report; the area label is solver-relative (`g > scope` is the
/// trailing Area 1, `g < scope` the finished Area 2). Collective; the
/// verdict is replicated, so every rank early-returns at the same pair.
pub fn first_theorem1_violation(
    ctx: &Ctx,
    enc: &Encoded,
    scope: usize,
    tol: f64,
    solver: &'static str,
) -> (usize, Option<(usize, usize, Theorem1Violation)>) {
    let mut checked = 0usize;
    for g in (0..enc.groups()).filter(|&g| g != scope) {
        for copy in 0..enc.ncopies() {
            let members = enc.weighted_members(g, copy);
            let chk_base = enc.chk_col(g, copy, 0);
            let (max_abs, _) = pd_chk_block_residual(ctx, &enc.a, enc.n(), enc.nb(), &members, chk_base, TAG_T1);
            if max_abs >= tol {
                let area = if g > scope { "trailing (Area 1)" } else { "finished (Area 2)" };
                let v = Theorem1Violation { block_col: chk_base / enc.nb(), max_abs, solver, area };
                return (checked, Some((g, copy, v)));
            }
            checked += 1;
        }
    }
    (checked, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Redundancy;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn diagnosis_separates_checksum_from_data_corruption() {
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(21, i, j));
            enc.compute_initial_checksums(&ctx);
            let scan = scan_group(&ctx, &enc, 0, TAG_SCRUB);
            assert_eq!(diagnose(&enc, &scan, 4, 1e-9), Diagnosis::Clean);

            // Corrupt checksum copy 2 of group 0: only that copy violates.
            let cc = enc.chk_col(0, 2, 1);
            if enc.a.owns_row(4) && enc.a.owns_col(cc) {
                let v = enc.a.get(4, cc);
                enc.a.set(4, cc, v + 11.0);
            }
            let scan = scan_group(&ctx, &enc, 0, TAG_SCRUB);
            assert_eq!(diagnose(&enc, &scan, 4, 1e-9), Diagnosis::ChecksumCorrupt { copies: vec![2] });
            enc.compute_group_checksum(&ctx, 0);

            // Corrupt a data entry: every copy violates, ratios locate it.
            if enc.a.owns_row(9) && enc.a.owns_col(5) {
                let v = enc.a.get(9, 5);
                enc.a.set(9, 5, v - 2.5);
            }
            let scan = scan_group(&ctx, &enc, 0, TAG_SCRUB);
            // Violations scale as node(idx)^copy with idx = member of col 5.
            let idx = enc.member_index(5);
            let node = enc.redundancy().node(idx, enc.members_per_group());
            for (c, &v) in scan.viol.iter().enumerate() {
                let want = 2.5 * node.powi(c as i32);
                assert!((v - want).abs() < 1e-9, "copy {c}: {v} vs {want}");
            }
            assert_eq!(diagnose(&enc, &scan, 4, 1e-9), Diagnosis::DataCorrupt { member: Some(idx) });
        });
    }

    #[test]
    fn first_violation_reports_block_column() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| uniform_entry(22, i, j));
            enc.compute_initial_checksums(&ctx);
            let (checked, none) = first_theorem1_violation(&ctx, &enc, 0, 1e-9, "hessenberg");
            assert_eq!(checked, 2); // group 1, both copies
            assert!(none.is_none());

            // Corrupt checksum copy 1 of group 1 — the scan with scope
            // sentinel (all groups live) must name its block column.
            let cc = enc.chk_col(1, 1, 0);
            if enc.a.owns_row(2) && enc.a.owns_col(cc) {
                let v = enc.a.get(2, cc);
                enc.a.set(2, cc, v + 4.0);
            }
            let (_, hit) = first_theorem1_violation(&ctx, &enc, 0, 1e-9, "hessenberg");
            let (g, copy, viol) = hit.expect("corruption missed");
            assert_eq!((g, copy), (1, 1));
            assert_eq!(viol.block_col, cc / enc.nb());
            assert!((viol.max_abs - 4.0).abs() < 1e-9);
            // Satellite check: the human-facing message names solver + area.
            let msg = viol.to_string();
            assert!(msg.contains("solver hessenberg"), "{msg}");
            assert!(msg.contains("trailing (Area 1)"), "{msg}");
        });
    }
}
