//! The online SDC scrub engine: detect — and where the encoding allows,
//! locate and correct — *silent* data corruption using the same row
//! checksums that protect against fail-stop failures.
//!
//! The paper's fault model is fail-stop, but its checksum machinery is the
//! direct descendant of Huang & Abraham's ABFT for silent errors (the
//! paper's ref. 29) and of the backward-error assertions of Boley et al.
//! (its ref. 7, cited in §7.3). This module closes that loop (DESIGN.md
//! §10):
//!
//! * **Detect** ([`residual`]): at a configurable cadence ([`ScrubPolicy`])
//!   the engine recomputes the Theorem-1 residual of every live checksum
//!   copy. Cross-checking the copies separates *data* corruption (violates
//!   every copy — all weights are ≥ 1) from *checksum* corruption (violates
//!   a strict subset).
//! * **Localize** ([`localize`]): with [`crate::Redundancy::Dual`] weights
//!   the per-copy violation ratios `viol_c/viol_0 = (idx+1)^c` name the
//!   corrupted member block; the row half of the (row, block-column)
//!   intersection comes from the residual vector itself.
//! * **Correct** ([`correct`]): a located member block is rewritten
//!   column-wise from the surviving checksum (`member = chk₀ − Σ others`,
//!   the Area-1 formula with the located column as the "victim"); convicted
//!   checksum copies are recomputed from the vouched-for data. The active
//!   scope, whose checksums are stale mid-scope, is healed from the
//!   fail-stop machinery instead: Area 3 by bookkeeping compare/copy-back,
//!   Area 4 by snapshot + replay.
//! * **Escalate**: multi-block or unlocalizable damage rolls the run back
//!   to the last *verified* boundary image (the chaos-recovery path), or —
//!   when rollback is off or makes no progress — fails with the typed
//!   [`crate::FtError::ScrubUnrecoverable`], identically on every rank.
//!
//! Every verdict is computed from replicated collective results, so all
//! ranks take the same action without extra agreement rounds.

pub mod correct;
pub mod localize;
pub mod policy;
pub mod residual;

pub use localize::{local_row_span, locate_member};
pub use policy::{ScrubCadence, ScrubPolicy};
pub use residual::{diagnose, first_theorem1_violation, scan_group, Diagnosis, GroupScan};

use crate::algorithm::Phase;
use crate::encode::Encoded;
use crate::scope::ScopeState;
use crate::solver::FtSolver;
use ft_runtime::{Ctx, Tag};
use residual::TAG_SCRUB;
use std::time::Instant;

/// Assert the Theorem-1 row-checksum invariant: every group strictly after
/// scope `scope` must satisfy `‖Σ members − chk‖ < tol` for **all** live
/// checksum copies. Returns the number of (group, copy) pairs checked so
/// callers can assert coverage. Collective — every process must call it at
/// the same point; the panic message carries `context` to name the call
/// site (iteration/phase) and the violating checksum block column.
///
/// This is the paper's Theorem 1 made executable: the Non-delayed variant
/// (Algorithm 2) maintains it after *every* phase of every iteration, the
/// Delayed variant (Algorithm 3) restores it at scope boundaries after the
/// catch-up. The core test suites call this helper instead of hand-rolling
/// the loop.
pub fn assert_theorem1(ctx: &Ctx, enc: &Encoded, scope: usize, tol: f64, solver: &'static str, context: &str) -> usize {
    let (checked, hit) = first_theorem1_violation(ctx, enc, scope, tol, solver);
    if let Some((g, copy, v)) = hit {
        panic!("Theorem 1 violated at {context}: group {g} copy {copy} — {v} ≥ {tol}");
    }
    checked
}

/// One detected (and possibly corrected) checksum violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubFinding {
    /// Checksum group.
    pub group: usize,
    /// Largest absolute violation observed across the copies.
    pub magnitude: f64,
    /// Located member index within the group (when localizable).
    pub member_index: Option<usize>,
    /// Whether the corruption was repaired (member block rewritten, or
    /// convicted checksum copies recomputed).
    pub corrected: bool,
}

/// Scan the checksum groups in `groups` (global indices) against the
/// current data; correct what the encoding allows — a located member block
/// is rewritten from the checksums, convicted checksum copies are
/// recomputed from the data. Collective; the findings are replicated on
/// every process.
///
/// `tol` is the absolute violation threshold (scale it to
/// `‖A‖·N·ε·updates` for production use; tests use tight values). This is
/// the one-shot entry point; the driver-integrated engine is
/// [`ScrubEngine`].
pub fn scrub_groups(ctx: &Ctx, enc: &mut Encoded, groups: impl Iterator<Item = usize>, tol: f64) -> Vec<ScrubFinding> {
    let mut findings = Vec::new();
    for g in groups {
        let scan = scan_group(ctx, enc, g, TAG_SCRUB);
        let magnitude = scan.viol.iter().fold(0.0f64, |m, &v| m.max(v));
        match diagnose(enc, &scan, ctx.npcol(), tol) {
            Diagnosis::Clean => {}
            Diagnosis::ChecksumCorrupt { .. } => {
                enc.compute_group_checksum(ctx, g);
                findings.push(ScrubFinding { group: g, magnitude, member_index: None, corrected: true });
            }
            Diagnosis::DataCorrupt { member } => {
                if let Some(idx) = member {
                    correct::correct_member(ctx, enc, g, idx);
                }
                findings.push(ScrubFinding {
                    group: g,
                    magnitude,
                    member_index: member,
                    corrected: member.is_some(),
                });
            }
        }
    }
    findings
}

/// Per-rank scrub statistics, aggregated grid-wide by
/// [`ScrubReport::gathered`] for the CLI summary table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// Scrub passes run.
    pub scans: usize,
    /// Groups flagged by a scan (replicated verdicts).
    pub detections: usize,
    /// Member blocks rewritten in place from the checksums.
    pub corrections: usize,
    /// Checksum copies recomputed after a checksum-corruption conviction.
    pub chk_repairs: usize,
    /// Factorized scope panel columns copied back from the bookkeeping
    /// (per-rank counts — local repairs).
    pub area3_repairs: usize,
    /// Scans that could not correct in place.
    pub escalations: usize,
    /// Boundary-image rollbacks taken for escalations.
    pub rollbacks: usize,
    /// Wall seconds spent scanning/correcting on this rank.
    pub scan_secs: f64,
    /// Accumulated squared Frobenius mass of the copy-0 residuals over my
    /// local rows (each process row holds `Q` replicas; the gathered value
    /// divides them out).
    pub residual_mass: f64,
}

impl ScrubReport {
    /// Aggregate the per-rank reports into one grid-wide summary
    /// (collective; replicated result): replicated counters are
    /// de-duplicated, per-rank counters are summed, `scan_secs` averages
    /// across ranks, and `residual_mass` becomes the global `Σ‖R₀‖²_F`
    /// over all scans.
    pub fn gathered(&self, ctx: &Ctx, tag: impl Into<Tag>) -> ScrubReport {
        let mut row = [
            self.scans as f64,
            self.detections as f64,
            self.corrections as f64,
            self.chk_repairs as f64,
            self.area3_repairs as f64,
            self.escalations as f64,
            self.rollbacks as f64,
            self.scan_secs,
            self.residual_mass,
        ];
        ctx.allreduce_sum_world(&mut row, tag);
        let world = ctx.grid().size() as f64;
        let dedup = |x: f64| (x / world).round() as usize;
        ScrubReport {
            scans: dedup(row[0]),
            detections: dedup(row[1]),
            corrections: dedup(row[2]),
            chk_repairs: dedup(row[3]),
            area3_repairs: row[4] as usize,
            escalations: dedup(row[5]),
            rollbacks: dedup(row[6]),
            scan_secs: row[7] / world,
            residual_mass: row[8] / ctx.npcol() as f64,
        }
    }
}

/// How a scrub pass treats the trailing groups (strictly after scope `s`).
/// The finished groups (before `s`) are frozen — flips there stay at rest
/// until the scan, so in-place correction is always sound; the trailing
/// side depends on the variant and the moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrailingScan {
    /// Checksums are current and any corruption is still at rest (the
    /// Non-delayed variant scans every boundary before the next update
    /// consumes the data): scan, localize and correct in place.
    Live,
    /// Checksums lag the data (the Delayed variant mid-scope): scanning
    /// would convict healthy data, so the trailing groups are skipped —
    /// they get their scan at the scope boundary.
    Skip,
    /// Checksums were just caught up *through* the corrupted data (the
    /// Delayed variant at a scope boundary): a mid-scope flip has been
    /// consumed by the update replay, so the visible single-member residual
    /// understates the damage — an in-place rewrite would freeze the
    /// consistent-looking spread into the result. Data corruption here
    /// escalates to rollback; checksum-copy corruption (an additive offset
    /// the catch-up carried along) is still repaired in place.
    Suspect,
}

/// Corruption a scrub pass could not correct in place — the driver either
/// rolls back to the last verified boundary image or returns the typed
/// [`crate::FtError::ScrubUnrecoverable`]. The fields are replicated
/// (derived from collective scan verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubEscalation {
    /// First group that stayed corrupt.
    pub group: usize,
    /// Global *data* block column of the damage: the convicted member when
    /// localization succeeded (but verification refuted the rewrite), else
    /// the group's first member block column.
    pub block_col: usize,
}

/// The driver-integrated scrub engine: policy + accumulated report. The
/// factorization driver calls [`ScrubEngine::scrub_pass`] at due
/// boundaries; rollback images and escalation handling live in the driver,
/// which owns the boundary-image machinery.
#[derive(Debug, Clone, Default)]
pub struct ScrubEngine {
    /// Scan schedule and correction policy.
    pub policy: ScrubPolicy,
    /// Accumulated per-rank statistics.
    pub report: ScrubReport,
}

impl ScrubEngine {
    /// Engine with the given policy and a fresh report.
    pub fn new(policy: ScrubPolicy) -> Self {
        Self { policy, report: ScrubReport::default() }
    }

    /// The no-op engine ([`ScrubPolicy::disabled`]).
    pub fn disabled() -> Self {
        Self::new(ScrubPolicy::disabled())
    }

    /// Whether the engine ever scans.
    #[inline]
    pub fn active(&self) -> bool {
        self.policy.active()
    }

    /// Is a pass due at the end of panel iteration `panel_idx`?
    #[inline]
    pub fn due(&self, panel_idx: usize, scope_closing: bool) -> bool {
        self.policy.due(panel_idx, scope_closing)
    }

    /// One full scrub pass at a quiescent boundary: heal the active scope's
    /// Areas 3/4 from the diskless bookkeeping, then scan, diagnose and
    /// correct every group with live checksums. `trailing` says how the
    /// groups after scope `s` are treated (see [`TrailingScan`]); `phase`
    /// tells the Area-4 replay how far the current iteration progressed.
    ///
    /// Collective. Returns the first uncorrectable group as a
    /// [`ScrubEscalation`] (replicated — every rank agrees).
    #[allow(clippy::too_many_arguments)] // driver-internal plumbing
    pub fn scrub_pass(
        &mut self,
        ctx: &Ctx,
        solver: &dyn FtSolver,
        enc: &mut Encoded,
        st: &ScopeState,
        s: usize,
        phase: Phase,
        trailing: TrailingScan,
    ) -> Result<(), ScrubEscalation> {
        let t = Instant::now();
        self.report.scans += 1;

        // The active scope first: its group-s checksums are stale mid-scope
        // (both variants), so corruption there is healed from the fail-stop
        // machinery, not detected. Order matters at scope boundaries — the
        // caller recomputes group s's checksum right after this pass, which
        // would absorb any lingering scope corruption for good.
        self.report.area3_repairs += correct::heal_area3(enc, st);
        if st.scope < enc.groups() {
            correct::refresh_area4(ctx, solver, enc, st, s, phase);
        }

        let mut escalation: Option<ScrubEscalation> = None;
        for g in 0..enc.groups() {
            if g == s || (trailing == TrailingScan::Skip && g > s) {
                continue;
            }
            let scan = scan_group(ctx, enc, g, TAG_SCRUB);
            self.report.residual_mass += scan.local[0]
                .iter()
                .map(|&x| if x.is_finite() { x * x } else { 0.0 })
                .sum::<f64>();
            match diagnose(enc, &scan, ctx.npcol(), self.policy.tol) {
                Diagnosis::Clean => {}
                Diagnosis::ChecksumCorrupt { copies } => {
                    self.report.detections += 1;
                    self.report.chk_repairs += copies.len();
                    // The data is vouched for by the clean copies:
                    // recomputing from it repairs every convicted copy at
                    // either redundancy level.
                    enc.compute_group_checksum(ctx, g);
                }
                Diagnosis::DataCorrupt { member: Some(idx) } if !(trailing == TrailingScan::Suspect && g > s) => {
                    self.report.detections += 1;
                    correct::correct_member(ctx, enc, g, idx);
                    // Verify against copy 1 — an equation *independent* of
                    // the copy-0 rewrite (copy 0 is zero by construction).
                    if enc.checksum_violation(ctx, g, 1, TAG_SCRUB.offset(36)) <= self.policy.tol {
                        self.report.corrections += 1;
                    } else {
                        escalation = Some(ScrubEscalation {
                            group: g,
                            block_col: crate::areas::member_block_col(enc, g, idx),
                        });
                        break;
                    }
                }
                Diagnosis::DataCorrupt { .. } => {
                    self.report.detections += 1;
                    escalation = Some(ScrubEscalation {
                        group: g,
                        block_col: crate::areas::member_block_col(enc, g, 0),
                    });
                    break;
                }
            }
        }

        self.report.scan_secs += t.elapsed().as_secs_f64();
        match escalation {
            Some(e) => {
                self.report.escalations += 1;
                Err(e)
            }
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Redundancy;
    use ft_dense::gen::uniform_entry;
    use ft_runtime::{run_spmd, FaultScript};

    #[test]
    fn clean_matrix_yields_no_findings() {
        run_spmd(1, 4, FaultScript::none(), |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(1, i, j));
            enc.compute_initial_checksums(&ctx);
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-10);
            assert!(f.is_empty(), "{f:?}");
        });
    }

    #[test]
    fn single_redundancy_detects_without_correcting() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| (i + j) as f64);
            enc.compute_initial_checksums(&ctx);
            if enc.a.owns_row(2) && enc.a.owns_col(1) {
                let v = enc.a.get(2, 1);
                enc.a.set(2, 1, v + 9.0);
            }
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-10);
            assert_eq!(f.len(), 1);
            assert_eq!(f[0].group, 0);
            assert!((f[0].magnitude - 9.0).abs() < 1e-10);
            assert_eq!(f[0].member_index, None);
            assert!(!f[0].corrected);
        });
    }

    #[test]
    fn dual_locates_and_corrects_each_member() {
        let n = 16;
        let nb = 2;
        for corrupt_col in [0usize, 3, 5, 6] {
            run_spmd(2, 4, FaultScript::none(), move |ctx| {
                let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Dual, |i, j| uniform_entry(4, i, j));
                enc.compute_initial_checksums(&ctx);
                let before = enc.gather_logical(&ctx, 7300);
                // Corrupt one element of group 0 at the chosen member column.
                if enc.a.owns_row(5) && enc.a.owns_col(corrupt_col) {
                    let v = enc.a.get(5, corrupt_col);
                    enc.a.set(5, corrupt_col, v - 3.5);
                }
                let gs = 0..enc.groups();
                let f = scrub_groups(&ctx, &mut enc, gs, 1e-9);
                assert_eq!(f.len(), 1, "col {corrupt_col}");
                assert_eq!(f[0].member_index, Some(enc.member_index(corrupt_col)));
                assert!(f[0].corrected);
                // The corruption is healed.
                let after = enc.gather_logical(&ctx, 7302);
                let d = after.max_abs_diff(&before);
                assert!(d < 1e-10, "col {corrupt_col}: residual corruption {d}");
            });
        }
    }

    #[test]
    fn dual_corrects_whole_block_corruption() {
        // A whole nb-column of garbage (e.g. a bad DIMM) in one block.
        run_spmd(2, 4, FaultScript::none(), |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, 16, 2, Redundancy::Dual, |i, j| uniform_entry(6, i, j));
            enc.compute_initial_checksums(&ctx);
            let before = enc.gather_logical(&ctx, 7304);
            for r in 0..16 {
                if enc.a.owns_row(r) && enc.a.owns_col(4) {
                    enc.a.set(r, 4, 1e6);
                }
                if enc.a.owns_row(r) && enc.a.owns_col(5) {
                    enc.a.set(r, 5, -1e6);
                }
            }
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-9);
            assert_eq!(f.len(), 1);
            assert!(f[0].corrected);
            let after = enc.gather_logical(&ctx, 7306);
            assert!(after.max_abs_diff(&before) < 1e-9);
        });
    }

    #[test]
    fn corrupted_checksum_copy_is_repaired_not_blamed_on_data() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, 8, 2, |i, j| uniform_entry(13, i, j));
            enc.compute_initial_checksums(&ctx);
            let before = enc.gather_logical(&ctx, 7310);
            let cc = enc.chk_col(0, 1, 0);
            if enc.a.owns_row(6) && enc.a.owns_col(cc) {
                let v = enc.a.get(6, cc);
                enc.a.set(6, cc, v * 2.0 + 1.0);
            }
            let gs = 0..enc.groups();
            let f = scrub_groups(&ctx, &mut enc, gs, 1e-9);
            assert_eq!(f.len(), 1);
            assert_eq!(f[0].member_index, None);
            assert!(f[0].corrected, "checksum repair must be reported as corrected");
            // Data untouched, and the checksum invariant holds again.
            let after = enc.gather_logical(&ctx, 7312);
            assert_eq!(after.max_abs_diff(&before), 0.0);
            assert!(enc.checksum_violation(&ctx, 0, 1, 7314) < 1e-12);
        });
    }

    #[test]
    fn report_gathering_dedups_replicated_counts() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let rep = ScrubReport {
                scans: 3,
                detections: 1,
                corrections: 1,
                // Per-rank field: every rank repaired one panel column.
                area3_repairs: 1,
                scan_secs: 0.5,
                ..Default::default()
            };
            let g = rep.gathered(&ctx, 7400);
            assert_eq!(g.scans, 3);
            assert_eq!(g.detections, 1);
            assert_eq!(g.corrections, 1);
            assert_eq!(g.area3_repairs, 4); // summed across the 2×2 grid
            assert!((g.scan_secs - 0.5).abs() < 1e-12);
        });
    }
}
