//! In-place correction: rewrite a located member block from the surviving
//! checksums, repair convicted checksum copies, and heal the active scope's
//! Areas 3/4 from the diskless bookkeeping (which the injector cannot
//! reach — it only corrupts the matrix buffer).

use crate::encode::Encoded;
use crate::scope::ScopeState;
use ft_runtime::Ctx;

use super::residual::TAG_SCRUB;

/// Rewrite member block `idx` of group `g` from checksum copy 0 and the
/// other members: `member = chk₀ − Σ_other members` (copy-0 weights are 1
/// at every redundancy level). Collective across the full grid. Also heals
/// a corrupted ragged-`N` *padding* block (base in `[N, n_pad)`): its clean
/// state is all zeros and the formula reproduces exactly that.
pub(crate) fn correct_member(ctx: &Ctx, enc: &mut Encoded, g: usize, idx: usize) {
    let nb = enc.nb();
    let base = crate::areas::member_base(enc, g, idx);
    if base >= enc.n_pad() {
        return;
    }
    let owner_q = enc.a.col_owner(base);
    let lrn = enc.a.local_rows_below(enc.n());

    // Partial sums of the *other* members over my columns — the convicted
    // block is excluded entirely (its contents may be Inf/NaN garbage that
    // a zero weight would not neutralize). `member_cols` clamps to the
    // logical N, so clean padding blocks contribute their true zeros
    // without being read.
    let mut partial = crate::areas::weighted_partial_block(enc, g, lrn, |c| c < base || c >= base + nb, |_| 1.0);
    ctx.reduce_sum_row(owner_q, &mut partial, TAG_SCRUB.offset(32));

    // Checksum copy 0 travels to the member owner's process column.
    let chk = enc.move_chk_block_to(ctx, g, 0, owner_q, TAG_SCRUB.offset(34));
    if ctx.mycol() == owner_q {
        let chk = chk.expect("destination column holds the moved block");
        let fixed: Vec<f64> = chk.iter().zip(&partial).map(|(c, p)| c - p).collect();
        crate::areas::write_member_block(enc, base, lrn, &fixed);
    }
}

/// Area 3 of the active scope: compare my factorized panel columns against
/// the bookkeeping pieces captured at factorization time (bit-identical by
/// construction — finished panel columns are never updated again within
/// their scope) and copy back any that differ. Purely local; returns the
/// number of repaired panel columns on this rank.
pub(crate) fn heal_area3(enc: &mut Encoded, st: &ScopeState) -> usize {
    let lrn = enc.a.local_rows_below(enc.n());
    if lrn == 0 {
        return 0;
    }
    let ldl = enc.a.local().ld().max(1);
    let mut repaired = 0usize;
    for (idx, piece) in &st.my_panel_pieces {
        // Panels can be narrower than nb (ragged last panel); the piece's
        // own length carries the width, as in `repair_after_failure`.
        let k = st.start_col + idx * enc.nb();
        let lc0 = enc.a.local_cols_below(k);
        let cols_cnt = piece.len() / lrn;
        for ci in 0..cols_cnt {
            let lc = lc0 + ci;
            let good = &piece[ci * lrn..(ci + 1) * lrn];
            let cur = &enc.a.local().as_slice()[lc * ldl..lc * ldl + lrn];
            if cur != good {
                enc.a.local_mut().as_mut_slice()[lc * ldl..lc * ldl + lrn].copy_from_slice(good);
                repaired += 1;
            }
        }
    }
    repaired
}

/// Area 4 of the active scope: the unfactorized scope columns have no live
/// checksum mid-scope, so corruption there is *refreshed away* rather than
/// detected — snapshot rollback plus deterministic replay of the saved
/// panel updates rebuilds them bit-identically from trusted sources (the
/// scope snapshot and the replicated factors). Collective.
pub(crate) fn refresh_area4(
    ctx: &Ctx,
    solver: &dyn crate::solver::FtSolver,
    enc: &mut Encoded,
    st: &ScopeState,
    s: usize,
    phase: crate::algorithm::Phase,
) {
    crate::recovery::replay_area4(ctx, solver, enc, st, s, phase);
}
