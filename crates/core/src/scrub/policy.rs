//! Scrub scheduling policy: when the engine scans, how it separates
//! corruption from roundoff, and what it may do when a scan cannot correct
//! in place.

/// When the scrub engine runs a pass. Scans always sit at the quiescent
/// end-of-iteration boundary (after the left update, before the driver
/// advances), where every rank holds identical replicated state and the
/// Theorem-1 invariant is supposed to hold for the live groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScrubCadence {
    /// Never scan — the engine is disabled and costs nothing.
    #[default]
    Never,
    /// Scan at the end of every `k`-th panel iteration (`k ≥ 1`) and at
    /// every scope boundary.
    Panels(usize),
    /// Scan only at scope boundaries — the last chance before the finished
    /// group's checksum recompute would absorb any corruption for good.
    ScopeEnd,
}

/// Scrub engine configuration (see DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubPolicy {
    /// Scan schedule.
    pub cadence: ScrubCadence,
    /// Absolute residual threshold separating corruption from accumulated
    /// update roundoff. Flips in mantissa bits below the threshold are
    /// undetectable by construction — and equally invisible to the final
    /// `r∞` verification (the detectability floor, DESIGN.md §10).
    pub tol: f64,
    /// Escalate uncorrectable damage (multi-block, or unlocalizable under
    /// [`crate::Redundancy::Single`]) to a verified-boundary-image rollback
    /// instead of failing with a typed error immediately.
    pub rollback: bool,
    /// Run an extra pass right after every fail-stop recovery.
    pub post_recovery: bool,
}

impl Default for ScrubPolicy {
    /// The default policy never scans ([`ScrubPolicy::disabled`]).
    fn default() -> Self {
        Self::disabled()
    }
}

impl ScrubPolicy {
    /// Default residual threshold: far above the checksum-update roundoff
    /// of any test-sized problem (~1e-12) and below the smallest seeded
    /// injector flip (high-mantissa bits of O(1) entries, ~1e-7).
    pub const DEFAULT_TOL: f64 = 1e-8;

    /// The engine does nothing (the default for plain [`crate::ft_pdgehrd`]).
    pub fn disabled() -> Self {
        Self {
            cadence: ScrubCadence::Never,
            tol: Self::DEFAULT_TOL,
            rollback: true,
            post_recovery: false,
        }
    }

    /// Scan every `k` panels (and at scope boundaries), correct in place,
    /// escalate to rollback.
    pub fn every_panels(k: usize) -> Self {
        assert!(k >= 1, "scrub cadence must be at least one panel");
        Self {
            cadence: ScrubCadence::Panels(k),
            tol: Self::DEFAULT_TOL,
            rollback: true,
            post_recovery: true,
        }
    }

    /// Scan at scope boundaries only.
    pub fn scope_end() -> Self {
        Self {
            cadence: ScrubCadence::ScopeEnd,
            tol: Self::DEFAULT_TOL,
            rollback: true,
            post_recovery: true,
        }
    }

    /// Whether the engine ever scans.
    #[inline]
    pub fn active(&self) -> bool {
        self.cadence != ScrubCadence::Never
    }

    /// Is a pass due at the end of panel iteration `panel_idx`?
    /// `scope_closing` marks the iteration that ends a panel scope.
    pub fn due(&self, panel_idx: usize, scope_closing: bool) -> bool {
        match self.cadence {
            ScrubCadence::Never => false,
            ScrubCadence::Panels(k) => scope_closing || (panel_idx + 1).is_multiple_of(k),
            ScrubCadence::ScopeEnd => scope_closing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_schedules() {
        let never = ScrubPolicy::disabled();
        assert!(!never.active());
        assert!(!never.due(0, true));

        let p2 = ScrubPolicy::every_panels(2);
        assert!(p2.active());
        assert!(!p2.due(0, false)); // after panel 0: 1 % 2 != 0
        assert!(p2.due(1, false));
        assert!(p2.due(0, true)); // scope boundary always scans

        let se = ScrubPolicy::scope_end();
        assert!(!se.due(5, false));
        assert!(se.due(5, true));
    }

    #[test]
    #[should_panic(expected = "at least one panel")]
    fn zero_cadence_rejected() {
        let _ = ScrubPolicy::every_panels(0);
    }
}
