//! Member localization: which block column of a convicted group is the
//! corrupted one.
//!
//! For a single corrupted member block `idx`, copy `c`'s residual is the
//! *same* row vector scaled by the Vandermonde weight
//! `w_c(idx) = node(idx)^c` with the nodes `node(idx) = 1 + idx/Q`
//! ([`crate::Redundancy::Dual`] and [`crate::Redundancy::Coded`], which
//! share the weight form). The max-abs ratios between copies are
//! therefore exact — `viol_1 / viol_0 = node(idx)` — and the nearest node
//! reveals `idx`; a consistency check across every copy rejects
//! multi-block damage (the residuals then mix two differently-weighted
//! vectors and the ratios drift off the single-member curve, which the
//! higher copies' faster-diverging weights expose).
//!
//! [`crate::Redundancy::Single`] weights everything 1, so its ratios carry
//! no position information and data corruption stays unlocalizable — except
//! on a `Q = 1` grid, where each group has exactly one member.

use crate::encode::Redundancy;

use super::residual::GroupScan;

/// Acceptance band for the ratio consistency check: 5% of the expected
/// violation. Single-member ratios are exact to rounding (every copy's
/// residual is the same vector rescaled), so a tight band is safe — and it
/// needs to be tight, because the `[1, 2)` node packing makes a two-member
/// mixture resemble an intermediate member's curve far more closely than
/// integer nodes would.
const RATIO_BAND: f64 = 0.05;

/// Locate the corrupted member block of a group whose copies are *all*
/// violated. `None` means uncorrectable in place: escalate.
pub fn locate_member(redundancy: Redundancy, scan: &GroupScan, q: usize) -> Option<usize> {
    if q == 1 {
        // One member per group: nothing to disambiguate, any redundancy.
        return Some(0);
    }
    let v0 = scan.viol[0];
    if !v0.is_finite() || v0 <= 0.0 {
        // Inf/NaN corruption destroys the ratios; rollback handles it.
        return None;
    }
    if !redundancy.weights_localize() {
        return None; // Single's flat weights carry no position information
    }
    let ratio = scan.viol.get(1).copied()? / v0;
    if !ratio.is_finite() {
        return None;
    }
    // The copy-1/copy-0 ratio is the member's node; pick the nearest.
    let idx = (0..q)
        .min_by(|&a, &b| {
            let da = (ratio - redundancy.node(a, q)).abs();
            let db = (ratio - redundancy.node(b, q)).abs();
            da.partial_cmp(&db).expect("finite ratio")
        })
        .expect("q >= 1");
    // Every copy must sit on the single-member curve viol_c = node(idx)^c·v0.
    let node = redundancy.node(idx, q);
    // A ratio farther than half a node gap from every node is not a
    // single-member signature at all (this is the only mixture rejection a
    // 2-copy `Coded(1)` encoding has — its band check below is vacuous).
    if (ratio - node).abs() > 0.5 / q as f64 {
        return None;
    }
    for (c, &v) in scan.viol.iter().enumerate() {
        let expect = node.powi(c as i32) * v0;
        if !v.is_finite() || (v - expect).abs() > RATIO_BAND * expect.max(v0) {
            return None;
        }
    }
    Some(idx)
}

/// Local row span `[lo, hi]` of the corruption within a scanned group: the
/// rows of my copy-0 residual block with any entry above `tol`. `None` when
/// my rows are clean (the corruption sits on another process row). This is
/// the "row" coordinate of the (row, block-column) residual intersection;
/// the block column is the located member.
pub fn local_row_span(scan: &GroupScan, tol: f64) -> Option<(usize, usize)> {
    let r = &scan.local[0];
    if scan.nb == 0 || r.is_empty() {
        return None;
    }
    let lrn = r.len() / scan.nb;
    let mut span: Option<(usize, usize)> = None;
    for off in 0..scan.nb {
        for i in 0..lrn {
            let x = r[off * lrn + i];
            if !x.is_finite() || x.abs() > tol {
                span = Some(match span {
                    None => (i, i),
                    Some((lo, hi)) => (lo.min(i), hi.max(i)),
                });
            }
        }
    }
    span
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(viol: Vec<f64>) -> GroupScan {
        GroupScan { group: 0, nb: 2, viol, local: vec![vec![0.0; 4]] }
    }

    #[test]
    fn dual_ratios_locate_each_member() {
        for idx in 0..4usize {
            let d = 3.0;
            let node = Redundancy::Dual.node(idx, 4);
            let viol: Vec<f64> = (0..4).map(|c| d * node.powi(c)).collect();
            assert_eq!(locate_member(Redundancy::Dual, &scan(viol), 4), Some(idx), "idx {idx}");
        }
    }

    #[test]
    fn inconsistent_ratios_reject() {
        // A ratio far off every node's curve (e.g. checksum-vs-data damage
        // mixing two weight curves) must not localize.
        let viol = vec![2.0, 4.0, 10.0, 28.0];
        assert_eq!(locate_member(Redundancy::Dual, &scan(viol), 4), None);
        // Two corrupted members (idx 0 and 3) mix their node curves: the
        // copy-1 ratio lands near a middle node but the higher copies
        // diverge off its curve.
        let (n0, n3) = (Redundancy::Dual.node(0, 4), Redundancy::Dual.node(3, 4));
        let viol: Vec<f64> = (0..4).map(|c| 2.0 * n0.powi(c) + 3.0 * n3.powi(c)).collect();
        assert_eq!(locate_member(Redundancy::Dual, &scan(viol), 4), None);
    }

    #[test]
    fn single_redundancy_unlocalizable_unless_trivial() {
        assert_eq!(locate_member(Redundancy::Single, &scan(vec![5.0, 5.0]), 2), None);
        // Q = 1: the only member is the answer, even with flat weights.
        assert_eq!(locate_member(Redundancy::Single, &scan(vec![5.0, 5.0]), 1), Some(0));
    }

    #[test]
    fn non_finite_violations_reject() {
        assert_eq!(locate_member(Redundancy::Dual, &scan(vec![f64::INFINITY; 4]), 4), None);
    }

    #[test]
    fn coded_ratios_locate_each_member() {
        // Coded(3) carries 6 copies; the same node(idx)^c curve locates any
        // member of a Q = 6 group.
        for idx in 0..6usize {
            let d = 0.75;
            let node = Redundancy::Coded(3).node(idx, 6);
            let viol: Vec<f64> = (0..6).map(|c| d * node.powi(c)).collect();
            assert_eq!(locate_member(Redundancy::Coded(3), &scan(viol), 6), Some(idx), "idx {idx}");
        }
        // Coded(1) has only the degenerate two-copy check, but it still
        // locates (and the node-gap gate still rejects off-curve ratios).
        let node = Redundancy::Coded(1).node(2, 4);
        let viol: Vec<f64> = (0..2).map(|c| 2.0 * node.powi(c)).collect();
        assert_eq!(locate_member(Redundancy::Coded(1), &scan(viol), 4), Some(2));
        assert_eq!(locate_member(Redundancy::Coded(1), &scan(vec![2.0, 11.0]), 4), None);
    }

    #[test]
    fn row_span_intersects() {
        // lrn = 3, nb = 2: hits in local rows 1 (off 0) and 2 (off 1).
        let s = GroupScan {
            group: 0,
            nb: 2,
            viol: vec![7.0, 7.0],
            local: vec![vec![0.0, 7.0, 0.0, 0.0, 0.0, 7.0], vec![0.0; 6]],
        };
        assert_eq!(local_row_span(&s, 1e-9), Some((1, 2)));
        let clean = GroupScan {
            group: 0,
            nb: 2,
            viol: vec![0.0; 2],
            local: vec![vec![0.0; 6], vec![0.0; 6]],
        };
        assert_eq!(local_row_span(&clean, 1e-9), None);
    }
}
