//! # ft-dense — from-scratch dense linear algebra kernels
//!
//! This crate provides the sequential building blocks that the rest of the
//! ABFT Hessenberg reproduction is built on: a column-major [`Matrix`] type
//! and BLAS level 1/2/3 kernels written from scratch in Rust (no BLAS
//! bindings — the paper's evaluation platform used vendor BLAS, which we
//! substitute per DESIGN.md §2). The GEMM register tile additionally has
//! explicit `std::arch` AVX2/AVX-512/NEON flavors behind runtime dispatch
//! ([`simd`]) and opt-in in-rank threading ([`pool`]); see DESIGN.md §14.
//!
//! ## Conventions
//!
//! All kernels follow BLAS conventions:
//!
//! * matrices are **column-major**: element `(i, j)` of a matrix with leading
//!   dimension `ld` lives at linear index `i + j * ld`;
//! * all indices are 0-based;
//! * kernels take raw `&[f64]` / `&mut [f64]` slices plus explicit dimensions
//!   so that sub-matrix views are just slice offsets (exactly how LAPACK
//!   routines pass `A(i,j)` sub-blocks);
//! * dimension mismatches panic (checked with `assert!` — negligible cost
//!   relative to the O(n²)/O(n³) work of the kernels themselves).
//!
//! ## Flop accounting
//!
//! Every level-2/3 kernel adds its floating point operation count to a global
//! relaxed atomic counter ([`counters`]). The Section 6 overhead model of the
//! paper is validated against these counters in the `model_validation` bench.

// BLAS kernel signatures intentionally mirror the Fortran interfaces
// (trans/m/n/k/alpha/a/lda/... argument lists), which exceed clippy's
// default argument-count lint; the convention is the documentation.
#![allow(clippy::too_many_arguments)]

pub mod counters;
pub mod gen;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod matrix;
pub mod norms;
pub mod pool;
pub mod rng;
pub mod simd;

pub use matrix::Matrix;

/// Machine epsilon for `f64` (unit roundoff `ε` in the paper's Section 7.3).
pub const EPS: f64 = f64::EPSILON / 2.0;

/// Transpose operation selector, mirroring the BLAS `TRANS` character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Operate on `A` as stored (`'N'`).
    No,
    /// Operate on `Aᵀ` (`'T'`).
    Yes,
}

impl Trans {
    /// Returns `true` for [`Trans::Yes`].
    #[inline]
    pub fn is_trans(self) -> bool {
        matches!(self, Trans::Yes)
    }
}

/// Upper/lower triangle selector, mirroring the BLAS `UPLO` character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    /// Upper triangular (`'U'`).
    Upper,
    /// Lower triangular (`'L'`).
    Lower,
}

/// Unit/non-unit diagonal selector, mirroring the BLAS `DIAG` character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// The diagonal is implicitly all ones and is not referenced (`'U'`).
    Unit,
    /// The diagonal is stored explicitly (`'N'`).
    NonUnit,
}

/// Left/right side selector for triangular multiply, mirroring BLAS `SIDE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `B ← op(A)·B` (`'L'`).
    Left,
    /// `B ← B·op(A)` (`'R'`).
    Right,
}
