//! Runtime ISA selection and the explicit SIMD micro-kernels behind
//! [`crate::level3::gemm`].
//!
//! ## Dispatch model
//!
//! The packed GEMM always runs the same Goto-style blocking and packing; only
//! the innermost register tile differs per ISA. [`active_isa`] picks the tile:
//!
//! * [`Isa::Scalar`] — the portable Rust micro-kernel (separate multiply and
//!   add per element; LLVM may still auto-vectorize it, but the *rounding* is
//!   mul-then-add). This is the reference contraction class.
//! * [`Isa::Avx2`] — 8×6 tile, 12 ymm accumulators, `_mm256_fmadd_pd`.
//! * [`Isa::Avx512`] — 16×12 super-tile pairing two packed A panels with two
//!   packed B panels (24 zmm accumulators, `_mm512_fmadd_pd`); fringe units
//!   fall back to 16×6 / 8×12 / 8×6 variants of the same loop.
//! * [`Isa::Neon`] — 8×6 tile, 24 `float64x2_t` accumulators, `vfmaq_f64`.
//!
//! The default comes from the `FT_GEMM_ISA` environment variable
//! (`scalar|avx2|avx512|neon|auto`, read once; unknown or unsupported values
//! panic loudly rather than silently falling back), and tests can switch ISAs
//! mid-process with [`set_isa_override`].
//!
//! ## Determinism contract (see DESIGN.md §14)
//!
//! For every C element the contraction is the *same sequential recurrence*
//! on every path: one accumulator per element, `acc ← acc ⊕ a·b` over
//! `l = 0..k` in order, with β folded in by the first k-block only. The paths
//! differ in exactly one place: the scalar tile rounds the multiply and the
//! add separately, while every vector tile uses a fused multiply-add (one
//! rounding). Store arithmetic (`α·acc`, `c + α·acc`, `α·acc + β·c`) uses
//! plain mul/add on **all** paths — never FMA — so:
//!
//! * results are **bitwise identical across all vector ISAs** (AVX2, AVX-512,
//!   NEON execute the identical per-element IEEE op sequence), and across
//!   every tile pairing, MC/NC partitioning, and thread count;
//! * the scalar and fused classes differ per element by at most the
//!   accumulated rounding-term difference, `≤ 2·k·ε·(|α|·Σ|a||b| + |β·c|)`;
//! * β = 0 never reads C on any path (fringe stores go through a private
//!   stack tile; only the `nrows×ncols` window is ever read or written).

use crate::level3::{MR, NR};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set architecture used by the GEMM register tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable Rust micro-kernel (mul-then-add rounding; the reference).
    Scalar,
    /// x86_64 AVX2 + FMA, 8×6 tile.
    Avx2,
    /// x86_64 AVX-512F, 16×12 paired-panel tile.
    Avx512,
    /// aarch64 NEON (always present on aarch64), 8×6 tile.
    Neon,
}

impl Isa {
    /// Stable lowercase name, matching `FT_GEMM_ISA` / `FT_REQUIRE_ISAS`.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parse a lowercase ISA name (not `"auto"` — callers handle that).
    pub fn from_name(s: &str) -> Option<Isa> {
        match s {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }

    /// `true` when the tile contracts with fused multiply-add (one rounding
    /// per `a·b + acc` step) instead of the scalar mul-then-add.
    pub fn fused(self) -> bool {
        self != Isa::Scalar
    }
}

/// Every ISA whose kernel can run on this host, in ascending preference
/// order. Always starts with [`Isa::Scalar`].
pub fn detected_isas() -> &'static [Isa] {
    static DETECTED: OnceLock<Vec<Isa>> = OnceLock::new();
    DETECTED.get_or_init(|| {
        let mut v = vec![Isa::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
                v.push(Isa::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") && std::arch::is_x86_feature_detected!("fma") {
                v.push(Isa::Avx512);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                v.push(Isa::Neon);
            }
        }
        v
    })
}

fn default_isa() -> Isa {
    static DEFAULT: OnceLock<Isa> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let avail = detected_isas();
        match std::env::var("FT_GEMM_ISA").ok().as_deref() {
            None | Some("auto") | Some("") => *avail.last().unwrap(),
            Some(name) => {
                let isa = Isa::from_name(name)
                    .unwrap_or_else(|| panic!("FT_GEMM_ISA={name:?} is not one of scalar|avx2|avx512|neon|auto"));
                assert!(
                    avail.contains(&isa),
                    "FT_GEMM_ISA={name} requested but this host only supports {:?}",
                    avail.iter().map(|i| i.name()).collect::<Vec<_>>()
                );
                isa
            }
        }
    })
}

/// Process-global test override: 0 = none, otherwise `isa as u8 + 1`.
static ISA_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn isa_to_code(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
        Isa::Avx512 => 3,
        Isa::Neon => 4,
    }
}

fn isa_from_code(code: u8) -> Option<Isa> {
    match code {
        1 => Some(Isa::Scalar),
        2 => Some(Isa::Avx2),
        3 => Some(Isa::Avx512),
        4 => Some(Isa::Neon),
        _ => None,
    }
}

/// Force the GEMM tile ISA for subsequent calls (`None` restores the
/// `FT_GEMM_ISA`/auto default). Panics if the ISA is not available on this
/// host — tests that must exercise a specific path should fail, not silently
/// run another one. Process-global: callers that flip it around a region
/// must serialize with other such callers.
pub fn set_isa_override(isa: Option<Isa>) {
    if let Some(isa) = isa {
        assert!(
            detected_isas().contains(&isa),
            "set_isa_override({:?}): not available on this host (detected: {:?})",
            isa,
            detected_isas().iter().map(|i| i.name()).collect::<Vec<_>>()
        );
        ISA_OVERRIDE.store(isa_to_code(isa), Ordering::SeqCst);
    } else {
        ISA_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// The ISA the next GEMM call will use: the [`set_isa_override`] value if
/// set, else the `FT_GEMM_ISA` env default (auto = best detected).
pub fn active_isa() -> Isa {
    isa_from_code(ISA_OVERRIDE.load(Ordering::SeqCst)).unwrap_or_else(default_isa)
}

// ---------------------------------------------------------------------------
// x86_64 kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// AVX2 8×6 register tile over one packed A panel (`MR·kc`, unit-stride
    /// columns of 8) and one packed B panel (`NR·kc` rows of 6).
    ///
    /// # Safety
    /// Caller guarantees AVX2+FMA are available, `ap`/`bp` point at fully
    /// packed (zero-padded) panels of depth `kc`, and
    /// `c[0..nrows, 0..ncols]` with leading dimension `ldc` is writable.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn micro_8x6_avx2(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        beta: f64,
        nrows: usize,
        ncols: usize,
        c: *mut f64,
        ldc: usize,
    ) {
        let mut acc = [[_mm256_setzero_pd(); 2]; NR];
        let mut a = ap;
        let mut b = bp;
        for _ in 0..kc {
            let a0 = _mm256_loadu_pd(a);
            let a1 = _mm256_loadu_pd(a.add(4));
            // One accumulator per C element, updated once per k step, in k
            // order: the fused-class contraction recurrence.
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm256_set1_pd(*b.add(j));
                accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        let va = _mm256_set1_pd(alpha);
        let vb = _mm256_set1_pd(beta);
        for (j, accj) in acc.iter().enumerate().take(ncols) {
            store_col_avx2(c.add(j * ldc), accj[0], accj[1], va, vb, beta, nrows);
        }
    }

    /// Store one tile column: `c ← α·acc (+ β·c)` with plain (non-fused)
    /// mul/add so every vector ISA rounds stores identically. Partial
    /// columns go through a stack tile so only `rows` elements of `c` are
    /// ever read or written; β = 0 reads nothing.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store_col_avx2(cj: *mut f64, lo: __m256d, hi: __m256d, va: __m256d, vb: __m256d, beta: f64, rows: usize) {
        if rows == MR {
            if beta == 0.0 {
                _mm256_storeu_pd(cj, _mm256_mul_pd(va, lo));
                _mm256_storeu_pd(cj.add(4), _mm256_mul_pd(va, hi));
            } else if beta == 1.0 {
                _mm256_storeu_pd(cj, _mm256_add_pd(_mm256_loadu_pd(cj), _mm256_mul_pd(va, lo)));
                _mm256_storeu_pd(cj.add(4), _mm256_add_pd(_mm256_loadu_pd(cj.add(4)), _mm256_mul_pd(va, hi)));
            } else {
                _mm256_storeu_pd(cj, _mm256_add_pd(_mm256_mul_pd(va, lo), _mm256_mul_pd(vb, _mm256_loadu_pd(cj))));
                _mm256_storeu_pd(cj.add(4), _mm256_add_pd(_mm256_mul_pd(va, hi), _mm256_mul_pd(vb, _mm256_loadu_pd(cj.add(4)))));
            }
            return;
        }
        let mut tmp = [0.0f64; MR];
        if beta != 0.0 {
            for (r, t) in tmp.iter_mut().enumerate().take(rows) {
                *t = *cj.add(r);
            }
        }
        let t = tmp.as_mut_ptr();
        let (tlo, thi) = (_mm256_loadu_pd(t), _mm256_loadu_pd(t.add(4)));
        let (olo, ohi) = if beta == 0.0 {
            (_mm256_mul_pd(va, lo), _mm256_mul_pd(va, hi))
        } else if beta == 1.0 {
            (_mm256_add_pd(tlo, _mm256_mul_pd(va, lo)), _mm256_add_pd(thi, _mm256_mul_pd(va, hi)))
        } else {
            (
                _mm256_add_pd(_mm256_mul_pd(va, lo), _mm256_mul_pd(vb, tlo)),
                _mm256_add_pd(_mm256_mul_pd(va, hi), _mm256_mul_pd(vb, thi)),
            )
        };
        _mm256_storeu_pd(t, olo);
        _mm256_storeu_pd(t.add(4), ohi);
        for (r, t) in tmp.iter().enumerate().take(rows) {
            *cj.add(r) = *t;
        }
    }

    /// AVX-512 super-tile over `AP ∈ {1,2}` packed A panels and
    /// `BQ ∈ {1,2}` packed B panels: up to 16×12 C elements in 24 zmm
    /// accumulators. Per k step: `AP` vector loads + `BQ·NR` broadcasts
    /// feeding `AP·BQ·NR` FMAs. `rows[v]`/`cols[q]` restrict the stores of
    /// panel `v` / B panel `q` for fringe units.
    ///
    /// # Safety
    /// Caller guarantees AVX-512F+FMA, packed zero-padded panels of depth
    /// `kc` at `ap` (stride `MR·kc`) and `bp` (stride `NR·kc`), and a
    /// writable C window covering `rows[v]` rows at row offset `v·MR` and
    /// `cols[q]` columns at column offset `q·NR`.
    #[target_feature(enable = "avx512f,fma")]
    pub unsafe fn super_tile_avx512<const AP: usize, const BQ: usize>(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        beta: f64,
        rows: [usize; 2],
        cols: [usize; 2],
        c: *mut f64,
        ldc: usize,
    ) {
        let mut acc = [[[_mm512_setzero_pd(); AP]; NR]; BQ];
        let mut a = ap;
        let mut b = bp;
        let a_stride = MR * kc;
        let b_stride = NR * kc;
        for _ in 0..kc {
            let mut av = [_mm512_setzero_pd(); AP];
            for (v, avv) in av.iter_mut().enumerate() {
                *avv = _mm512_loadu_pd(a.add(v * a_stride));
            }
            for (q, accq) in acc.iter_mut().enumerate() {
                for (j, accj) in accq.iter_mut().enumerate() {
                    let bj = _mm512_set1_pd(*b.add(q * b_stride + j));
                    for (v, accv) in accj.iter_mut().enumerate() {
                        *accv = _mm512_fmadd_pd(av[v], bj, *accv);
                    }
                }
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        let va = _mm512_set1_pd(alpha);
        let vb = _mm512_set1_pd(beta);
        for (q, accq) in acc.iter().enumerate() {
            for (j, accj) in accq.iter().enumerate().take(cols[q]) {
                let cj = c.add((q * NR + j) * ldc);
                for (v, &accv) in accj.iter().enumerate() {
                    store_col_avx512(cj.add(v * MR), accv, va, vb, beta, rows[v]);
                }
            }
        }
    }

    /// AVX-512 column store with the same (non-fused) rounding and
    /// window discipline as [`store_col_avx2`].
    #[target_feature(enable = "avx512f,fma")]
    unsafe fn store_col_avx512(cj: *mut f64, acc: __m512d, va: __m512d, vb: __m512d, beta: f64, rows: usize) {
        if rows == MR {
            if beta == 0.0 {
                _mm512_storeu_pd(cj, _mm512_mul_pd(va, acc));
            } else if beta == 1.0 {
                _mm512_storeu_pd(cj, _mm512_add_pd(_mm512_loadu_pd(cj), _mm512_mul_pd(va, acc)));
            } else {
                _mm512_storeu_pd(cj, _mm512_add_pd(_mm512_mul_pd(va, acc), _mm512_mul_pd(vb, _mm512_loadu_pd(cj))));
            }
            return;
        }
        let mut tmp = [0.0f64; MR];
        if beta != 0.0 {
            for (r, t) in tmp.iter_mut().enumerate().take(rows) {
                *t = *cj.add(r);
            }
        }
        let tv = _mm512_loadu_pd(tmp.as_ptr());
        let out = if beta == 0.0 {
            _mm512_mul_pd(va, acc)
        } else if beta == 1.0 {
            _mm512_add_pd(tv, _mm512_mul_pd(va, acc))
        } else {
            _mm512_add_pd(_mm512_mul_pd(va, acc), _mm512_mul_pd(vb, tv))
        };
        _mm512_storeu_pd(tmp.as_mut_ptr(), out);
        for (r, t) in tmp.iter().enumerate().take(rows) {
            *cj.add(r) = *t;
        }
    }
}

// ---------------------------------------------------------------------------
// aarch64 kernel
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
pub mod arm {
    use super::{MR, NR};
    use core::arch::aarch64::*;

    /// NEON 8×6 register tile: 24 `float64x2_t` accumulators (4 pairs × 6
    /// columns), fused contraction via `vfmaq_f64` — the same per-element
    /// recurrence and store rounding as the x86 vector tiles, so results are
    /// bitwise identical to AVX2/AVX-512 on the same inputs.
    ///
    /// # Safety
    /// Caller guarantees NEON (always on aarch64), packed zero-padded panels
    /// of depth `kc`, and a writable `nrows×ncols` C window.
    #[target_feature(enable = "neon")]
    pub unsafe fn micro_8x6_neon(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        beta: f64,
        nrows: usize,
        ncols: usize,
        c: *mut f64,
        ldc: usize,
    ) {
        let mut acc = [[vdupq_n_f64(0.0); 4]; NR];
        let mut a = ap;
        let mut b = bp;
        for _ in 0..kc {
            let a0 = vld1q_f64(a);
            let a1 = vld1q_f64(a.add(2));
            let a2 = vld1q_f64(a.add(4));
            let a3 = vld1q_f64(a.add(6));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = vdupq_n_f64(*b.add(j));
                accj[0] = vfmaq_f64(accj[0], a0, bj);
                accj[1] = vfmaq_f64(accj[1], a1, bj);
                accj[2] = vfmaq_f64(accj[2], a2, bj);
                accj[3] = vfmaq_f64(accj[3], a3, bj);
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        let va = vdupq_n_f64(alpha);
        let vb = vdupq_n_f64(beta);
        for (j, accj) in acc.iter().enumerate().take(ncols) {
            let cj = c.add(j * ldc);
            if nrows == MR {
                for (h, &accv) in accj.iter().enumerate() {
                    let p = cj.add(2 * h);
                    let out = if beta == 0.0 {
                        vmulq_f64(va, accv)
                    } else if beta == 1.0 {
                        vaddq_f64(vld1q_f64(p), vmulq_f64(va, accv))
                    } else {
                        vaddq_f64(vmulq_f64(va, accv), vmulq_f64(vb, vld1q_f64(p)))
                    };
                    vst1q_f64(p, out);
                }
                continue;
            }
            let mut tmp = [0.0f64; MR];
            if beta != 0.0 {
                for (r, t) in tmp.iter_mut().enumerate().take(nrows) {
                    *t = *cj.add(r);
                }
            }
            for (h, &accv) in accj.iter().enumerate() {
                let p = tmp.as_mut_ptr().add(2 * h);
                let tv = vld1q_f64(p);
                let out = if beta == 0.0 {
                    vmulq_f64(va, accv)
                } else if beta == 1.0 {
                    vaddq_f64(tv, vmulq_f64(va, accv))
                } else {
                    vaddq_f64(vmulq_f64(va, accv), vmulq_f64(vb, tv))
                };
                vst1q_f64(p, out);
            }
            for (r, t) in tmp.iter().enumerate().take(nrows) {
                *cj.add(r) = *t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_detected_and_first() {
        let d = detected_isas();
        assert_eq!(d[0], Isa::Scalar);
        assert!(!d.is_empty());
    }

    #[test]
    fn name_roundtrip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
        }
        assert_eq!(Isa::from_name("auto"), None);
        assert_eq!(Isa::from_name("sse9"), None);
    }

    #[test]
    fn override_wins_and_clears() {
        let before = active_isa();
        set_isa_override(Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        set_isa_override(None);
        assert_eq!(active_isa(), before);
    }
}
