//! Internal pseudo-random number generation: SplitMix64 and xoshiro256++.
//!
//! The repo previously pulled in `rand`/`rand_chacha` for its seeded test
//! matrices; this module replaces them so the default workspace builds
//! with zero external crates. Quality requirements here are modest —
//! reproducible, well-distributed test data, not cryptography — which
//! SplitMix64 (Steele, Lea & Flood) and xoshiro256++ (Blackman & Vigna)
//! satisfy with a handful of lines. SplitMix64 doubles as the seeding
//! function for xoshiro, as its authors recommend, and as the stateless
//! per-index hash behind [`crate::gen::uniform_entry`].

/// SplitMix64: a tiny splittable generator. One 64-bit state, one output
/// per step. Used directly for short streams and to seed [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator for seeded test data.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Generator seeded from a single `u64` via SplitMix64 (the seeding
    /// procedure recommended by the xoshiro authors; it cannot produce the
    /// all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`, bias rejected away.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Reject the partial final interval of the modulus.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + self.next_below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c test harness.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn xoshiro_is_reproducible_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stream_is_uniformish() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        let mut lo = 0usize;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            lo += usize::from(x < 0.5);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let frac = lo as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-half fraction {frac}");
    }

    #[test]
    fn next_below_covers_range_without_gaps() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut seen = [0usize; 7];
        for _ in 0..7000 {
            seen[rng.next_below(7) as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "value {i} drawn only {c} times");
        }
        assert_eq!(rng.range_usize(4, 5), 4);
    }
}
