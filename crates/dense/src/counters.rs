//! Global floating-point operation counters.
//!
//! The paper's Section 6 derives closed-form flop counts for the extra work
//! the ABFT scheme performs (`FLOP_pdgemm`, `FLOP_pdlarfb`, Equation 2's
//! `1/(5Q)` asymptote). To validate those formulas we count the flops every
//! level-2/3 kernel actually executes. Counting is a single relaxed atomic
//! add per *kernel call* (not per flop), so the overhead is unmeasurable.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Add `n` floating point operations to the global counter.
#[inline]
pub fn add_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Record one call into a blocked GEMM path (packed or pre-packed). The
/// benches use calls-per-update to confirm the packed-operand reuse in the
/// trailing updates actually collapses per-run GEMM launches.
#[inline]
pub fn add_gemm_call() {
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Read the global GEMM call counter.
#[inline]
pub fn gemm_calls() -> u64 {
    GEMM_CALLS.load(Ordering::Relaxed)
}

/// Reset the global GEMM call counter to zero.
#[inline]
pub fn reset_gemm_calls() {
    GEMM_CALLS.store(0, Ordering::Relaxed);
}

/// Read the global flop counter.
#[inline]
pub fn flops() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Reset the global flop counter to zero.
#[inline]
pub fn reset_flops() {
    FLOPS.store(0, Ordering::Relaxed);
}

/// Scope guard measuring the flops executed between construction and
/// [`FlopRegion::elapsed`], independent of other regions that may run
/// concurrently (the counter is global, so regions should not overlap with
/// unrelated work if exact attribution matters).
pub struct FlopRegion {
    start: u64,
}

impl FlopRegion {
    /// Start a new measurement region.
    pub fn begin() -> Self {
        Self { start: flops() }
    }

    /// Flops executed since [`FlopRegion::begin`].
    pub fn elapsed(&self) -> u64 {
        flops().wrapping_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let r = FlopRegion::begin();
        add_flops(42);
        add_flops(8);
        assert!(r.elapsed() >= 50);
    }
}
