//! Level-2 BLAS: matrix-vector kernels on column-major storage.
//!
//! Each kernel takes the matrix as a raw slice plus an explicit leading
//! dimension, so callers can address sub-matrices by offsetting into a larger
//! buffer exactly as LAPACK does with `A(i,j)` arguments.

use crate::counters::add_flops;
use crate::{Diag, Trans, UpLo};

/// General matrix-vector product:
/// `y ← α·op(A)·x + β·y` where `op(A)` is `A` (`m×n`) or `Aᵀ`.
///
/// `x` has length `n` for [`Trans::No`], `m` for [`Trans::Yes`]; `y` the
/// other one.
pub fn gemv(trans: Trans, m: usize, n: usize, alpha: f64, a: &[f64], lda: usize, x: &[f64], beta: f64, y: &mut [f64]) {
    assert!(lda >= m.max(1), "gemv: lda {lda} < m {m}");
    if m > 0 && n > 0 {
        assert!(a.len() >= lda * (n - 1) + m, "gemv: A buffer too small");
    }
    let (xlen, ylen) = match trans {
        Trans::No => (n, m),
        Trans::Yes => (m, n),
    };
    assert_eq!(x.len(), xlen, "gemv: x length");
    assert_eq!(y.len(), ylen, "gemv: y length");

    if beta != 1.0 {
        if beta == 0.0 {
            y.fill(0.0);
        } else {
            for yi in y.iter_mut() {
                *yi *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }
    add_flops(2 * m as u64 * n as u64);

    match trans {
        Trans::No => {
            // Column sweep: y += alpha * x[j] * A(:,j)  — unit-stride reads.
            for j in 0..n {
                let t = alpha * x[j];
                if t == 0.0 {
                    continue;
                }
                let col = &a[j * lda..j * lda + m];
                for i in 0..m {
                    y[i] += t * col[i];
                }
            }
        }
        Trans::Yes => {
            // Dot per column: y[j] += alpha * A(:,j)·x — unit-stride reads.
            for j in 0..n {
                let col = &a[j * lda..j * lda + m];
                let mut s = 0.0;
                for i in 0..m {
                    s += col[i] * x[i];
                }
                y[j] += alpha * s;
            }
        }
    }
}

/// Rank-1 update: `A ← α·x·yᵀ + A` with `A` being `m×n`.
pub fn ger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    assert!(lda >= m.max(1));
    assert_eq!(x.len(), m, "ger: x length");
    assert_eq!(y.len(), n, "ger: y length");
    if m > 0 && n > 0 {
        assert!(a.len() >= lda * (n - 1) + m, "ger: A buffer too small");
    }
    if alpha == 0.0 {
        return;
    }
    add_flops(2 * m as u64 * n as u64);
    for j in 0..n {
        let t = alpha * y[j];
        if t == 0.0 {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        for i in 0..m {
            col[i] += t * x[i];
        }
    }
}

/// Triangular matrix-vector product: `x ← op(A)·x` where `A` is an `n×n`
/// upper or lower triangular matrix, optionally with an implicit unit
/// diagonal (the part outside the selected triangle is never referenced).
pub fn trmv(uplo: UpLo, trans: Trans, diag: Diag, n: usize, a: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n.max(1));
    assert_eq!(x.len(), n, "trmv: x length");
    if n == 0 {
        return;
    }
    assert!(a.len() >= lda * (n - 1) + n, "trmv: A buffer too small");
    add_flops(n as u64 * n as u64);

    let unit = matches!(diag, Diag::Unit);
    match (uplo, trans) {
        (UpLo::Upper, Trans::No) => {
            // x[i] = sum_{j>=i} A(i,j) x[j]; process columns left→right,
            // scattering into earlier x entries (they are finalized in order).
            for j in 0..n {
                let t = x[j];
                if t != 0.0 {
                    let col = &a[j * lda..];
                    for i in 0..j {
                        x[i] += t * col[i];
                    }
                }
                if !unit {
                    x[j] = t * a[j + j * lda];
                }
            }
        }
        (UpLo::Upper, Trans::Yes) => {
            // x[j] = sum_{i<=j} A(i,j) x[i]; right→left using dots.
            for j in (0..n).rev() {
                let col = &a[j * lda..];
                let mut s = if unit { x[j] } else { x[j] * col[j] };
                for i in 0..j {
                    s += col[i] * x[i];
                }
                x[j] = s;
            }
        }
        (UpLo::Lower, Trans::No) => {
            for j in (0..n).rev() {
                let t = x[j];
                if t != 0.0 {
                    let col = &a[j * lda..];
                    for i in j + 1..n {
                        x[i] += t * col[i];
                    }
                }
                if !unit {
                    x[j] = t * a[j + j * lda];
                }
            }
        }
        (UpLo::Lower, Trans::Yes) => {
            for j in 0..n {
                let col = &a[j * lda..];
                let mut s = if unit { x[j] } else { x[j] * col[j] };
                for i in j + 1..n {
                    s += col[i] * x[i];
                }
                x[j] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn gemv_naive(trans: Trans, a: &Matrix, x: &[f64]) -> Vec<f64> {
        let (m, n) = (a.rows(), a.cols());
        match trans {
            Trans::No => (0..m).map(|i| (0..n).map(|j| a[(i, j)] * x[j]).sum()).collect(),
            Trans::Yes => (0..n).map(|j| (0..m).map(|i| a[(i, j)] * x[i]).sum()).collect(),
        }
    }

    #[test]
    fn gemv_matches_naive() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * 0.5 + j as f64);
        let x = [1.0, -2.0, 0.5];
        let mut y = vec![1.0; 4];
        gemv(Trans::No, 4, 3, 2.0, a.as_slice(), 4, &x, 3.0, &mut y);
        let nv = gemv_naive(Trans::No, &a, &x);
        for i in 0..4 {
            assert!((y[i] - (2.0 * nv[i] + 3.0)).abs() < 1e-14);
        }

        let x2 = [1.0, 2.0, 3.0, 4.0];
        let mut y2 = vec![0.0; 3];
        gemv(Trans::Yes, 4, 3, 1.0, a.as_slice(), 4, &x2, 0.0, &mut y2);
        let nv2 = gemv_naive(Trans::Yes, &a, &x2);
        for j in 0..3 {
            assert!((y2[j] - nv2[j]).abs() < 1e-14);
        }
    }

    #[test]
    fn gemv_beta_zero_clears_nan() {
        // beta = 0 must overwrite y even if it contains NaN (BLAS convention).
        let a = Matrix::identity(2);
        let mut y = vec![f64::NAN; 2];
        gemv(Trans::No, 2, 2, 1.0, a.as_slice(), 2, &[1.0, 2.0], 0.0, &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn gemv_submatrix_via_lda() {
        // Address the 2x2 bottom-right block of a 3x3 matrix via offset + lda.
        let a = Matrix::from_fn(3, 3, |i, j| (3 * i + j) as f64);
        let off = 1 + 3; // (1,1)
        let mut y = vec![0.0; 2];
        gemv(Trans::No, 2, 2, 1.0, &a.as_slice()[off..], 3, &[1.0, 1.0], 0.0, &mut y);
        // block = [[4,5],[7,8]]
        assert_eq!(y, vec![9.0, 15.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        let lda = a.ld();
        ger(2, 3, 2.0, &[1.0, 2.0], &[1.0, 0.0, -1.0], a.as_mut_slice(), lda);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(1, 2)], -4.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn trmv_all_variants_match_naive() {
        let n = 5;
        let a = Matrix::from_fn(n, n, |i, j| ((i * n + j) % 7) as f64 + 1.0);
        let x0: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        for uplo in [UpLo::Upper, UpLo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::Unit, Diag::NonUnit] {
                    // Build the dense triangular matrix explicitly.
                    let t = Matrix::from_fn(n, n, |i, j| {
                        let inside = match uplo {
                            UpLo::Upper => i <= j,
                            UpLo::Lower => i >= j,
                        };
                        if i == j {
                            match diag {
                                Diag::Unit => 1.0,
                                Diag::NonUnit => a[(i, j)],
                            }
                        } else if inside {
                            a[(i, j)]
                        } else {
                            0.0
                        }
                    });
                    let expect = gemv_naive(trans, &t, &x0);
                    let mut x = x0.clone();
                    trmv(uplo, trans, diag, n, a.as_slice(), n, &mut x);
                    for i in 0..n {
                        assert!((x[i] - expect[i]).abs() < 1e-12, "{uplo:?} {trans:?} {diag:?} i={i}: {} vs {}", x[i], expect[i]);
                    }
                }
            }
        }
    }

    #[test]
    fn trmv_empty() {
        let mut x: Vec<f64> = vec![];
        trmv(UpLo::Upper, Trans::No, Diag::NonUnit, 0, &[], 1, &mut x);
    }
}
