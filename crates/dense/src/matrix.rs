//! Owned column-major matrix type.
//!
//! [`Matrix`] is the user-facing container. The BLAS kernels in this crate
//! operate on raw slices (`&[f64]`, `lda`) so that sub-matrices are cheap
//! offsets; `Matrix` provides the safe owning wrapper plus convenience
//! constructors and element access used throughout the workspace and in
//! tests.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, owned, column-major `rows × cols` matrix of `f64`.
///
/// Element `(i, j)` is stored at linear index `i + j * rows` — the leading
/// dimension of an owned matrix always equals its row count.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a function of the (row, column) index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Create a matrix taking ownership of a column-major buffer.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} does not match {rows}x{cols}", data.len());
        Self { rows, cols, data }
    }

    /// Copy an `rows × cols` window out of a column-major buffer with
    /// leading dimension `ld ≥ rows` — the inverse of passing a sub-matrix
    /// view into a kernel as `(&slice[offset], ld)`.
    pub fn from_strided(rows: usize, cols: usize, src: &[f64], ld: usize) -> Self {
        assert!(ld >= rows.max(1), "from_strided: ld too small");
        if rows > 0 && cols > 0 {
            assert!(src.len() >= ld * (cols - 1) + rows, "from_strided: buffer too small");
        }
        Self::from_fn(rows, cols, |i, j| src[i + j * ld])
    }

    /// Build from row-major nested slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Self::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (= `rows()` for an owned matrix).
    #[inline]
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// The whole column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole column-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow column `j` as a slice of length `rows()`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of range {}", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Borrow column `j` mutably.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of range {}", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i` (rows are strided in column-major storage).
    pub fn row_copy(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows);
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Copy out the sub-matrix with top-left corner `(i, j)` and shape `m × n`.
    pub fn submatrix(&self, i: usize, j: usize, m: usize, n: usize) -> Matrix {
        assert!(i + m <= self.rows && j + n <= self.cols, "submatrix out of range");
        Matrix::from_fn(m, n, |r, c| self[(i + r, j + c)])
    }

    /// Overwrite the sub-matrix with top-left corner `(i, j)` with `src`.
    pub fn set_submatrix(&mut self, i: usize, j: usize, src: &Matrix) {
        assert!(i + src.rows <= self.rows && j + src.cols <= self.cols);
        for c in 0..src.cols {
            for r in 0..src.rows {
                self[(i + r, j + c)] = src[(r, c)];
            }
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Maximum absolute difference to `other` (same shape required).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when every element is finite (no NaN/Inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of {}x{}", self.rows, self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of {}x{}", self.rows, self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ⋮")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        // Column major: [1,3, 2,4]
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 10 + j) as f64);
        let s = m.submatrix(1, 2, 3, 2);
        assert_eq!(s[(0, 0)], 12.0);
        assert_eq!(s[(2, 1)], 33.0);
        let mut t = Matrix::zeros(5, 5);
        t.set_submatrix(1, 2, &s);
        assert_eq!(t[(3, 3)], 33.0);
        assert_eq!(t[(0, 0)], 0.0);
    }

    #[test]
    fn transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_copy_strided() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row_copy(1), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::identity(3);
        let mut b = Matrix::identity(3);
        b[(2, 0)] = 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
