//! Level-1 BLAS: vector-vector kernels.
//!
//! All kernels take contiguous slices (increment 1). The Hessenberg panel
//! kernels only ever touch contiguous columns of column-major storage, so
//! strided variants are not needed; where a row must be traversed the callers
//! use explicit gathers.

use crate::counters::add_flops;

/// `x · y` — dot product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    add_flops(2 * x.len() as u64);
    // Accumulate in 4 lanes so LLVM can vectorize without breaking FP
    // semantics of a single serial chain.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y ← αx + y`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    add_flops(2 * x.len() as u64);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← αx`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    add_flops(x.len() as u64);
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow/underflow
/// (the classic LAPACK `dnrm2` algorithm).
pub fn nrm2(x: &[f64]) -> f64 {
    add_flops(2 * x.len() as u64);
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y ← x`.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// Swap the contents of `x` and `y`.
#[inline]
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

/// Index of the element with the largest absolute value (first on ties).
/// Returns `None` for an empty slice.
pub fn iamax(x: &[f64]) -> Option<usize> {
    let mut best = None;
    let mut best_v = -1.0;
    for (i, &xi) in x.iter().enumerate() {
        let a = xi.abs();
        if a > best_v {
            best_v = a;
            best = Some(i);
        }
    }
    best
}

/// Sum of absolute values `‖x‖₁`.
pub fn asum(x: &[f64]) -> f64 {
    add_flops(x.len() as u64);
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&x, &y), 35.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scal_basic() {
        let mut x = [1.0, -2.0, 3.0];
        scal(-2.0, &mut x);
        assert_eq!(x, [-2.0, 4.0, -6.0]);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn nrm2_no_overflow() {
        let big = 1e300;
        let v = nrm2(&[big, big]);
        assert!((v - big * std::f64::consts::SQRT_2).abs() / v < 1e-15);
        let tiny = 1e-300;
        let v = nrm2(&[tiny, tiny]);
        assert!((v - tiny * std::f64::consts::SQRT_2).abs() / v < 1e-15);
    }

    #[test]
    fn iamax_ties_and_empty() {
        assert_eq!(iamax(&[1.0, -3.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
    }

    #[test]
    fn swap_and_copy() {
        let mut x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        swap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        let mut z = [0.0; 2];
        copy(&x, &mut z);
        assert_eq!(z, [3.0, 4.0]);
    }

    #[test]
    fn asum_basic() {
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
    }
}
