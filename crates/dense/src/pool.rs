//! A tiny std-only worker pool for in-rank GEMM threading.
//!
//! The distributed layer's cost model assumes one core per rank
//! (DESIGN.md §14); threading is therefore **opt-in** via `FT_GEMM_THREADS`
//! (default 1 — no pool is ever created, no threads are ever spawned).
//! When enabled, [`crate::level3`] partitions the macro-kernel's packed-A
//! panel-pair loop across [`run`]: disjoint 16-row bands of C per lane, the
//! identical per-element arithmetic on every lane, hence bitwise-identical
//! results for every thread count (the partition only decides *which lane*
//! computes an element, never *how*).
//!
//! Workers are detached daemon threads blocked on a shared channel; a run
//! hands each worker one closure and waits on a latch. A panicking lane
//! poisons the run and the panic is re-raised on the caller after every
//! lane has finished (the latch wait also runs on unwind, so the borrowed
//! closure can never dangle).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Total jobs ever handed to pool workers — lets determinism tests assert
/// that a "threaded" configuration really did fan work out.
static JOBS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Monotone count of jobs dispatched to worker threads so far.
pub fn jobs_dispatched() -> u64 {
    JOBS_DISPATCHED.load(Ordering::SeqCst)
}

/// Hard cap on `FT_GEMM_THREADS` / [`set_threads_override`] — far above any
/// sane per-rank core count; exists only to bound worker spawning.
pub const MAX_THREADS: usize = 64;

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("FT_GEMM_THREADS").ok().as_deref() {
        None | Some("") => 1,
        Some(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("FT_GEMM_THREADS={v:?} is not a positive integer"));
            assert!(n >= 1, "FT_GEMM_THREADS must be >= 1");
            n.min(MAX_THREADS)
        }
    })
}

/// Process-global test override: 0 = none.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the GEMM worker count for subsequent calls (`None` restores the
/// `FT_GEMM_THREADS` default). Process-global, like
/// [`crate::simd::set_isa_override`].
pub fn set_threads_override(threads: Option<usize>) {
    match threads {
        Some(n) => {
            assert!(n >= 1, "set_threads_override: thread count must be >= 1");
            THREADS_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
        }
        None => THREADS_OVERRIDE.store(0, Ordering::SeqCst),
    }
}

/// The thread count the next GEMM call will plan with.
pub fn active_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Threading a macro-kernel block only pays above this many flops
/// (~100 µs of scalar work); below it the latch handshake dominates.
const MIN_FLOPS_PER_THREADED_BLOCK: u64 = 1 << 21;

/// Deterministic thread plan for one macro-kernel block: the active thread
/// count, capped by the number of independent work units, with tiny blocks
/// kept sequential. Depends only on shapes — never on data — so a given
/// (shape, `FT_GEMM_THREADS`) pair always partitions identically.
pub fn plan_threads(units: usize, flops: u64) -> usize {
    let t = active_threads();
    if t <= 1 || units <= 1 || flops < MIN_FLOPS_PER_THREADED_BLOCK {
        1
    } else {
        t.min(units)
    }
}

/// Contiguous slice `[lo, hi)` of `units` work units owned by `lane` of
/// `lanes`: first `units % lanes` lanes take one extra unit.
pub fn split_units(units: usize, lanes: usize, lane: usize) -> (usize, usize) {
    let base = units / lanes;
    let extra = units % lanes;
    let lo = lane * base + lane.min(extra);
    let hi = lo + base + usize::from(lane < extra);
    (lo, hi)
}

type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    tx: Mutex<mpsc::Sender<Job>>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Job>();
        Pool {
            tx: Mutex::new(tx),
            rx: Arc::new(Mutex::new(rx)),
            spawned: Mutex::new(0),
        }
    })
}

impl Pool {
    fn ensure_workers(&self, want: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < want {
            let rx = Arc::clone(&self.rx);
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("ft-gemm-{id}"))
                .spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    job();
                })
                .expect("ft-dense: failed to spawn GEMM worker");
            *spawned += 1;
        }
    }
}

/// Latch counted down by finished lanes; waiting happens in `Drop` so the
/// caller's borrow of the job closure outlives every worker even if the
/// caller's own lane unwinds.
struct Latch {
    left: Mutex<usize>,
    done: Condvar,
}

struct LatchWait<'a>(&'a Latch);

impl Drop for LatchWait<'_> {
    fn drop(&mut self) {
        let mut left = self.0.left.lock().unwrap();
        while *left > 0 {
            left = self.0.done.wait(left).unwrap();
        }
    }
}

/// Run `f(lane)` for `lane ∈ 0..lanes`: lane 0 on the calling thread, the
/// rest on pool workers. Returns after every lane has finished; panics if
/// any lane panicked. `lanes <= 1` calls `f(0)` inline with zero overhead.
pub fn run(lanes: usize, f: &(dyn Fn(usize) + Sync)) {
    if lanes <= 1 {
        f(0);
        return;
    }
    let p = pool();
    p.ensure_workers(lanes - 1);
    let latch = Arc::new(Latch { left: Mutex::new(lanes - 1), done: Condvar::new() });
    let panicked = Arc::new(AtomicBool::new(false));
    // Lifetime erasure: sound because the `LatchWait` guard below blocks —
    // even on unwind — until every worker lane has dropped its copy.
    let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    {
        let _wait = LatchWait(&latch);
        {
            let tx = p.tx.lock().unwrap();
            for lane in 1..lanes {
                let latch = Arc::clone(&latch);
                let panicked = Arc::clone(&panicked);
                let job: Job = Box::new(move || {
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f_erased(lane))).is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    *latch.left.lock().unwrap() -= 1;
                    latch.done.notify_all();
                });
                tx.send(job).expect("ft-dense: GEMM worker pool channel closed");
                JOBS_DISPATCHED.fetch_add(1, Ordering::SeqCst);
            }
        }
        f(0);
    }
    assert!(!panicked.load(Ordering::SeqCst), "ft-dense: a GEMM worker lane panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_units_covers_exactly() {
        for units in 0..40 {
            for lanes in 1..8 {
                let mut covered = 0;
                let mut next = 0;
                for lane in 0..lanes {
                    let (lo, hi) = split_units(units, lanes, lane);
                    assert_eq!(lo, next, "units={units} lanes={lanes} lane={lane}");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    next = hi;
                }
                assert_eq!(covered, units);
            }
        }
    }

    #[test]
    fn run_executes_every_lane_once() {
        let hits = AtomicU64::new(0);
        run(4, &|lane| {
            hits.fetch_add(1 << (8 * lane), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0x01_01_01_01);
    }

    #[test]
    fn run_propagates_worker_panic() {
        let caught = std::panic::catch_unwind(|| {
            run(3, &|lane| {
                if lane == 2 {
                    panic!("lane 2 exploded");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn plan_threads_is_shape_driven() {
        set_threads_override(Some(4));
        assert_eq!(plan_threads(8, 1 << 30), 4);
        assert_eq!(plan_threads(2, 1 << 30), 2);
        assert_eq!(plan_threads(1, 1 << 30), 1);
        assert_eq!(plan_threads(8, 1024), 1, "tiny blocks stay sequential");
        set_threads_override(None);
        assert_eq!(plan_threads(8, 1 << 30), active_threads().min(8));
    }
}
