//! Level-3 BLAS: matrix-matrix kernels on column-major storage.
//!
//! [`gemm`] is the workhorse of the whole workspace — both the shared-memory
//! blocked Hessenberg reduction and the distributed trailing-matrix updates
//! funnel into it. It uses the classic packed three-level blocking scheme
//! (Goto-style: NC/KC/MC cache blocks around an [`MR`]×[`NR`] register
//! micro-kernel) written in safe Rust and shaped so LLVM auto-vectorizes the
//! micro-kernel. Three properties matter to the layers above:
//!
//! * **Runtime-probed cache blocks.** `KC`/`MC`/`NC` are not hard-coded:
//!   [`blocking`] probes the data-cache hierarchy once (sysfs on Linux,
//!   `FT_GEMM_{KC,MC,NC}` env overrides, conservative fallbacks) and sizes
//!   the packed panels so the A micro-panel + B micro-panel live in L1, the
//!   packed A block in L2 and the packed B block in L3.
//! * **Fused β.** The β scaling of `C` is folded into the first `KC`-block's
//!   micro-kernel store (β = 0 never reads `C`, so NaN/garbage in the output
//!   buffer cannot leak through) instead of a separate full sweep over `C`
//!   before the multiply — one pass over `C` less per call.
//! * **Reusable packed operands.** [`PackedA`] packs `op(A)` once in the
//!   micro-kernel's panel layout; [`gemm_packed_a`] then multiplies it
//!   against any number of right-hand sides. The distributed trailing
//!   updates use this to pack `Y` (right update) and `V` (left update) a
//!   single time and sweep them over every contiguous column run — original
//!   trailing columns *and* ABFT checksum columns ride the identical packed
//!   buffer, which is what makes the checksum update cost the paper's §6
//!   model charges proportional to column count only.
//!
//! Two further knobs were added for the fig6a overhead work (DESIGN.md §14):
//!
//! * **Runtime ISA dispatch.** The register tile comes in a portable scalar
//!   flavor plus explicit `std::arch` AVX2, AVX-512 and NEON flavors
//!   ([`crate::simd`]); `FT_GEMM_ISA` / [`set_isa_override`] select one at
//!   runtime. All vector flavors are bitwise-identical to each other; the
//!   scalar flavor is its own contraction class (mul-then-add rounding).
//! * **Opt-in in-rank threading.** `FT_GEMM_THREADS` /
//!   [`set_threads_override`] partition the macro-kernel's panel loop over a
//!   std-only worker pool ([`crate::pool`]); results are bitwise identical
//!   for every thread count because the partition never changes per-element
//!   arithmetic.
//!
//! [`gemm_naive`] is the deliberately simple triple-loop oracle used by the
//! test suites (and the kernel-equivalence fuzzer) to validate every faster
//! path.

use crate::counters::{add_flops, add_gemm_call};
use crate::simd::Isa;
use crate::{pool, simd, Diag, Side, Trans, UpLo};
use std::sync::OnceLock;

pub use crate::pool::{active_threads, set_threads_override};
pub use crate::simd::{active_isa, detected_isas, set_isa_override};

/// Register block: rows of the micro-tile. One AVX-512 lane-group (8 f64),
/// two AVX2 lanes — a full cache line either way.
pub const MR: usize = 8;
/// Register block: columns of the micro-tile. `MR×NR` accumulators fit the
/// architectural register file (6×8 f64 = 12 ymm / 6 zmm) with room for the
/// A column and B broadcasts.
pub const NR: usize = 6;

/// Cache-block sizes used by the packed GEMM, chosen once at runtime by
/// [`blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Cache block over `k`: depth of the packed panels.
    pub kc: usize,
    /// Cache block over `m`: rows of the packed A block (multiple of [`MR`]).
    pub mc: usize,
    /// Cache block over `n`: columns of the packed B block (multiple of
    /// [`NR`]).
    pub nc: usize,
}

static BLOCKING: OnceLock<Blocking> = OnceLock::new();

/// The process-wide cache-blocking parameters: probed from the CPU cache
/// hierarchy on first use, overridable per dimension with the
/// `FT_GEMM_KC` / `FT_GEMM_MC` / `FT_GEMM_NC` environment variables
/// (read once — set them before the first GEMM call).
pub fn blocking() -> Blocking {
    *BLOCKING.get_or_init(probe_blocking)
}

/// Parse a sysfs cache size string like `"48K"`, `"2048K"`, `"1M"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1usize << 10),
        b'M' => (&s[..s.len() - 1], 1usize << 20),
        b'G' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|v| v * mult)
}

/// Size in bytes of the level-`level` data (or unified) cache of cpu0, if
/// the platform exposes it.
fn sysfs_cache_size(level: usize) -> Option<usize> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let entries = std::fs::read_dir(base).ok()?;
    for e in entries.flatten() {
        let p = e.path();
        let read = |f: &str| std::fs::read_to_string(p.join(f)).ok();
        let Some(lv) = read("level").and_then(|v| v.trim().parse::<usize>().ok()) else {
            continue;
        };
        if lv != level {
            continue;
        }
        match read("type").as_deref().map(str::trim) {
            Some("Data") | Some("Unified") => {}
            _ => continue,
        }
        if let Some(sz) = read("size").and_then(|v| parse_cache_size(&v)) {
            return Some(sz);
        }
    }
    None
}

fn env_block(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0)
}

/// Conservative cache sizes assumed when the platform exposes nothing
/// (sandboxed containers frequently mount no `/sys/devices/system/cpu`).
const FALLBACK_L1: usize = 32 << 10;
const FALLBACK_L2: usize = 256 << 10;
const FALLBACK_L3: usize = 8 << 20;

/// Pure blocking computation: cache sizes (`None` = use the conservative
/// fallback for that level) plus per-dimension overrides (`FT_GEMM_KC/MC/NC`
/// values; an override wins over any probed size). Split out from
/// [`blocking`] so the no-sysfs path and the override precedence are unit
/// testable without touching the process environment.
pub fn compute_blocking(
    l1: Option<usize>,
    l2: Option<usize>,
    l3: Option<usize>,
    kc_ov: Option<usize>,
    mc_ov: Option<usize>,
    nc_ov: Option<usize>,
) -> Blocking {
    let l1 = l1.unwrap_or(FALLBACK_L1);
    let l2 = l2.unwrap_or(FALLBACK_L2);
    let l3 = l3.unwrap_or(FALLBACK_L3).max(l2);
    // KC: one MR×KC A micro-panel plus one KC×NR B micro-panel should fill
    // about half of L1, leaving the C tile and streaming lines resident.
    let kc = (l1 / (2 * 8 * (MR + NR))).clamp(64, 512) & !7;
    // MC: the packed MC×KC A block occupies about half of L2. Rounded to a
    // multiple of 2·MR so the AVX-512 paired-panel tile sees full 16-row
    // units everywhere except the final fringe (per-element bits do not
    // depend on MC — this is purely a throughput choice).
    let mc = (l2 / (2 * 8 * kc)).clamp(2 * MR, 2048) / (2 * MR) * (2 * MR);
    // NC: the packed KC×NC B block stays well inside L3.
    let nc = (l3 / (4 * 8 * kc)).clamp(2 * NR, 8160) / NR * NR;
    Blocking {
        kc: kc_ov.map(|v| (v.max(8)) & !7).unwrap_or(kc),
        mc: mc_ov.map(|v| v.max(MR) / MR * MR).unwrap_or(mc),
        nc: nc_ov.map(|v| v.max(NR) / NR * NR).unwrap_or(nc),
    }
}

fn probe_blocking() -> Blocking {
    let (l1, l2, l3) = (sysfs_cache_size(1), sysfs_cache_size(2), sysfs_cache_size(3));
    let (kc_ov, mc_ov, nc_ov) = (env_block("FT_GEMM_KC"), env_block("FT_GEMM_MC"), env_block("FT_GEMM_NC"));
    // Containers often hide the cache hierarchy; say so once instead of
    // silently running with the clamp floors.
    if (l1.is_none() || l2.is_none() || l3.is_none()) && (kc_ov.is_none() || mc_ov.is_none() || nc_ov.is_none()) {
        eprintln!(
            "ft-dense: cache sizes not fully exposed via sysfs (L1={l1:?} L2={l2:?} L3={l3:?}); \
             using conservative fallback blocking — set FT_GEMM_KC/MC/NC to tune"
        );
    }
    compute_blocking(l1, l2, l3, kc_ov, mc_ov, nc_ov)
}

#[inline]
fn at(trans: Trans, base: &[f64], ld: usize, i: usize, j: usize) -> f64 {
    match trans {
        Trans::No => base[i + j * ld],
        Trans::Yes => base[j + i * ld],
    }
}

/// `C(0..m, 0..n) ← β·C` without touching anything past `m` in each column.
/// β = 0 stores instead of multiplying, so NaN/garbage never propagates.
fn scale_c(m: usize, n: usize, beta: f64, c: &mut [f64], ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for v in col.iter_mut() {
                *v *= beta;
            }
        }
    }
}

/// General matrix-matrix multiply:
/// `C ← α·op(A)·op(B) + β·C`, with `op(A)` `m×k`, `op(B)` `k×n`, `C` `m×n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    // --- dimension checks ------------------------------------------------
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(lda >= a_rows.max(1), "gemm: lda too small");
    assert!(ldb >= b_rows.max(1), "gemm: ldb too small");
    assert!(ldc >= m.max(1), "gemm: ldc too small");
    if a_rows > 0 && a_cols > 0 {
        assert!(a.len() >= lda * (a_cols - 1) + a_rows, "gemm: A buffer too small");
    }
    if b_rows > 0 && b_cols > 0 {
        assert!(b.len() >= ldb * (b_cols - 1) + b_rows, "gemm: B buffer too small");
    }
    if m > 0 && n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m, "gemm: C buffer too small");
    }

    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 || k == 0 {
        scale_c(m, n, beta, c, ldc);
        return;
    }
    add_flops(2 * m as u64 * n as u64 * k as u64);
    add_gemm_call();

    // --- packed blocked multiply, β fused into the first k-block ----------
    // The ISA is sampled once per call so a mid-call override flip (tests)
    // can never mix tile flavors within one multiply.
    let isa = simd::active_isa();
    let bl = blocking();
    let kc_cap = bl.kc.min(k);
    let mc_cap = bl.mc.min(m.div_ceil(MR) * MR);
    let nc_cap = bl.nc.min(n.div_ceil(NR) * NR);
    PACK_SCRATCH.with_borrow_mut(|(apack, bpack)| {
        grow(apack, mc_cap * kc_cap);
        grow(bpack, kc_cap * nc_cap);
        let (apack, bpack) = (&mut apack[..mc_cap * kc_cap], &mut bpack[..kc_cap * nc_cap]);

        let mut jc = 0;
        while jc < n {
            let nc = bl.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = bl.kc.min(k - pc);
                // β is applied exactly once per C element: by the k-block that
                // sees it first.
                let beta_eff = if pc == 0 { beta } else { 1.0 };
                pack_b(transb, b, ldb, pc, jc, kc, nc, bpack);
                let mut ic = 0;
                while ic < m {
                    let mc = bl.mc.min(m - ic);
                    pack_a(transa, a, lda, ic, pc, mc, kc, apack);
                    macro_kernel(mc, nc, kc, alpha, apack, bpack, beta_eff, &mut c[ic + jc * ldc..], ldc, isa);
                    ic += bl.mc;
                }
                pc += bl.kc;
            }
            jc += bl.nc;
        }
    });
}

/// `op(A)` packed once into the micro-kernel's panel layout, for repeated
/// multiplication against different right-hand sides via [`gemm_packed_a`].
///
/// The distributed trailing updates build one `PackedA` per panel operand
/// (`Y` for the right update, `V`/`Vᵀ` for the left update) and reuse it
/// across every contiguous column run — including the ABFT checksum
/// columns, which therefore hit the exact same packed bytes as the data
/// columns they protect.
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    kc: usize,
    /// `m` rounded up to a multiple of [`MR`] (panel padding).
    m_pad: usize,
    data: Vec<f64>,
}

impl PackedA {
    /// Pack `op(A)` (`m×k` logical) from column-major storage `a` with
    /// leading dimension `lda`.
    pub fn pack(trans: Trans, m: usize, k: usize, a: &[f64], lda: usize) -> PackedA {
        let (a_rows, a_cols) = match trans {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        assert!(lda >= a_rows.max(1), "PackedA: lda too small");
        if a_rows > 0 && a_cols > 0 {
            assert!(a.len() >= lda * (a_cols - 1) + a_rows, "PackedA: A buffer too small");
        }
        let kc = blocking().kc.min(k.max(1));
        let m_pad = m.div_ceil(MR) * MR;
        let mut data = vec![0.0f64; m_pad * k];
        let mut pc = 0;
        while pc < k {
            let kcb = kc.min(k - pc);
            // Blocks are laid out back to back; block `pc` starts at
            // `m_pad·pc` because the blocks before it hold `pc` k-columns.
            pack_a(trans, a, lda, 0, pc, m, kcb, &mut data[m_pad * pc..m_pad * (pc + kcb)]);
            pc += kc;
        }
        PackedA { m, k, kc, m_pad, data }
    }

    /// Logical rows `m` of `op(A)`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical columns `k` of `op(A)` (the contraction dimension).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }
}

/// `C ← α·op(A)·op(B) + β·C` with `op(A)` pre-packed — see [`PackedA`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_a(
    pa: &PackedA,
    transb: Trans,
    n: usize,
    alpha: f64,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let (m, k) = (pa.m, pa.k);
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(ldb >= b_rows.max(1), "gemm_packed_a: ldb too small");
    assert!(ldc >= m.max(1), "gemm_packed_a: ldc too small");
    if b_rows > 0 && b_cols > 0 {
        assert!(b.len() >= ldb * (b_cols - 1) + b_rows, "gemm_packed_a: B buffer too small");
    }
    if m > 0 && n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m, "gemm_packed_a: C buffer too small");
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 || k == 0 {
        scale_c(m, n, beta, c, ldc);
        return;
    }
    add_flops(2 * m as u64 * n as u64 * k as u64);
    add_gemm_call();

    let isa = simd::active_isa();
    let bl = blocking();
    let nc_cap = bl.nc.min(n.div_ceil(NR) * NR);
    // MC must stay MR-aligned so the packed panels slice cleanly (the probed
    // default is 2·MR-aligned so super-tile pairing sees full units).
    let mc_step = (bl.mc / MR * MR).max(MR);
    PACK_SCRATCH.with_borrow_mut(|(_, bpack)| {
        grow(bpack, pa.kc.min(k) * nc_cap);
        let bpack = &mut bpack[..pa.kc.min(k) * nc_cap];

        let mut jc = 0;
        while jc < n {
            let nc = bl.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = pa.kc.min(k - pc);
                let beta_eff = if pc == 0 { beta } else { 1.0 };
                pack_b(transb, b, ldb, pc, jc, kc, nc, bpack);
                let block = &pa.data[pa.m_pad * pc..pa.m_pad * (pc + kc)];
                let mut ic = 0;
                while ic < m {
                    let mc = mc_step.min(m - ic);
                    // Panels ic/MR.. of this k-block are contiguous: MR·kc each.
                    let ap = &block[(ic / MR) * MR * kc..];
                    macro_kernel(mc, nc, kc, alpha, ap, bpack, beta_eff, &mut c[ic + jc * ldc..], ldc, isa);
                    ic += mc_step;
                }
                pc += pa.kc;
            }
            jc += bl.nc;
        }
    });
}

/// Pack the `mc×kc` block of `op(A)` starting at logical `(ic, pc)` into
/// row-panels of height `MR`, zero-padded, laid out so the micro-kernel reads
/// unit-stride.
#[allow(clippy::needless_range_loop)] // symmetric zero-pad loops read clearer unindexed
fn pack_a(trans: Trans, a: &[f64], lda: usize, ic: usize, pc: usize, mc: usize, kc: usize, out: &mut [f64]) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let r0 = p * MR;
        let rows = MR.min(mc - r0);
        let base = p * MR * kc;
        if rows == MR && trans == Trans::No {
            // Full panel, no transpose: straight unit-stride column copies.
            for j in 0..kc {
                let src = &a[(ic + r0) + (pc + j) * lda..(ic + r0) + (pc + j) * lda + MR];
                out[base + j * MR..base + j * MR + MR].copy_from_slice(src);
            }
            continue;
        }
        for j in 0..kc {
            let dst = &mut out[base + j * MR..base + j * MR + MR];
            for r in 0..rows {
                dst[r] = at(trans, a, lda, ic + r0 + r, pc + j);
            }
            for r in rows..MR {
                dst[r] = 0.0;
            }
        }
    }
}

/// Pack the `kc×nc` block of `op(B)` starting at logical `(pc, jc)` into
/// column-panels of width `NR`, zero-padded.
#[allow(clippy::needless_range_loop)]
fn pack_b(trans: Trans, b: &[f64], ldb: usize, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f64]) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let c0 = q * NR;
        let colsn = NR.min(nc - c0);
        let base = q * NR * kc;
        if colsn == NR && trans == Trans::No {
            // Full panel, no transpose: interleave NR source columns. Fixed
            // column views + a fixed-width destination chunk elide every
            // bounds check in the hot loop (this pack runs once per k-block
            // per GEMM call and was a measurable slice of the wall clock).
            let col = |cdx: usize| &b[(pc) + (jc + c0 + cdx) * ldb..][..kc];
            let cols: [&[f64]; NR] = [col(0), col(1), col(2), col(3), col(4), col(5)];
            for (j, dst) in out[base..base + kc * NR].chunks_exact_mut(NR).enumerate() {
                for (cdx, c) in cols.iter().enumerate() {
                    dst[cdx] = c[j];
                }
            }
            continue;
        }
        for j in 0..kc {
            let dst = &mut out[base + j * NR..base + j * NR + NR];
            for cdx in 0..colsn {
                dst[cdx] = at(trans, b, ldb, pc + j, jc + c0 + cdx);
            }
            for cdx in colsn..NR {
                dst[cdx] = 0.0;
            }
        }
    }
}

thread_local! {
    /// Per-thread packing scratch (`apack`, `bpack`), grown on demand and
    /// reused across GEMM calls: skips an allocation + zero-fill of up to
    /// MC·KC + KC·NC doubles per call. Safe to reuse un-zeroed because
    /// `pack_a`/`pack_b` fully overwrite (and explicitly zero-pad) every
    /// region the macro-kernel reads.
    static PACK_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> = const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

fn grow(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// `*mut f64` that may cross into pool worker closures. Safe because the
/// macro-kernel partition hands each lane a disjoint row band of C.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw `*mut f64` field (RFC 2229 disjoint
    /// captures would otherwise un-`Sync` the closure).
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Multiply the packed `mc×kc` A block by the packed `kc×nc` B block into the
/// `mc×nc` C window at `c` (leading dimension `ldc`):
/// `C ← α·A·B + β_eff·C` tile by tile, on the active ISA, optionally
/// partitioned over the in-rank worker pool.
///
/// The unit of work distribution is a *pair* of packed A panels (a 16-row
/// band of C) — the AVX-512 super-tile's granularity — so every lane runs
/// whole tiles. Lanes write disjoint row bands; the per-element arithmetic
/// is identical regardless of lane count, so threading never changes bits.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    isa: Isa,
) {
    let units = mc.div_ceil(2 * MR);
    let lanes = pool::plan_threads(units, 2 * mc as u64 * nc as u64 * kc as u64);
    if lanes <= 1 {
        macro_kernel_units(0, units, mc, nc, kc, alpha, apack, bpack, beta, c.as_mut_ptr(), ldc, isa);
        return;
    }
    let cp = SendPtr(c.as_mut_ptr());
    pool::run(lanes, &|lane| {
        let (u0, u1) = pool::split_units(units, lanes, lane);
        macro_kernel_units(u0, u1, mc, nc, kc, alpha, apack, bpack, beta, cp.get(), ldc, isa);
    });
}

/// Run panel-pair units `[u0, u1)` of one macro-kernel block (unit `u` owns
/// C rows `[16u, 16u+16) ∩ [0, mc)`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel_units(
    u0: usize,
    u1: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    beta: f64,
    c: *mut f64,
    ldc: usize,
    isa: Isa,
) {
    let mpan = mc.div_ceil(MR);
    let npan = nc.div_ceil(NR);
    let (p0, p1) = ((u0 * 2).min(mpan), (u1 * 2).min(mpan));

    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx512 {
        // Super-tiles: pairs of A panels × pairs of B panels. Pairing only
        // groups elements into one tile invocation; each element's op
        // sequence is unchanged, so fringe variants (AP/BQ = 1) and the
        // paired fast path produce identical bits.
        for q2 in 0..npan.div_ceil(2) {
            let q = q2 * 2;
            let bq = 2.min(npan - q);
            let cols = [NR.min(nc - q * NR), if bq == 2 { NR.min(nc - (q + 1) * NR) } else { 0 }];
            let bp = bpack[q * NR * kc..].as_ptr();
            let mut p = p0;
            while p < p1 {
                let ap_cnt = 2.min(p1 - p);
                let rows = [MR.min(mc - p * MR), if ap_cnt == 2 { MR.min(mc - (p + 1) * MR) } else { 0 }];
                let ap = apack[p * MR * kc..].as_ptr();
                let ct = unsafe { c.add(p * MR + q * NR * ldc) };
                unsafe {
                    match (ap_cnt, bq) {
                        (2, 2) => simd::x86::super_tile_avx512::<2, 2>(kc, alpha, ap, bp, beta, rows, cols, ct, ldc),
                        (2, 1) => simd::x86::super_tile_avx512::<2, 1>(kc, alpha, ap, bp, beta, rows, cols, ct, ldc),
                        (1, 2) => simd::x86::super_tile_avx512::<1, 2>(kc, alpha, ap, bp, beta, rows, cols, ct, ldc),
                        _ => simd::x86::super_tile_avx512::<1, 1>(kc, alpha, ap, bp, beta, rows, cols, ct, ldc),
                    }
                }
                p += 2;
            }
        }
        return;
    }

    for q in 0..npan {
        let c0 = q * NR;
        let ncols = NR.min(nc - c0);
        let bp = &bpack[q * NR * kc..];
        for p in p0..p1 {
            let r0 = p * MR;
            let nrows = MR.min(mc - r0);
            let ap = &apack[p * MR * kc..];
            let ct = unsafe { c.add(r0 + c0 * ldc) };
            match isa {
                #[cfg(target_arch = "x86_64")]
                Isa::Avx2 => unsafe {
                    simd::x86::micro_8x6_avx2(kc, alpha, ap.as_ptr(), bp.as_ptr(), beta, nrows, ncols, ct, ldc)
                },
                #[cfg(target_arch = "aarch64")]
                Isa::Neon => unsafe {
                    simd::arm::micro_8x6_neon(kc, alpha, ap.as_ptr(), bp.as_ptr(), beta, nrows, ncols, ct, ldc)
                },
                _ => unsafe { micro_kernel(kc, alpha, ap, bp, beta, nrows, ncols, ct, ldc) },
            }
        }
    }
}

/// The portable MR×NR register kernel: `acc += ap(:,l) ⊗ bp(:,l)` over `l`,
/// then `C[0..nrows, 0..ncols] ← α·acc + β·C` (β = 0 never reads `C`).
/// This is the scalar contraction class: multiply and add round separately.
///
/// # Safety
/// `c` must point at a writable `nrows×ncols` window with leading dimension
/// `ldc` (rows beyond `nrows` within a column are never touched).
#[inline]
unsafe fn micro_kernel(
    kc: usize,
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    beta: f64,
    nrows: usize,
    ncols: usize,
    c: *mut f64,
    ldc: usize,
) {
    let mut acc = [[0.0f64; MR]; NR];
    // Fixed-size chunk views let LLVM keep the whole accumulator in
    // registers and vectorize the rank-1 update without bounds checks.
    for (av, bv) in ap[..kc * MR].chunks_exact(MR).zip(bp[..kc * NR].chunks_exact(NR)) {
        let av: &[f64; MR] = av.try_into().unwrap();
        let bv: &[f64; NR] = bv.try_into().unwrap();
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = bv[j];
            for (i, a) in accj.iter_mut().enumerate() {
                *a += av[i] * bj;
            }
        }
    }
    if nrows == MR {
        // Full-height tile: unit-stride whole-column stores.
        for (j, accj) in acc.iter().enumerate().take(ncols) {
            let col: &mut [f64; MR] = unsafe { &mut *(c.add(j * ldc) as *mut [f64; MR]) };
            if beta == 0.0 {
                for (cv, &a) in col.iter_mut().zip(accj.iter()) {
                    *cv = alpha * a;
                }
            } else if beta == 1.0 {
                for (cv, &a) in col.iter_mut().zip(accj.iter()) {
                    *cv += alpha * a;
                }
            } else {
                for (cv, &a) in col.iter_mut().zip(accj.iter()) {
                    *cv = alpha * a + beta * *cv;
                }
            }
        }
    } else {
        for (j, accj) in acc.iter().enumerate().take(ncols) {
            let col = unsafe { std::slice::from_raw_parts_mut(c.add(j * ldc), nrows) };
            if beta == 0.0 {
                for (cv, &a) in col.iter_mut().zip(accj.iter()) {
                    *cv = alpha * a;
                }
            } else {
                for (cv, &a) in col.iter_mut().zip(accj.iter()) {
                    *cv = alpha * a + beta * *cv;
                }
            }
        }
    }
}

/// Reference triple-loop GEMM used as the oracle in tests. Never use in
/// performance paths.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for l in 0..k {
                s += at(transa, a, lda, i, l) * at(transb, b, ldb, l, j);
            }
            let cv = &mut c[i + j * ldc];
            *cv = if beta == 0.0 { alpha * s } else { alpha * s + beta * *cv };
        }
    }
}

/// Triangular matrix-matrix multiply:
/// `B ← α·op(A)·B` ([`Side::Left`], `A` is `m×m`) or
/// `B ← α·B·op(A)` ([`Side::Right`], `A` is `n×n`), with `B` `m×n` and `A`
/// upper/lower triangular, optionally unit-diagonal.
#[allow(clippy::too_many_arguments)]
pub fn trmm(
    side: Side,
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    let ka = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert!(lda >= ka.max(1), "trmm: lda too small");
    assert!(ldb >= m.max(1), "trmm: ldb too small");
    if ka > 0 {
        assert!(a.len() >= lda * (ka - 1) + ka, "trmm: A buffer too small");
    }
    if m > 0 && n > 0 {
        assert!(b.len() >= ldb * (n - 1) + m, "trmm: B buffer too small");
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 {
        for j in 0..n {
            b[j * ldb..j * ldb + m].fill(0.0);
        }
        return;
    }
    add_flops(m as u64 * n as u64 * ka as u64);

    let unit = matches!(diag, Diag::Unit);
    match side {
        Side::Left => {
            // Per column of B: b_j ← op(A)·b_j (a trmv), then scale by alpha.
            for j in 0..n {
                let col = &mut b[j * ldb..j * ldb + m];
                crate::level2::trmv(uplo, trans, diag, m, a, lda, col);
                if alpha != 1.0 {
                    for v in col.iter_mut() {
                        *v *= alpha;
                    }
                }
            }
        }
        Side::Right => {
            // (B·op(A))(:,j) = Σ_i B(:,i)·op(A)(i,j). Traversal order chosen
            // so every read of B(:,i) still sees the original value.
            let effective_upper = match (uplo, trans) {
                (UpLo::Upper, Trans::No) | (UpLo::Lower, Trans::Yes) => true,
                (UpLo::Lower, Trans::No) | (UpLo::Upper, Trans::Yes) => false,
            };
            let aval = |i: usize, j: usize| -> f64 {
                match trans {
                    Trans::No => a[i + j * lda],
                    Trans::Yes => a[j + i * lda],
                }
            };
            let js: Box<dyn Iterator<Item = usize>> = if effective_upper {
                // op(A) effectively upper: col j uses B cols i <= j → go right→left.
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for j in js {
                let dj = if unit { 1.0 } else { aval(j, j) };
                // Scale the diagonal contribution first (in place).
                {
                    let col = &mut b[j * ldb..j * ldb + m];
                    let f = alpha * dj;
                    if f != 1.0 {
                        for v in col.iter_mut() {
                            *v *= f;
                        }
                    }
                }
                let range: Box<dyn Iterator<Item = usize>> = if effective_upper { Box::new(0..j) } else { Box::new(j + 1..n) };
                for i in range {
                    let f = alpha * aval(i, j);
                    if f == 0.0 {
                        continue;
                    }
                    // b_j += f * b_i  — two disjoint columns of B.
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (first, second) = b.split_at_mut(hi * ldb);
                    let (src, dst): (&[f64], &mut [f64]) = if i < j {
                        (&first[lo * ldb..lo * ldb + m], &mut second[..m])
                    } else {
                        let s: &[f64] = &second[..m];
                        // i > j: src is the later column; dst the earlier one.
                        // We cannot hand out overlapping borrows, so copy src.
                        let tmp: Vec<f64> = s.to_vec();
                        let dstc = &mut first[lo * ldb..lo * ldb + m];
                        for (d, t) in dstc.iter_mut().zip(&tmp) {
                            *d += f * t;
                        }
                        continue;
                    };
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += f * s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn rngmat(m: usize, n: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random values without pulling rand here.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn blocking_is_sane() {
        let bl = blocking();
        assert!(bl.kc >= 8 && bl.kc.is_multiple_of(8), "{bl:?}");
        assert!(bl.mc >= MR && bl.mc.is_multiple_of(MR), "{bl:?}");
        assert!(bl.nc >= NR && bl.nc.is_multiple_of(NR), "{bl:?}");
    }

    #[test]
    fn compute_blocking_no_sysfs_fallback() {
        // The containerized path: no cache sizes at all. Must yield the
        // deterministic conservative blocking, not a degenerate clamp.
        let bl = compute_blocking(None, None, None, None, None, None);
        assert_eq!(bl, compute_blocking(Some(FALLBACK_L1), Some(FALLBACK_L2), Some(FALLBACK_L3), None, None, None));
        assert!(bl.kc >= 64 && bl.kc <= 512 && bl.kc.is_multiple_of(8), "{bl:?}");
        assert!(bl.mc >= 2 * MR && bl.mc.is_multiple_of(2 * MR), "{bl:?}");
        assert!(bl.nc >= 2 * NR && bl.nc.is_multiple_of(NR), "{bl:?}");
        // Partially-missing levels use the fallback for the missing level only.
        let big = compute_blocking(Some(1 << 20), None, None, None, None, None);
        assert_eq!(big.kc, 512, "1 MiB L1 saturates the KC clamp: {big:?}");
    }

    #[test]
    fn compute_blocking_override_precedence() {
        // FT_GEMM_* overrides beat probed sizes, with alignment enforced.
        let bl = compute_blocking(Some(48 << 10), Some(2 << 20), Some(32 << 20), Some(203), Some(100), Some(50));
        assert_eq!(bl.kc, 200, "KC override rounds down to a multiple of 8");
        assert_eq!(bl.mc, 96, "MC override rounds down to a multiple of MR");
        assert_eq!(bl.nc, 48, "NC override rounds down to a multiple of NR");
        // Overrides clamp up from degenerate values instead of panicking.
        let tiny = compute_blocking(None, None, None, Some(1), Some(1), Some(1));
        assert_eq!((tiny.kc, tiny.mc, tiny.nc), (8, MR, NR));
        // Each override is independent: forcing KC leaves MC/NC at their
        // probed values (the MC/NC formulas use the probed KC).
        let only_kc = compute_blocking(None, None, None, Some(128), None, None);
        let none = compute_blocking(None, None, None, None, None, None);
        assert_eq!(only_kc.kc, 128);
        assert_eq!((only_kc.mc, only_kc.nc), (none.mc, none.nc));
    }

    #[test]
    fn cache_size_parser() {
        assert_eq!(parse_cache_size("48K"), Some(48 << 10));
        assert_eq!(parse_cache_size("2048K\n"), Some(2048 << 10));
        assert_eq!(parse_cache_size("1M"), Some(1 << 20));
        assert_eq!(parse_cache_size("123"), Some(123));
        assert_eq!(parse_cache_size("x"), None);
    }

    #[test]
    fn gemm_matches_naive_all_transposes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 4), (17, 9, 23), (40, 33, 19), (130, 70, 260)] {
            for transa in [Trans::No, Trans::Yes] {
                for transb in [Trans::No, Trans::Yes] {
                    let (ar, ac) = if transa.is_trans() { (k, m) } else { (m, k) };
                    let (br, bc) = if transb.is_trans() { (n, k) } else { (k, n) };
                    let a = rngmat(ar, ac, 1);
                    let b = rngmat(br, bc, 2);
                    let c0 = rngmat(m, n, 3);
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    gemm(transa, transb, m, n, k, 1.3, a.as_slice(), ar, b.as_slice(), br, -0.7, c1.as_mut_slice(), m);
                    gemm_naive(transa, transb, m, n, k, 1.3, a.as_slice(), ar, b.as_slice(), br, -0.7, c2.as_mut_slice(), m);
                    let d = c1.max_abs_diff(&c2);
                    assert!(d < 1e-11, "m={m} n={n} k={k} {transa:?}{transb:?}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn gemm_packed_a_matches_naive() {
        for &(m, n, k) in &[(1, 1, 1), (7, 3, 5), (17, 9, 23), (40, 13, 19), (65, 6, 33)] {
            for transa in [Trans::No, Trans::Yes] {
                for transb in [Trans::No, Trans::Yes] {
                    let (ar, ac) = if transa.is_trans() { (k, m) } else { (m, k) };
                    let (br, bc) = if transb.is_trans() { (n, k) } else { (k, n) };
                    let a = rngmat(ar, ac, 4);
                    let b = rngmat(br, bc, 5);
                    let c0 = rngmat(m, n, 6);
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    let pa = PackedA::pack(transa, m, k, a.as_slice(), ar);
                    assert_eq!((pa.m(), pa.k()), (m, k));
                    gemm_packed_a(&pa, transb, n, -0.9, b.as_slice(), br, 0.4, c1.as_mut_slice(), m);
                    gemm_naive(transa, transb, m, n, k, -0.9, a.as_slice(), ar, b.as_slice(), br, 0.4, c2.as_mut_slice(), m);
                    let d = c1.max_abs_diff(&c2);
                    assert!(d < 1e-12, "m={m} n={n} k={k} {transa:?}{transb:?}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn packed_a_reused_across_rhs() {
        // One pack, several right-hand sides — the trailing-update pattern.
        let (m, k) = (23, 7);
        let a = rngmat(m, k, 8);
        let pa = PackedA::pack(Trans::No, m, k, a.as_slice(), m);
        for (n, seed) in [(1usize, 10u64), (4, 11), (9, 12)] {
            let b = rngmat(k, n, seed);
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm_packed_a(&pa, Trans::No, n, 1.0, b.as_slice(), k, 0.0, c1.as_mut_slice(), m);
            gemm_naive(Trans::No, Trans::No, m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0, c2.as_mut_slice(), m);
            assert!(c1.max_abs_diff(&c2) < 1e-12);
        }
    }

    #[test]
    fn gemm_beta_zero_clears_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        gemm(Trans::No, Trans::No, 2, 2, 2, 1.0, a.as_slice(), 2, b.as_slice(), 2, 0.0, c.as_mut_slice(), 2);
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn gemm_packed_beta_zero_clears_nan() {
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let pa = PackedA::pack(Trans::No, 3, 3, a.as_slice(), 3);
        let mut c = Matrix::from_fn(3, 3, |_, _| f64::NAN);
        gemm_packed_a(&pa, Trans::No, 3, 1.0, b.as_slice(), 3, 0.0, c.as_mut_slice(), 3);
        assert_eq!(c, Matrix::identity(3));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let a = rngmat(3, 3, 4);
        let b = rngmat(3, 3, 5);
        let mut c = Matrix::identity(3);
        gemm(Trans::No, Trans::No, 3, 3, 3, 0.0, a.as_slice(), 3, b.as_slice(), 3, 2.0, c.as_mut_slice(), 3);
        let mut want = Matrix::identity(3);
        for v in want.as_mut_slice().iter_mut() {
            *v *= 2.0;
        }
        assert_eq!(c, want);
    }

    #[test]
    fn gemm_submatrix_views() {
        // C(1..3,1..3) += A(0..2, 0..2)*B(2..4, 0..2) inside 5x5 buffers.
        let a = rngmat(5, 5, 6);
        let b = rngmat(5, 5, 7);
        let mut c = rngmat(5, 5, 8);
        let mut cref = c.clone();
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a.as_slice()[0..],
            5,
            &b.as_slice()[2..],
            5,
            1.0,
            &mut c.as_mut_slice()[1 + 5..],
            5,
        );
        gemm_naive(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a.as_slice()[0..],
            5,
            &b.as_slice()[2..],
            5,
            1.0,
            &mut cref.as_mut_slice()[1 + 5..],
            5,
        );
        assert!(c.max_abs_diff(&cref) < 1e-12);
    }

    #[test]
    fn trmm_matches_dense_multiply() {
        let m = 7;
        let n = 6;
        for side in [Side::Left, Side::Right] {
            let ka = match side {
                Side::Left => m,
                Side::Right => n,
            };
            let a = rngmat(ka, ka, 11);
            for uplo in [UpLo::Upper, UpLo::Lower] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        let tdense = Matrix::from_fn(ka, ka, |i, j| {
                            let inside = match uplo {
                                UpLo::Upper => i <= j,
                                UpLo::Lower => i >= j,
                            };
                            if i == j {
                                if matches!(diag, Diag::Unit) {
                                    1.0
                                } else {
                                    a[(i, j)]
                                }
                            } else if inside {
                                a[(i, j)]
                            } else {
                                0.0
                            }
                        });
                        let b0 = rngmat(m, n, 13);
                        let mut b = b0.clone();
                        trmm(side, uplo, trans, diag, m, n, 1.5, a.as_slice(), ka, b.as_mut_slice(), m);
                        // dense reference
                        let mut want = Matrix::zeros(m, n);
                        match side {
                            Side::Left => gemm_naive(
                                trans,
                                Trans::No,
                                m,
                                n,
                                m,
                                1.5,
                                tdense.as_slice(),
                                m,
                                b0.as_slice(),
                                m,
                                0.0,
                                want.as_mut_slice(),
                                m,
                            ),
                            Side::Right => gemm_naive(
                                Trans::No,
                                trans,
                                m,
                                n,
                                n,
                                1.5,
                                b0.as_slice(),
                                m,
                                tdense.as_slice(),
                                n,
                                0.0,
                                want.as_mut_slice(),
                                m,
                            ),
                        }
                        let d = b.max_abs_diff(&want);
                        assert!(d < 1e-12, "{side:?} {uplo:?} {trans:?} {diag:?}: diff {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn trmm_alpha_zero_zeroes() {
        let a = rngmat(3, 3, 1);
        let mut b = rngmat(4, 3, 2);
        trmm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 4, 3, 0.0, a.as_slice(), 3, b.as_mut_slice(), 4);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }
}
