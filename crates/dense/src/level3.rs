//! Level-3 BLAS: matrix-matrix kernels on column-major storage.
//!
//! [`gemm`] is the workhorse of the whole workspace — both the shared-memory
//! blocked Hessenberg reduction and the distributed trailing-matrix updates
//! funnel into it. It uses the classic packed three-level blocking scheme
//! (Goto-style: NC/KC/MC cache blocks around an MR×NR register micro-kernel)
//! written in safe Rust and shaped so LLVM auto-vectorizes the micro-kernel.
//!
//! [`gemm_naive`] is the deliberately simple triple-loop oracle used by the
//! test suites to validate every faster path.

use crate::counters::add_flops;
use crate::{Diag, Side, Trans, UpLo};

/// Register block: rows of the micro-tile.
const MR: usize = 8;
/// Register block: columns of the micro-tile.
const NR: usize = 4;
/// Cache block over `k`.
const KC: usize = 256;
/// Cache block over `m`.
const MC: usize = 128;
/// Cache block over `n`.
const NC: usize = 1024;

#[inline]
fn at(trans: Trans, base: &[f64], ld: usize, i: usize, j: usize) -> f64 {
    match trans {
        Trans::No => base[i + j * ld],
        Trans::Yes => base[j + i * ld],
    }
}

/// General matrix-matrix multiply:
/// `C ← α·op(A)·op(B) + β·C`, with `op(A)` `m×k`, `op(B)` `k×n`, `C` `m×n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    // --- dimension checks ------------------------------------------------
    let (a_rows, a_cols) = match transa {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    assert!(lda >= a_rows.max(1), "gemm: lda too small");
    assert!(ldb >= b_rows.max(1), "gemm: ldb too small");
    assert!(ldc >= m.max(1), "gemm: ldc too small");
    if a_rows > 0 && a_cols > 0 {
        assert!(a.len() >= lda * (a_cols - 1) + a_rows, "gemm: A buffer too small");
    }
    if b_rows > 0 && b_cols > 0 {
        assert!(b.len() >= ldb * (b_cols - 1) + b_rows, "gemm: B buffer too small");
    }
    if m > 0 && n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m, "gemm: C buffer too small");
    }

    if m == 0 || n == 0 {
        return;
    }

    // --- beta pass --------------------------------------------------------
    if beta != 1.0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else {
                for v in col.iter_mut() {
                    *v *= beta;
                }
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }
    add_flops(2 * m as u64 * n as u64 * k as u64);

    // --- packed blocked multiply -----------------------------------------
    let mut apack = vec![0.0f64; MC * KC];
    let mut bpack = vec![0.0f64; KC * NC];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(transb, b, ldb, pc, jc, kc, nc, &mut bpack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(transa, a, lda, ic, pc, mc, kc, &mut apack);
                macro_kernel(mc, nc, kc, alpha, &apack, &bpack, &mut c[ic + jc * ldc..], ldc);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Pack the `mc×kc` block of `op(A)` starting at logical `(ic, pc)` into
/// row-panels of height `MR`, zero-padded, laid out so the micro-kernel reads
/// unit-stride.
#[allow(clippy::needless_range_loop)] // symmetric zero-pad loops read clearer unindexed
fn pack_a(trans: Trans, a: &[f64], lda: usize, ic: usize, pc: usize, mc: usize, kc: usize, out: &mut [f64]) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let r0 = p * MR;
        let rows = MR.min(mc - r0);
        let base = p * MR * kc;
        for j in 0..kc {
            let dst = &mut out[base + j * MR..base + j * MR + MR];
            for r in 0..rows {
                dst[r] = at(trans, a, lda, ic + r0 + r, pc + j);
            }
            for r in rows..MR {
                dst[r] = 0.0;
            }
        }
    }
}

/// Pack the `kc×nc` block of `op(B)` starting at logical `(pc, jc)` into
/// column-panels of width `NR`, zero-padded.
#[allow(clippy::needless_range_loop)]
fn pack_b(trans: Trans, b: &[f64], ldb: usize, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f64]) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let c0 = q * NR;
        let colsn = NR.min(nc - c0);
        let base = q * NR * kc;
        for j in 0..kc {
            let dst = &mut out[base + j * NR..base + j * NR + NR];
            for cdx in 0..colsn {
                dst[cdx] = at(trans, b, ldb, pc + j, jc + c0 + cdx);
            }
            for cdx in colsn..NR {
                dst[cdx] = 0.0;
            }
        }
    }
}

/// Multiply the packed `mc×kc` A block by the packed `kc×nc` B block into the
/// `mc×nc` C window at `c` (leading dimension `ldc`), accumulating `+= α·A·B`.
fn macro_kernel(mc: usize, nc: usize, kc: usize, alpha: f64, apack: &[f64], bpack: &[f64], c: &mut [f64], ldc: usize) {
    let mpan = mc.div_ceil(MR);
    let npan = nc.div_ceil(NR);
    for q in 0..npan {
        let c0 = q * NR;
        let ncols = NR.min(nc - c0);
        let bp = &bpack[q * NR * kc..];
        for p in 0..mpan {
            let r0 = p * MR;
            let nrows = MR.min(mc - r0);
            let ap = &apack[p * MR * kc..];
            micro_kernel(kc, alpha, ap, bp, nrows, ncols, &mut c[r0 + c0 * ldc..], ldc);
        }
    }
}

/// The MR×NR register kernel: `acc += ap(:,l) ⊗ bp(:,l)` over `l`, then
/// `C[0..nrows, 0..ncols] += α·acc`.
#[inline]
fn micro_kernel(kc: usize, alpha: f64, ap: &[f64], bp: &[f64], nrows: usize, ncols: usize, c: &mut [f64], ldc: usize) {
    let mut acc = [[0.0f64; MR]; NR];
    for l in 0..kc {
        let av: &[f64] = &ap[l * MR..l * MR + MR];
        let bv: &[f64] = &bp[l * NR..l * NR + NR];
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = bv[j];
            for (i, a) in accj.iter_mut().enumerate() {
                *a += av[i] * bj;
            }
        }
    }
    for j in 0..ncols {
        let col = &mut c[j * ldc..j * ldc + nrows];
        for (i, v) in col.iter_mut().enumerate() {
            *v += alpha * acc[j][i];
        }
    }
}

/// Reference triple-loop GEMM used as the oracle in tests. Never use in
/// performance paths.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for l in 0..k {
                s += at(transa, a, lda, i, l) * at(transb, b, ldb, l, j);
            }
            let cv = &mut c[i + j * ldc];
            *cv = alpha * s + beta * *cv;
        }
    }
}

/// Triangular matrix-matrix multiply:
/// `B ← α·op(A)·B` ([`Side::Left`], `A` is `m×m`) or
/// `B ← α·B·op(A)` ([`Side::Right`], `A` is `n×n`), with `B` `m×n` and `A`
/// upper/lower triangular, optionally unit-diagonal.
#[allow(clippy::too_many_arguments)]
pub fn trmm(
    side: Side,
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    let ka = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert!(lda >= ka.max(1), "trmm: lda too small");
    assert!(ldb >= m.max(1), "trmm: ldb too small");
    if ka > 0 {
        assert!(a.len() >= lda * (ka - 1) + ka, "trmm: A buffer too small");
    }
    if m > 0 && n > 0 {
        assert!(b.len() >= ldb * (n - 1) + m, "trmm: B buffer too small");
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 {
        for j in 0..n {
            b[j * ldb..j * ldb + m].fill(0.0);
        }
        return;
    }
    add_flops(m as u64 * n as u64 * ka as u64);

    let unit = matches!(diag, Diag::Unit);
    match side {
        Side::Left => {
            // Per column of B: b_j ← op(A)·b_j (a trmv), then scale by alpha.
            for j in 0..n {
                let col = &mut b[j * ldb..j * ldb + m];
                crate::level2::trmv(uplo, trans, diag, m, a, lda, col);
                if alpha != 1.0 {
                    for v in col.iter_mut() {
                        *v *= alpha;
                    }
                }
            }
        }
        Side::Right => {
            // (B·op(A))(:,j) = Σ_i B(:,i)·op(A)(i,j). Traversal order chosen
            // so every read of B(:,i) still sees the original value.
            let effective_upper = match (uplo, trans) {
                (UpLo::Upper, Trans::No) | (UpLo::Lower, Trans::Yes) => true,
                (UpLo::Lower, Trans::No) | (UpLo::Upper, Trans::Yes) => false,
            };
            let aval = |i: usize, j: usize| -> f64 {
                match trans {
                    Trans::No => a[i + j * lda],
                    Trans::Yes => a[j + i * lda],
                }
            };
            let js: Box<dyn Iterator<Item = usize>> = if effective_upper {
                // op(A) effectively upper: col j uses B cols i <= j → go right→left.
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for j in js {
                let dj = if unit { 1.0 } else { aval(j, j) };
                // Scale the diagonal contribution first (in place).
                {
                    let col = &mut b[j * ldb..j * ldb + m];
                    let f = alpha * dj;
                    if f != 1.0 {
                        for v in col.iter_mut() {
                            *v *= f;
                        }
                    }
                }
                let range: Box<dyn Iterator<Item = usize>> = if effective_upper { Box::new(0..j) } else { Box::new(j + 1..n) };
                for i in range {
                    let f = alpha * aval(i, j);
                    if f == 0.0 {
                        continue;
                    }
                    // b_j += f * b_i  — two disjoint columns of B.
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (first, second) = b.split_at_mut(hi * ldb);
                    let (src, dst): (&[f64], &mut [f64]) = if i < j {
                        (&first[lo * ldb..lo * ldb + m], &mut second[..m])
                    } else {
                        let s: &[f64] = &second[..m];
                        // i > j: src is the later column; dst the earlier one.
                        // We cannot hand out overlapping borrows, so copy src.
                        let tmp: Vec<f64> = s.to_vec();
                        let dstc = &mut first[lo * ldb..lo * ldb + m];
                        for (d, t) in dstc.iter_mut().zip(&tmp) {
                            *d += f * t;
                        }
                        continue;
                    };
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += f * s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn rngmat(m: usize, n: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random values without pulling rand here.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(m, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn gemm_matches_naive_all_transposes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 4), (17, 9, 23), (40, 33, 19), (130, 70, 260)] {
            for transa in [Trans::No, Trans::Yes] {
                for transb in [Trans::No, Trans::Yes] {
                    let (ar, ac) = if transa.is_trans() { (k, m) } else { (m, k) };
                    let (br, bc) = if transb.is_trans() { (n, k) } else { (k, n) };
                    let a = rngmat(ar, ac, 1);
                    let b = rngmat(br, bc, 2);
                    let c0 = rngmat(m, n, 3);
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    gemm(transa, transb, m, n, k, 1.3, a.as_slice(), ar, b.as_slice(), br, -0.7, c1.as_mut_slice(), m);
                    gemm_naive(transa, transb, m, n, k, 1.3, a.as_slice(), ar, b.as_slice(), br, -0.7, c2.as_mut_slice(), m);
                    let d = c1.max_abs_diff(&c2);
                    assert!(d < 1e-11, "m={m} n={n} k={k} {transa:?}{transb:?}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn gemm_beta_zero_clears_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        gemm(Trans::No, Trans::No, 2, 2, 2, 1.0, a.as_slice(), 2, b.as_slice(), 2, 0.0, c.as_mut_slice(), 2);
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let a = rngmat(3, 3, 4);
        let b = rngmat(3, 3, 5);
        let mut c = Matrix::identity(3);
        gemm(Trans::No, Trans::No, 3, 3, 3, 0.0, a.as_slice(), 3, b.as_slice(), 3, 2.0, c.as_mut_slice(), 3);
        let mut want = Matrix::identity(3);
        for v in want.as_mut_slice().iter_mut() {
            *v *= 2.0;
        }
        assert_eq!(c, want);
    }

    #[test]
    fn gemm_submatrix_views() {
        // C(1..3,1..3) += A(0..2, 0..2)*B(2..4, 0..2) inside 5x5 buffers.
        let a = rngmat(5, 5, 6);
        let b = rngmat(5, 5, 7);
        let mut c = rngmat(5, 5, 8);
        let mut cref = c.clone();
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a.as_slice()[0..],
            5,
            &b.as_slice()[2..],
            5,
            1.0,
            &mut c.as_mut_slice()[1 + 5..],
            5,
        );
        gemm_naive(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a.as_slice()[0..],
            5,
            &b.as_slice()[2..],
            5,
            1.0,
            &mut cref.as_mut_slice()[1 + 5..],
            5,
        );
        assert!(c.max_abs_diff(&cref) < 1e-12);
    }

    #[test]
    fn trmm_matches_dense_multiply() {
        let m = 7;
        let n = 6;
        for side in [Side::Left, Side::Right] {
            let ka = match side {
                Side::Left => m,
                Side::Right => n,
            };
            let a = rngmat(ka, ka, 11);
            for uplo in [UpLo::Upper, UpLo::Lower] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::Unit, Diag::NonUnit] {
                        let tdense = Matrix::from_fn(ka, ka, |i, j| {
                            let inside = match uplo {
                                UpLo::Upper => i <= j,
                                UpLo::Lower => i >= j,
                            };
                            if i == j {
                                if matches!(diag, Diag::Unit) {
                                    1.0
                                } else {
                                    a[(i, j)]
                                }
                            } else if inside {
                                a[(i, j)]
                            } else {
                                0.0
                            }
                        });
                        let b0 = rngmat(m, n, 13);
                        let mut b = b0.clone();
                        trmm(side, uplo, trans, diag, m, n, 1.5, a.as_slice(), ka, b.as_mut_slice(), m);
                        // dense reference
                        let mut want = Matrix::zeros(m, n);
                        match side {
                            Side::Left => gemm_naive(
                                trans,
                                Trans::No,
                                m,
                                n,
                                m,
                                1.5,
                                tdense.as_slice(),
                                m,
                                b0.as_slice(),
                                m,
                                0.0,
                                want.as_mut_slice(),
                                m,
                            ),
                            Side::Right => gemm_naive(
                                Trans::No,
                                trans,
                                m,
                                n,
                                n,
                                1.5,
                                b0.as_slice(),
                                m,
                                tdense.as_slice(),
                                n,
                                0.0,
                                want.as_mut_slice(),
                                m,
                            ),
                        }
                        let d = b.max_abs_diff(&want);
                        assert!(d < 1e-12, "{side:?} {uplo:?} {trans:?} {diag:?}: diff {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn trmm_alpha_zero_zeroes() {
        let a = rngmat(3, 3, 1);
        let mut b = rngmat(4, 3, 2);
        trmm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 4, 3, 0.0, a.as_slice(), 3, b.as_mut_slice(), 4);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }
}
