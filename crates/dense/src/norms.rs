//! Matrix norms (LAPACK `dlange` equivalents).

use crate::Matrix;

/// Largest absolute entry `max |a_ij|`.
pub fn max_abs(a: &Matrix) -> f64 {
    a.as_slice().iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// One-norm: maximum absolute column sum.
pub fn one_norm(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm: maximum absolute row sum. This is the norm used by the
/// paper's residual `r∞ = ‖A − UHUᵀ‖∞ / (‖A‖∞ · N · ε)` (Section 7.3).
pub fn inf_norm(a: &Matrix) -> f64 {
    let mut rowsum = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, &v) in a.col(j).iter().enumerate() {
            rowsum[i] += v.abs();
        }
    }
    rowsum.into_iter().fold(0.0, f64::max)
}

/// Frobenius norm, with scaling against overflow.
pub fn fro_norm(a: &Matrix) -> f64 {
    crate::level1::nrm2(a.as_slice())
}

/// Infinity-norm of a raw column-major sub-matrix (`m×n`, leading dim `ld`).
pub fn inf_norm_raw(m: usize, n: usize, a: &[f64], ld: usize) -> f64 {
    let mut rowsum = vec![0.0f64; m];
    for j in 0..n {
        let col = &a[j * ld..j * ld + m];
        for (i, &v) in col.iter().enumerate() {
            rowsum[i] += v.abs();
        }
    }
    rowsum.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(one_norm(&a), 6.0); // col sums 4, 6
        assert_eq!(inf_norm(&a), 7.0); // row sums 3, 7
        assert_eq!(max_abs(&a), 4.0);
        assert!((fro_norm(&a) - (30.0f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn norms_empty() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(one_norm(&a), 0.0);
        assert_eq!(inf_norm(&a), 0.0);
        assert_eq!(fro_norm(&a), 0.0);
    }

    #[test]
    fn inf_norm_raw_matches() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        assert_eq!(inf_norm(&a), inf_norm_raw(4, 3, a.as_slice(), 4));
        // sub-block (1..3, 1..3)
        let sub = a.submatrix(1, 1, 2, 2);
        assert_eq!(inf_norm(&sub), inf_norm_raw(2, 2, &a.as_slice()[1 + 4..], 4));
    }
}
