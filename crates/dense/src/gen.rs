//! Deterministic test-matrix generators.
//!
//! The paper evaluates on random dense nonsymmetric matrices; we generate
//! them reproducibly (seeded xoshiro256++, see [`crate::rng`]) so that
//! distributed runs, the fault-free baseline and the fault-injected runs
//! all factorize the *same* matrix — this is what lets the recovery tests
//! compare against a fault-free reference elementwise.

use crate::rng::Xoshiro256;
use crate::Matrix;

/// Uniform random matrix with entries in `[-0.5, 0.5)`, seeded.
pub fn uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
}

/// A single reproducible matrix entry, independent of traversal order.
///
/// Used by the distributed code: each process generates exactly its local
/// blocks of the global matrix without materializing (or communicating) the
/// whole thing. The value is a hash of `(seed, i, j)` mapped to `[-0.5, 0.5)`,
/// and [`uniform_indexed_matrix`] built from it is bit-identical no matter
/// how the work is partitioned.
pub fn uniform_entry(seed: u64, i: usize, j: usize) -> f64 {
    // SplitMix64 over a mixed key — cheap, stateless, well distributed.
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (j as u64).wrapping_mul(0xBF58476D1CE4E5B9);
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Full matrix built from [`uniform_entry`] — the global view the distributed
/// tests compare against.
pub fn uniform_indexed_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| uniform_entry(seed, i, j))
}

/// Standard-normal-ish matrix (sum of 4 uniforms, Irwin–Hall), seeded.
pub fn gaussian(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        let s: f64 = (0..4).map(|_| rng.next_f64() - 0.5).sum();
        s * (3.0f64).sqrt() // variance 4/12 → scale to ~1
    })
}

/// A matrix with prescribed eigenvalues: `A = S·diag(vals)·S⁻¹` is expensive
/// to build exactly; instead we return an upper Hessenberg matrix whose
/// diagonal dominates, giving well-conditioned eigenvalues close to `vals`.
/// Used by the eigensolver examples to sanity-check convergence.
pub fn diag_dominant_hessenberg(vals: &[f64], seed: u64) -> Matrix {
    let n = vals.len();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            vals[i]
        } else if i <= j + 1 {
            0.01 * (rng.next_f64() - 0.5)
        } else {
            0.0
        }
    })
}

/// Row-stochastic "web graph" matrix for the PageRank-flavoured example:
/// `G = α·P + (1−α)/n·𝟙𝟙ᵀ` with `P` the column-stochastic transition matrix
/// of a random sparse directed graph. Its dominant eigenvalue is 1.
pub fn google_matrix(n: usize, alpha: f64, avg_out_degree: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut p = Matrix::zeros(n, n);
    for j in 0..n {
        let deg = 1 + rng.range_usize(0, avg_out_degree.max(1) * 2);
        let mut targets = Vec::with_capacity(deg);
        for _ in 0..deg {
            targets.push(rng.range_usize(0, n));
        }
        targets.sort_unstable();
        targets.dedup();
        let w = 1.0 / targets.len() as f64;
        for &t in &targets {
            p[(t, j)] = w;
        }
    }
    let teleport = (1.0 - alpha) / n as f64;
    Matrix::from_fn(n, n, |i, j| alpha * p[(i, j)] + teleport)
}

/// Column-stochastic random-walk matrix of a graph with `k` planted
/// clusters: dense within a cluster (edge prob. `p_in`), sparse across
/// (`p_out`). For well-separated clusters the walk matrix has `k`
/// eigenvalues near 1 — the spectral-clustering signal the paper's
/// introduction motivates (its ref. 43, von Luxburg).
pub fn clustered_walk_matrix(n: usize, k: usize, p_in: f64, p_out: f64, seed: u64) -> Matrix {
    assert!(k >= 1 && n >= k);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let cluster_of = |i: usize| i * k / n;
    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let p = if cluster_of(i) == cluster_of(j) { p_in } else { p_out };
            if i != j && rng.next_f64() < p {
                a[(i, j)] = 1.0;
            }
        }
        a[(j, j)] = 1.0; // self loop keeps every column substochastic-safe
    }
    // Column-normalize: W = A·D⁻¹ (walk moves along columns).
    for j in 0..n {
        let s: f64 = a.col(j).iter().sum();
        for v in a.col_mut(j) {
            *v /= s;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_walk_matrix_is_column_stochastic() {
        let w = clustered_walk_matrix(30, 3, 0.8, 0.02, 4);
        for j in 0..30 {
            let s: f64 = w.col(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_is_reproducible_and_bounded() {
        let a = uniform(10, 10, 42);
        let b = uniform(10, 10, 42);
        assert_eq!(a, b);
        let c = uniform(10, 10, 43);
        assert!(a != c);
        assert!(a.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn indexed_entries_are_order_independent() {
        let m = uniform_indexed_matrix(8, 8, 7);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(m[(i, j)], uniform_entry(7, i, j));
            }
        }
        // Not all identical, roughly centered.
        let mean: f64 = m.as_slice().iter().sum::<f64>() / 64.0;
        assert!(mean.abs() < 0.25);
    }

    #[test]
    fn google_matrix_is_column_stochastic() {
        let g = google_matrix(20, 0.85, 3, 5);
        for j in 0..20 {
            let s: f64 = g.col(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "col {j} sums to {s}");
            assert!(g.col(j).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn hessenberg_generator_structure() {
        let h = diag_dominant_hessenberg(&[1.0, 2.0, 3.0, 4.0], 1);
        for j in 0..4 {
            for i in j + 2..4 {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
    }
}
