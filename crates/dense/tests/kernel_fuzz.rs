//! Cross-ISA kernel-equivalence battery: the packed register-tiled GEMM
//! (and the pre-packed-A variant) under **every detected ISA and a sweep of
//! thread counts** against two oracles over seeded *adversarial* shapes —
//! everything that exercises fringe/remainder tiles, the KC block boundary,
//! zero-padding, and strided sub-matrix views.
//!
//! Oracles and tolerances (the DESIGN.md §14 determinism contract):
//!
//! * the naive triple-loop [`gemm_naive`] anchors absolute correctness;
//! * the forced-scalar packed kernel is the bitwise reference for its own
//!   contraction class: scalar results must match it to **0 ulp** at every
//!   thread count;
//! * fused ISAs (AVX2/AVX-512/NEON) differ from scalar only by the fused
//!   multiply-add rounding in the k-loop, so they must stay within
//!   `2·(k+2)·ε·(|α|·Σ|a||b| + |β·c|)` of the scalar reference per element
//!   (≤ 2 ulp · K) — and must be **bitwise identical to each other** and
//!   across thread counts;
//! * `gemm` and `gemm_packed_a` must agree to 0 ulp in every configuration.
//!
//! The battery counts every (ISA × threads) configuration it actually ran;
//! a host that silently exercised only the scalar path fails the assertion,
//! and CI pins the expected ISA set via `FT_REQUIRE_ISAS` (comma-separated
//! names that must be both detected and exercised).
//!
//! The ABFT layer routes checksum-column updates through these exact
//! kernels; a silent fringe-tile bug would corrupt checksums in ways the
//! recovery math then faithfully propagates. This suite exists so that can
//! never happen silently — on any ISA.
//!
//! Deterministic: the seed is fixed (override with `FT_FUZZ_SEED` to
//! explore a different corner of the space; CI pins it).

use ft_dense::level3::{
    blocking, detected_isas, gemm, gemm_naive, gemm_packed_a, set_isa_override, set_threads_override, PackedA, MR, NR,
};
use ft_dense::rng::Xoshiro256;
use ft_dense::simd::Isa;
use ft_dense::{Matrix, Trans, EPS};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// ISA/thread overrides are process-global; every test that flips them (or
/// relies on them being stable across two calls) holds this lock.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Lock + RAII reset: overrides always return to the env defaults, even if
/// the test panics mid-sweep.
struct OverrideGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl OverrideGuard {
    fn take() -> OverrideGuard {
        OverrideGuard(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        set_isa_override(None);
        set_threads_override(None);
    }
}

fn fuzz_seed() -> u64 {
    std::env::var("FT_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// The interesting extents for any of m/n/k: tiny shapes (1..=17 covers
/// every MR/NR fringe combination), the register-tile edges, and the KC
/// cache-block boundary where the fused-β handoff (β on the first k-block,
/// accumulate afterwards) happens.
fn interesting_extents() -> Vec<usize> {
    let kc = blocking().kc;
    let mut v: Vec<usize> = (1..=17).collect();
    v.extend_from_slice(&[MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 2 * MR + 3, 3 * NR + 1]);
    v.extend_from_slice(&[kc - 1, kc, kc + 1]);
    v.sort_unstable();
    v.dedup();
    v
}

const COEFFS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];

/// Thread counts every configuration sweeps (`FT_GEMM_THREADS ∈ {1,2,4}`).
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Fill an `(rows × cols)` buffer with leading dimension `ld`, garbage in
/// the stride gaps (NaN — so any kernel touching out-of-window memory is
/// caught by the comparison, and any β=0 read of C poisons the result).
fn strided_with_nan_gaps(rng: &mut Xoshiro256, rows: usize, cols: usize, ld: usize) -> Vec<f64> {
    let len = if cols == 0 { 0 } else { ld * (cols - 1) + rows };
    let mut buf = vec![f64::NAN; len];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = rng.range_f64(-1.0, 1.0);
        }
    }
    buf
}

/// Per-element magnitude bound `|α|·Σ_l |a(i,l)·b(l,j)| + |β·c(i,j)|` — the
/// condition-style denominator of the fused-vs-scalar rounding bound.
#[allow(clippy::too_many_arguments)]
fn abs_magnitude(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c0: &[f64],
    ldc: usize,
) -> Matrix {
    let at = |i: usize, l: usize| match transa {
        Trans::No => a[i + l * lda],
        Trans::Yes => a[l + i * lda],
    };
    let bt = |l: usize, j: usize| match transb {
        Trans::No => b[l + j * ldb],
        Trans::Yes => b[j + l * ldb],
    };
    Matrix::from_fn(m, n, |i, j| {
        let mut s = 0.0;
        for l in 0..k {
            s += (at(i, l) * bt(l, j)).abs();
        }
        let ct = if beta == 0.0 { 0.0 } else { (beta * c0[i + j * ldc]).abs() };
        alpha.abs() * s + ct
    })
}

#[test]
fn cross_isa_differential_battery() {
    let _guard = OverrideGuard::take();
    let isas = detected_isas();
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed());
    let extents = interesting_extents();
    let pick = |rng: &mut Xoshiro256, v: &[usize]| v[rng.range_usize(0, v.len())];
    let rounds: usize = std::env::var("FT_FUZZ_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(400);

    let mut exercised: BTreeSet<&'static str> = BTreeSet::new();
    let mut configs_run: usize = 0;

    for round in 0..rounds {
        let m = pick(&mut rng, &extents);
        let n = pick(&mut rng, &extents);
        let k = pick(&mut rng, &extents);
        let transa = if rng.next_below(2) == 0 { Trans::No } else { Trans::Yes };
        let transb = if rng.next_below(2) == 0 { Trans::No } else { Trans::Yes };
        let alpha = COEFFS[rng.range_usize(0, COEFFS.len())];
        let beta = COEFFS[rng.range_usize(0, COEFFS.len())];

        let (ar, ac) = if transa.is_trans() { (k, m) } else { (m, k) };
        let (br, bc) = if transb.is_trans() { (n, k) } else { (k, n) };
        // Strided views: ld strictly larger than rows half the time, with
        // NaN poison in the gaps.
        let lda = ar.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let ldb = br.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let ldc = m.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let a = strided_with_nan_gaps(&mut rng, ar, ac, lda);
        let b = strided_with_nan_gaps(&mut rng, br, bc, ldb);
        let c0 = strided_with_nan_gaps(&mut rng, m, n, ldc);

        let label =
            format!("round {round}: m={m} n={n} k={k} {transa:?}{transb:?} α={alpha} β={beta} lda={lda} ldb={ldb} ldc={ldc}");

        let mut c_ref = c0.clone();
        gemm_naive(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_ref, ldc);
        let want = Matrix::from_strided(m, n, &c_ref, ldc);
        // β = 0 with NaN-poisoned C must still produce finite output.
        if beta != 0.0 || c0.iter().all(|v| v.is_finite()) {
            assert!(want.as_slice().iter().all(|v| v.is_finite()), "oracle produced non-finite values: {label}");
        }
        let mag = abs_magnitude(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &c0, ldc);

        // Bitwise reference per contraction class: forced-scalar, 1 thread.
        set_isa_override(Some(Isa::Scalar));
        set_threads_override(Some(1));
        let mut c_scalar = c0.clone();
        gemm(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_scalar, ldc);

        let pa = PackedA::pack(transa, m, k, &a, lda);
        // First fused result seen this round — every other fused config
        // must match it to 0 ulp (cross-vector-ISA determinism).
        let mut fused_ref: Option<(Vec<f64>, &'static str, usize)> = None;

        for &isa in isas {
            for &t in &THREAD_SWEEP {
                set_isa_override(Some(isa));
                set_threads_override(Some(t));
                let clabel = format!("{label} [isa={} threads={t}]", isa.name());

                let mut c1 = c0.clone();
                gemm(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c1, ldc);
                let mut c2 = c0.clone();
                gemm_packed_a(&pa, transb, n, alpha, &b, ldb, beta, &mut c2, ldc);

                // Pre-packed path is bitwise the pack-on-the-fly path.
                for (x, y) in c1.iter().zip(&c2) {
                    assert_eq!(x.to_bits(), y.to_bits(), "gemm vs gemm_packed_a drift: {clabel}");
                }
                // Outside the m×n window, C must be untouched (stride gaps
                // keep their NaN poison; bytes compare equal via to_bits).
                for (idx, (&new, &old)) in c1.iter().zip(c0.iter()).enumerate() {
                    let j = idx / ldc;
                    let i = idx % ldc;
                    if i >= m || j >= n {
                        assert_eq!(new.to_bits(), old.to_bits(), "touched C outside the window at ({i},{j}): {clabel}");
                    }
                }
                // Absolute correctness vs the naive oracle.
                let got = Matrix::from_strided(m, n, &c1, ldc);
                let d = got.max_abs_diff(&want);
                assert!(d < 1e-12 * (k.max(1) as f64), "vs naive: diff {d} at {clabel}");

                if isa.fused() {
                    // Fused class: per-element rounding bound vs scalar…
                    for j in 0..n {
                        for i in 0..m {
                            let diff = (c1[i + j * ldc] - c_scalar[i + j * ldc]).abs();
                            let bound = 2.0 * (k as f64 + 2.0) * EPS * mag[(i, j)];
                            assert!(
                                diff <= bound,
                                "fused-vs-scalar bound broken at ({i},{j}): diff {diff:e} > {bound:e} at {clabel}"
                            );
                        }
                    }
                    // …and 0 ulp vs every other fused ISA and thread count.
                    match &fused_ref {
                        None => fused_ref = Some((c1, isa.name(), t)),
                        Some((f, fisa, ft)) => {
                            for (x, y) in c1.iter().zip(f) {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "fused ISAs disagree bitwise ({} t={t} vs {fisa} t={ft}): {label}",
                                    isa.name()
                                );
                            }
                        }
                    }
                } else {
                    // Scalar class: bitwise stable at every thread count.
                    for (x, y) in c1.iter().zip(&c_scalar) {
                        assert_eq!(x.to_bits(), y.to_bits(), "scalar class not bitwise stable: {clabel}");
                    }
                }
                exercised.insert(isa.name());
                configs_run += 1;
            }
        }
    }

    // Skip counter: every detected ISA ran every thread count, every round.
    assert_eq!(configs_run, rounds * isas.len() * THREAD_SWEEP.len(), "battery silently skipped configurations");
    for isa in isas {
        assert!(exercised.contains(isa.name()), "detected ISA {} never exercised", isa.name());
    }
    // CI pins the hardware contract: these ISAs must exist AND have run.
    if let Ok(req) = std::env::var("FT_REQUIRE_ISAS") {
        for name in req.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let isa = Isa::from_name(name).unwrap_or_else(|| panic!("FT_REQUIRE_ISAS contains unknown ISA {name:?}"));
            assert!(
                detected_isas().contains(&isa) && exercised.contains(isa.name()),
                "FT_REQUIRE_ISAS={req}: ISA {name} was not exercised (detected: {:?})",
                detected_isas().iter().map(|i| i.name()).collect::<Vec<_>>()
            );
        }
    }
}

/// β = 0 must *never* read C — NaN in every C slot, finite everywhere
/// after — on every detected ISA.
#[test]
fn beta_zero_never_reads_c_any_shape_any_isa() {
    let _guard = OverrideGuard::take();
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed() ^ 0x5EED);
    for &isa in detected_isas() {
        set_isa_override(Some(isa));
        for &m in &[1usize, MR - 1, MR, MR + 1, 13, 2 * MR + 1] {
            for &n in &[1usize, NR - 1, NR, NR + 1, 11, 2 * NR + 1] {
                let k = 1 + (rng.next_below(16) as usize);
                let a = Matrix::from_fn(m, k, |_, _| rng.range_f64(-1.0, 1.0));
                let b = Matrix::from_fn(k, n, |_, _| rng.range_f64(-1.0, 1.0));
                let mut c = vec![f64::NAN; m * n];
                gemm(Trans::No, Trans::No, m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0, &mut c, m);
                assert!(c.iter().all(|v| v.is_finite()), "β=0 read C at m={m} n={n} k={k} isa={}", isa.name());
                let pa = PackedA::pack(Trans::No, m, k, a.as_slice(), m);
                let mut c2 = vec![f64::NAN; m * n];
                gemm_packed_a(&pa, Trans::No, n, 1.0, b.as_slice(), k, 0.0, &mut c2, m);
                assert!(c2.iter().all(|v| v.is_finite()), "packed-A β=0 read C at m={m} n={n} k={k} isa={}", isa.name());
            }
        }
    }
}

/// A pre-packed A must give *bitwise* the same answer as the pack-on-the-fly
/// path on every ISA: both run the identical register tile over identical
/// packed bytes, and the recovery replay upstairs relies on kernel
/// determinism.
#[test]
fn prepacked_bitwise_equals_packed_any_isa() {
    let _guard = OverrideGuard::take();
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed() ^ 0xB17);
    let kc = blocking().kc;
    for &isa in detected_isas() {
        set_isa_override(Some(isa));
        for &(m, k) in &[
            (5usize, 3usize),
            (MR + 1, NR + 1),
            (40, 17),
            (9, kc + 2),
            (2 * MR + 5, 2 * MR),
        ] {
            let n = 1 + (rng.next_below(12) as usize);
            let a = Matrix::from_fn(m, k, |_, _| rng.range_f64(-1.0, 1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.range_f64(-1.0, 1.0));
            let c0: Vec<f64> = (0..m * n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let mut c1 = c0.clone();
            gemm(Trans::No, Trans::No, m, n, k, -0.5, a.as_slice(), m, b.as_slice(), k, 0.5, &mut c1, m);
            let pa = PackedA::pack(Trans::No, m, k, a.as_slice(), m);
            let mut c2 = c0.clone();
            gemm_packed_a(&pa, Trans::No, n, -0.5, b.as_slice(), k, 0.5, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} n={n} k={k} isa={}", isa.name());
            }
        }
    }
}
