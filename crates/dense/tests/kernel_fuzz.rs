//! Kernel-equivalence fuzzing: the packed register-tiled GEMM (and the
//! pre-packed-A variant) against the naive triple-loop oracle over seeded
//! *adversarial* shapes — everything that exercises fringe/remainder tiles,
//! the KC block boundary, zero-padding, and strided sub-matrix views.
//!
//! The ABFT layer routes checksum-column updates through these exact
//! kernels; a silent fringe-tile bug would corrupt checksums in ways the
//! recovery math then faithfully propagates. This suite exists so that can
//! never happen silently.
//!
//! Deterministic: the seed is fixed (override with `FT_FUZZ_SEED` to
//! explore a different corner of the space; CI pins it).

use ft_dense::level3::{blocking, gemm, gemm_naive, gemm_packed_a, PackedA, MR, NR};
use ft_dense::rng::Xoshiro256;
use ft_dense::{Matrix, Trans};

fn fuzz_seed() -> u64 {
    std::env::var("FT_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// The interesting extents for any of m/n/k: tiny shapes (1..=17 covers
/// every MR/NR fringe combination), the register-tile edges, and the KC
/// cache-block boundary where the fused-β handoff (β on the first k-block,
/// accumulate afterwards) happens.
fn interesting_extents() -> Vec<usize> {
    let kc = blocking().kc;
    let mut v: Vec<usize> = (1..=17).collect();
    v.extend_from_slice(&[MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 2 * MR + 3, 3 * NR + 1]);
    v.extend_from_slice(&[kc - 1, kc, kc + 1]);
    v.sort_unstable();
    v.dedup();
    v
}

const COEFFS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];

/// Fill an `(rows × cols)` buffer with leading dimension `ld`, garbage in
/// the stride gaps (NaN — so any kernel touching out-of-window memory is
/// caught by the comparison, and any β=0 read of C poisons the result).
fn strided_with_nan_gaps(rng: &mut Xoshiro256, rows: usize, cols: usize, ld: usize) -> Vec<f64> {
    let len = if cols == 0 { 0 } else { ld * (cols - 1) + rows };
    let mut buf = vec![f64::NAN; len];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = rng.range_f64(-1.0, 1.0);
        }
    }
    buf
}

#[test]
fn packed_gemm_matches_naive_on_adversarial_shapes() {
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed());
    let extents = interesting_extents();
    let pick = |rng: &mut Xoshiro256, v: &[usize]| v[rng.range_usize(0, v.len())];
    let rounds: usize = std::env::var("FT_FUZZ_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(400);

    for round in 0..rounds {
        let m = pick(&mut rng, &extents);
        let n = pick(&mut rng, &extents);
        let k = pick(&mut rng, &extents);
        let transa = if rng.next_below(2) == 0 { Trans::No } else { Trans::Yes };
        let transb = if rng.next_below(2) == 0 { Trans::No } else { Trans::Yes };
        let alpha = COEFFS[rng.range_usize(0, COEFFS.len())];
        let beta = COEFFS[rng.range_usize(0, COEFFS.len())];

        let (ar, ac) = if transa.is_trans() { (k, m) } else { (m, k) };
        let (br, bc) = if transb.is_trans() { (n, k) } else { (k, n) };
        // Strided views: ld strictly larger than rows half the time, with
        // NaN poison in the gaps.
        let lda = ar.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let ldb = br.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let ldc = m.max(1) + (rng.next_below(2) as usize) * rng.range_usize(1, 6);
        let a = strided_with_nan_gaps(&mut rng, ar, ac, lda);
        let b = strided_with_nan_gaps(&mut rng, br, bc, ldb);
        let c0 = strided_with_nan_gaps(&mut rng, m, n, ldc);

        let label =
            format!("round {round}: m={m} n={n} k={k} {transa:?}{transb:?} α={alpha} β={beta} lda={lda} ldb={ldb} ldc={ldc}");

        let mut c_ref = c0.clone();
        gemm_naive(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_ref, ldc);
        let want = Matrix::from_strided(m, n, &c_ref, ldc);
        // β = 0 with NaN-poisoned C must still produce finite output.
        if beta != 0.0 || c0.iter().all(|v| v.is_finite()) {
            assert!(want.as_slice().iter().all(|v| v.is_finite()), "oracle produced non-finite values: {label}");
        }

        let mut c1 = c0.clone();
        gemm(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c1, ldc);
        let got = Matrix::from_strided(m, n, &c1, ldc);
        let d = got.max_abs_diff(&want);
        assert!(d < 1e-12 * (k.max(1) as f64), "gemm vs naive: diff {d} at {label}");

        let pa = PackedA::pack(transa, m, k, &a, lda);
        let mut c2 = c0.clone();
        gemm_packed_a(&pa, transb, n, alpha, &b, ldb, beta, &mut c2, ldc);
        let got2 = Matrix::from_strided(m, n, &c2, ldc);
        let d2 = got2.max_abs_diff(&want);
        assert!(d2 < 1e-12 * (k.max(1) as f64), "gemm_packed_a vs naive: diff {d2} at {label}");

        // Outside the m×n window, C must be untouched (stride gaps keep
        // their NaN poison; bytes compare equal via to_bits).
        for (idx, (&new, &old)) in c1.iter().zip(c0.iter()).enumerate() {
            let j = idx / ldc;
            let i = idx % ldc;
            if i >= m || j >= n {
                assert_eq!(new.to_bits(), old.to_bits(), "gemm touched C outside the window at ({i},{j}): {label}");
            }
        }
    }
}

/// β = 0 must *never* read C — NaN in every C slot, finite everywhere after.
#[test]
fn beta_zero_never_reads_c_any_shape() {
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed() ^ 0x5EED);
    for &m in &[1usize, MR - 1, MR, MR + 1, 13] {
        for &n in &[1usize, NR - 1, NR, NR + 1, 11] {
            let k = 1 + (rng.next_below(16) as usize);
            let a = Matrix::from_fn(m, k, |_, _| rng.range_f64(-1.0, 1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.range_f64(-1.0, 1.0));
            let mut c = vec![f64::NAN; m * n];
            gemm(Trans::No, Trans::No, m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0, &mut c, m);
            assert!(c.iter().all(|v| v.is_finite()), "β=0 read C at m={m} n={n} k={k}");
            let pa = PackedA::pack(Trans::No, m, k, a.as_slice(), m);
            let mut c2 = vec![f64::NAN; m * n];
            gemm_packed_a(&pa, Trans::No, n, 1.0, b.as_slice(), k, 0.0, &mut c2, m);
            assert!(c2.iter().all(|v| v.is_finite()), "packed-A β=0 read C at m={m} n={n} k={k}");
        }
    }
}

/// A pre-packed A must give *bitwise* the same answer as the pack-on-the-fly
/// path: both run the identical micro-kernel over identical packed bytes,
/// and the recovery replay upstairs relies on kernel determinism.
#[test]
fn prepacked_bitwise_equals_packed() {
    let mut rng = Xoshiro256::seed_from_u64(fuzz_seed() ^ 0xB17);
    let kc = blocking().kc;
    for &(m, k) in &[(5usize, 3usize), (MR + 1, NR + 1), (40, 17), (9, kc + 2)] {
        let n = 1 + (rng.next_below(12) as usize);
        let a = Matrix::from_fn(m, k, |_, _| rng.range_f64(-1.0, 1.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.range_f64(-1.0, 1.0));
        let c0: Vec<f64> = (0..m * n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let mut c1 = c0.clone();
        gemm(Trans::No, Trans::No, m, n, k, -0.5, a.as_slice(), m, b.as_slice(), k, 0.5, &mut c1, m);
        let pa = PackedA::pack(Trans::No, m, k, a.as_slice(), m);
        let mut c2 = c0.clone();
        gemm_packed_a(&pa, Trans::No, n, -0.5, b.as_slice(), k, 0.5, &mut c2, m);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.to_bits(), y.to_bits(), "m={m} n={n} k={k}");
        }
    }
}
