//! Property tests of the BLAS kernels against naive oracles and algebraic
//! identities, over randomized shapes, leading dimensions and values.
//!
//! Formerly proptest-based; rewritten as seeded loops over the internal
//! PRNG ([`ft_dense::rng`]) so the suite runs in the dependency-free
//! default build. Each test draws its cases from a fixed-seed stream, so
//! failures reproduce exactly; on failure the case index is in the panic
//! message.

use ft_dense::gen::uniform;
use ft_dense::level1::{axpy, dot, nrm2, scal};
use ft_dense::level2::{gemv, ger, trmv};
use ft_dense::level3::{gemm, gemm_naive, trmm};
use ft_dense::rng::Xoshiro256;
use ft_dense::{Diag, Matrix, Side, Trans, UpLo};

const CASES: usize = 40;

fn approx(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-10 * scale.max(1.0)
}

/// gemm against the triple-loop oracle, any transposes, any alpha/beta,
/// including sub-matrix addressing through a larger leading dimension.
#[test]
fn gemm_matches_oracle() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0001);
    for case in 0..CASES {
        let (m, n, k) = (rng.range_usize(1, 40), rng.range_usize(1, 40), rng.range_usize(1, 40));
        let (ta, tb) = (rng.next_below(2) == 1, rng.next_below(2) == 1);
        let (alpha, beta) = (rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0));
        let pad = rng.range_usize(0, 5);
        let seed = rng.next_below(1000);
        let (transa, transb) = (if ta { Trans::Yes } else { Trans::No }, if tb { Trans::Yes } else { Trans::No });
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let (br, bc) = if tb { (n, k) } else { (k, n) };
        // Embed operands in padded buffers to exercise lda != rows.
        let lda = ar + pad;
        let ldb = br + pad;
        let ldc = m + pad;
        let abig = uniform(lda, ac, seed);
        let bbig = uniform(ldb, bc, seed + 1);
        let cbig0 = uniform(ldc, n, seed + 2);
        let mut c1 = cbig0.clone();
        let mut c2 = cbig0.clone();
        gemm(
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            abig.as_slice(),
            lda,
            bbig.as_slice(),
            ldb,
            beta,
            c1.as_mut_slice(),
            ldc,
        );
        gemm_naive(
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            abig.as_slice(),
            lda,
            bbig.as_slice(),
            ldb,
            beta,
            c2.as_mut_slice(),
            ldc,
        );
        let d = c1.max_abs_diff(&c2);
        assert!(d < 1e-10, "case {case}: diff {d}");
        // Padding rows must be untouched.
        for j in 0..n {
            for i in m..ldc {
                assert_eq!(c1[(i, j)], cbig0[(i, j)], "case {case}: padding touched");
            }
        }
    }
}

/// gemv is gemm with one column.
#[test]
fn gemv_is_thin_gemm() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0002);
    for case in 0..CASES {
        let (m, n) = (rng.range_usize(1, 50), rng.range_usize(1, 50));
        let t = rng.next_below(2) == 1;
        let (alpha, beta) = (rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0));
        let seed = rng.next_below(1000);
        let trans = if t { Trans::Yes } else { Trans::No };
        let a = uniform(m, n, seed);
        let (xl, yl) = if t { (m, n) } else { (n, m) };
        let x = uniform(xl, 1, seed + 1);
        let y0 = uniform(yl, 1, seed + 2);
        let mut y = y0.as_slice().to_vec();
        gemv(trans, m, n, alpha, a.as_slice(), m, x.as_slice(), beta, &mut y);
        let mut want = y0.clone();
        gemm_naive(trans, Trans::No, yl, 1, xl, alpha, a.as_slice(), m, x.as_slice(), xl, beta, want.as_mut_slice(), yl);
        for i in 0..yl {
            assert!(approx(y[i], want[(i, 0)], 10.0), "case {case}: row {i}");
        }
    }
}

/// ger: A + αxyᵀ has the expected entries.
#[test]
fn ger_entries() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0003);
    for case in 0..CASES {
        let (m, n) = (rng.range_usize(1, 30), rng.range_usize(1, 30));
        let alpha = rng.range_f64(-2.0, 2.0);
        let seed = rng.next_below(1000);
        let a0 = uniform(m, n, seed);
        let x = uniform(m, 1, seed + 1);
        let y = uniform(n, 1, seed + 2);
        let mut a = a0.clone();
        ger(m, n, alpha, x.as_slice(), y.as_slice(), a.as_mut_slice(), m);
        for j in 0..n {
            for i in 0..m {
                assert!(approx(a[(i, j)], a0[(i, j)] + alpha * x[(i, 0)] * y[(j, 0)], 10.0), "case {case}: ({i}, {j})");
            }
        }
    }
}

/// trmv agrees with a densified triangular multiply.
#[test]
fn trmv_matches_dense() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0004);
    for case in 0..CASES {
        let n = rng.range_usize(1, 25);
        let upper = rng.next_below(2) == 1;
        let t = rng.next_below(2) == 1;
        let unit = rng.next_below(2) == 1;
        let seed = rng.next_below(1000);
        let uplo = if upper { UpLo::Upper } else { UpLo::Lower };
        let trans = if t { Trans::Yes } else { Trans::No };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let a = uniform(n, n, seed);
        let dense = Matrix::from_fn(n, n, |i, j| {
            let inside = if upper { i <= j } else { i >= j };
            if i == j {
                if unit {
                    1.0
                } else {
                    a[(i, j)]
                }
            } else if inside {
                a[(i, j)]
            } else {
                0.0
            }
        });
        let x0 = uniform(n, 1, seed + 1);
        let mut x = x0.as_slice().to_vec();
        trmv(uplo, trans, diag, n, a.as_slice(), n, &mut x);
        let mut want = vec![0.0; n];
        gemv(trans, n, n, 1.0, dense.as_slice(), n, x0.as_slice(), 0.0, &mut want);
        for i in 0..n {
            assert!(approx(x[i], want[i], 10.0), "case {case}: row {i}");
        }
    }
}

/// trmm Left/Right against dense gemm.
#[test]
fn trmm_matches_dense() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0005);
    for case in 0..CASES {
        let (m, n) = (rng.range_usize(1, 20), rng.range_usize(1, 20));
        let left = rng.next_below(2) == 1;
        let upper = rng.next_below(2) == 1;
        let t = rng.next_below(2) == 1;
        let unit = rng.next_below(2) == 1;
        let alpha = rng.range_f64(-2.0, 2.0);
        let seed = rng.next_below(1000);
        let side = if left { Side::Left } else { Side::Right };
        let ka = if left { m } else { n };
        let uplo = if upper { UpLo::Upper } else { UpLo::Lower };
        let trans = if t { Trans::Yes } else { Trans::No };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let a = uniform(ka, ka, seed);
        let dense = Matrix::from_fn(ka, ka, |i, j| {
            let inside = if upper { i <= j } else { i >= j };
            if i == j {
                if unit {
                    1.0
                } else {
                    a[(i, j)]
                }
            } else if inside {
                a[(i, j)]
            } else {
                0.0
            }
        });
        let b0 = uniform(m, n, seed + 1);
        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, m, n, alpha, a.as_slice(), ka, b.as_mut_slice(), m);
        let mut want = Matrix::zeros(m, n);
        match side {
            Side::Left => {
                gemm_naive(trans, Trans::No, m, n, m, alpha, dense.as_slice(), m, b0.as_slice(), m, 0.0, want.as_mut_slice(), m)
            }
            Side::Right => {
                gemm_naive(Trans::No, trans, m, n, n, alpha, b0.as_slice(), m, dense.as_slice(), n, 0.0, want.as_mut_slice(), m)
            }
        }
        assert!(b.max_abs_diff(&want) < 1e-10, "case {case}");
    }
}

/// Level-1 algebra: linearity of dot, Cauchy–Schwarz, scal/axpy identities.
#[test]
fn level1_identities() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0006);
    for case in 0..CASES {
        let n = rng.range_usize(0, 100);
        let alpha = rng.range_f64(-3.0, 3.0);
        let seed = rng.next_below(1000);
        let x = uniform(n.max(1), 1, seed).as_slice()[..n].to_vec();
        let y = uniform(n.max(1), 1, seed + 1).as_slice()[..n].to_vec();
        // |x·y| ≤ ‖x‖‖y‖
        assert!(dot(&x, &y).abs() <= nrm2(&x) * nrm2(&y) + 1e-12, "case {case}");
        // dot(αx, y) = α dot(x, y)
        let mut ax = x.clone();
        scal(alpha, &mut ax);
        assert!(approx(dot(&ax, &y), alpha * dot(&x, &y), 100.0), "case {case}");
        // axpy then subtract = original
        let mut z = y.clone();
        axpy(alpha, &x, &mut z);
        axpy(-alpha, &x, &mut z);
        for i in 0..n {
            assert!(approx(z[i], y[i], 10.0), "case {case}: row {i}");
        }
        // ‖x‖₂² ≈ dot(x, x)
        assert!(approx(nrm2(&x) * nrm2(&x), dot(&x, &x), 100.0), "case {case}");
    }
}

/// gemm associativity-with-identity and zero annihilation.
#[test]
fn gemm_identity_and_zero() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE_0007);
    for case in 0..CASES {
        let n = rng.range_usize(1, 30);
        let seed = rng.next_below(1000);
        let a = uniform(n, n, seed);
        let id = Matrix::identity(n);
        let mut c = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, id.as_slice(), n, 0.0, c.as_mut_slice(), n);
        assert!(c.max_abs_diff(&a) < 1e-12, "case {case}");
        let z = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, z.as_slice(), n, 0.0, c.as_mut_slice(), n);
        assert!(c.as_slice().iter().all(|&v| v == 0.0), "case {case}");
    }
}
