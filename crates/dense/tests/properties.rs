//! Property-based tests of the BLAS kernels against naive oracles and
//! algebraic identities, over randomized shapes, leading dimensions and
//! values.

use ft_dense::gen::uniform;
use ft_dense::level1::{axpy, dot, nrm2, scal};
use ft_dense::level2::{gemv, ger, trmv};
use ft_dense::level3::{gemm, gemm_naive, trmm};
use ft_dense::{Diag, Matrix, Side, Trans, UpLo};
use proptest::prelude::*;

fn approx(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-10 * scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// gemm against the triple-loop oracle, any transposes, any alpha/beta,
    /// including sub-matrix addressing through a larger leading dimension.
    #[test]
    fn prop_gemm_matches_oracle(
        m in 1usize..40, n in 1usize..40, k in 1usize..40,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        pad in 0usize..5, seed in 0u64..1000,
    ) {
        let (transa, transb) = (
            if ta { Trans::Yes } else { Trans::No },
            if tb { Trans::Yes } else { Trans::No },
        );
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let (br, bc) = if tb { (n, k) } else { (k, n) };
        // Embed operands in padded buffers to exercise lda != rows.
        let lda = ar + pad;
        let ldb = br + pad;
        let ldc = m + pad;
        let abig = uniform(lda, ac, seed);
        let bbig = uniform(ldb, bc, seed + 1);
        let cbig0 = uniform(ldc, n, seed + 2);
        let mut c1 = cbig0.clone();
        let mut c2 = cbig0.clone();
        gemm(transa, transb, m, n, k, alpha, abig.as_slice(), lda, bbig.as_slice(), ldb, beta, c1.as_mut_slice(), ldc);
        gemm_naive(transa, transb, m, n, k, alpha, abig.as_slice(), lda, bbig.as_slice(), ldb, beta, c2.as_mut_slice(), ldc);
        let d = c1.max_abs_diff(&c2);
        prop_assert!(d < 1e-10, "diff {d}");
        // Padding rows must be untouched.
        for j in 0..n {
            for i in m..ldc {
                prop_assert_eq!(c1[(i, j)], cbig0[(i, j)]);
            }
        }
    }

    /// gemv is gemm with one column.
    #[test]
    fn prop_gemv_is_thin_gemm(
        m in 1usize..50, n in 1usize..50,
        t in proptest::bool::ANY,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let trans = if t { Trans::Yes } else { Trans::No };
        let a = uniform(m, n, seed);
        let (xl, yl) = if t { (m, n) } else { (n, m) };
        let x = uniform(xl, 1, seed + 1);
        let y0 = uniform(yl, 1, seed + 2);
        let mut y = y0.as_slice().to_vec();
        gemv(trans, m, n, alpha, a.as_slice(), m, x.as_slice(), beta, &mut y);
        let mut want = y0.clone();
        gemm_naive(trans, Trans::No, yl, 1, xl, alpha, a.as_slice(), m, x.as_slice(), xl, beta, want.as_mut_slice(), yl);
        for i in 0..yl {
            prop_assert!(approx(y[i], want[(i, 0)], 10.0));
        }
    }

    /// ger: A + αxyᵀ has the expected entries.
    #[test]
    fn prop_ger_entries(m in 1usize..30, n in 1usize..30, alpha in -2.0f64..2.0, seed in 0u64..1000) {
        let a0 = uniform(m, n, seed);
        let x = uniform(m, 1, seed + 1);
        let y = uniform(n, 1, seed + 2);
        let mut a = a0.clone();
        ger(m, n, alpha, x.as_slice(), y.as_slice(), a.as_mut_slice(), m);
        for j in 0..n {
            for i in 0..m {
                prop_assert!(approx(a[(i, j)], a0[(i, j)] + alpha * x[(i, 0)] * y[(j, 0)], 10.0));
            }
        }
    }

    /// trmv/trmm agree with a densified triangular multiply.
    #[test]
    fn prop_trmv_matches_dense(
        n in 1usize..25,
        upper in proptest::bool::ANY,
        t in proptest::bool::ANY,
        unit in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let uplo = if upper { UpLo::Upper } else { UpLo::Lower };
        let trans = if t { Trans::Yes } else { Trans::No };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let a = uniform(n, n, seed);
        let dense = Matrix::from_fn(n, n, |i, j| {
            let inside = if upper { i <= j } else { i >= j };
            if i == j {
                if unit { 1.0 } else { a[(i, j)] }
            } else if inside { a[(i, j)] } else { 0.0 }
        });
        let x0 = uniform(n, 1, seed + 1);
        let mut x = x0.as_slice().to_vec();
        trmv(uplo, trans, diag, n, a.as_slice(), n, &mut x);
        let mut want = vec![0.0; n];
        gemv(trans, n, n, 1.0, dense.as_slice(), n, x0.as_slice(), 0.0, &mut want);
        for i in 0..n {
            prop_assert!(approx(x[i], want[i], 10.0));
        }
    }

    /// trmm Left/Right against dense gemm.
    #[test]
    fn prop_trmm_matches_dense(
        m in 1usize..20, n in 1usize..20,
        left in proptest::bool::ANY,
        upper in proptest::bool::ANY,
        t in proptest::bool::ANY,
        unit in proptest::bool::ANY,
        alpha in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let side = if left { Side::Left } else { Side::Right };
        let ka = if left { m } else { n };
        let uplo = if upper { UpLo::Upper } else { UpLo::Lower };
        let trans = if t { Trans::Yes } else { Trans::No };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let a = uniform(ka, ka, seed);
        let dense = Matrix::from_fn(ka, ka, |i, j| {
            let inside = if upper { i <= j } else { i >= j };
            if i == j {
                if unit { 1.0 } else { a[(i, j)] }
            } else if inside { a[(i, j)] } else { 0.0 }
        });
        let b0 = uniform(m, n, seed + 1);
        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, m, n, alpha, a.as_slice(), ka, b.as_mut_slice(), m);
        let mut want = Matrix::zeros(m, n);
        match side {
            Side::Left => gemm_naive(trans, Trans::No, m, n, m, alpha, dense.as_slice(), m, b0.as_slice(), m, 0.0, want.as_mut_slice(), m),
            Side::Right => gemm_naive(Trans::No, trans, m, n, n, alpha, b0.as_slice(), m, dense.as_slice(), n, 0.0, want.as_mut_slice(), m),
        }
        prop_assert!(b.max_abs_diff(&want) < 1e-10);
    }

    /// Level-1 algebra: linearity of dot, Cauchy–Schwarz, scal/axpy identities.
    #[test]
    fn prop_level1_identities(n in 0usize..100, alpha in -3.0f64..3.0, seed in 0u64..1000) {
        let x = uniform(n.max(1), 1, seed).as_slice()[..n].to_vec();
        let y = uniform(n.max(1), 1, seed + 1).as_slice()[..n].to_vec();
        // |x·y| ≤ ‖x‖‖y‖
        prop_assert!(dot(&x, &y).abs() <= nrm2(&x) * nrm2(&y) + 1e-12);
        // dot(αx, y) = α dot(x, y)
        let mut ax = x.clone();
        scal(alpha, &mut ax);
        prop_assert!(approx(dot(&ax, &y), alpha * dot(&x, &y), 100.0));
        // axpy then subtract = original
        let mut z = y.clone();
        axpy(alpha, &x, &mut z);
        axpy(-alpha, &x, &mut z);
        for i in 0..n {
            prop_assert!(approx(z[i], y[i], 10.0));
        }
        // ‖x‖₂² ≈ dot(x, x)
        prop_assert!(approx(nrm2(&x) * nrm2(&x), dot(&x, &x), 100.0));
    }

    /// gemm associativity-with-identity and zero annihilation.
    #[test]
    fn prop_gemm_identity_and_zero(n in 1usize..30, seed in 0u64..1000) {
        let a = uniform(n, n, seed);
        let id = Matrix::identity(n);
        let mut c = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, id.as_slice(), n, 0.0, c.as_mut_slice(), n);
        prop_assert!(c.max_abs_diff(&a) < 1e-12);
        let z = Matrix::zeros(n, n);
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, z.as_slice(), n, 0.0, c.as_mut_slice(), n);
        prop_assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
