//! Single-core GEMM throughput probe for the packed blocked kernel.
//!
//! ```text
//! cargo run --release -p ft-dense --example gemmperf
//! ```

use ft_dense::level3::gemm;
use ft_dense::{gen, Matrix, Trans};
use std::time::Instant;

fn main() {
    println!("packed blocked GEMM, single core:");
    for n in [256usize, 512, 1024] {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let t = Instant::now();
        gemm(Trans::No, Trans::No, n, n, n, 1.0, a.as_slice(), n, b.as_slice(), n, 0.0, c.as_mut_slice(), n);
        let dt = t.elapsed().as_secs_f64();
        println!("  n={n}: {:.2} GFLOP/s", 2.0 * (n as f64).powi(3) / dt / 1e9);
    }
}
