//! Pure admission + placement logic for the job pool.
//!
//! The scheduler owns no sockets and spawns no processes — it is a plain
//! state machine the daemon drives, which makes every backpressure and
//! placement invariant unit-testable without a single connection:
//!
//! * **Bounded queue, typed backpressure.** Admission checks tenant quota
//!   first (queued + running jobs per tenant), then global queue depth;
//!   each failure maps to a distinct [`RejectReason`] so clients can tell
//!   "you are over quota" from "the pool is busy".
//! * **Strict FIFO, no backfill.** If the head-of-line job cannot be
//!   placed, nothing behind it runs. Starvation-freedom for big jobs is
//!   worth more to a shared pool than utilization, and it keeps latency
//!   analysis honest (the bench measures what queued jobs actually wait).
//! * **Head-only batching.** The one FIFO-preserving exception: when the
//!   head is a 1-rank job, consecutive 1-rank jobs right behind it are
//!   dispatched in the same sweep (up to `batch_max`), each on its own
//!   idle slot. Small matrices stream through the pool without a
//!   round-trip through the event loop per job.

use crate::job::RejectReason;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Admission-control limits for the pool.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max jobs waiting in the FIFO (global, across tenants).
    pub queue_depth: usize,
    /// Max queued + running jobs per tenant.
    pub tenant_quota: usize,
    /// Max 1-rank jobs dispatched in one head-of-line sweep.
    pub batch_max: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { queue_depth: 16, tenant_quota: 4, batch_max: 4 }
    }
}

/// Outcome of [`Scheduler::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; the pool-assigned job id.
    Accept(u64),
    /// Refused with a typed reason; nothing was enqueued.
    Reject(RejectReason),
}

/// One placement decision from [`Scheduler::dispatch`]: which jobs start
/// now and on which slots. 1-rank batches produce `jobs.len() > 1` with
/// one slot each; a grid job produces one job spanning `slots`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    pub job: u64,
    /// Pool slots carved out for this job, in job-rank order.
    pub slots: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Queued {
    job: u64,
    ranks: usize,
}

/// The pool's admission + placement state machine.
#[derive(Debug)]
pub struct Scheduler {
    limits: Limits,
    pool: usize,
    next_job: u64,
    queue: VecDeque<Queued>,
    /// queued + running jobs per tenant (quota accounting).
    load: HashMap<u32, usize>,
    /// tenant of every admitted-but-unfinished job.
    tenant_of: HashMap<u64, u32>,
    /// ranks wanted by every admitted-but-undispatched or running job.
    ranks_of: HashMap<u64, usize>,
    idle: BTreeSet<usize>,
    draining: bool,
}

impl Scheduler {
    pub fn new(pool: usize, limits: Limits) -> Scheduler {
        Scheduler {
            limits,
            pool,
            next_job: 1,
            queue: VecDeque::new(),
            load: HashMap::new(),
            tenant_of: HashMap::new(),
            ranks_of: HashMap::new(),
            idle: (0..pool).collect(),
            draining: false,
        }
    }

    /// Total slots in the pool.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Jobs waiting in the FIFO.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True once every admitted job has completed (drain barrier).
    pub fn quiescent(&self) -> bool {
        self.queue.is_empty() && self.tenant_of.is_empty()
    }

    /// Admit or reject one job of `ranks` ranks from `tenant`. On accept,
    /// the job sits in the FIFO until [`Scheduler::dispatch`] places it.
    /// Resubmissions after a restart pin their original id via `want_id`.
    pub fn submit(&mut self, tenant: u32, ranks: usize, want_id: Option<u64>) -> Admission {
        if self.draining {
            return Admission::Reject(RejectReason::ShuttingDown);
        }
        if ranks == 0 || ranks > self.pool {
            return Admission::Reject(RejectReason::PoolTooSmall);
        }
        if self.load.get(&tenant).copied().unwrap_or(0) >= self.limits.tenant_quota {
            return Admission::Reject(RejectReason::QuotaExceeded);
        }
        if self.queue.len() >= self.limits.queue_depth {
            return Admission::Reject(RejectReason::QueueFull);
        }
        let job = match want_id {
            Some(id) => {
                self.next_job = self.next_job.max(id + 1);
                id
            }
            None => {
                let id = self.next_job;
                self.next_job += 1;
                id
            }
        };
        *self.load.entry(tenant).or_insert(0) += 1;
        self.tenant_of.insert(job, tenant);
        self.ranks_of.insert(job, ranks);
        self.queue.push_back(Queued { job, ranks });
        Admission::Accept(job)
    }

    /// Place as many jobs as the head of the queue and the idle set allow.
    /// Strict FIFO: stops at the first job that does not fit. A 1-rank
    /// head additionally pulls consecutive 1-rank followers (head-only
    /// batching), each onto its own slot.
    pub fn dispatch(&mut self) -> Vec<Dispatch> {
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            if head.ranks > self.idle.len() {
                break;
            }
            if head.ranks == 1 {
                let mut batched = 0;
                while batched < self.limits.batch_max && !self.idle.is_empty() && self.queue.front().is_some_and(|j| j.ranks == 1)
                {
                    let j = self.queue.pop_front().expect("front checked");
                    let slot = *self.idle.iter().next().expect("idle checked");
                    self.idle.remove(&slot);
                    out.push(Dispatch { job: j.job, slots: vec![slot] });
                    batched += 1;
                }
            } else {
                let j = self.queue.pop_front().expect("front checked");
                let slots: Vec<usize> = self.idle.iter().copied().take(j.ranks).collect();
                for s in &slots {
                    self.idle.remove(s);
                }
                out.push(Dispatch { job: j.job, slots });
            }
        }
        out
    }

    /// Mark a job finished (result, typed rejection, or abandonment) and
    /// release its quota. Slots return separately via
    /// [`Scheduler::release`] as each worker reports in.
    pub fn complete(&mut self, job: u64) {
        self.ranks_of.remove(&job);
        if let Some(tenant) = self.tenant_of.remove(&job) {
            if let Some(l) = self.load.get_mut(&tenant) {
                *l = l.saturating_sub(1);
                if *l == 0 {
                    self.load.remove(&tenant);
                }
            }
        }
    }

    /// Return a slot to the idle set (its worker is registered and ready).
    pub fn release(&mut self, slot: usize) {
        debug_assert!(slot < self.pool);
        self.idle.insert(slot);
    }

    /// Take a slot out of the idle set (its worker died while idle; it
    /// rejoins via [`Scheduler::release`] once the respawn registers).
    pub fn remove_idle(&mut self, slot: usize) {
        self.idle.remove(&slot);
    }

    /// Put a still-admitted job back at the head of the queue (1-rank
    /// worker-loss retry). Quota is still held; FIFO position is restored.
    pub fn requeue_front(&mut self, job: u64) {
        let ranks = self.ranks_of[&job];
        self.queue.push_front(Queued { job, ranks });
    }

    /// Stop admitting; existing queue and running jobs finish normally.
    pub fn drain(&mut self) {
        self.draining = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(pool: usize) -> Scheduler {
        Scheduler::new(pool, Limits { queue_depth: 4, tenant_quota: 2, batch_max: 3 })
    }

    fn accept(s: &mut Scheduler, tenant: u32, ranks: usize) -> u64 {
        match s.submit(tenant, ranks, None) {
            Admission::Accept(id) => id,
            Admission::Reject(r) => panic!("expected accept, got {r:?}"),
        }
    }

    #[test]
    fn tenant_quota_is_checked_before_global_queue_depth() {
        let mut s = sched(4);
        accept(&mut s, 7, 2);
        accept(&mut s, 7, 2);
        // Tenant 7 is at quota even though the queue has room.
        assert_eq!(s.submit(7, 1, None), Admission::Reject(RejectReason::QuotaExceeded));
        // Another tenant still gets in.
        accept(&mut s, 8, 1);
        accept(&mut s, 9, 1);
        // Queue depth 4 reached: global backpressure for everyone else.
        assert_eq!(s.submit(10, 1, None), Admission::Reject(RejectReason::QueueFull));
    }

    #[test]
    fn quota_frees_on_completion_not_on_dispatch() {
        let mut s = sched(4);
        let a = accept(&mut s, 7, 2);
        accept(&mut s, 7, 2);
        let d = s.dispatch();
        assert_eq!(d.len(), 2, "both fit the 4-slot pool");
        // Running jobs still count against quota.
        assert_eq!(s.submit(7, 1, None), Admission::Reject(RejectReason::QuotaExceeded));
        s.complete(a);
        assert!(matches!(s.submit(7, 1, None), Admission::Accept(_)));
    }

    #[test]
    fn oversized_jobs_and_draining_pools_reject_typed() {
        let mut s = sched(2);
        assert_eq!(s.submit(1, 3, None), Admission::Reject(RejectReason::PoolTooSmall));
        assert_eq!(s.submit(1, 0, None), Admission::Reject(RejectReason::PoolTooSmall));
        s.drain();
        assert_eq!(s.submit(1, 1, None), Admission::Reject(RejectReason::ShuttingDown));
    }

    #[test]
    fn strict_fifo_head_of_line_blocks_backfill() {
        let mut s = sched(4);
        let a = accept(&mut s, 1, 4);
        let _b = accept(&mut s, 2, 4);
        let _c = accept(&mut s, 3, 1);
        let d = s.dispatch();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, a);
        assert_eq!(d[0].slots, vec![0, 1, 2, 3]);
        // Head (4 ranks) doesn't fit; the 1-rank job behind it must NOT
        // jump the line even though a slot-sized hole never opens for it.
        for slot in 0..2 {
            s.release(slot);
        }
        assert!(s.dispatch().is_empty(), "no backfill past a blocked head");
    }

    #[test]
    fn one_rank_head_batches_consecutive_one_rank_followers_only() {
        let mut s = Scheduler::new(4, Limits { queue_depth: 8, tenant_quota: 8, batch_max: 3 });
        let a = accept(&mut s, 1, 1);
        let b = accept(&mut s, 2, 1);
        let c = accept(&mut s, 3, 1);
        let d = accept(&mut s, 4, 1); // beyond batch_max this sweep? No — new sweep picks it up.
        let e = accept(&mut s, 5, 2);
        let got = s.dispatch();
        // batch_max=3 caps the first sweep's batch; the outer loop then
        // re-examines the head, so d lands too, then e takes 2 of the 0
        // remaining slots — which it can't.
        let jobs: Vec<u64> = got.iter().map(|x| x.job).collect();
        assert_eq!(jobs, vec![a, b, c, d]);
        assert!(got.iter().all(|x| x.slots.len() == 1));
        let used: BTreeSet<usize> = got.iter().flat_map(|x| x.slots.clone()).collect();
        assert_eq!(used.len(), 4, "each batched job gets its own slot");
        assert_eq!(s.queued(), 1, "the 2-rank job waits");
        s.release(0);
        s.release(1);
        let got = s.dispatch();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].job, e);
        assert_eq!(got[0].slots.len(), 2);
    }

    #[test]
    fn requeue_front_restores_fifo_position_for_retry() {
        let mut s = Scheduler::new(1, Limits { queue_depth: 8, tenant_quota: 8, batch_max: 4 });
        let a = accept(&mut s, 1, 1);
        let b = accept(&mut s, 2, 1);
        let got = s.dispatch();
        assert_eq!(got.len(), 1, "one slot, one job out");
        assert_eq!(got[0].job, a);
        assert_eq!(s.queued(), 1);
        // a's worker dies mid-job: the slot stays out of the idle set
        // while the respawn boots, and a retries from the FRONT — ahead
        // of b, which arrived later.
        s.requeue_front(a);
        s.release(0);
        let got = s.dispatch();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].job, a, "retried job runs before later arrivals");
        assert_eq!(s.queued(), 1);
        let _ = b;
    }

    #[test]
    fn dead_idle_slots_do_not_get_jobs() {
        let mut s = sched(2);
        s.remove_idle(1);
        let a = accept(&mut s, 1, 2);
        assert!(s.dispatch().is_empty(), "pool has 2 slots but only 1 live");
        s.release(1);
        let got = s.dispatch();
        assert_eq!(got[0].job, a);
    }

    #[test]
    fn restart_resubmission_pins_original_ids_without_collision() {
        let mut s = sched(4);
        assert_eq!(s.submit(1, 1, Some(17)), Admission::Accept(17));
        // Fresh ids allocated afterwards never collide with pinned ones.
        let fresh = accept(&mut s, 1, 1);
        assert!(fresh > 17, "fresh id {fresh} must be past pinned 17");
        assert!(!s.quiescent());
        s.dispatch();
        s.complete(17);
        s.complete(fresh);
        assert!(s.quiescent());
    }
}
