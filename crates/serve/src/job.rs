//! Job specs, results, rejection reasons, and their `f64`-word codecs.
//!
//! Every serving-layer message body is a vector of `f64` words — the
//! transport's native payload type — so job frames ride the existing wire
//! format with zero framing changes. Small integers are exact in `f64`
//! (they stay far below 2⁵³); raw byte blobs (serialized checkpoints) are
//! packed eight bytes per word through the IEEE bit pattern, which the
//! frame codec round-trips bit-exactly.

use ft_hess::{Redundancy, Variant};

/// Which factorization a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverId {
    /// Fault-tolerant Hessenberg reduction ([`ft_hess::ft_pdgehrd`]).
    Hessenberg,
    /// Fault-tolerant Householder QR ([`ft_hess::ft_pdgeqrf`]).
    Qr,
}

impl SolverId {
    fn code(self) -> f64 {
        match self {
            SolverId::Hessenberg => 0.0,
            SolverId::Qr => 1.0,
        }
    }

    fn from_code(c: f64) -> Result<Self, String> {
        match c as i64 {
            0 => Ok(SolverId::Hessenberg),
            1 => Ok(SolverId::Qr),
            k => Err(format!("unknown solver code {k}")),
        }
    }

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            SolverId::Hessenberg => "hessenberg",
            SolverId::Qr => "qr",
        }
    }
}

/// Typed rejection reasons — the backpressure and failure-containment
/// vocabulary of the daemon. Every REJECT frame's payload starts with one
/// of these codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded job queue is at capacity (global backpressure).
    QueueFull,
    /// This tenant already has its quota of queued + running jobs.
    QuotaExceeded,
    /// The spec failed validation (shape, solver/redundancy codes, grid).
    BadRequest,
    /// The job wants more ranks than the pool has slots.
    PoolTooSmall,
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown,
    /// A 1-rank job's worker died and its one retry was already spent.
    WorkerLost,
    /// The job's ABFT run failed beyond the redundancy's code distance
    /// ([`ft_hess::FtError::ExceededCodeDistance`]).
    CodeDistance,
    /// The job's scrub engine hit unrecoverable silent corruption
    /// ([`ft_hess::FtError::ScrubUnrecoverable`]).
    Unrecoverable,
}

impl RejectReason {
    /// Stable wire code.
    pub fn code(self) -> f64 {
        match self {
            RejectReason::QueueFull => 0.0,
            RejectReason::QuotaExceeded => 1.0,
            RejectReason::BadRequest => 2.0,
            RejectReason::PoolTooSmall => 3.0,
            RejectReason::ShuttingDown => 4.0,
            RejectReason::WorkerLost => 5.0,
            RejectReason::CodeDistance => 6.0,
            RejectReason::Unrecoverable => 7.0,
        }
    }

    /// Inverse of [`RejectReason::code`].
    pub fn from_code(c: f64) -> Result<Self, String> {
        match c as i64 {
            0 => Ok(RejectReason::QueueFull),
            1 => Ok(RejectReason::QuotaExceeded),
            2 => Ok(RejectReason::BadRequest),
            3 => Ok(RejectReason::PoolTooSmall),
            4 => Ok(RejectReason::ShuttingDown),
            5 => Ok(RejectReason::WorkerLost),
            6 => Ok(RejectReason::CodeDistance),
            7 => Ok(RejectReason::Unrecoverable),
            k => Err(format!("unknown reject reason code {k}")),
        }
    }

    /// Human-readable name for logs and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::QuotaExceeded => "quota-exceeded",
            RejectReason::BadRequest => "bad-request",
            RejectReason::PoolTooSmall => "pool-too-small",
            RejectReason::ShuttingDown => "shutting-down",
            RejectReason::WorkerLost => "worker-lost",
            RejectReason::CodeDistance => "code-distance-exceeded",
            RejectReason::Unrecoverable => "scrub-unrecoverable",
        }
    }
}

/// SUBMIT payload word 0: what the client asks for.
pub const REQ_JOB: f64 = 0.0;
/// SUBMIT payload word 0: drain the pool and exit cleanly.
pub const REQ_SHUTDOWN: f64 = 1.0;

/// One reduction job as submitted by a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub solver: SolverId,
    pub variant: Variant,
    pub redundancy: Redundancy,
    /// Logical matrix dimension.
    pub n: usize,
    /// Blocking factor.
    pub nb: usize,
    /// Process-grid rows the job wants.
    pub p: usize,
    /// Process-grid columns.
    pub q: usize,
    /// Capture scope-boundary checkpoints so the job survives a whole-pool
    /// restart (needs the daemon's `--state-dir`).
    pub ckpt: bool,
    /// The `n×n` input matrix, row-major.
    pub matrix: Vec<f64>,
}

impl JobSpec {
    /// Ranks this job occupies.
    pub fn ranks(&self) -> usize {
        self.p * self.q
    }

    fn variant_code(v: Variant) -> f64 {
        match v {
            Variant::NonDelayed => 0.0,
            Variant::Delayed => 1.0,
        }
    }

    fn redundancy_code(r: Redundancy) -> (f64, f64) {
        match r {
            Redundancy::Single => (0.0, 0.0),
            Redundancy::Dual => (1.0, 0.0),
            Redundancy::Coded(f) => (2.0, f as f64),
        }
    }

    /// Serialize to SUBMIT payload words (after the request-kind word).
    pub fn to_words(&self) -> Vec<f64> {
        let (rk, rf) = Self::redundancy_code(self.redundancy);
        let mut w = vec![
            self.solver.code(),
            Self::variant_code(self.variant),
            rk,
            rf,
            self.n as f64,
            self.nb as f64,
            self.p as f64,
            self.q as f64,
            if self.ckpt { 1.0 } else { 0.0 },
        ];
        w.extend_from_slice(&self.matrix);
        w
    }

    /// Parse and validate SUBMIT payload words. Every failure is a
    /// [`RejectReason::BadRequest`] — the daemon echoes it typed, it never
    /// tears down the connection.
    pub fn from_words(w: &[f64]) -> Result<JobSpec, String> {
        if w.len() < 9 {
            return Err(format!("spec header truncated: {} words", w.len()));
        }
        let solver = SolverId::from_code(w[0])?;
        let variant = match w[1] as i64 {
            0 => Variant::NonDelayed,
            1 => Variant::Delayed,
            k => return Err(format!("unknown variant code {k}")),
        };
        let redundancy = match (w[2] as i64, w[3] as i64) {
            (0, _) => Redundancy::Single,
            (1, _) => Redundancy::Dual,
            (2, f) if f >= 1 => Redundancy::Coded(f as usize),
            (k, f) => return Err(format!("unknown redundancy code {k}/{f}")),
        };
        let (n, nb, p, q) = (w[4] as usize, w[5] as usize, w[6] as usize, w[7] as usize);
        let ckpt = w[8] != 0.0;
        if n == 0 || nb == 0 || nb > n {
            return Err(format!("bad shape n={n} nb={nb}"));
        }
        if p == 0 || q == 0 {
            return Err(format!("bad grid {p}x{q}"));
        }
        if q == 1 && p * q != 1 {
            return Err(format!("Q = 1 is only supported on a 1x1 grid (got {p}x{q})"));
        }
        let matrix = &w[9..];
        if matrix.len() != n * n {
            return Err(format!("matrix payload is {} words, spec says n*n = {}", matrix.len(), n * n));
        }
        Ok(JobSpec {
            solver,
            variant,
            redundancy,
            n,
            nb,
            p,
            q,
            ckpt,
            matrix: matrix.to_vec(),
        })
    }
}

/// A completed job's payload: the verification residual, recovery and
/// traffic accounting, and the reduced factorization itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The paper's `r∞` residual of the factorization (§7.3 scale).
    pub residual: f64,
    /// Transparent ABFT recoveries the job survived.
    pub recoveries: u64,
    /// Wall-clock milliseconds inside the solver (job-fabric side).
    pub wall_ms: f64,
    /// Grid-wide payload bytes the job's fabric moved ([`ft_runtime::TrafficLedger`]).
    pub bytes: u64,
    /// Logical dimension of `factor`.
    pub n: usize,
    /// The reduced matrix (reflectors included), row-major.
    pub factor: Vec<f64>,
    /// Householder scalars.
    pub tau: Vec<f64>,
}

impl JobResult {
    /// Serialize to RESULT payload words.
    pub fn to_words(&self) -> Vec<f64> {
        let mut w = vec![
            self.residual,
            self.recoveries as f64,
            self.wall_ms,
            self.bytes as f64,
            self.n as f64,
            self.tau.len() as f64,
        ];
        w.extend_from_slice(&self.factor);
        w.extend_from_slice(&self.tau);
        w
    }

    /// Inverse of [`JobResult::to_words`].
    pub fn from_words(w: &[f64]) -> Result<JobResult, String> {
        if w.len() < 6 {
            return Err(format!("result header truncated: {} words", w.len()));
        }
        let n = w[4] as usize;
        let tau_len = w[5] as usize;
        let need = 6 + n * n + tau_len;
        if w.len() != need {
            return Err(format!("result payload is {} words, header says {need}", w.len()));
        }
        Ok(JobResult {
            residual: w[0],
            recoveries: w[1] as u64,
            wall_ms: w[2],
            bytes: w[3] as u64,
            n,
            factor: w[6..6 + n * n].to_vec(),
            tau: w[6 + n * n..].to_vec(),
        })
    }
}

/// Daemon → worker directive word 0: run the job that follows.
pub const ASSIGN_RUN: f64 = 0.0;
/// Daemon → worker directive word 0: exit cleanly (pool shutdown).
pub const ASSIGN_STOP: f64 = 1.0;

/// One rank's share of a dispatched job — everything a worker needs to
/// build (or rejoin) the job's private fabric and run its rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub spec: JobSpec,
    /// This worker's rank within the job grid.
    pub job_rank: usize,
    /// First port of the job fabric's contiguous port range (unused for
    /// 1-rank jobs, which run on an in-process fabric).
    pub port_base: u16,
    /// Fabric incarnation for this rank (respawned replacements bump it).
    pub incarnation: u32,
    /// Join as a replacement: skip encoding, enter recovery, let the
    /// survivors ship the rollback boundary (the in-flight recovery path).
    pub replacement: bool,
    /// Pool-resolved heartbeat knobs — workers never read `FT_HB_*`
    /// themselves, so daemon and clients can disagree freely.
    pub hb_interval_ms: u64,
    pub hb_miss_limit: u32,
    pub conn_timeout_ms: u64,
    /// Serialized [`ft_hess::FtCheckpoint`] to resume from (whole-pool
    /// restart), or empty for a fresh run.
    pub resume: Vec<u8>,
}

impl Assignment {
    /// Serialize to a daemon → worker SUBMIT payload (after [`ASSIGN_RUN`]).
    pub fn to_words(&self) -> Vec<f64> {
        let mut w = vec![
            self.job_rank as f64,
            self.port_base as f64,
            self.incarnation as f64,
            if self.replacement { 1.0 } else { 0.0 },
            self.hb_interval_ms as f64,
            self.hb_miss_limit as f64,
            self.conn_timeout_ms as f64,
            self.resume.len() as f64,
        ];
        w.extend_from_slice(&self.spec.to_words());
        w.extend_from_slice(&pack_bytes(&self.resume));
        w
    }

    /// Inverse of [`Assignment::to_words`].
    pub fn from_words(w: &[f64]) -> Result<Assignment, String> {
        if w.len() < 8 {
            return Err(format!("assignment header truncated: {} words", w.len()));
        }
        let resume_len = w[7] as usize;
        let resume_words = resume_len.div_ceil(8);
        if w.len() < 8 + resume_words {
            return Err("assignment resume blob truncated".into());
        }
        let spec_words = &w[8..w.len() - resume_words];
        let spec = JobSpec::from_words(spec_words)?;
        let resume = unpack_bytes(&w[w.len() - resume_words..], resume_len);
        Ok(Assignment {
            spec,
            job_rank: w[0] as usize,
            port_base: w[1] as u16,
            incarnation: w[2] as u32,
            replacement: w[3] != 0.0,
            hb_interval_ms: w[4] as u64,
            hb_miss_limit: w[5] as u32,
            conn_timeout_ms: w[6] as u64,
            resume,
        })
    }
}

/// Pack raw bytes into `f64` words through the IEEE bit pattern (8 bytes
/// per word, zero-padded tail). The frame codec ships bit patterns
/// losslessly, NaN payloads included.
pub fn pack_bytes(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..c.len()].copy_from_slice(c);
            f64::from_bits(u64::from_le_bytes(b))
        })
        .collect()
}

/// Inverse of [`pack_bytes`]: recover exactly `len` bytes.
pub fn unpack_bytes(words: &[f64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for w in words {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_words_round_trip() {
        let spec = JobSpec {
            solver: SolverId::Qr,
            variant: Variant::Delayed,
            redundancy: Redundancy::Coded(2),
            n: 4,
            nb: 2,
            p: 1,
            q: 4,
            ckpt: true,
            matrix: (0..16).map(|i| i as f64 * 0.5).collect(),
        };
        assert_eq!(JobSpec::from_words(&spec.to_words()).unwrap(), spec);
    }

    #[test]
    fn spec_validation_rejects_malformed_requests() {
        let good = JobSpec {
            solver: SolverId::Hessenberg,
            variant: Variant::NonDelayed,
            redundancy: Redundancy::Single,
            n: 4,
            nb: 2,
            p: 1,
            q: 2,
            ckpt: false,
            matrix: vec![0.0; 16],
        };
        let mut w = good.to_words();
        w.truncate(5);
        assert!(JobSpec::from_words(&w).is_err(), "truncated header");
        let mut w = good.to_words();
        w[0] = 9.0;
        assert!(JobSpec::from_words(&w).is_err(), "unknown solver");
        let mut w = good.to_words();
        w.pop();
        assert!(JobSpec::from_words(&w).is_err(), "short matrix");
        let mut w = good.to_words();
        w[6] = 2.0; // 2x2 wants 4 ranks but matrix checks still pass;
        w[7] = 1.0; // Q = 1 on a multi-rank grid is rejected
        assert!(JobSpec::from_words(&w).is_err(), "Q=1 multi-rank grid");
    }

    #[test]
    fn result_words_round_trip() {
        let res = JobResult {
            residual: 0.125,
            recoveries: 3,
            wall_ms: 17.5,
            bytes: 1 << 40,
            n: 3,
            factor: (0..9).map(|i| -(i as f64)).collect(),
            tau: vec![0.5, 0.25, 0.0],
        };
        assert_eq!(JobResult::from_words(&res.to_words()).unwrap(), res);
        assert!(JobResult::from_words(&res.to_words()[..5]).is_err());
    }

    #[test]
    fn assignment_words_round_trip_with_resume_blob() {
        let spec = JobSpec {
            solver: SolverId::Hessenberg,
            variant: Variant::NonDelayed,
            redundancy: Redundancy::Single,
            n: 2,
            nb: 1,
            p: 1,
            q: 2,
            ckpt: true,
            matrix: vec![1.0, 2.0, 3.0, 4.0],
        };
        for blob_len in [0usize, 1, 7, 8, 9, 23] {
            let a = Assignment {
                spec: spec.clone(),
                job_rank: 1,
                port_base: 23000,
                incarnation: 2,
                replacement: true,
                hb_interval_ms: 50,
                hb_miss_limit: 40,
                conn_timeout_ms: 9000,
                resume: (0..blob_len).map(|i| (i * 37 % 251) as u8).collect(),
            };
            assert_eq!(Assignment::from_words(&a.to_words()).unwrap(), a, "blob_len={blob_len}");
        }
    }

    #[test]
    fn byte_packing_is_exact_for_every_tail_length() {
        for len in 0..40usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 131 + 7) as u8).collect();
            assert_eq!(unpack_bytes(&pack_bytes(&bytes), len), bytes, "len={len}");
        }
    }

    #[test]
    fn reject_reasons_round_trip() {
        for r in [
            RejectReason::QueueFull,
            RejectReason::QuotaExceeded,
            RejectReason::BadRequest,
            RejectReason::PoolTooSmall,
            RejectReason::ShuttingDown,
            RejectReason::WorkerLost,
            RejectReason::CodeDistance,
            RejectReason::Unrecoverable,
        ] {
            assert_eq!(RejectReason::from_code(r.code()).unwrap(), r);
        }
        assert!(RejectReason::from_code(99.0).is_err());
    }
}
