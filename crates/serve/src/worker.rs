//! The pool worker: one OS process per pool slot, owned by the daemon.
//!
//! A worker connects back to the daemon's control port, registers its slot,
//! and then blocks on the control stream waiting for assignments. Each
//! assignment carries everything needed to run one rank of one job: the
//! spec, this rank's position, the job fabric's port range, heartbeat
//! knobs, and (after a whole-pool restart) a serialized checkpoint to
//! resume from. Multi-rank jobs build a private [`TcpTransport`] fabric on
//! their own port range — fully disjoint from the control plane and from
//! every other concurrent job — while 1-rank jobs run on an in-process
//! fabric with zero connection setup.
//!
//! Failure containment: a worker that dies mid-job takes down only its own
//! rank. The job's surviving ranks detect the death through their fabric's
//! heartbeats and run the ordinary detect → agree → recover path; the
//! daemon respawns the slot and hands the fresh process a `replacement`
//! assignment so it rejoins the same fabric with a bumped incarnation.

use crate::job::{Assignment, JobResult, RejectReason, SolverId, ASSIGN_STOP};
use ft_hess::{
    ft_pdgehrd_ctl, ft_pdgeqrf_ctl, DriverControl, Encoded, FtCheckpoint, FtError, FtSolver, Hessenberg, HouseholderQr,
    ScrubPolicy,
};
use ft_pblas::{pd_gather_traffic, pd_hessenberg_residual, pd_qr_residual, Desc, DistMatrix};
use ft_runtime::{jobs, run_distributed, ChaosScript, Ctx, JobFrame, MpscTransport, Tag, TcpConfig, TcpTransport, Transport};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Send a frame on the shared control-stream writer, ignoring failures —
/// a dead daemon is detected by the blocking read loop, not here.
fn send(writer: &Arc<Mutex<TcpStream>>, frame: &JobFrame) {
    if let Ok(mut s) = writer.lock() {
        let _ = jobs::write_job_frame(&mut s, frame);
    }
}

/// Run one rank of one job and report the outcome to the daemon.
fn run_assignment(job: u64, tenant: u32, a: Assignment, writer: &Arc<Mutex<TcpStream>>) {
    let spec = a.spec;
    let world = spec.ranks();
    let (n, nb) = (spec.n, spec.nb);
    let transport: Box<dyn Transport> = if world == 1 {
        Box::new(MpscTransport::fabric(1).remove(0))
    } else {
        let mut cfg = TcpConfig::new(a.job_rank, world);
        cfg.hb_interval = Duration::from_millis(a.hb_interval_ms);
        cfg.hb_miss_limit = a.hb_miss_limit;
        cfg.conn_timeout = Duration::from_millis(a.conn_timeout_ms);
        cfg.incarnation = a.incarnation;
        match TcpTransport::connect(cfg, a.port_base) {
            Ok(t) => Box::new(t),
            Err(e) => {
                eprintln!("worker: job {job} rank {} fabric connect failed: {e}", a.job_rank);
                send(
                    writer,
                    &JobFrame {
                        kind: jobs::KIND_REJECT,
                        tenant,
                        job,
                        seq: a.job_rank as u64,
                        payload: vec![RejectReason::WorkerLost.code()],
                    },
                );
                return;
            }
        }
    };
    let job_rank = a.job_rank;
    let replacement = a.replacement;
    let resume = a.resume;
    let matrix = spec.matrix.clone();
    let run = run_distributed(spec.p, spec.q, ChaosScript::none(), transport, move |ctx: Ctx| {
        let t0 = Instant::now();
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, spec.redundancy, |i, j| matrix[i * n + j]);
        let tau_len = match spec.solver {
            SolverId::Hessenberg => Hessenberg.tau_len(n),
            SolverId::Qr => HouseholderQr.tau_len(n),
        };
        let mut tau = vec![0.0; tau_len.max(1)];
        let mut start_panel = 0;
        if !resume.is_empty() {
            let ck = FtCheckpoint::from_bytes(&resume).expect("daemon shipped a corrupt resume checkpoint");
            ck.restore(&mut enc, &mut tau);
            start_panel = ck.panel() + 1;
        }
        // Scope-boundary checkpoint sink: every rank streams its local
        // snapshot to the daemon, which assembles complete per-panel sets
        // and persists the newest one. Replacements contribute too — a
        // panel set missing one rank is useless.
        let wtr = writer.clone();
        let sink_wtr = writer.clone();
        let mut sink = move |_ctx: &Ctx, enc: &Encoded, tau: &[f64], panel: usize| {
            let bytes = FtCheckpoint::capture(enc, tau, panel).to_bytes();
            let mut payload = vec![job_rank as f64, panel as f64, bytes.len() as f64];
            payload.extend_from_slice(&crate::job::pack_bytes(&bytes));
            send(
                &sink_wtr,
                &JobFrame {
                    kind: jobs::KIND_CKPT,
                    tenant,
                    job,
                    seq: panel as u64,
                    payload,
                },
            );
        };
        let mut ctl = DriverControl { start_panel, replacement, scope_sink: None };
        if spec.ckpt {
            ctl.scope_sink = Some(&mut sink);
        }
        let run = match spec.solver {
            SolverId::Hessenberg => ft_pdgehrd_ctl(&ctx, &mut enc, spec.variant, &mut tau, ScrubPolicy::disabled(), ctl),
            SolverId::Qr => ft_pdgeqrf_ctl(&ctx, &mut enc, spec.variant, &mut tau, ScrubPolicy::disabled(), ctl),
        };
        match run {
            Ok(report) => {
                let a0 = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| matrix[i * n + j]);
                let residual = match spec.solver {
                    SolverId::Hessenberg => pd_hessenberg_residual(&ctx, &a0, &enc.a, n, &tau),
                    SolverId::Qr => pd_qr_residual(&ctx, &a0, &enc.a, n, &tau),
                };
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let factor = enc.gather_logical_root(&ctx, Tag::job(job, 0));
                let bytes = pd_gather_traffic(&ctx, Tag::job(job, 1)).total_bytes();
                let mut payload = vec![0.0];
                if let Some(m) = factor {
                    // Only rank 0 holds the gathered factorization.
                    let mut flat = Vec::with_capacity(n * n);
                    for i in 0..n {
                        for j in 0..n {
                            flat.push(m[(i, j)]);
                        }
                    }
                    let res = JobResult {
                        residual,
                        recoveries: report.recoveries as u64,
                        wall_ms,
                        bytes,
                        n,
                        factor: flat,
                        tau: tau.clone(),
                    };
                    payload = vec![1.0];
                    payload.extend_from_slice(&res.to_words());
                }
                send(
                    &wtr,
                    &JobFrame {
                        kind: jobs::KIND_RESULT,
                        tenant,
                        job,
                        seq: job_rank as u64,
                        payload,
                    },
                );
            }
            Err(err) => {
                // FtError is agreed identically on every rank; each rank
                // reports it and the daemon dedupes.
                let reason = match err {
                    FtError::ExceededCodeDistance { .. } => RejectReason::CodeDistance,
                    FtError::ScrubUnrecoverable { .. } => RejectReason::Unrecoverable,
                };
                send(
                    &wtr,
                    &JobFrame {
                        kind: jobs::KIND_REJECT,
                        tenant,
                        job,
                        seq: job_rank as u64,
                        payload: vec![reason.code()],
                    },
                );
            }
        }
    });
    if let Err(err) = run {
        // The job fabric wedged (e.g. an unhealed partition): report the
        // rank as lost so the daemon fails the job instead of waiting out
        // its own watchdog. Other ranks of the job agree on the same error.
        eprintln!("worker: job {job} rank {job_rank}: fabric error: {err}");
        send(
            writer,
            &JobFrame {
                kind: jobs::KIND_REJECT,
                tenant,
                job,
                seq: job_rank as u64,
                payload: vec![RejectReason::WorkerLost.code()],
            },
        );
    }
}

/// Worker process entry point: register with the daemon at `port` as pool
/// slot `slot`, then serve assignments until told to stop (or the daemon
/// goes away — a vanished control stream is a clean exit, the daemon owns
/// our lifetime).
pub fn worker_main(port: u16, slot: usize) -> i32 {
    let stream = match TcpStream::connect(("127.0.0.1", port)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("worker: cannot reach daemon on port {port}: {e}");
            return 3;
        }
    };
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("worker: stream clone failed: {e}");
            return 3;
        }
    };
    let writer = Arc::new(Mutex::new(stream));
    // Registration: an ACCEPT frame whose job field is the slot index.
    send(
        &writer,
        &JobFrame {
            kind: jobs::KIND_ACCEPT,
            tenant: 0,
            job: slot as u64,
            seq: 0,
            payload: Vec::new(),
        },
    );
    loop {
        let frame = match jobs::read_job_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return 0,
        };
        if frame.kind != jobs::KIND_SUBMIT {
            continue;
        }
        if frame.payload.first().copied() == Some(ASSIGN_STOP) {
            return 0;
        }
        match Assignment::from_words(&frame.payload[1..]) {
            Ok(a) => run_assignment(frame.job, frame.tenant, a, &writer),
            Err(e) => {
                eprintln!("worker: malformed assignment for job {}: {e}", frame.job);
                send(
                    &writer,
                    &JobFrame {
                        kind: jobs::KIND_REJECT,
                        tenant: frame.tenant,
                        job: frame.job,
                        seq: 0,
                        payload: vec![RejectReason::BadRequest.code()],
                    },
                );
            }
        }
    }
}
