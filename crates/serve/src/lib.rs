//! # ft-serve — persistent multi-tenant solver service
//!
//! A daemon mode for the ABFT solvers: instead of one process tree per
//! reduction, a persistent pool of worker processes accepts a **stream**
//! of jobs from many tenants over the TCP transport's framing (DESIGN.md
//! §15). The serving plane reuses the fabric's 32-byte header with five
//! job frame kinds (SUBMIT / ACCEPT / RESULT / REJECT / CKPT) and leaves
//! the fabric kinds untouched, so a single wire grammar covers both.
//!
//! * [`job`] — specs, results, typed rejections, and their `f64`-word
//!   codecs (everything rides the transport's native payload type).
//! * [`scheduler`] — pure admission + placement: bounded FIFO with typed
//!   backpressure, per-tenant quotas, strict head-of-line ordering, and
//!   head-only batching of 1-rank jobs.
//! * [`daemon`] — the event-loop state machine owning processes, sockets,
//!   checkpoint persistence, and the failure policy (grid jobs recover
//!   in-fabric via ABFT; 1-rank jobs get one retry, then `WorkerLost`).
//! * [`worker`] — the per-slot process: builds each job's private fabric
//!   on its own port range and tag lane, runs one rank, streams
//!   scope-boundary checkpoints back, reports RESULT/REJECT.
//! * [`client`] — the submit-side wrapper shared by the CLI, the bench,
//!   and the tests.
//!
//! Isolation invariants: concurrent jobs never share ports (disjoint
//! per-job ranges), never share tag space ([`ft_runtime::Tag::job`]
//! lanes), and never share processes (disjoint slot subsets). A rank
//! death inside one job is invisible to every other tenant.

pub mod client;
pub mod daemon;
pub mod job;
pub mod scheduler;
pub mod worker;

pub use client::{Client, Event};
pub use daemon::{load_result, serve_main, ServeConfig};
pub use job::{Assignment, JobResult, JobSpec, RejectReason, SolverId};
pub use scheduler::{Admission, Dispatch, Limits, Scheduler};
pub use worker::worker_main;
