//! The job daemon: a persistent pool of worker processes serving a stream
//! of reduction jobs from many tenants.
//!
//! One thread accepts control-plane connections (workers registering,
//! clients submitting); one reader thread per connection turns frames into
//! events on a single channel; the main loop is a single-threaded state
//! machine over those events — no locks around scheduler or job state.
//!
//! Responsibilities split cleanly:
//! * [`crate::scheduler`] decides admission and placement (pure).
//! * This module owns processes, sockets, checkpoint persistence, and the
//!   failure policy: grid jobs ride the in-fabric ABFT recovery (respawn
//!   the slot, rejoin as replacement); 1-rank jobs get one FIFO-preserving
//!   retry, then a typed `WorkerLost` rejection.
//! * Machine-readable progress markers (`FT_SERVE_*`) go to stdout and are
//!   explicitly flushed — the launcher-marker convention of the chaos CLI,
//!   extended to the serving plane.

use crate::job::{Assignment, JobResult, JobSpec, RejectReason, ASSIGN_RUN, ASSIGN_STOP, REQ_JOB, REQ_SHUTDOWN};
use crate::scheduler::{Admission, Dispatch, Limits, Scheduler};
use ft_runtime::{jobs, JobFrame};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Daemon configuration, fully resolved (flags + `FT_HB_*` env already
/// folded in by the CLI — nothing below reads the environment).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots in the pool.
    pub pool: usize,
    /// Control-plane listen port (0 = ephemeral; the bound port is
    /// announced in the `FT_SERVE_LISTEN` marker).
    pub port: u16,
    /// Admission limits (queue depth, tenant quota, batch width).
    pub limits: Limits,
    /// First port of the range job fabrics are carved from.
    pub job_port_base: u16,
    /// Checkpoint/result persistence directory (None = no restart
    /// survival; jobs submitted with `ckpt` still checkpoint in memory).
    pub state_dir: Option<PathBuf>,
    /// Pool-wide heartbeat knobs handed to every job fabric. Per-pool by
    /// design: submit clients never influence them, so daemon and clients
    /// can disagree about `FT_HB_*` without anyone exiting 2.
    pub hb_interval_ms: u64,
    pub hb_miss_limit: u32,
    pub conn_timeout_ms: u64,
    /// Command prefix that launches one worker; the daemon appends
    /// `--connect-port <port> --slot <slot>`.
    pub worker_argv: Vec<String>,
}

/// Print a machine-readable marker and flush — stdout is block-buffered
/// when piped, and test harnesses poll these lines live.
macro_rules! marker {
    ($($arg:tt)*) => {{
        println!($($arg)*);
        let _ = io::stdout().flush();
    }};
}

enum Ev {
    Conn { id: u64, writer: Arc<Mutex<TcpStream>> },
    Frame { id: u64, frame: JobFrame },
    Closed { id: u64 },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Unknown,
    Client,
    Worker(usize),
}

struct ConnState {
    writer: Arc<Mutex<TcpStream>>,
    role: Role,
}

struct Slot {
    child: Option<Child>,
    conn: Option<u64>,
    /// The job (and job rank) this slot is running, if any. Survives the
    /// worker's death so the respawn can rejoin as a replacement.
    job: Option<(u64, usize)>,
}

struct JobState {
    spec: JobSpec,
    tenant: u32,
    /// Submitting connection + its SUBMIT sequence number; None for jobs
    /// resubmitted from persisted state after a restart (their results go
    /// to `result-<id>.bin`).
    client: Option<(u64, u64)>,
    /// Idempotency key `(tenant, client_id, seq)` when the submitter
    /// stamped a nonzero client id; duplicate SUBMITs re-target this job
    /// instead of admitting a second copy.
    dedup_key: Option<(u32, u64, u64)>,
    slots: Vec<usize>,
    incarnations: Vec<u32>,
    port_base: u16,
    /// Ranks that have not yet sent a terminal frame (RESULT or REJECT).
    remaining: usize,
    result: Option<JobResult>,
    rejected: Option<RejectReason>,
    /// A 1-rank job's single worker-loss retry, already spent?
    retried: bool,
    /// Per-rank resume blobs for the NEXT dispatch (whole-pool restart).
    resume: Option<Vec<Vec<u8>>>,
    /// In-flight checkpoint assembly: panel → (rank → serialized state).
    stage: HashMap<usize, HashMap<usize, Vec<u8>>>,
    /// Newest complete panel set (the restart point).
    latest: Option<(usize, Vec<Vec<u8>>)>,
    t_submit: Instant,
}

struct Daemon {
    cfg: ServeConfig,
    port: u16,
    sched: Scheduler,
    conns: HashMap<u64, ConnState>,
    slots: Vec<Slot>,
    jobs: HashMap<u64, JobState>,
    /// Live idempotency index: `(tenant, client_id, seq)` → running job.
    dedup: HashMap<(u32, u64, u64), u64>,
    /// Terminal replies of recently finished idempotent jobs, replayed
    /// verbatim when a duplicate SUBMIT arrives after completion (e.g. the
    /// client reconnected across the finish). Bounded FIFO.
    finished: VecDeque<((u32, u64, u64), u64, JobFrame)>,
    next_ports: u16,
    draining: bool,
}

/// Terminal-reply cache depth; old entries age out FIFO. A client replays
/// at most its in-flight window, far below this.
const FINISHED_CACHE: usize = 64;

/// Run the daemon until a shutdown request drains the pool. Returns the
/// process exit code.
pub fn serve_main(cfg: ServeConfig) -> i32 {
    let listener = match TcpListener::bind(("127.0.0.1", cfg.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind port {}: {e}", cfg.port);
            return 3;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(cfg.port);
    marker!("FT_SERVE_LISTEN port={port} pool={}", cfg.pool);

    let (tx, rx) = mpsc::channel::<Ev>();
    spawn_acceptor(listener, tx);

    let mut d = Daemon {
        port,
        sched: Scheduler::new(cfg.pool, cfg.limits),
        conns: HashMap::new(),
        slots: Vec::new(),
        jobs: HashMap::new(),
        dedup: HashMap::new(),
        finished: VecDeque::new(),
        next_ports: cfg.job_port_base,
        draining: false,
        cfg,
    };
    for slot in 0..d.cfg.pool {
        let child = d.spawn_worker(slot);
        d.slots.push(Slot { child, conn: None, job: None });
        // Freshly spawned workers are not idle until they register.
        d.sched.remove_idle(slot);
    }
    d.resubmit_persisted();

    for ev in rx {
        match ev {
            Ev::Conn { id, writer } => {
                d.conns.insert(id, ConnState { writer, role: Role::Unknown });
            }
            Ev::Frame { id, frame } => d.on_frame(id, frame),
            Ev::Closed { id } => d.on_closed(id),
        }
        if d.draining && d.sched.quiescent() {
            d.stop_workers();
            marker!("FT_SERVE_DRAINED");
            return 0;
        }
    }
    // Listener thread died (should not happen); treat as a failed drain.
    eprintln!("serve: control plane lost");
    3
}

fn spawn_acceptor(listener: TcpListener, tx: mpsc::Sender<Ev>) {
    std::thread::spawn(move || {
        let mut next_id = 1u64;
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let id = next_id;
            next_id += 1;
            let mut reader = match stream.try_clone() {
                Ok(r) => r,
                Err(_) => continue,
            };
            if tx.send(Ev::Conn { id, writer: Arc::new(Mutex::new(stream)) }).is_err() {
                return;
            }
            let tx2 = tx.clone();
            std::thread::spawn(move || loop {
                match jobs::read_job_frame(&mut reader) {
                    Ok(frame) => {
                        if tx2.send(Ev::Frame { id, frame }).is_err() {
                            return;
                        }
                    }
                    Err(_) => {
                        let _ = tx2.send(Ev::Closed { id });
                        return;
                    }
                }
            });
        }
    });
}

impl Daemon {
    fn spawn_worker(&self, slot: usize) -> Option<Child> {
        let mut cmd = Command::new(&self.cfg.worker_argv[0]);
        cmd.args(&self.cfg.worker_argv[1..])
            .arg("--connect-port")
            .arg(self.port.to_string())
            .arg("--slot")
            .arg(slot.to_string());
        match cmd.spawn() {
            Ok(child) => {
                marker!("FT_SERVE_WORKER slot={slot} pid={}", child.id());
                Some(child)
            }
            Err(e) => {
                eprintln!("serve: cannot spawn worker for slot {slot}: {e}");
                None
            }
        }
    }

    fn send_to(&self, conn: u64, frame: &JobFrame) -> bool {
        let Some(c) = self.conns.get(&conn) else { return false };
        let Ok(mut s) = c.writer.lock() else { return false };
        jobs::write_job_frame(&mut s, frame).is_ok()
    }

    // --- admission ---------------------------------------------------

    fn on_frame(&mut self, id: u64, frame: JobFrame) {
        let role = match self.conns.get(&id) {
            Some(c) => c.role,
            None => return,
        };
        match (role, frame.kind) {
            (Role::Unknown, k) if k == jobs::KIND_ACCEPT => self.on_worker_register(id, frame.job as usize),
            (Role::Unknown | Role::Client, k) if k == jobs::KIND_SUBMIT => {
                if let Some(c) = self.conns.get_mut(&id) {
                    c.role = Role::Client;
                }
                self.on_submit(id, frame);
            }
            (Role::Worker(slot), k) if k == jobs::KIND_RESULT || k == jobs::KIND_REJECT => self.on_terminal(slot, frame),
            (Role::Worker(_), k) if k == jobs::KIND_CKPT => self.on_ckpt(frame),
            _ => {}
        }
    }

    fn on_worker_register(&mut self, id: u64, slot: usize) {
        if slot >= self.slots.len() {
            return;
        }
        if let Some(c) = self.conns.get_mut(&id) {
            c.role = Role::Worker(slot);
        }
        self.slots[slot].conn = Some(id);
        marker!("FT_SERVE_READY slot={slot}");
        // A respawn whose predecessor died mid-grid-job rejoins that job
        // as a replacement instead of going idle.
        if let Some((job, jr)) = self.slots[slot].job {
            if self.jobs.contains_key(&job) {
                self.send_assignment(job, jr, slot, true);
                return;
            }
            self.slots[slot].job = None;
        }
        self.sched.release(slot);
        self.pump();
    }

    fn on_submit(&mut self, id: u64, frame: JobFrame) {
        let reply_reject = |d: &Daemon, reason: RejectReason| {
            d.send_to(
                id,
                &JobFrame {
                    kind: jobs::KIND_REJECT,
                    tenant: frame.tenant,
                    job: 0,
                    seq: frame.seq,
                    payload: vec![reason.code()],
                },
            );
        };
        let Some(&req) = frame.payload.first() else {
            reply_reject(self, RejectReason::BadRequest);
            return;
        };
        if req == REQ_SHUTDOWN {
            self.send_to(
                id,
                &JobFrame {
                    kind: jobs::KIND_ACCEPT,
                    tenant: frame.tenant,
                    job: 0,
                    seq: frame.seq,
                    payload: vec![],
                },
            );
            self.sched.drain();
            self.draining = true;
            return;
        }
        if req != REQ_JOB {
            reply_reject(self, RejectReason::BadRequest);
            return;
        }
        let spec = match JobSpec::from_words(&frame.payload[1..]) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: bad submit from tenant {}: {e}", frame.tenant);
                reply_reject(self, RejectReason::BadRequest);
                return;
            }
        };
        // Idempotency: a SUBMIT that rides a nonzero client id is deduped
        // on (tenant, client_id, seq). A duplicate of a RUNNING job
        // re-ACCEPTs and re-targets its replies at this connection (the
        // client reconnected); a duplicate of a FINISHED job replays the
        // cached terminal frame. Either way: no second admission.
        let dedup_key = (frame.job != 0).then_some((frame.tenant, frame.job, frame.seq));
        if let Some(key) = dedup_key {
            if let Some(&job) = self.dedup.get(&key) {
                if let Some(js) = self.jobs.get_mut(&job) {
                    js.client = Some((id, frame.seq));
                }
                marker!("FT_SERVE_DEDUP job={job} tenant={} state=running", frame.tenant);
                self.send_to(
                    id,
                    &JobFrame {
                        kind: jobs::KIND_ACCEPT,
                        tenant: frame.tenant,
                        job,
                        seq: frame.seq,
                        payload: vec![],
                    },
                );
                return;
            }
            if let Some((_, job, terminal)) = self.finished.iter().find(|(k, _, _)| *k == key) {
                let (job, terminal) = (*job, terminal.clone());
                marker!("FT_SERVE_DEDUP job={job} tenant={} state=finished", frame.tenant);
                self.send_to(
                    id,
                    &JobFrame {
                        kind: jobs::KIND_ACCEPT,
                        tenant: frame.tenant,
                        job,
                        seq: frame.seq,
                        payload: vec![],
                    },
                );
                self.send_to(id, &terminal);
                return;
            }
        }
        match self.sched.submit(frame.tenant, spec.ranks(), None) {
            Admission::Reject(r) => reply_reject(self, r),
            Admission::Accept(job) => {
                if spec.ckpt {
                    self.persist_spec(job, frame.tenant, &spec);
                }
                if let Some(key) = dedup_key {
                    self.dedup.insert(key, job);
                }
                self.jobs.insert(
                    job,
                    JobState {
                        spec,
                        tenant: frame.tenant,
                        client: Some((id, frame.seq)),
                        dedup_key,
                        slots: Vec::new(),
                        incarnations: Vec::new(),
                        port_base: 0,
                        remaining: 0,
                        result: None,
                        rejected: None,
                        retried: false,
                        resume: None,
                        stage: HashMap::new(),
                        latest: None,
                        t_submit: Instant::now(),
                    },
                );
                self.send_to(
                    id,
                    &JobFrame {
                        kind: jobs::KIND_ACCEPT,
                        tenant: frame.tenant,
                        job,
                        seq: frame.seq,
                        payload: vec![],
                    },
                );
                self.pump();
            }
        }
    }

    // --- placement ---------------------------------------------------

    fn pump(&mut self) {
        for d in self.sched.dispatch() {
            self.start_job(d);
        }
    }

    fn alloc_ports(&mut self, world: usize) -> u16 {
        // Rotate through a 2048-port window so back-to-back jobs never
        // collide; TcpTransport's bind loop absorbs TIME_WAIT stragglers
        // on wrap-around.
        let span = 2048u16;
        let off = (self.next_ports - self.cfg.job_port_base) % span;
        let off = if off + world as u16 > span { 0 } else { off };
        let base = self.cfg.job_port_base + off;
        self.next_ports = base + world as u16;
        base
    }

    fn start_job(&mut self, d: Dispatch) {
        let Some(world) = self.jobs.get(&d.job).map(|js| js.spec.ranks()) else {
            return;
        };
        debug_assert_eq!(world, d.slots.len());
        let port_base = if world > 1 { self.alloc_ports(world) } else { 0 };
        let js = self.jobs.get_mut(&d.job).expect("checked above");
        js.slots = d.slots.clone();
        js.incarnations = vec![0; world];
        js.remaining = world;
        js.port_base = port_base;
        let tenant = js.tenant;
        if js.resume.is_some() {
            if let Some((panel, _)) = &js.latest {
                marker!("FT_SERVE_RESUME job={} orig={} panel={panel}", d.job, d.job);
            }
        }
        for (jr, &slot) in d.slots.iter().enumerate() {
            self.slots[slot].job = Some((d.job, jr));
            self.send_assignment(d.job, jr, slot, false);
        }
        let pids: Vec<String> = d
            .slots
            .iter()
            .map(|&s| {
                self.slots[s]
                    .child
                    .as_ref()
                    .map(|c| c.id().to_string())
                    .unwrap_or_else(|| "?".into())
            })
            .collect();
        marker!(
            "FT_SERVE_ASSIGN job={} tenant={tenant} slots={} pids={}",
            d.job,
            d.slots.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
            pids.join(",")
        );
    }

    /// Ship one rank's assignment to the worker on `slot`. `replacement`
    /// marks a rejoin after a mid-job worker death.
    fn send_assignment(&mut self, job: u64, jr: usize, slot: usize, replacement: bool) {
        let Some(js) = self.jobs.get_mut(&job) else { return };
        if replacement {
            js.incarnations[jr] += 1;
        }
        let resume = if replacement {
            // Survivors ship the rollback boundary in-fabric.
            Vec::new()
        } else {
            js.resume.as_ref().map(|blobs| blobs[jr].clone()).unwrap_or_default()
        };
        let a = Assignment {
            spec: js.spec.clone(),
            job_rank: jr,
            port_base: js.port_base,
            incarnation: js.incarnations[jr],
            replacement,
            hb_interval_ms: self.cfg.hb_interval_ms,
            hb_miss_limit: self.cfg.hb_miss_limit,
            conn_timeout_ms: self.cfg.conn_timeout_ms,
            resume,
        };
        let tenant = js.tenant;
        let mut payload = vec![ASSIGN_RUN];
        payload.extend_from_slice(&a.to_words());
        let conn = self.slots[slot].conn;
        let sent = conn.is_some_and(|c| {
            self.send_to(
                c,
                &JobFrame {
                    kind: jobs::KIND_SUBMIT,
                    tenant,
                    job,
                    seq: jr as u64,
                    payload,
                },
            )
        });
        if !sent {
            // The worker died between registration and assignment; its
            // Closed event (possibly already queued) drives the normal
            // death path. Nothing more to do here.
            eprintln!("serve: assignment for job {job} rank {jr} could not reach slot {slot}");
        }
    }

    // --- completion --------------------------------------------------

    fn on_terminal(&mut self, slot: usize, frame: JobFrame) {
        // The slot is done with its rank regardless of which job the frame
        // belongs to (stale frames from an aborted job still free it).
        if self.slots[slot].job.map(|(j, _)| j) == Some(frame.job) {
            self.slots[slot].job = None;
            self.sched.release(slot);
        }
        let Some(js) = self.jobs.get_mut(&frame.job) else {
            self.pump();
            return;
        };
        if js.remaining == 0 {
            self.pump();
            return;
        }
        if frame.kind == jobs::KIND_RESULT {
            if frame.payload.first() == Some(&1.0) {
                match JobResult::from_words(&frame.payload[1..]) {
                    Ok(r) => js.result = Some(r),
                    Err(e) => {
                        eprintln!("serve: job {} sent a malformed result: {e}", frame.job);
                        js.rejected.get_or_insert(RejectReason::BadRequest);
                    }
                }
            }
        } else if let Ok(reason) = RejectReason::from_code(frame.payload.first().copied().unwrap_or(-1.0)) {
            js.rejected.get_or_insert(reason);
        }
        js.remaining -= 1;
        if js.remaining == 0 {
            self.finish_job(frame.job);
        }
        self.pump();
    }

    fn finish_job(&mut self, job: u64) {
        let Some(js) = self.jobs.remove(&job) else { return };
        self.sched.complete(job);
        let (status, frame) = match (&js.rejected, &js.result) {
            (Some(reason), _) => (
                reason.name(),
                JobFrame {
                    kind: jobs::KIND_REJECT,
                    tenant: js.tenant,
                    job,
                    seq: js.client.map(|(_, s)| s).unwrap_or(0),
                    payload: vec![reason.code()],
                },
            ),
            (None, Some(res)) => (
                "ok",
                JobFrame {
                    kind: jobs::KIND_RESULT,
                    tenant: js.tenant,
                    job,
                    seq: js.client.map(|(_, s)| s).unwrap_or(0),
                    payload: res.to_words(),
                },
            ),
            (None, None) => {
                // Every rank reported success but none carried the gather
                // root's payload — a protocol bug, surface it typed.
                eprintln!("serve: job {job} completed without a root result");
                (
                    "lost-result",
                    JobFrame {
                        kind: jobs::KIND_REJECT,
                        tenant: js.tenant,
                        job,
                        seq: js.client.map(|(_, s)| s).unwrap_or(0),
                        payload: vec![RejectReason::WorkerLost.code()],
                    },
                )
            }
        };
        if let Some(key) = js.dedup_key {
            self.dedup.remove(&key);
            self.finished.push_back((key, job, frame.clone()));
            while self.finished.len() > FINISHED_CACHE {
                self.finished.pop_front();
            }
        }
        match js.client {
            Some((conn, _)) => {
                self.send_to(conn, &frame);
            }
            None => {
                // Restart-recovered job: the submitting client is gone,
                // park the result on disk next to the checkpoints.
                if let (Some(dir), Some(res)) = (&self.cfg.state_dir, &js.result) {
                    persist_result(dir, job, res);
                }
            }
        }
        if let Some(dir) = &self.cfg.state_dir {
            let _ = std::fs::remove_file(dir.join(format!("job-{job}.spec")));
            let _ = std::fs::remove_file(dir.join(format!("job-{job}.ckpt")));
        }
        let ms = js.t_submit.elapsed().as_secs_f64() * 1e3;
        marker!("FT_SERVE_RESULT job={job} status={status} ms={ms:.1}");
    }

    // --- failure policy ----------------------------------------------

    fn on_closed(&mut self, id: u64) {
        let Some(c) = self.conns.remove(&id) else { return };
        let Role::Worker(slot) = c.role else { return };
        if self.slots[slot].conn != Some(id) {
            // Stale close from an already-replaced incarnation.
            return;
        }
        self.slots[slot].conn = None;
        self.sched.remove_idle(slot);
        if let Some(child) = self.slots[slot].child.as_mut() {
            let _ = child.wait(); // reap; it is gone either way
        }
        if self.draining && self.sched.quiescent() {
            // Workers closing their control streams during shutdown.
            return;
        }
        let running = self.slots[slot].job;
        self.slots[slot].child = self.spawn_worker(slot);
        let Some((job, jr)) = running else { return };
        let Some(js) = self.jobs.get_mut(&job) else {
            self.slots[slot].job = None;
            return;
        };
        if js.spec.ranks() > 1 {
            // In-fabric recovery needs at least one survivor holding the
            // checksum state; if every rank of the job is dead (e.g. a
            // late kill caught the whole grid), the job is gone — abort
            // typed instead of parking replacements on an empty fabric.
            let job_slots = js.slots.clone();
            if job_slots.iter().all(|&s| self.slots[s].conn.is_none()) {
                for &s in &job_slots {
                    self.slots[s].job = None;
                }
                let js = self.jobs.get_mut(&job).expect("checked above");
                js.rejected = Some(RejectReason::WorkerLost);
                js.remaining = 0;
                self.finish_job(job);
                return;
            }
            // Grid job: survivors are already running detect → agree →
            // recover inside their fabric; keep the slot bound so the
            // respawn rejoins as rank `jr` with a bumped incarnation.
            marker!("FT_SERVE_REPLACE job={job} rank={jr} slot={slot}");
            return;
        }
        // 1-rank job: no fabric to recover it. One retry, then typed loss.
        self.slots[slot].job = None;
        if !js.retried {
            js.retried = true;
            js.remaining = 0;
            js.slots.clear();
            self.sched.requeue_front(job);
            marker!("FT_SERVE_RETRY job={job}");
        } else {
            js.rejected = Some(RejectReason::WorkerLost);
            js.remaining = 0;
            self.finish_job(job);
        }
    }

    // --- checkpoints -------------------------------------------------

    fn on_ckpt(&mut self, frame: JobFrame) {
        let Some(js) = self.jobs.get_mut(&frame.job) else { return };
        if frame.payload.len() < 3 {
            return;
        }
        let (rank, panel, len) = (frame.payload[0] as usize, frame.payload[1] as usize, frame.payload[2] as usize);
        let world = js.spec.ranks();
        if rank >= world {
            return;
        }
        let bytes = crate::job::unpack_bytes(&frame.payload[3..], len);
        let entry = js.stage.entry(panel).or_default();
        entry.insert(rank, bytes);
        if entry.len() == world {
            let blobs: Vec<Vec<u8>> = (0..world).map(|r| js.stage[&panel][&r].clone()).collect();
            js.latest = Some((panel, blobs));
            js.stage.retain(|&p, _| p > panel);
            if let Some(dir) = &self.cfg.state_dir {
                let (p, blobs) = js.latest.as_ref().expect("just set");
                persist_ckpt(dir, frame.job, *p, blobs);
            }
        }
    }

    // --- persistence / restart ---------------------------------------

    fn persist_spec(&self, job: u64, tenant: u32, spec: &JobSpec) {
        let Some(dir) = &self.cfg.state_dir else { return };
        let words = spec.to_words();
        let mut buf = Vec::with_capacity(16 + 8 * words.len());
        buf.extend_from_slice(&(tenant as u64).to_le_bytes());
        buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for w in &words {
            buf.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        atomic_write(dir, &format!("job-{job}.spec"), &buf);
    }

    /// Rebuild jobs from `state_dir` after a whole-pool restart: every
    /// persisted spec is re-admitted under its original id, resuming from
    /// the newest complete checkpoint set if one was staged.
    fn resubmit_persisted(&mut self) {
        let Some(dir) = self.cfg.state_dir.clone() else { return };
        let Ok(entries) = std::fs::read_dir(&dir) else { return };
        let mut found: Vec<u64> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_prefix("job-")?.strip_suffix(".spec")?;
                id.parse().ok()
            })
            .collect();
        found.sort_unstable();
        for job in found {
            let Some((tenant, spec)) = load_spec(&dir, job) else {
                eprintln!("serve: dropping unreadable persisted spec for job {job}");
                continue;
            };
            let resume = load_ckpt(&dir, job, spec.ranks());
            match self.sched.submit(tenant, spec.ranks(), Some(job)) {
                Admission::Accept(id) => {
                    debug_assert_eq!(id, job);
                    let latest = resume.clone();
                    self.jobs.insert(
                        job,
                        JobState {
                            spec,
                            tenant,
                            client: None,
                            dedup_key: None,
                            slots: Vec::new(),
                            incarnations: Vec::new(),
                            port_base: 0,
                            remaining: 0,
                            result: None,
                            rejected: None,
                            retried: false,
                            resume: resume.map(|(_, blobs)| blobs),
                            stage: HashMap::new(),
                            latest,
                            t_submit: Instant::now(),
                        },
                    );
                }
                Admission::Reject(r) => eprintln!("serve: persisted job {job} not re-admitted: {}", r.name()),
            }
        }
        // Dispatch happens as workers register.
    }

    // --- shutdown ----------------------------------------------------

    fn stop_workers(&mut self) {
        for slot in 0..self.slots.len() {
            if let Some(conn) = self.slots[slot].conn {
                self.send_to(
                    conn,
                    &JobFrame {
                        kind: jobs::KIND_SUBMIT,
                        tenant: 0,
                        job: 0,
                        seq: 0,
                        payload: vec![ASSIGN_STOP],
                    },
                );
            }
        }
        for s in &mut self.slots {
            if let Some(child) = s.child.as_mut() {
                let _ = child.wait();
            }
        }
    }
}

fn atomic_write(dir: &Path, name: &str, bytes: &[u8]) {
    let tmp = dir.join(format!(".{name}.tmp"));
    let fin = dir.join(name);
    let ok = std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &fin).is_ok();
    if !ok {
        eprintln!("serve: failed to persist {}", fin.display());
    }
}

fn persist_ckpt(dir: &Path, job: u64, panel: usize, blobs: &[Vec<u8>]) {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(panel as u64).to_le_bytes());
    buf.extend_from_slice(&(blobs.len() as u64).to_le_bytes());
    for b in blobs {
        buf.extend_from_slice(&(b.len() as u64).to_le_bytes());
        buf.extend_from_slice(b);
    }
    atomic_write(dir, &format!("job-{job}.ckpt"), &buf);
}

fn persist_result(dir: &Path, job: u64, res: &JobResult) {
    let words = res.to_words();
    let mut buf = Vec::with_capacity(8 + 8 * words.len());
    buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
    for w in &words {
        buf.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    atomic_write(dir, &format!("result-{job}.bin"), &buf);
}

/// Parse a `result-<id>.bin` file (the counterpart of the daemon's
/// orphan-result persistence) — used by tests and the submit CLI.
pub fn load_result(path: &Path) -> Result<JobResult, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    if bytes.len() < 8 {
        return Err("truncated result file".into());
    }
    let nwords = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 8 + 8 * nwords {
        return Err(format!("result file is {} bytes, header says {} words", bytes.len(), nwords));
    }
    let words: Vec<f64> = bytes[8..]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    JobResult::from_words(&words)
}

fn load_spec(dir: &Path, job: u64) -> Option<(u32, JobSpec)> {
    let bytes = std::fs::read(dir.join(format!("job-{job}.spec"))).ok()?;
    if bytes.len() < 16 {
        return None;
    }
    let tenant = u64::from_le_bytes(bytes[..8].try_into().ok()?) as u32;
    let nwords = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    if bytes.len() != 16 + 8 * nwords {
        return None;
    }
    let words: Vec<f64> = bytes[16..]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    JobSpec::from_words(&words).ok().map(|s| (tenant, s))
}

fn load_ckpt(dir: &Path, job: u64, world: usize) -> Option<(usize, Vec<Vec<u8>>)> {
    let bytes = std::fs::read(dir.join(format!("job-{job}.ckpt"))).ok()?;
    if bytes.len() < 16 {
        return None;
    }
    let panel = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
    let nblobs = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    if nblobs != world {
        return None;
    }
    let mut off = 16;
    let mut blobs = Vec::with_capacity(nblobs);
    for _ in 0..nblobs {
        let len = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?) as usize;
        off += 8;
        blobs.push(bytes.get(off..off + len)?.to_vec());
        off += len;
    }
    (off == bytes.len()).then_some((panel, blobs))
}
