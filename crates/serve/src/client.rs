//! Submit-side library: the thin typed wrapper the `submit` CLI verb, the
//! throughput bench, and the integration tests all share.
//!
//! A [`Client`] is one tenant connection. Submissions are pipelined — you
//! may fire many [`Client::submit`] calls before draining events — and the
//! daemon correlates replies by the per-connection sequence number the
//! client stamps on each SUBMIT.
//!
//! # Idempotent submission
//!
//! Every client mints a process-unique nonzero `client_id` and rides it in
//! the SUBMIT frame's (otherwise unused) job field. The daemon dedupes on
//! `(tenant, client_id, seq)`: resubmitting the same sequence number —
//! because an ACCEPT was slow, a frame was lost on a lossy link, or the
//! connection broke and was re-established — re-targets the original job
//! instead of admitting a duplicate, and a job that already finished gets
//! its terminal reply replayed from the daemon's cache. [`Client::recover`]
//! reconnects and replays every submission still awaiting a terminal
//! reply; [`Client::run`] does all of this automatically.

use crate::job::{JobResult, JobSpec, RejectReason, REQ_JOB, REQ_SHUTDOWN};
use ft_runtime::{jobs, JobFrame};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One reply from the daemon.
#[derive(Debug, Clone)]
pub enum Event {
    /// The job was admitted; `seq` echoes the SUBMIT it answers.
    Accepted { job: u64, seq: u64 },
    /// Typed refusal: admission backpressure (`seq` correlates) or a
    /// post-admission failure (`job` correlates).
    Rejected { job: u64, seq: u64, reason: RejectReason },
    /// The job finished; the full result payload.
    Completed { job: u64, result: JobResult },
}

/// Seeded frame-loss injector for the submit path: each outbound SUBMIT is
/// dropped with probability `drop_p` instead of being written. Determinism
/// comes from the LCG seed; the retry protocol must mask every loss.
struct Lossy {
    state: u64,
    drop_p: f64,
    dropped: u64,
}

impl Lossy {
    fn drop_next(&mut self) -> bool {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        let hit = u < self.drop_p;
        if hit {
            self.dropped += 1;
        }
        hit
    }
}

/// Mint a process-unique nonzero client id: wall-clock nanoseconds mixed
/// with the pid through a splitmix64 finalizer. Uniqueness only needs to
/// hold per daemon lifetime per tenant — collisions would merely alias two
/// clients' dedup windows.
fn fresh_client_id(tenant: u32) -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E3779B97F4A7C15);
    let mut x = t ^ ((std::process::id() as u64) << 32) ^ ((tenant as u64) << 17);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    (x ^ (x >> 31)) | 1
}

/// One tenant's connection to the daemon.
pub struct Client {
    stream: TcpStream,
    port: u16,
    tenant: u32,
    seq: u64,
    client_id: u64,
    /// Submissions awaiting a terminal reply, by sequence number — the
    /// replay set for [`Client::recover`].
    pending: HashMap<u64, JobSpec>,
    /// job id → submit sequence, learned from ACCEPT events.
    job_seq: HashMap<u64, u64>,
    lossy: Option<Lossy>,
}

impl Client {
    /// Connect to a daemon on localhost `port` as `tenant`.
    pub fn connect(port: u16, tenant: u32) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(("127.0.0.1", port))?,
            port,
            tenant,
            seq: 0,
            client_id: fresh_client_id(tenant),
            pending: HashMap::new(),
            job_seq: HashMap::new(),
            lossy: None,
        })
    }

    /// Arm seeded frame loss on the submit path (tests and the lossy
    /// bench phase): each SUBMIT is dropped with probability `drop_p`.
    pub fn set_lossy(&mut self, seed: u64, drop_p: f64) {
        self.lossy = Some(Lossy { state: seed ^ 0xD1B54A32D192ED03, drop_p, dropped: 0 });
    }

    /// SUBMIT frames swallowed by the loss injector so far.
    pub fn frames_dropped(&self) -> u64 {
        self.lossy.as_ref().map(|l| l.dropped).unwrap_or(0)
    }

    fn write_submit(&mut self, seq: u64, spec: &JobSpec) -> io::Result<()> {
        if let Some(l) = &mut self.lossy {
            if l.drop_next() {
                return Ok(()); // injected loss: the frame never leaves
            }
        }
        let mut payload = vec![REQ_JOB];
        payload.extend_from_slice(&spec.to_words());
        jobs::write_job_frame(
            &mut self.stream,
            &JobFrame {
                kind: jobs::KIND_SUBMIT,
                tenant: self.tenant,
                job: self.client_id,
                seq,
                payload,
            },
        )
    }

    /// Submit a job (pipelined). Returns the sequence number identifying
    /// this submission in the [`Event::Accepted`] / [`Event::Rejected`]
    /// reply.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<u64> {
        self.seq += 1;
        let seq = self.seq;
        self.pending.insert(seq, spec.clone());
        self.write_submit(seq, spec)?;
        Ok(seq)
    }

    /// Re-establish the connection and replay every submission still
    /// awaiting a terminal reply, under its original sequence number. The
    /// daemon's `(tenant, client_id, seq)` dedup makes this idempotent:
    /// running jobs are re-targeted at the new connection, finished jobs
    /// get their cached terminal reply replayed, lost frames are admitted
    /// as if for the first time.
    pub fn recover(&mut self) -> io::Result<()> {
        self.stream = TcpStream::connect(("127.0.0.1", self.port))?;
        let mut seqs: Vec<u64> = self.pending.keys().copied().collect();
        seqs.sort_unstable();
        for seq in seqs {
            let spec = self.pending[&seq].clone();
            self.write_submit(seq, &spec)?;
        }
        Ok(())
    }

    /// Submissions still awaiting a terminal reply.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    fn note(&mut self, ev: &Event) {
        match ev {
            Event::Accepted { job, seq } => {
                self.job_seq.insert(*job, *seq);
            }
            Event::Rejected { seq, .. } => {
                self.pending.remove(seq);
            }
            Event::Completed { job, .. } => {
                if let Some(seq) = self.job_seq.get(job) {
                    self.pending.remove(seq);
                }
            }
        }
    }

    fn parse_event(f: JobFrame) -> io::Result<Option<Event>> {
        match f.kind {
            k if k == jobs::KIND_ACCEPT => Ok(Some(Event::Accepted { job: f.job, seq: f.seq })),
            k if k == jobs::KIND_REJECT => {
                let reason = f
                    .payload
                    .first()
                    .ok_or(())
                    .and_then(|&c| RejectReason::from_code(c).map_err(|_| ()))
                    .map_err(|()| io::Error::new(io::ErrorKind::InvalidData, "malformed REJECT payload"))?;
                Ok(Some(Event::Rejected { job: f.job, seq: f.seq, reason }))
            }
            k if k == jobs::KIND_RESULT => {
                let result = JobResult::from_words(&f.payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(Some(Event::Completed { job: f.job, result }))
            }
            _ => Ok(None),
        }
    }

    /// Block for the next daemon reply.
    pub fn next_event(&mut self) -> io::Result<Event> {
        self.stream.set_read_timeout(None)?;
        loop {
            let f = jobs::read_job_frame(&mut self.stream)?;
            if let Some(ev) = Self::parse_event(f)? {
                self.note(&ev);
                return Ok(ev);
            }
        }
    }

    /// Like [`Client::next_event`] but bounded: `Ok(None)` after `wait` of
    /// silence. A timeout that lands mid-frame desynchronizes the stream;
    /// the subsequent read error is the caller's cue to [`Client::recover`].
    pub fn next_event_timeout(&mut self, wait: Duration) -> io::Result<Option<Event>> {
        self.stream.set_read_timeout(Some(wait))?;
        loop {
            match jobs::read_job_frame(&mut self.stream) {
                Ok(f) => {
                    if let Some(ev) = Self::parse_event(f)? {
                        self.note(&ev);
                        return Ok(Some(ev));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submit one job and block until its terminal reply: the result, or
    /// the typed rejection. Resilient: silence before the ACCEPT triggers
    /// an idempotent resubmit (masking lost frames), a broken connection
    /// triggers [`Client::recover`]. Intended for one-outstanding-job use;
    /// events for other pipelined jobs on this connection are NOT consumed
    /// safely here.
    pub fn run(&mut self, spec: &JobSpec) -> io::Result<Result<JobResult, RejectReason>> {
        let seq = self.submit(spec)?;
        let mut job_id = None;
        let mut repairs = 0u32;
        let mut repair = |c: &mut Client, err: io::Error| -> io::Result<()> {
            repairs += 1;
            if repairs > 20 {
                return Err(err);
            }
            std::thread::sleep(Duration::from_millis(25 * repairs as u64));
            let _ = c.recover(); // a failed reconnect retries on the next lap
            Ok(())
        };
        loop {
            let wait = if job_id.is_none() {
                Duration::from_millis(250)
            } else {
                Duration::from_secs(120)
            };
            match self.next_event_timeout(wait) {
                Ok(Some(Event::Accepted { job, seq: s })) if s == seq => job_id = Some(job),
                Ok(Some(Event::Rejected { job, seq: s, reason })) if s == seq || Some(job) == job_id => {
                    return Ok(Err(reason));
                }
                Ok(Some(Event::Completed { job, result })) if Some(job) == job_id => return Ok(Ok(result)),
                Ok(Some(_)) => continue,
                Ok(None) if job_id.is_none() => {
                    // No ACCEPT yet: the SUBMIT (or its ACCEPT) was lost.
                    // Resubmitting the same seq is idempotent.
                    let to = io::Error::new(io::ErrorKind::TimedOut, "no ACCEPT from daemon");
                    repair(self, to)?;
                }
                Ok(None) => {
                    let to = io::Error::new(io::ErrorKind::TimedOut, "accepted job went silent");
                    repair(self, to)?;
                }
                Err(e) => repair(self, e)?,
            }
        }
    }

    /// Ask the daemon to drain and exit. Returns once the shutdown is
    /// acknowledged (jobs already admitted still finish before the daemon
    /// actually exits).
    pub fn shutdown(port: u16) -> io::Result<()> {
        let mut stream = TcpStream::connect(("127.0.0.1", port))?;
        jobs::write_job_frame(
            &mut stream,
            &JobFrame {
                kind: jobs::KIND_SUBMIT,
                tenant: 0,
                job: 0,
                seq: 1,
                payload: vec![REQ_SHUTDOWN],
            },
        )?;
        let f = jobs::read_job_frame(&mut stream)?;
        if f.kind == jobs::KIND_ACCEPT {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, "shutdown not acknowledged"))
        }
    }
}
