//! Submit-side library: the thin typed wrapper the `submit` CLI verb, the
//! throughput bench, and the integration tests all share.
//!
//! A [`Client`] is one tenant connection. Submissions are pipelined — you
//! may fire many [`Client::submit`] calls before draining events — and the
//! daemon correlates replies by the per-connection sequence number the
//! client stamps on each SUBMIT.

use crate::job::{JobResult, JobSpec, RejectReason, REQ_JOB, REQ_SHUTDOWN};
use ft_runtime::{jobs, JobFrame};
use std::io;
use std::net::TcpStream;

/// One reply from the daemon.
#[derive(Debug, Clone)]
pub enum Event {
    /// The job was admitted; `seq` echoes the SUBMIT it answers.
    Accepted { job: u64, seq: u64 },
    /// Typed refusal: admission backpressure (`seq` correlates) or a
    /// post-admission failure (`job` correlates).
    Rejected { job: u64, seq: u64, reason: RejectReason },
    /// The job finished; the full result payload.
    Completed { job: u64, result: JobResult },
}

/// One tenant's connection to the daemon.
pub struct Client {
    stream: TcpStream,
    tenant: u32,
    seq: u64,
}

impl Client {
    /// Connect to a daemon on localhost `port` as `tenant`.
    pub fn connect(port: u16, tenant: u32) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(("127.0.0.1", port))?,
            tenant,
            seq: 0,
        })
    }

    /// Submit a job (pipelined). Returns the sequence number identifying
    /// this submission in the [`Event::Accepted`] / [`Event::Rejected`]
    /// reply.
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<u64> {
        self.seq += 1;
        let mut payload = vec![REQ_JOB];
        payload.extend_from_slice(&spec.to_words());
        jobs::write_job_frame(
            &mut self.stream,
            &JobFrame {
                kind: jobs::KIND_SUBMIT,
                tenant: self.tenant,
                job: 0,
                seq: self.seq,
                payload,
            },
        )?;
        Ok(self.seq)
    }

    /// Block for the next daemon reply.
    pub fn next_event(&mut self) -> io::Result<Event> {
        loop {
            let f = jobs::read_job_frame(&mut self.stream)?;
            match f.kind {
                k if k == jobs::KIND_ACCEPT => return Ok(Event::Accepted { job: f.job, seq: f.seq }),
                k if k == jobs::KIND_REJECT => {
                    let reason = f
                        .payload
                        .first()
                        .ok_or(())
                        .and_then(|&c| RejectReason::from_code(c).map_err(|_| ()))
                        .map_err(|()| io::Error::new(io::ErrorKind::InvalidData, "malformed REJECT payload"))?;
                    return Ok(Event::Rejected { job: f.job, seq: f.seq, reason });
                }
                k if k == jobs::KIND_RESULT => {
                    let result = JobResult::from_words(&f.payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    return Ok(Event::Completed { job: f.job, result });
                }
                _ => continue,
            }
        }
    }

    /// Submit one job and block until its terminal reply: the result, or
    /// the typed rejection. Intended for one-outstanding-job use; events
    /// for other pipelined jobs on this connection are NOT consumed safely
    /// here.
    pub fn run(&mut self, spec: &JobSpec) -> io::Result<Result<JobResult, RejectReason>> {
        let seq = self.submit(spec)?;
        let mut job_id = None;
        loop {
            match self.next_event()? {
                Event::Accepted { job, seq: s } if s == seq => job_id = Some(job),
                Event::Rejected { job, seq: s, reason } if s == seq || Some(job) == job_id => return Ok(Err(reason)),
                Event::Completed { job, result } if Some(job) == job_id => return Ok(Ok(result)),
                _ => continue,
            }
        }
    }

    /// Ask the daemon to drain and exit. Returns once the shutdown is
    /// acknowledged (jobs already admitted still finish before the daemon
    /// actually exits).
    pub fn shutdown(port: u16) -> io::Result<()> {
        let mut stream = TcpStream::connect(("127.0.0.1", port))?;
        jobs::write_job_frame(
            &mut stream,
            &JobFrame {
                kind: jobs::KIND_SUBMIT,
                tenant: 0,
                job: 0,
                seq: 1,
                payload: vec![REQ_SHUTDOWN],
            },
        )?;
        let f = jobs::read_job_frame(&mut stream)?;
        if f.kind == jobs::KIND_ACCEPT {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, "shutdown not acknowledged"))
        }
    }
}
