//! Figure 6(b): Overhead of FT-Hess (Algorithm 2) **with one failure**
//! injected mid-factorization, recovery cost included.
//!
//! Paper result: total overhead including recovery stays low and keeps
//! decreasing with scale — 4.03 % at N = 96,000 on 96×96.

use ft_bench::*;
use ft_hess::{Phase, Variant};

fn main() {
    println!("# Figure 6(b): overhead of FT-Hess (Algorithm 2), one failure + recovery");
    println!("# paper: overhead still decreasing with scale; 4.03% at 96k/96x96");
    print_overhead_header("FT+1f");
    let r = reps();
    let mut rows = Vec::new();
    for cfg in paper_sweep() {
        let mut f_plain = 0;
        let mut f_ft = 0;
        let t_plain = best_of(r, |i| {
            let (t, f) = time_plain(cfg, 200 + i as u64);
            f_plain = f;
            t
        });
        // Failure in the middle of the factorization, after a right update
        // (the phase with the most state in flight); victim rank 1.
        let mid = panel_count(cfg.n, cfg.nb) / 2;
        let t_ft = best_of(r, |i| {
            let (t, f, rep) = time_ft(cfg, 200 + i as u64, Variant::NonDelayed, Some((mid, Phase::AfterRightUpdate, 1)));
            assert_eq!(rep.recoveries, 1);
            f_ft = f;
            t
        });
        print_overhead_row(cfg, t_plain, t_ft, f_plain, f_ft);
        rows.push(overhead_row_json(cfg, t_plain, t_ft, f_plain, f_ft));
    }
    let report = json::Obj::new()
        .str("bench", "fig6b")
        .str("variant", "NonDelayed")
        .str("failure", "mid-run AfterRightUpdate, victim rank 1")
        .int("reps", r as u64)
        .raw("rows", &json::array(&rows))
        .finish();
    if let Ok(p) = json::write_artifact("BENCH_fig6b.json", &report) {
        println!("# wrote {}", p.display());
    }
}
