//! Ablation benches beyond the paper's figures (DESIGN.md §4):
//!
//! 1. blocking-factor (NB) sweep — the paper fixes NB = 80;
//! 2. grid-shape sweep at constant process count — the §6 model says the
//!    flop overhead scales with 1/Q (the *column* count), not 1/(PQ);
//! 3. Algorithm 2 vs Algorithm 3 head-to-head;
//! 4. recovery-cost breakdown by failure time and phase;
//! 5. ABFT vs the §2 Checkpoint/Restart baseline under Poisson failures;
//! 6. checksum redundancy levels (paper scheme vs the §8 future-work
//!    weighted extension).

use ft_bench::*;
use ft_dense::gen::uniform_entry;
use ft_hess::{cr_pdgehrd, failpoint, ft_pdgehrd, Encoded, Phase, Redundancy, Variant};
use ft_pblas::{Desc, DistMatrix};
use ft_runtime::{poisson_failures, run_spmd, FaultScript, PlannedFailure};
use std::time::Instant;

fn main() {
    let r = reps();

    println!("# Ablation 1: blocking factor sweep (fixed N, grid 4x4)");
    println!("{:>4}  {:>9} {:>9} {:>9}", "nb", "plain s", "FT s", "penalty %");
    for nb in [8usize, 16, 32] {
        let n = 768usize.div_ceil(nb) * nb;
        let cfg = Config { p: 4, q: 4, n, nb };
        let tp = best_of(r, |i| time_plain(cfg, 10 + i as u64).0);
        let tf = best_of(r, |i| time_ft(cfg, 10 + i as u64, Variant::NonDelayed, None).0);
        println!("{:>4}  {:>9.3} {:>9.3} {:>9.2}", nb, tp, tf, (tf - tp) / tp * 100.0);
    }

    println!("\n# Ablation 2: grid shape at constant 16 processes (overhead ~ 1/Q)");
    println!("{:>6}  {:>9} {:>9} {:>9}", "grid", "plain s", "FT s", "penalty %");
    for (p, q) in [(8usize, 2usize), (4, 4), (2, 8)] {
        let cfg = Config { p, q, n: 768, nb: 16 };
        let tp = best_of(r, |i| time_plain(cfg, 20 + i as u64).0);
        let tf = best_of(r, |i| time_ft(cfg, 20 + i as u64, Variant::NonDelayed, None).0);
        println!("{:>6}  {:>9.3} {:>9.3} {:>9.2}", cfg.grid_label(), tp, tf, (tf - tp) / tp * 100.0);
    }

    println!("\n# Ablation 3: Algorithm 2 (fused) vs Algorithm 3 (delayed)");
    println!("{:>6} {:>7}  {:>9} {:>9} {:>9}", "grid", "N", "Alg2 s", "Alg3 s", "A3/A2");
    for cfg in paper_sweep() {
        let t2 = best_of(r, |i| time_ft(cfg, 30 + i as u64, Variant::NonDelayed, None).0);
        let t3 = best_of(r, |i| time_ft(cfg, 30 + i as u64, Variant::Delayed, None).0);
        println!("{:>6} {:>7}  {:>9.3} {:>9.3} {:>9.3}", cfg.grid_label(), cfg.n, t2, t3, t3 / t2);
    }

    println!("\n# Ablation 7: blocked vs non-blocked reduction (paper §3.3/§3.4, grid 2x2)");
    blocked_vs_unblocked();

    println!("\n# Ablation 5: ABFT vs Checkpoint/Restart under Poisson failures (4x4, N=768)");
    abft_vs_cr();

    println!("\n# Ablation 6: redundancy levels, fault-free overhead (4x4, N=768)");
    redundancy_levels();

    println!("\n# Ablation 4: recovery cost vs failure time and phase (grid 4x4)");
    let cfg = Config { p: 4, q: 4, n: 768, nb: 16 };
    let panels = panel_count(cfg.n, cfg.nb);
    println!("{:>8} {:>18}  {:>9} {:>12}", "panel", "phase", "total s", "recovery s");
    for (label, panel) in [("early", 1), ("middle", panels / 2), ("late", panels - 2)] {
        for phase in [Phase::AfterPanel, Phase::AfterRightUpdate, Phase::AfterLeftUpdate] {
            let (t, _, rep) = time_ft(cfg, 40, Variant::NonDelayed, Some((panel, phase, 5)));
            assert_eq!(rep.recoveries, 1);
            println!("{:>8} {:>18}  {:>9.3} {:>12.4}", label, format!("{phase:?}"), t, rep.recovery_secs);
        }
    }
}

/// Ablation 5: the paper's §2 argument quantified. Same Poisson failure
/// schedules drive the ABFT reduction and the diskless C/R baseline; the
/// C/R run pays full-matrix checkpoints plus lost work per rollback.
fn abft_vs_cr() {
    let cfg = Config { p: 4, q: 4, n: 768, nb: 16 };
    let panels = panel_count(cfg.n, cfg.nb);
    let interval = 8; // C/R checkpoint every 8 panels
    println!(
        "{:>9}  {:>9} {:>9}  {:>9} {:>9} {:>10}",
        "failures", "ABFT s", "recov", "C/R s", "rollbk", "lost panels"
    );
    for expected in [0usize, 1, 3, 6] {
        let schedule: Vec<PlannedFailure> = if expected == 0 {
            vec![]
        } else {
            poisson_failures(panels as u64, panels as f64 / expected as f64, cfg.procs(), 99 + expected as u64)
                .into_iter()
                .map(|f| PlannedFailure {
                    victim: f.victim,
                    point: failpoint(f.point as usize, Phase::AfterLeftUpdate),
                })
                .collect()
        };
        let nfail = schedule.len();

        let (n, nb, p, q) = (cfg.n, cfg.nb, cfg.p, cfg.q);
        let sched2 = schedule.clone();
        let t = Instant::now();
        let recov = run_spmd(p, q, FaultScript::new(schedule), move |ctx| {
            let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(5, i, j));
            let mut tau = vec![0.0; n - 1];
            ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau)
                .expect("within the fault model")
                .recoveries
        })[0];
        let t_abft = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (rollbacks, lost) = run_spmd(p, q, FaultScript::new(sched2), move |ctx| {
            let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(5, i, j));
            let mut tau = vec![0.0; n - 1];
            let rep = cr_pdgehrd(&ctx, &mut a, interval, &mut tau);
            (rep.rollbacks, rep.lost_panels)
        })[0];
        let t_cr = t.elapsed().as_secs_f64();

        println!("{:>9}  {:>9.3} {:>9} {:>9.3} {:>9} {:>10}", nfail, t_abft, recov, t_cr, rollbacks, lost);
    }
}

/// Ablation 6: fault-free cost of the redundancy levels. Dual doubles the
/// checksum columns (4 weighted vs 2 duplicated), roughly doubling the
/// checksum-update flops, in exchange for tolerating two failures per
/// process row.
fn redundancy_levels() {
    let cfg = Config { p: 4, q: 4, n: 768, nb: 16 };
    let (n, nb, p, q) = (cfg.n, cfg.nb, cfg.p, cfg.q);
    let (t_plain, f_plain) = time_plain(cfg, 6);
    println!("{:>8}  {:>9} {:>11} {:>11}", "scheme", "time s", "wall pen %", "flop pen %");
    println!("{:>8}  {:>9.3} {:>11} {:>11}", "none", t_plain, "-", "-");
    for (label, red) in [("single", Redundancy::Single), ("dual", Redundancy::Dual)] {
        ft_dense::counters::reset_flops();
        let t = Instant::now();
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let mut enc = Encoded::with_redundancy(&ctx, n, nb, red, |i, j| uniform_entry(6, i, j));
            let mut tau = vec![0.0; n - 1];
            ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
        });
        let secs = t.elapsed().as_secs_f64();
        let flops = ft_dense::counters::flops();
        println!(
            "{:>8}  {:>9.3} {:>11.2} {:>11.2}",
            label,
            secs,
            (secs - t_plain) / t_plain * 100.0,
            (flops as f64 - f_plain as f64) / f_plain as f64 * 100.0
        );
    }
}

/// Ablation 7: the paper's §3.3 point — the non-blocked reduction is all
/// Level-2 BLAS and per-column communication; blocking (§3.4) batches both.
/// nb = 1 *is* the non-blocked algorithm under this code base (every panel
/// is one column).
fn blocked_vs_unblocked() {
    let n = 256;
    println!("{:>4}  {:>9} {:>11}", "nb", "plain s", "vs nb=16");
    let base = {
        let cfg = Config { p: 2, q: 2, n, nb: 16 };
        time_plain(cfg, 8).0
    };
    for nb in [1usize, 4, 16, 32] {
        let cfg = Config { p: 2, q: 2, n, nb };
        let t = time_plain(cfg, 8).0;
        println!("{:>4}  {:>9.3} {:>10.2}x", nb, t, t / base);
    }
}
