//! Daemon throughput: seeded open-loop job streams from concurrent tenants
//! against the persistent pool, measured three times over the **identical**
//! workload — once undisturbed, once with a SIGKILL of a busy rank
//! mid-factorization, and once over a lossy submit path (1% seeded frame
//! drop on every client). The kill delta is the serving-plane price of one
//! transparent ABFT recovery; the lossy delta is the price of the
//! idempotent-resubmit masking. jobs/sec and client-observed p50/p99
//! latency land in `BENCH_serve.json`.
//!
//! Open loop: every job's submit time is fixed on a schedule before the
//! run starts, independent of completions, so a slow daemon shows up as
//! latency growth instead of silently throttling the arrival rate.
//!
//! Needs `target/release/abft-hessenberg` (override with `FT_SERVE_BIN`).
//! `FT_SERVE_SMOKE=1` trims the stream for the CI smoke run. Gates (exit 1)
//! live in-binary: every admitted job completes, jobs/sec > 0, finite
//! p50/p99 in both phases, and at least one recovery in the kill phase.

use ft_bench::json;
use ft_dense::gen::uniform_entry;
use ft_hess::{Redundancy, Variant};
use ft_serve::{Client, JobSpec, SolverId};
use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resolve the daemon binary: `FT_SERVE_BIN`, else the release binary next
/// to this bench's target dir.
fn bin_path() -> String {
    if let Ok(p) = std::env::var("FT_SERVE_BIN") {
        return p;
    }
    let exe = std::env::current_exe().expect("current_exe");
    // target/<profile>/deps/serve-<hash> -> target/<profile>/abft-hessenberg
    for dir in [exe.parent().and_then(|d| d.parent()), exe.parent()].into_iter().flatten() {
        let cand = dir.join("abft-hessenberg");
        if cand.exists() {
            return cand.to_string_lossy().into_owned();
        }
    }
    eprintln!("serve bench: abft-hessenberg binary not found — run `cargo build --release` first or set FT_SERVE_BIN");
    std::process::exit(1);
}

struct Daemon {
    child: Child,
    port: u16,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Daemon {
    fn spawn(bin: &str, pool: usize) -> Daemon {
        let mut child = Command::new(bin)
            .args(["serve", "--pool", &pool.to_string(), "--port", "0"])
            .args(["--job-ports", "33000", "--tenant-quota", "32", "--queue-depth", "64"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = lines.clone();
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().expect("marker sink").push(line);
            }
        });
        let mut d = Daemon { child, port: 0, lines };
        let listen = d.wait_marker(0, "FT_SERVE_LISTEN ");
        d.port = field(&listen, "port=").parse().expect("listen port");
        for slot in 0..pool {
            d.wait_marker(0, &format!("FT_SERVE_READY slot={slot}"));
        }
        d
    }

    /// First marker line containing `pat` at index >= `from`.
    fn wait_marker(&self, from: usize, pat: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Some(l) = self.lines.lock().expect("marker sink")[from..].iter().find(|l| l.contains(pat)) {
                return l.clone();
            }
            if Instant::now() >= deadline {
                eprintln!("serve bench: daemon never printed '{pat}'");
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn marker_count(&self) -> usize {
        self.lines.lock().expect("marker sink").len()
    }

    fn shutdown(mut self) {
        Client::shutdown(self.port).expect("shutdown handshake");
        let st = self.child.wait().expect("reap daemon");
        if st.code() != Some(0) {
            eprintln!("serve bench: daemon exited {st:?}");
            std::process::exit(1);
        }
    }
}

fn field(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(key))
        .unwrap_or_else(|| panic!("no '{key}' in '{line}'"))
        .to_string()
}

fn spec(solver: SolverId, n: usize, nb: usize, seed: u64) -> JobSpec {
    JobSpec {
        solver,
        variant: Variant::NonDelayed,
        redundancy: Redundancy::Single,
        n,
        nb,
        p: 1,
        q: 2,
        ckpt: false,
        matrix: (0..n * n).map(|i| uniform_entry(seed, i / n, i % n)).collect(),
    }
}

struct Phase {
    jobs: u64,
    jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    recoveries: u64,
    frames_dropped: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Run one phase: the big victim job submitted at t0 by tenant 0 plus an
/// open-loop stream of `jobs_per_tenant` small jobs from each of `tenants`
/// tenants. With `kill`, the victim's second rank is SIGKILLed `delay`
/// after its assignment. With `lossy`, every client arms the seeded
/// SUBMIT-loss injector at that drop probability — the idempotent-resubmit
/// path must mask the loss without a single failed job.
fn run_phase(
    d: &Daemon,
    tenants: u32,
    jobs_per_tenant: usize,
    small_n: usize,
    interval: Duration,
    kill: Option<Duration>,
    lossy: Option<f64>,
) -> Phase {
    let port = d.port;
    let mark0 = d.marker_count();
    let t0 = Instant::now();
    let victim_spec = spec(SolverId::Hessenberg, 640, 16, 55);
    let victim = std::thread::spawn(move || {
        let t_submit = Instant::now();
        let mut c = Client::connect(port, 0).expect("victim connect");
        if let Some(p) = lossy {
            c.set_lossy(1, p);
        }
        let r = c.run(&victim_spec).expect("victim io").expect("victim completes");
        (t_submit.elapsed().as_secs_f64() * 1e3, r.recoveries, c.frames_dropped())
    });
    let mut handles = Vec::new();
    for t in 1..=tenants {
        for j in 0..jobs_per_tenant {
            // Fixed schedule: tenants stagger by 11 ms inside each
            // interval slot; solver alternates so both drivers serve.
            let at = interval * j as u32 + Duration::from_millis(11) * t;
            let solver = if (t as usize + j).is_multiple_of(2) {
                SolverId::Hessenberg
            } else {
                SolverId::Qr
            };
            let s = spec(solver, small_n, 8, 9000 + t as u64 * 100 + j as u64);
            handles.push(std::thread::spawn(move || {
                let due = t0 + at;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let t_submit = Instant::now();
                let mut c = Client::connect(port, t).expect("tenant connect");
                if let Some(p) = lossy {
                    c.set_lossy(t as u64 * 1000 + j as u64, p);
                }
                let r = c.run(&s).expect("tenant io").expect("tenant completes");
                (t_submit.elapsed().as_secs_f64() * 1e3, r.recoveries, c.frames_dropped())
            }));
        }
    }
    if let Some(delay) = kill {
        let assign = d.wait_marker(mark0, "tenant=0 ");
        std::thread::sleep(delay);
        let pid = field(&assign, "pids=").split(',').nth(1).expect("two pids").to_string();
        Command::new("kill").args(["-9", &pid]).status().expect("deliver SIGKILL");
    }
    let mut lat = Vec::new();
    let mut recoveries = 0u64;
    let mut frames_dropped = 0u64;
    let (l, r, fd) = victim.join().expect("victim thread");
    lat.push(l);
    recoveries += r;
    frames_dropped += fd;
    for h in handles {
        let (l, r, fd) = h.join().expect("tenant thread");
        lat.push(l);
        recoveries += r;
        frames_dropped += fd;
    }
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Phase {
        jobs: lat.len() as u64,
        jobs_per_sec: lat.len() as f64 / wall,
        p50_ms: percentile(&lat, 0.50),
        p99_ms: percentile(&lat, 0.99),
        recoveries,
        frames_dropped,
    }
}

fn phase_json(p: &Phase) -> String {
    json::Obj::new()
        .int("jobs", p.jobs)
        .num("jobs_per_sec", p.jobs_per_sec)
        .num("p50_ms", p.p50_ms)
        .num("p99_ms", p.p99_ms)
        .int("recoveries", p.recoveries)
        .int("frames_dropped", p.frames_dropped)
        .finish()
}

fn gate(ok: bool, what: &str) {
    if !ok {
        eprintln!("serve bench GATE FAILED: {what}");
        std::process::exit(1);
    }
}

fn main() {
    let smoke = std::env::var("FT_SERVE_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (tenants, jobs_per_tenant, small_n) = if smoke { (4u32, 2usize, 96) } else { (4, 4, 192) };
    let pool = 8;
    let interval = Duration::from_millis(60);
    let bin = bin_path();
    println!(
        "# serve: open-loop throughput, pool={pool} tenants={tenants} jobs/tenant={jobs_per_tenant} n={small_n} victim n=640"
    );

    let d = Daemon::spawn(&bin, pool);
    let baseline = run_phase(&d, tenants, jobs_per_tenant, small_n, interval, None, None);
    println!(
        "# baseline: {} jobs, {:.2} jobs/s, p50 {:.1} ms, p99 {:.1} ms",
        baseline.jobs, baseline.jobs_per_sec, baseline.p50_ms, baseline.p99_ms
    );
    let one_kill = run_phase(&d, tenants, jobs_per_tenant, small_n, interval, Some(Duration::from_millis(300)), None);
    println!(
        "# one_kill: {} jobs, {:.2} jobs/s, p50 {:.1} ms, p99 {:.1} ms, {} recoveries",
        one_kill.jobs, one_kill.jobs_per_sec, one_kill.p50_ms, one_kill.p99_ms, one_kill.recoveries
    );
    let lossy = run_phase(&d, tenants, jobs_per_tenant, small_n, interval, None, Some(0.01));
    println!(
        "# lossy(1%): {} jobs, {:.2} jobs/s, p50 {:.1} ms, p99 {:.1} ms, {} frames dropped",
        lossy.jobs, lossy.jobs_per_sec, lossy.p50_ms, lossy.p99_ms, lossy.frames_dropped
    );
    d.shutdown();

    let expect = tenants as u64 * jobs_per_tenant as u64 + 1;
    gate(baseline.jobs == expect, "baseline did not complete every admitted job");
    gate(one_kill.jobs == expect, "kill phase did not complete every admitted job");
    gate(lossy.jobs == expect, "lossy phase did not complete every admitted job");
    gate(baseline.jobs_per_sec > 0.0, "baseline jobs/sec not positive");
    gate(one_kill.jobs_per_sec > 0.0, "kill-phase jobs/sec not positive");
    gate(lossy.jobs_per_sec > 0.0, "lossy-phase jobs/sec not positive");
    gate(baseline.p50_ms.is_finite() && baseline.p99_ms.is_finite(), "baseline percentiles not finite");
    gate(one_kill.p50_ms.is_finite() && one_kill.p99_ms.is_finite(), "kill-phase percentiles not finite");
    gate(lossy.p50_ms.is_finite() && lossy.p99_ms.is_finite(), "lossy-phase percentiles not finite");
    gate(baseline.recoveries == 0, "baseline phase recovered — an unintended fault fired");
    gate(one_kill.recoveries >= 1, "kill phase saw no recovery — the SIGKILL missed the driver window");
    gate(lossy.recoveries == 0, "lossy phase recovered — frame loss must never read as a solver fault");

    let report = json::Obj::new()
        .str("bench", "serve")
        .int("pool", pool as u64)
        .int("tenants", tenants as u64)
        .int("jobs_per_tenant", jobs_per_tenant as u64)
        .int("small_n", small_n as u64)
        .int("victim_n", 640)
        .int("interval_ms", interval.as_millis() as u64)
        .raw("baseline", &phase_json(&baseline))
        .raw("one_kill", &phase_json(&one_kill))
        .raw("lossy", &phase_json(&lossy))
        .finish();
    if let Ok(p) = json::write_artifact("BENCH_serve.json", &report) {
        println!("# wrote {}", p.display());
    }
}
