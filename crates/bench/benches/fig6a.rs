//! Figure 6(a): Overhead of FT-Hess (Algorithm 2) **without failures**,
//! against the fault-intolerant ScaLAPACK-style `pdgehrd`.
//!
//! Paper result (Titan, NB = 80): the performance penalty drops from 7.6 %
//! at N = 6000 on a 6×6 grid to 1.8 % at N = 96,000 on 96×96. The claim
//! under test here is the *shape*: penalty decreases as the matrix and the
//! grid grow together.

use ft_bench::*;
use ft_hess::Variant;

fn main() {
    println!("# Figure 6(a): overhead of FT-Hess (Algorithm 2), no failures");
    println!("# paper: penalty 7.6% at 6k/6x6 -> 1.8% at 96k/96x96, monotone decreasing");
    print_overhead_header("FT");
    let r = reps();
    let mut rows = Vec::new();
    for cfg in paper_sweep() {
        let mut f_plain = 0;
        let mut f_ft = 0;
        let t_plain = best_of(r, |i| {
            let (t, f) = time_plain(cfg, 100 + i as u64);
            f_plain = f;
            t
        });
        let t_ft = best_of(r, |i| {
            let (t, f, _) = time_ft(cfg, 100 + i as u64, Variant::NonDelayed, None);
            f_ft = f;
            t
        });
        print_overhead_row(cfg, t_plain, t_ft, f_plain, f_ft);
        rows.push(overhead_row_json(cfg, t_plain, t_ft, f_plain, f_ft));
    }
    let report = json::Obj::new()
        .str("bench", "fig6a")
        .str("variant", "NonDelayed")
        .int("reps", r as u64)
        .raw("rows", &json::array(&rows))
        .finish();
    if let Ok(p) = json::write_artifact("BENCH_fig6a.json", &report) {
        println!("# wrote {}", p.display());
    }
}
