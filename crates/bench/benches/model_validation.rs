//! Section 6 model validation: the analytic extra-flop counts vs the
//! runtime flop counters, plus the storage-overhead model.
//!
//! The paper derives the checksum-maintenance flops (`FLOP_pdgemm`,
//! `FLOP_pdlarfb`) and an `N → ∞` overhead asymptote (its Equation 2
//! prints 1/(5Q); the leading terms of its own sums give 7/(5Q) — see
//! EXPERIMENTS.md). Here the loop-exact model must match what the kernels
//! actually execute, measured with the global flop counters.

use ft_bench::*;
use ft_hess::{asymptotic_overhead, flop_model, storage_overhead_elements, Variant};

fn main() {
    println!("# Section 6 model validation: counted flops vs analytic model");
    println!(
        "{:>6} {:>6} {:>4}  {:>12} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "grid", "N", "nb", "plain Gflop", "FT Gflop", "extra %", "model %", "asym 7/5Q", "paper 1/5Q"
    );
    let mut cfgs = paper_sweep();
    cfgs.truncate(3); // flop counting is deterministic; small configs suffice
    for cfg in cfgs {
        let (_, plain) = time_plain(cfg, 1);
        let (_, ft, _) = time_ft(cfg, 1, Variant::NonDelayed, None);
        let extra_pct = (ft as f64 - plain as f64) / plain as f64 * 100.0;
        let model = flop_model(cfg.n, cfg.nb, cfg.q);
        let model_pct = model.overhead_ratio() * 100.0;
        println!(
            "{:>6} {:>6} {:>4}  {:>12.3} {:>12.3} {:>9.3} {:>9.3} {:>10.3} {:>10.3}",
            cfg.grid_label(),
            cfg.n,
            cfg.nb,
            plain as f64 / 1e9,
            ft as f64 / 1e9,
            extra_pct,
            model_pct,
            asymptotic_overhead(cfg.q) * 100.0,
            100.0 / (5.0 * cfg.q as f64),
        );
        // The measured extra work tracks the model within a loose band (the
        // measurement includes panel replication arithmetic the model omits).
        let ratio = extra_pct / model_pct;
        assert!((0.5..2.5).contains(&ratio), "model mismatch: measured {extra_pct:.3}% vs model {model_pct:.3}%");
    }

    println!("\n# Storage overhead model (global f64 elements)");
    println!("{:>6} {:>6}  {:>14} {:>14} {:>9}", "grid", "N", "model elems", "4N^2/Q", "ratio");
    for cfg in paper_sweep() {
        let s = storage_overhead_elements(cfg.n, cfg.nb, cfg.q) as f64;
        let lead = 4.0 * (cfg.n * cfg.n) as f64 / cfg.q as f64;
        println!("{:>6} {:>6}  {:>14.0} {:>14.0} {:>9.3}", cfg.grid_label(), cfg.n, s, lead, s / lead);
    }
}
