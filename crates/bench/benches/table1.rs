//! Table 1: residual comparison — FT-Hess **with one failure + recovery**
//! vs the fault-free ScaLAPACK-style reduction.
//!
//! Paper result: residuals r∞ = ‖A − UHUᵀ‖∞/(‖A‖∞·N·ε) of the same order
//! of magnitude for both, all far below the correctness threshold r_t = 3.

use ft_bench::*;
use ft_dense::gen::{uniform_entry, uniform_indexed_matrix};
use ft_hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use ft_pblas::{pdgehrd, Desc, DistMatrix};
use ft_runtime::{run_spmd, FaultScript};

fn residuals(cfg: Config, seed: u64) -> (f64, f64) {
    let Config { p, q, n, nb } = cfg;
    let a0 = uniform_indexed_matrix(n, n, seed);

    let a0c = a0.clone();
    let r_plain = run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        pdgehrd(&ctx, &mut a, &mut tau);
        let ag = a.gather_root(&ctx, 800);
        ag.map(|ag| {
            let h = ft_lapack::extract_h(&ag);
            let qm = ft_lapack::orghr(&ag, &tau);
            ft_lapack::hessenberg_residual(&a0c, &h, &qm)
        })
    })
    .into_iter()
    .flatten()
    .next()
    .unwrap();

    let mid = panel_count(n, nb) / 2;
    let script = FaultScript::one(1, failpoint(mid, Phase::AfterLeftUpdate));
    let a0c = a0;
    let r_ft = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
        assert_eq!(rep.recoveries, 1);
        let ag = enc.gather_logical_root(&ctx, 802);
        ag.map(|ag| {
            let h = ft_lapack::extract_h(&ag);
            let qm = ft_lapack::orghr(&ag, &tau);
            ft_lapack::hessenberg_residual(&a0c, &h, &qm)
        })
    })
    .into_iter()
    .flatten()
    .next()
    .unwrap();

    (r_ft, r_plain)
}

fn main() {
    println!("# Table 1: residual r_inf, FT-Hess (1 failure + recovery) vs ScaLAPACK Hess");
    println!("# paper: same order of magnitude on both sides, threshold r_t = 3");
    println!("{:>6} {:>7}  {:>14}  {:>16}", "grid", "N", "FT-Hess", "ScaLAPACK Hess");
    for cfg in paper_sweep() {
        let (r_ft, r_plain) = residuals(cfg, 900);
        println!("{:>6} {:>7}  {:>14.6e}  {:>16.6e}", cfg.grid_label(), cfg.n, r_ft, r_plain);
        assert!(r_ft < 3.0 && r_plain < 3.0, "residual above the paper's threshold");
    }
}
