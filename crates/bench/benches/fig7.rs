//! Figure 7: Overhead of FT-Hess **Algorithm 3** (delayed checksum updates)
//! without failures.
//!
//! Paper result: the penalty first drops with scale like Algorithm 2 but
//! *rises again* at the largest grid (96×96) — the postponed checksum
//! updates are applied sequentially per panel to tall-skinny column strips,
//! serializing more work per scope as Q grows and breaking the PBLAS
//! communication pipeline.

use ft_bench::*;
use ft_hess::Variant;

fn main() {
    println!("# Figure 7: overhead of FT-Hess (Algorithm 3, delayed), no failures");
    println!("# paper: penalty decreases then rises again at the largest grid");
    print_overhead_header("FT-d");
    let r = reps();
    for cfg in paper_sweep() {
        let mut f_plain = 0;
        let mut f_ft = 0;
        let t_plain = best_of(r, |i| {
            let (t, f) = time_plain(cfg, 300 + i as u64);
            f_plain = f;
            t
        });
        let t_ft = best_of(r, |i| {
            let (t, f, _) = time_ft(cfg, 300 + i as u64, Variant::Delayed, None);
            f_ft = f;
            t
        });
        print_overhead_row(cfg, t_plain, t_ft, f_plain, f_ft);
    }
}
