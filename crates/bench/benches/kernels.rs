//! Microbenchmarks of the dense substrates every experiment sits on —
//! primarily the packed register-tiled GEMM against the retained naive
//! triple loop, plus the pre-packed-A reuse path, GEMV, and the Householder
//! panel kernel.
//!
//! Writes `BENCH_kernels.json` at the repo root and **enforces** two
//! performance floors (exits non-zero on regression):
//!
//! * packed GEMM must not be slower than the naive triple loop at 256×256
//!   (the CI perf-smoke gate — a packing bug that silently falls off the
//!   fast path shows up here);
//! * packed GEMM must reach ≥ 3× the naive GFLOP/s at 512×512 (the PR-3
//!   acceptance bar; the measured ratio is recorded in the artifact).
//!
//! `FT_KERNELS_SMOKE=1` trims repetitions and drops the non-GEMM extras for
//! the CI smoke run. `FT_BENCH_REPS` controls repetitions (default 3 here).

use ft_bench::json;
use ft_dense::gen::{uniform, uniform_entry};
use ft_dense::level2::gemv;
use ft_dense::level3::{
    active_isa, active_threads, blocking, detected_isas, gemm, gemm_naive, gemm_packed_a, set_isa_override, PackedA, MR, NR,
};
use ft_dense::simd::Isa;
use ft_dense::{Matrix, Trans};
use ft_hess::{ft_pdgehrd_scrubbed, Encoded, ScrubPolicy, Variant};
use ft_lapack::lahr2;
use ft_runtime::{run_spmd, FaultScript};
use std::hint::black_box;
use std::time::Instant;

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

fn reps() -> usize {
    std::env::var("FT_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Minimum seconds over `r` runs of `f`.
fn best_of(r: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..r {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gflops(flops: f64, secs: f64) -> f64 {
    flops / secs / 1e9
}

fn main() {
    let smoke = env_flag("FT_KERNELS_SMOKE");
    let r = if smoke { 2 } else { reps() };
    let sizes: &[usize] = if smoke { &[256, 512] } else { &[128, 256, 512] };
    let bl = blocking();
    println!("# kernels: MR={MR} NR={NR} KC={} MC={} NC={} reps={r}", bl.kc, bl.mc, bl.nc);
    println!("{:>14} {:>6} {:>12} {:>10}", "kernel", "n", "GFLOP/s", "seconds");

    let mut rows: Vec<String> = Vec::new();
    let mut naive_gf = std::collections::HashMap::new();
    let mut packed_gf = std::collections::HashMap::new();

    for &n in sizes {
        let a = uniform(n, n, 1);
        let b = uniform(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let fl = (2 * n * n * n) as f64;

        // Naive triple loop — the correctness oracle, timed for the ratio.
        let t_naive = best_of(r, || {
            gemm_naive(
                Trans::No,
                Trans::No,
                n,
                n,
                n,
                1.0,
                black_box(a.as_slice()),
                n,
                black_box(b.as_slice()),
                n,
                0.0,
                c.as_mut_slice(),
                n,
            );
        });

        // Packed blocked path (packs A and B internally every call).
        let t_packed = best_of(r, || {
            gemm(
                Trans::No,
                Trans::No,
                n,
                n,
                n,
                1.0,
                black_box(a.as_slice()),
                n,
                black_box(b.as_slice()),
                n,
                0.0,
                c.as_mut_slice(),
                n,
            );
        });

        // Pre-packed A reused across calls — the trailing-update pattern.
        let pa = PackedA::pack(Trans::No, n, n, a.as_slice(), n);
        let t_prepacked = best_of(r, || {
            gemm_packed_a(&pa, Trans::No, n, 1.0, black_box(b.as_slice()), n, 0.0, c.as_mut_slice(), n);
        });

        for (kernel, secs) in [("naive", t_naive), ("packed", t_packed), ("packed_reused", t_prepacked)] {
            println!("{:>14} {:>6} {:>12.2} {:>10.4}", kernel, n, gflops(fl, secs), secs);
            rows.push(
                json::Obj::new()
                    .str("kernel", kernel)
                    .int("n", n as u64)
                    .num("gflops", gflops(fl, secs))
                    .num("seconds", secs)
                    .finish(),
            );
        }
        naive_gf.insert(n, gflops(fl, t_naive));
        packed_gf.insert(n, gflops(fl, t_packed));
    }

    // Per-ISA packed GEMM — the SIMD-dispatch measurement. Each detected
    // ISA is forced in turn (the rows above ran the auto pick); the fused
    // ISAs must clear the vector-vs-scalar floor gated below.
    let mut isa_gf_512 = std::collections::HashMap::new();
    for &isa in detected_isas() {
        set_isa_override(Some(isa));
        for &n in sizes {
            let a = uniform(n, n, 1);
            let b = uniform(n, n, 2);
            let mut c = Matrix::zeros(n, n);
            let fl = (2 * n * n * n) as f64;
            let t = best_of(r, || {
                gemm(
                    Trans::No,
                    Trans::No,
                    n,
                    n,
                    n,
                    1.0,
                    black_box(a.as_slice()),
                    n,
                    black_box(b.as_slice()),
                    n,
                    0.0,
                    c.as_mut_slice(),
                    n,
                );
            });
            let kernel = format!("packed_{}", isa.name());
            println!("{:>14} {:>6} {:>12.2} {:>10.4}", kernel, n, gflops(fl, t), t);
            rows.push(
                json::Obj::new()
                    .str("kernel", &kernel)
                    .str("isa", isa.name())
                    .int("n", n as u64)
                    .num("gflops", gflops(fl, t))
                    .num("seconds", t)
                    .finish(),
            );
            if n == 512 {
                isa_gf_512.insert(isa, gflops(fl, t));
            }
        }
    }
    set_isa_override(None);

    if !smoke {
        // GEMV and the Householder panel: context for the level-3 numbers.
        let n = 1024usize;
        let a = uniform(n, n, 3);
        let x = uniform(n, 1, 4).as_slice().to_vec();
        let mut y = vec![0.0; n];
        let t = best_of(r, || gemv(Trans::No, n, n, 1.0, black_box(a.as_slice()), n, &x, 0.0, &mut y));
        println!("{:>14} {:>6} {:>12.2} {:>10.4}", "gemv", n, gflops((2 * n * n) as f64, t), t);
        rows.push(
            json::Obj::new()
                .str("kernel", "gemv")
                .int("n", n as u64)
                .num("gflops", gflops((2 * n * n) as f64, t))
                .num("seconds", t)
                .finish(),
        );

        let (n, nb) = (512usize, 16usize);
        let a0 = uniform(n, n, 5);
        let t = best_of(r, || {
            let mut a = a0.clone();
            let mut tau = vec![0.0; nb];
            let mut tm = Matrix::zeros(nb, nb);
            let mut ym = Matrix::zeros(n, nb);
            lahr2(&mut a, 0, nb, &mut tau, &mut tm, &mut ym);
            black_box(&a);
        });
        println!("{:>14} {:>6} {:>12} {:>10.4}", "lahr2_nb16", n, "-", t);
        rows.push(
            json::Obj::new()
                .str("kernel", "lahr2_nb16")
                .int("n", n as u64)
                .num("seconds", t)
                .finish(),
        );
    }

    // Online scrub overhead: the fault-tolerant reduction with a pass at
    // every panel boundary vs the engine disabled, same shape and grid.
    let (sn, snb, sp, sq) = (160usize, 8usize, 2usize, 2usize);
    let ft_secs = |policy: ScrubPolicy| {
        best_of(r, || {
            run_spmd(sp, sq, FaultScript::none(), move |ctx| {
                let mut enc = Encoded::from_global_fn(&ctx, sn, snb, |i, j| uniform_entry(9, i, j));
                let mut tau = vec![0.0; sn - 1];
                ft_pdgehrd_scrubbed(&ctx, &mut enc, Variant::NonDelayed, &mut tau, policy).expect("fault-free");
            });
        })
    };
    let t_plain_ft = ft_secs(ScrubPolicy::disabled());
    let t_scrubbed = ft_secs(ScrubPolicy::every_panels(1));
    let scrub_overhead = t_scrubbed / t_plain_ft - 1.0;
    println!("{:>14} {:>6} {:>12} {:>10.4}", "ft_no_scrub", sn, "-", t_plain_ft);
    println!("{:>14} {:>6} {:>12} {:>10.4}", "ft_scrub_ev1", sn, "-", t_scrubbed);
    println!("# scrub overhead (cadence 1, {sp}x{sq}, N={sn}): {:.1}%", scrub_overhead * 100.0);
    for (kernel, secs) in [("ft_no_scrub", t_plain_ft), ("ft_scrub_ev1", t_scrubbed)] {
        rows.push(
            json::Obj::new()
                .str("kernel", kernel)
                .int("n", sn as u64)
                .num("seconds", secs)
                .finish(),
        );
    }

    let ratio_256 = packed_gf[&256] / naive_gf[&256];
    let ratio_512 = packed_gf[&512] / naive_gf[&512];
    println!("# packed/naive speedup: {ratio_256:.2}x at 256, {ratio_512:.2}x at 512");

    // Vectorized-vs-scalar floor: best fused ISA against the forced-scalar
    // packed kernel at n=512 (both sides identical blocking and packing, so
    // this isolates the register tile). A single sample on a shared CI box
    // can dip well below steady state under transient neighbor load, so a
    // sub-floor reading deepens best-of for the two gate cells — identical
    // semantics (best observed time), more samples, and the retry is
    // printed rather than silent.
    let measure_512 = |isa: Isa| -> f64 {
        set_isa_override(Some(isa));
        let n = 512usize;
        let a = uniform(n, n, 1);
        let b = uniform(n, n, 2);
        let mut c = Matrix::zeros(n, n);
        let fl = (2 * n * n * n) as f64;
        let t = best_of(r, || {
            gemm(
                Trans::No,
                Trans::No,
                n,
                n,
                n,
                1.0,
                black_box(a.as_slice()),
                n,
                black_box(b.as_slice()),
                n,
                0.0,
                c.as_mut_slice(),
                n,
            );
        });
        set_isa_override(None);
        gflops(fl, t)
    };
    let best_fused_isa = isa_gf_512
        .iter()
        .filter(|(isa, _)| isa.fused())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(isa, _)| *isa);
    if let Some(isa) = best_fused_isa {
        let mut tries = 0;
        while isa_gf_512[&isa] / isa_gf_512[&Isa::Scalar] < 2.5 && tries < 3 {
            tries += 1;
            let v = measure_512(isa).max(isa_gf_512[&isa]);
            let s = measure_512(Isa::Scalar).max(isa_gf_512[&Isa::Scalar]);
            isa_gf_512.insert(isa, v);
            isa_gf_512.insert(Isa::Scalar, s);
        }
        if tries > 0 {
            println!("# vector/scalar gate cells re-measured {tries}x (transient load)");
        }
    }
    let scalar_512 = isa_gf_512[&Isa::Scalar];
    let best_fused = isa_gf_512
        .iter()
        .filter(|(isa, _)| isa.fused())
        .map(|(isa, &gf)| (*isa, gf))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let vector_ratio = best_fused.map(|(_, gf)| gf / scalar_512);
    if let Some((isa, gf)) = best_fused {
        println!(
            "# vectorized/scalar packed at 512: {:.2}x ({} {gf:.2} vs scalar {scalar_512:.2} GFLOP/s)",
            vector_ratio.unwrap(),
            isa.name()
        );
    }

    let mut report_obj = json::Obj::new()
        .str("bench", "kernels")
        .int("mr", MR as u64)
        .int("nr", NR as u64)
        .int("kc", bl.kc as u64)
        .int("mc", bl.mc as u64)
        .int("nc", bl.nc as u64)
        .int("reps", r as u64)
        .str("isa_default", active_isa().name())
        .int("threads", active_threads() as u64)
        .num("speedup_packed_vs_naive_256", ratio_256)
        .num("speedup_packed_vs_naive_512", ratio_512)
        .num("scrub_overhead", scrub_overhead);
    for (isa, gf) in &isa_gf_512 {
        report_obj = report_obj.num(&format!("gflops_packed_512_{}", isa.name()), *gf);
    }
    if let Some(ratio) = vector_ratio {
        report_obj = report_obj.num("speedup_vector_vs_scalar_512", ratio);
    }
    let report = report_obj.raw("rows", &json::array(&rows)).finish();
    match json::write_artifact("BENCH_kernels.json", &report) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => {
            eprintln!("FAIL: could not write BENCH_kernels.json: {e}");
            std::process::exit(1);
        }
    }

    // Perf gates.
    if ratio_256 < 1.0 {
        eprintln!("FAIL: packed GEMM slower than naive at 256x256 ({ratio_256:.2}x)");
        std::process::exit(1);
    }
    if ratio_512 < 3.0 {
        eprintln!("FAIL: packed GEMM below 3x naive at 512x512 ({ratio_512:.2}x)");
        std::process::exit(1);
    }
    // The tentpole floor: on hosts with any vector ISA, the best fused tile
    // must reach 2.5x the scalar packed kernel at 512x512.
    if let Some(ratio) = vector_ratio {
        if ratio < 2.5 {
            eprintln!("FAIL: vectorized packed GEMM below 2.5x scalar at 512x512 ({ratio:.2}x)");
            std::process::exit(1);
        }
    }
}
