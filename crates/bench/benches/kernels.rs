//! Criterion microbenchmarks of the dense substrates every experiment sits
//! on: GEMM, GEMV, the Householder panel kernel, and the distributed panel.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_dense::gen::uniform;
use ft_dense::level2::gemv;
use ft_dense::level3::gemm;
use ft_dense::{Matrix, Trans};
use ft_lapack::{gehrd, lahr2};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    for n in [128usize, 384] {
        let a = uniform(n, n, 1);
        let b = uniform(n, n, 2);
        let mut out = Matrix::zeros(n, n);
        g.throughput(criterion::Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function(format!("{n}x{n}x{n}"), |bch| {
            bch.iter(|| {
                gemm(
                    Trans::No, Trans::No, n, n, n, 1.0,
                    black_box(a.as_slice()), n,
                    black_box(b.as_slice()), n,
                    0.0, out.as_mut_slice(), n,
                );
            })
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    g.sample_size(20);
    for n in [512usize, 1024] {
        let a = uniform(n, n, 3);
        let x = uniform(n, 1, 4).as_slice().to_vec();
        let mut y = vec![0.0; n];
        g.throughput(criterion::Throughput::Elements((2 * n * n) as u64));
        g.bench_function(format!("n{n}"), |bch| {
            bch.iter(|| gemv(Trans::No, n, n, 1.0, black_box(a.as_slice()), n, &x, 0.0, &mut y))
        });
    }
    g.finish();
}

fn bench_panel(c: &mut Criterion) {
    let mut g = c.benchmark_group("lahr2_panel");
    g.sample_size(10);
    for (n, nb) in [(512usize, 16usize), (512, 32)] {
        let a0 = uniform(n, n, 5);
        g.bench_function(format!("n{n}_nb{nb}"), |bch| {
            bch.iter_batched(
                || a0.clone(),
                |mut a| {
                    let mut tau = vec![0.0; nb];
                    let mut t = Matrix::zeros(nb, nb);
                    let mut y = Matrix::zeros(n, nb);
                    lahr2(&mut a, 0, nb, &mut tau, &mut t, &mut y);
                    a
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_gehrd(c: &mut Criterion) {
    let mut g = c.benchmark_group("gehrd");
    g.sample_size(10);
    {
        let n = 256usize;
        let a0 = uniform(n, n, 6);
        g.bench_function(format!("n{n}_blocked"), |bch| {
            bch.iter_batched(
                || a0.clone(),
                |mut a| {
                    let mut tau = vec![0.0; n - 1];
                    gehrd(&mut a, 16, &mut tau);
                    a
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(kernels, bench_gemm, bench_gemv, bench_panel, bench_gehrd);
criterion_main!(kernels);
