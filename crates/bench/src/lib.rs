//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every figure/table of the paper's evaluation (§7) has a bench target
//! that prints the same rows the paper reports (see DESIGN.md §4):
//!
//! * `fig6a` — FT-Hess (Algorithm 2) vs ScaLAPACK-Hess, no failures;
//! * `fig6b` — same with one injected failure + recovery;
//! * `fig7`  — FT-Hess (Algorithm 3, delayed);
//! * `table1` — residual comparison after failure + recovery;
//! * `model_validation` — §6 flop/storage model vs hardware counters;
//! * `ablations` — NB sweep, grid-shape sweep, variant head-to-head,
//!   recovery-cost breakdown;
//! * `kernels` — criterion microbenchmarks of the dense substrates.
//!
//! The paper runs N = 1000·g on g×g grids (N up to 96,000 on 96×96). On
//! this simulated machine the default is N = `FT_BENCH_SCALE`·g (scale
//! defaults to 192) on g×g for g ∈ `FT_BENCH_GRIDS` (default `2,3,4,6,8`),
//! with `FT_BENCH_REPS` repetitions (default 2, minimum taken).

use ft_dense::counters;
use ft_dense::gen::uniform_entry;
use ft_hess::{failpoint, ft_pdgehrd, Encoded, FtReport, Phase, Variant};
use ft_pblas::{pdgehrd, Desc, DistMatrix};
use ft_runtime::{run_spmd, FaultScript};
use std::time::Instant;

/// One benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Process rows.
    pub p: usize,
    /// Process columns.
    pub q: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Blocking factor / panel width.
    pub nb: usize,
}

impl Config {
    /// `P·Q`.
    pub fn procs(&self) -> usize {
        self.p * self.q
    }

    /// `"PxQ"`.
    pub fn grid_label(&self) -> String {
        format!("{}x{}", self.p, self.q)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Repetitions per measurement (`FT_BENCH_REPS`, default 2).
pub fn reps() -> usize {
    env_usize("FT_BENCH_REPS", 2).max(1)
}

/// Default blocking factor (`FT_BENCH_NB`, default 16; the paper uses
/// NB = 80 at its much larger N).
pub fn default_nb() -> usize {
    env_usize("FT_BENCH_NB", 16)
}

/// The grid sweep mimicking the paper's Figure 6/7 x-axis: square grids
/// with N proportional to the grid dimension.
pub fn paper_sweep() -> Vec<Config> {
    let scale = env_usize("FT_BENCH_SCALE", 192);
    let nb = default_nb();
    let grids: Vec<usize> = std::env::var("FT_BENCH_GRIDS")
        .unwrap_or_else(|_| "2,3,4,6,8".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    grids
        .into_iter()
        .map(|g| {
            // Round N to a multiple of nb (the encoder requires it).
            let n = (scale * g).div_ceil(nb) * nb;
            Config { p: g, q: g, n, nb }
        })
        .collect()
}

/// Flops of the reduction, `10/3·N³` (the count the paper's GFLOPS use).
pub fn hess_flops(n: usize) -> f64 {
    10.0 / 3.0 * (n as f64).powi(3)
}

/// One fault-*intolerant* `pdgehrd` run: `(seconds, counted flops)`.
pub fn time_plain(cfg: Config, seed: u64) -> (f64, u64) {
    let Config { p, q, n, nb } = cfg;
    counters::reset_flops();
    let t = Instant::now();
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        pdgehrd(&ctx, &mut a, &mut tau);
    });
    (t.elapsed().as_secs_f64(), counters::flops())
}

/// One fault-tolerant run: `(seconds, counted flops, rank-0 report)`.
/// `fail` injects a single failure at `(panel, phase, victim)`.
pub fn time_ft(cfg: Config, seed: u64, variant: Variant, fail: Option<(usize, Phase, usize)>) -> (f64, u64, FtReport) {
    let Config { p, q, n, nb } = cfg;
    let script = match fail {
        Some((panel, phase, victim)) => FaultScript::one(victim, failpoint(panel, phase)),
        None => FaultScript::none(),
    };
    counters::reset_flops();
    let t = Instant::now();
    let reports = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model")
    });
    (t.elapsed().as_secs_f64(), counters::flops(), reports.into_iter().next().unwrap())
}

/// Minimum over `runs` evaluations of `f` — the usual noise filter on a
/// shared machine.
pub fn best_of(runs: usize, mut f: impl FnMut(usize) -> f64) -> f64 {
    (0..runs).map(&mut f).fold(f64::INFINITY, f64::min)
}

/// Number of panel iterations of an `n`/`nb` reduction (for placing
/// failures mid-run).
pub fn panel_count(n: usize, nb: usize) -> usize {
    let mut c = 0;
    let mut k = 0;
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

/// Print one Figure 6/7-style row: effective GFLOP/s on both sides, the
/// wall-clock penalty (noisy on the oversubscribed simulator) and the
/// counted-flop penalty (deterministic — the clean trend signal).
pub fn print_overhead_row(cfg: Config, t_plain: f64, t_ft: f64, f_plain: u64, f_ft: u64) {
    let gf_plain = hess_flops(cfg.n) / t_plain / 1e9;
    let gf_ft = hess_flops(cfg.n) / t_ft / 1e9;
    let penalty = (t_ft - t_plain) / t_plain * 100.0;
    let fpenalty = (f_ft as f64 - f_plain as f64) / f_plain as f64 * 100.0;
    println!(
        "{:>6}  {:>7}  {:>10.3}  {:>10.3}  {:>11.2}  {:>11.2}",
        cfg.grid_label(),
        cfg.n,
        gf_plain,
        gf_ft,
        penalty,
        fpenalty
    );
}

/// Header matching [`print_overhead_row`].
pub fn print_overhead_header(ft_name: &str) {
    println!(
        "{:>6}  {:>7}  {:>10}  {:>10}  {:>11}  {:>11}",
        "grid",
        "N",
        "Hess GF/s",
        format!("{ft_name} GF/s"),
        "wall pen %",
        "flop pen %"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_nonempty_and_divisible() {
        for cfg in paper_sweep() {
            assert!(cfg.n % cfg.nb == 0);
            assert!(cfg.p >= 2 && cfg.q >= 2);
        }
    }

    #[test]
    fn panel_count_matches_loop() {
        assert_eq!(panel_count(12, 2), 5);
        assert_eq!(panel_count(16, 4), 4); // panels at 0, 4, 8 and ragged 12
    }
}
